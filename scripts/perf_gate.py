#!/usr/bin/env python3
"""Perf-regression gate: compare run manifests against BENCH_BASELINE.json.

Usage: perf_gate.py [options] manifest.json [manifest.json ...]

  --baseline PATH      baseline file (default: BENCH_BASELINE.json next to
                       this script's parent directory, i.e. the repo root)
  --tolerance T        relative growth allowed before failing (default 0.25)
  --min-seconds S      skip baseline timings below S seconds (default 0.05)
  --hit-rate-drop D    absolute cache-hit-rate drop that fails (default 0.25)

Python twin of `cargo run -p dcn-bench --bin perf_gate` (same thresholds,
same exit codes) for CI steps that run without a warm cargo cache. For
each manifest whose run name has a baseline entry, the gate checks:

  * `wall_seconds` grew by more than the tolerance
  * any tracked span's `total_secs` grew by more than the tolerance
  * the `cache.hit_rate` gauge dropped by more than `--hit-rate-drop`

Baseline timings below `--min-seconds` are not gated (micro-timings
jitter far beyond any useful tolerance), and spans absent from the
current manifest (e.g. a `DCN_OBS=off` run records no spans) are skipped:
the gate flags measured slowdowns, not missing measurements.

Record or refresh the baseline by running an experiment binary with
`--baseline` (the harness folds the manifest into BENCH_BASELINE.json).

Exit codes: 0 gate passes, 1 regressions found, 2 usage/IO error.
"""

import json
import os
import sys

DEFAULT_TOLERANCE = 0.25
DEFAULT_MIN_SECONDS = 0.05
DEFAULT_HIT_RATE_DROP = 0.25


def default_baseline_path():
    env = os.environ.get("DCN_BENCH_BASELINE")
    if env:
        return env
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    return os.path.join(root, "BENCH_BASELINE.json")


def fail(msg):
    print(f"perf_gate: error: {msg}", file=sys.stderr)
    sys.exit(2)


def summarize(manifest):
    """Extract the gated summary (wall, hit rate, span totals)."""
    spans = {}
    hit_rate = None
    for m in manifest.get("metrics", []):
        if m["kind"] == "span" and m["name"].startswith("span:"):
            total = m["fields"].get("total_secs")
            if total is not None:
                spans[m["name"][len("span:"):]] = total
        elif m["kind"] == "gauge" and m["name"] == "cache.hit_rate":
            hit_rate = m["fields"].get("value")
    return {
        "wall_seconds": manifest["wall_seconds"],
        "cache_hit_rate": hit_rate,
        "spans": spans,
    }


def compare(run, base, cur, tolerance, min_seconds, hit_rate_drop):
    regressions = []

    def slow(b, c):
        return b >= min_seconds and c > b * (1.0 + tolerance)

    def flag(what, b, c):
        pct = (c / b - 1.0) * 100.0
        regressions.append(
            f"{run}: {what} regressed: baseline {b:.4f} -> current {c:.4f} ({pct:+.1f}%)"
        )

    if slow(base["wall_seconds"], cur["wall_seconds"]):
        flag("wall_seconds", base["wall_seconds"], cur["wall_seconds"])
    for path, base_total in base.get("spans", {}).items():
        cur_total = cur["spans"].get(path)
        if cur_total is None:
            continue
        if slow(base_total, cur_total):
            flag(f"span:{path}", base_total, cur_total)
    base_rate = base.get("cache_hit_rate")
    cur_rate = cur["cache_hit_rate"]
    if base_rate is not None and cur_rate is not None:
        if base_rate - cur_rate > hit_rate_drop:
            regressions.append(
                f"{run}: cache.hit_rate regressed: baseline {base_rate:.4f} "
                f"-> current {cur_rate:.4f}"
            )
    return regressions


def main():
    argv = sys.argv[1:]
    baseline_path = default_baseline_path()
    tolerance = DEFAULT_TOLERANCE
    min_seconds = DEFAULT_MIN_SECONDS
    hit_rate_drop = DEFAULT_HIT_RATE_DROP
    manifests = []
    i = 0
    while i < len(argv):
        a = argv[i]

        def value():
            if i + 1 >= len(argv):
                fail(f"{a} needs a value")
            return argv[i + 1]

        if a == "--baseline":
            baseline_path = value()
            i += 2
        elif a == "--tolerance":
            tolerance = float(value())
            i += 2
        elif a == "--min-seconds":
            min_seconds = float(value())
            i += 2
        elif a == "--hit-rate-drop":
            hit_rate_drop = float(value())
            i += 2
        elif a.startswith("--"):
            fail(f"unknown flag {a}")
        else:
            manifests.append(a)
            i += 1
    if not manifests:
        fail(f"no manifests given\n\n{__doc__}")

    try:
        with open(baseline_path) as f:
            baseline = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"cannot load baseline {baseline_path}: {e}")
    entries = baseline.get("entries", {})
    if not entries:
        fail(f"baseline {baseline_path} has no entries")

    checked = 0
    regressions = []
    for path in manifests:
        try:
            with open(path) as f:
                manifest = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            fail(f"cannot load manifest {path}: {e}")
        name = manifest.get("name", "?")
        base = entries.get(name)
        if base is None:
            print(f"perf_gate: {name}: no baseline entry, skipped")
            continue
        checked += 1
        cur = summarize(manifest)
        found = compare(name, base, cur, tolerance, min_seconds, hit_rate_drop)
        if not found:
            print(
                f"perf_gate: {name}: ok (wall {cur['wall_seconds']:.3f}s "
                f"vs baseline {base['wall_seconds']:.3f}s)"
            )
        regressions.extend(found)

    if checked == 0:
        fail("no manifest matched a baseline entry; nothing was gated")
    for r in regressions:
        print(f"perf_gate: REGRESSION {r}")
    sys.exit(1 if regressions else 0)


if __name__ == "__main__":
    main()
