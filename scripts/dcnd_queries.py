#!/usr/bin/env python3
"""Deterministic query-batch generator for the dcnd smoke test.

Usage: dcnd_queries.py [N] [--unique | --distinct]

Prints N line-delimited JSON queries (default 1000) drawn round-robin
from a fixed pool of unique (topology, tm, estimator) triples, each with
several textually different spellings of the same instance mixed in —
field-order permutations and omitted-vs-explicit defaults for the
parameter-determined families (fat-tree, Clos), which dcnd must collapse
onto one canonical key, and field-order variants for Jellyfish, which it
must NOT collapse. `--unique` prints each distinct spelling exactly once;
`--distinct` prints one spelling per canonical key (the form the
one-shot comparison replays: no duplicates, so a served batch and the
per-line `dcnd --oneshot` answers are byte-identical, provenance
included).

Everything is a pure function of N: no randomness, no timestamps, so two
generated batches are byte-identical and so are dcnd's responses to them.
"""

import sys

# Each entry is a list of spellings of ONE query. Spellings of a
# parameter-determined instance dedup to one solve; the jellyfish
# spellings are listed as separate entries because they are separate
# cache keys by design.
SPELLING_GROUPS = [
    # fat-tree: field order and id placement must not matter
    ['{"topology":{"family":"fat_tree","k":4},"estimator":"singla"}',
     '{"estimator":"singla","topology":{"k":4,"family":"fat_tree"}}'],
    ['{"topology":{"family":"fat_tree","k":6},"estimator":"singla"}'],
    ['{"topology":{"family":"fat_tree","k":8},"estimator":"singla"}',
     '{"topology":{"k":8,"family":"fat_tree"},"estimator":"singla"}'],
    ['{"topology":{"family":"fat_tree","k":4},"estimator":"sc"}'],
    ['{"topology":{"family":"fat_tree","k":6},"estimator":"sc"}'],
    ['{"topology":{"family":"fat_tree","k":4},"estimator":"bbw"}'],
    ['{"topology":{"family":"fat_tree","k":6},"estimator":"bbw"}'],
    ['{"topology":{"family":"fat_tree","k":4},"estimator":"tub"}',
     '{"estimator":"tub","topology":{"family":"fat_tree","k":4}}'],
    ['{"topology":{"family":"fat_tree","k":6},"estimator":"tub"}'],
    ['{"topology":{"family":"fat_tree","k":4},"estimator":"hm(4)"}'],
    ['{"topology":{"family":"fat_tree","k":4},"estimator":"hm(4)","tm":{"kind":"random_permutation","seed":5}}'],
    # Clos: omitted defaults vs spelled-out defaults are one instance
    ['{"topology":{"family":"clos","radix":4},"estimator":"singla"}',
     '{"topology":{"family":"clos","radix":4,"layers":3,"top_pods":4,"spine_uplink_fraction":1.0,"leaf_servers":0},"estimator":"singla"}'],
    ['{"topology":{"family":"clos","radix":6},"estimator":"singla"}'],
    ['{"topology":{"family":"clos","radix":8},"estimator":"singla"}',
     '{"topology":{"radix":8,"family":"clos"},"estimator":"singla"}'],
    ['{"topology":{"family":"clos","radix":4},"estimator":"sc"}'],
    ['{"topology":{"family":"clos","radix":6},"estimator":"bbw"}'],
    ['{"topology":{"family":"clos","radix":4,"spine_uplink_fraction":0.5},"estimator":"singla"}'],
    # Seeded families: every spelling below is its own query on purpose
    ['{"topology":{"family":"jellyfish","switches":20,"radix":8,"h":4,"seed":3},"estimator":"singla"}'],
    ['{"topology":{"seed":3,"family":"jellyfish","switches":20,"radix":8,"h":4},"estimator":"singla"}'],
    ['{"topology":{"family":"jellyfish","switches":24,"radix":8,"h":4,"seed":1},"estimator":"bbw"}'],
    ['{"topology":{"family":"xpander","switches":24,"radix":8,"h":4,"seed":2},"estimator":"singla"}'],
    ['{"topology":{"family":"fatclique","switches":27,"radix":10,"h":4,"seed":1},"estimator":"singla"}'],
]


def main():
    n = 1000
    unique = distinct = False
    for arg in sys.argv[1:]:
        if arg == "--unique":
            unique = True
        elif arg == "--distinct":
            distinct = True
        else:
            n = int(arg)
    flat = [s for group in SPELLING_GROUPS for s in group]
    if unique:
        for line in flat:
            print(line)
        return
    if distinct:
        for group in SPELLING_GROUPS:
            print(group[0])
        return
    # Round-robin over the spellings, so every spelling recurs ~N/len
    # times: the first occurrence of each canonical key is the only cold
    # solve, everything after it is an in-batch dedup or a warm hit.
    for i in range(n):
        print(flat[i % len(flat)])


if __name__ == "__main__":
    main()
