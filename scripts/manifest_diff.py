#!/usr/bin/env python3
"""Diff two run manifests under the exec determinism contract.

Usage: manifest_diff.py A.manifest.json B.manifest.json

Compares everything that is supposed to be deterministic across
`DCN_EXEC_THREADS` values and exits 1 on any difference:

  * manifest `name`, `seed`, and `mode`
  * the set of (metric name, kind) pairs
  * every **counter** value (solver iteration counts, pool task counts,
    short-circuits, fallback counts, ... are all scheduling-independent)

Deliberately excluded, because they are *allowed* to differ between
runs or thread counts:

  * `threads` (the whole point of the smoke test)
  * `wall_seconds` and `args`
  * gauge / histogram / span values (they carry thread counts and
    wall-clock durations; their *presence* is still checked above)
"""

import json
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__)
    a, b = load(sys.argv[1]), load(sys.argv[2])
    errors = []

    for key in ("name", "seed", "mode"):
        if a.get(key) != b.get(key):
            errors.append(f"{key}: {a.get(key)!r} != {b.get(key)!r}")

    ma = {(m["name"], m["kind"]): m for m in a.get("metrics", [])}
    mb = {(m["name"], m["kind"]): m for m in b.get("metrics", [])}
    for missing in sorted(set(ma) ^ set(mb)):
        side = "only in A" if missing in ma else "only in B"
        errors.append(f"metric {missing[0]} ({missing[1]}): {side}")

    for key in sorted(set(ma) & set(mb)):
        name, kind = key
        if kind != "counter":
            continue
        va, vb = ma[key]["fields"], mb[key]["fields"]
        if va != vb:
            errors.append(f"counter {name}: {va} != {vb}")

    if errors:
        print(f"manifest diff: {len(errors)} difference(s)")
        for e in errors:
            print(f"  {e}")
        sys.exit(1)
    print("manifests agree on all deterministic fields")


if __name__ == "__main__":
    main()
