#!/usr/bin/env python3
"""Diff two run manifests under the exec determinism contract.

Usage: manifest_diff.py [--hist-rtol R] [--fleet] A.manifest.json B.manifest.json

Compares everything that is supposed to be deterministic across
`DCN_EXEC_THREADS` values:

  * manifest `name`, `seed`, and `mode`
  * the set of (metric name, kind) pairs
  * every **counter** value (solver iteration counts, pool task counts,
    short-circuits, fallback counts, ... are all scheduling-independent)

Histogram p50/p99 quantiles are additionally compared with a relative
tolerance (`--hist-rtol`, default 0.25) — value-distribution histograms
(matrix sizes, frontier peaks, coarsening levels) are deterministic, but
their quantile estimates live on log-bucket boundaries, so a tolerance
absorbs estimator wobble. Histograms whose name ends in `_ns`, `_secs`,
or `_seconds` record durations and are skipped outright: e.g.
`exec.pool.worker_busy_ns` legitimately varies with the worker count.

Deliberately excluded, because they are *allowed* to differ between
runs or thread counts:

  * `threads` (the whole point of the smoke test)
  * `wall_seconds` and `args`
  * gauge / span values and duration histograms (they carry thread
    counts and wall-clock durations; their *presence* is still checked)

With `--fleet`, only the identity fields (`name`, `seed`, `mode`) are
compared. A dcn-fleet run moves the per-cell solves into worker
processes, so the supervisor's manifest legitimately records different
counters and metric sets than a single-process run (cells solved
elsewhere never bump the supervisor's solver counters; fleet.* metrics
only exist in fleet mode). The fleet determinism contract pins stdout
and CSV bytes instead — this mode just checks the manifests describe
the same experiment.

Exit codes:

  0  manifests agree
  1  deterministic fields differ (name/seed/mode, metric sets, counters)
  2  only perf fields differ (histogram quantiles beyond tolerance)
"""

import json
import sys

DURATION_SUFFIXES = ("_ns", "_secs", "_seconds")
QUANTILE_FIELDS = ("p50", "p99")


def load(path):
    with open(path) as f:
        return json.load(f)


def rel_close(a, b, rtol):
    scale = max(abs(a), abs(b))
    if scale == 0.0:
        return True
    return abs(a - b) <= rtol * scale


def main():
    argv = sys.argv[1:]
    rtol = 0.25
    fleet = "--fleet" in argv
    if fleet:
        argv.remove("--fleet")
    if "--hist-rtol" in argv:
        at = argv.index("--hist-rtol")
        try:
            rtol = float(argv[at + 1])
        except (IndexError, ValueError):
            sys.exit("--hist-rtol needs a numeric value")
        del argv[at : at + 2]
    if len(argv) != 2:
        sys.exit(__doc__)
    a, b = load(argv[0]), load(argv[1])
    errors = []  # deterministic differences -> exit 1
    perf_errors = []  # quantile differences -> exit 2

    for key in ("name", "seed", "mode"):
        if a.get(key) != b.get(key):
            errors.append(f"{key}: {a.get(key)!r} != {b.get(key)!r}")

    if fleet:
        if errors:
            print(f"manifest diff: {len(errors)} difference(s)")
            for e in errors:
                print(f"  [deterministic] {e}")
            sys.exit(1)
        print("manifests agree on all identity fields (fleet mode)")
        return

    ma = {(m["name"], m["kind"]): m for m in a.get("metrics", [])}
    mb = {(m["name"], m["kind"]): m for m in b.get("metrics", [])}
    for missing in sorted(set(ma) ^ set(mb)):
        side = "only in A" if missing in ma else "only in B"
        errors.append(f"metric {missing[0]} ({missing[1]}): {side}")

    for key in sorted(set(ma) & set(mb)):
        name, kind = key
        if kind == "counter":
            va, vb = ma[key]["fields"], mb[key]["fields"]
            if va != vb:
                errors.append(f"counter {name}: {va} != {vb}")
        elif kind == "histogram" and not name.endswith(DURATION_SUFFIXES):
            fa, fb = ma[key]["fields"], mb[key]["fields"]
            for q in QUANTILE_FIELDS:
                if q not in fa or q not in fb:
                    continue
                if not rel_close(fa[q], fb[q], rtol):
                    perf_errors.append(
                        f"histogram {name} {q}: {fa[q]} vs {fb[q]} "
                        f"(beyond rtol {rtol})"
                    )

    if errors or perf_errors:
        total = len(errors) + len(perf_errors)
        print(f"manifest diff: {total} difference(s)")
        for e in errors:
            print(f"  [deterministic] {e}")
        for e in perf_errors:
            print(f"  [perf] {e}")
        sys.exit(1 if errors else 2)
    print("manifests agree on all deterministic fields")


if __name__ == "__main__":
    main()
