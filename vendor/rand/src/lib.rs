//! Offline vendored subset of the `rand` 0.8 API.
//!
//! The build environment has no network access to crates.io, so this crate
//! provides the (small) slice of `rand` that the workspace actually uses:
//! [`Rng::gen_range`] / [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`], and [`seq::SliceRandom`] (`shuffle` / `choose`).
//!
//! `StdRng` is xoshiro256++ seeded via SplitMix64 — deterministic across
//! platforms and runs, which is what the experiment harness relies on.
//! It is NOT the same stream as upstream `rand`'s ChaCha-based `StdRng`,
//! so seeded sequences differ from upstream; all workspace tests assert
//! properties, not exact sequences, so this is safe here.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A source of randomness. Vendored subset of `rand::Rng` + `RngCore`.
pub trait Rng {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns a uniformly distributed value in `range`.
    ///
    /// Supports `a..b` and `a..=b` over the integer types used in this
    /// workspace and `a..b` over floats.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of [0,1]");
        uniform01(self.next_u64()) < p
    }
}

/// Seedable construction. Vendored subset of `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates an RNG deterministically from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

#[inline]
fn uniform01(bits: u64) -> f64 {
    // 53 high bits -> [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that can produce a uniform sample. Vendored stand-in for
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one sample from `rng`.
    fn sample_single<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_single<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_single<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                self.start + (self.end - self.start) * uniform01(rng.next_u64()) as $t
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Named RNG implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator (vendored `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, per the xoshiro authors' recommendation.
            let mut z = seed;
            let mut next = || {
                z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut x = z;
                x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                x ^ (x >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let out = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            out
        }
    }

}

impl<R: Rng> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Sequence-related helpers. Vendored subset of `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Extension trait for slices: vendored `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..2000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: i32 = rng.gen_range(-20..50);
            assert!((-20..50).contains(&w));
            let x: u64 = rng.gen_range(5..=5);
            assert_eq!(x, 5);
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_range_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 8];
        for _ in 0..8000 {
            counts[rng.gen_range(0..8usize)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "skewed counts: {counts:?}");
        }
    }

    #[test]
    fn gen_bool_tracks_p() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2700..3300).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the identity (astronomically unlikely)");
    }

    #[test]
    fn choose_empty_and_nonempty() {
        let mut rng = StdRng::seed_from_u64(4);
        let empty: [u8; 0] = [];
        assert!(empty.as_slice().choose(&mut rng).is_none());
        let v = [1, 2, 3];
        assert!(v.as_slice().choose(&mut rng).is_some());
    }
}
