//! Offline vendored subset of the `proptest` API.
//!
//! The build environment has no network access, so this crate implements
//! just enough of proptest for the workspace's property tests: range and
//! tuple strategies, `any::<T>()`, `prop_map` / `prop_filter`, the
//! `proptest!` macro, and the `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from upstream, deliberate for this environment:
//!
//! * Case generation is fully deterministic (seeded per test name + case
//!   index), so failures always reproduce.
//! * There is no shrinking: a failing case panics with the generated
//!   input echoed via the assertion message.
//! * `prop_assume!` skips the current case rather than resampling it.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A deterministic 64-bit generator (SplitMix64) used to drive strategies.
#[derive(Debug, Clone)]
pub struct Gen {
    state: u64,
}

impl Gen {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Gen { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut x = self.state;
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^ (x >> 31)
    }

    /// Uniform f64 in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value generation strategy. Vendored subset of `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The type of generated values.
    type Value: std::fmt::Debug;

    /// Generates one value; `None` means a filter rejected the draw.
    fn generate(&self, g: &mut Gen) -> Option<Self::Value>;

    /// Keeps only values satisfying `pred`. `whence` names the filter in
    /// exhaustion errors.
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }

    /// Transforms generated values with `f`.
    fn prop_map<O: std::fmt::Debug, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Filter<S, F> {
    /// The label passed to `prop_filter`, naming this filter in diagnostics.
    pub fn whence(&self) -> &'static str {
        self.whence
    }
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, g: &mut Gen) -> Option<S::Value> {
        let v = self.inner.generate(g)?;
        if (self.pred)(&v) {
            Some(v)
        } else {
            None
        }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: std::fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, g: &mut Gen) -> Option<O> {
        self.inner.generate(g).map(&self.f)
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, g: &mut Gen) -> Option<$t> {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (g.next_u64() as u128) % span;
                Some((self.start as i128 + v as i128) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, g: &mut Gen) -> Option<$t> {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (g.next_u64() as u128) % span;
                Some((lo as i128 + v as i128) as $t)
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, g: &mut Gen) -> Option<f64> {
        assert!(self.start < self.end, "empty strategy range");
        Some(self.start + (self.end - self.start) * g.unit_f64())
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, g: &mut Gen) -> Option<f32> {
        assert!(self.start < self.end, "empty strategy range");
        Some(self.start + (self.end - self.start) * g.unit_f64() as f32)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, g: &mut Gen) -> Option<Self::Value> {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                Some(($($name.generate(g)?,)+))
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Types with a canonical "any value" strategy. Vendored subset of
/// `proptest::arbitrary::Arbitrary`.
pub trait Arbitrary: Sized + std::fmt::Debug {
    /// Generates an arbitrary value.
    fn arbitrary(g: &mut Gen) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(g: &mut Gen) -> Self {
                g.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(g: &mut Gen) -> Self {
        g.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(g: &mut Gen) -> Self {
        g.unit_f64()
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, g: &mut Gen) -> Option<T> {
        Some(T::arbitrary(g))
    }
}

/// An arbitrary value of type `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Runner configuration and case driver.
pub mod test_runner {
    use super::{Gen, Strategy};

    /// Vendored subset of `proptest::test_runner::Config`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 32 }
        }
    }

    /// Drives `body` over `cases` generated inputs. Rejected draws
    /// (filters) are retried; persistent rejection fails the test so
    /// overly narrow filters are caught rather than silently vacuous.
    pub fn run_cases<S: Strategy, B: FnMut(S::Value)>(
        config: &ProptestConfig,
        test_name: &str,
        strategy: &S,
        mut body: B,
    ) {
        // Deterministic seed: test name hash, so each property gets its
        // own stream but every run is identical.
        let mut seed = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x100_0000_01b3);
        }
        let mut g = Gen::new(seed);
        for case in 0..config.cases {
            let mut value = None;
            for _attempt in 0..5_000 {
                if let Some(v) = strategy.generate(&mut g) {
                    value = Some(v);
                    break;
                }
            }
            let value = value.unwrap_or_else(|| {
                panic!("{test_name}: filter rejected 5000 consecutive draws at case {case}")
            });
            body(value);
        }
    }
}

/// One-stop imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{any, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests. Vendored subset of `proptest::proptest!`.
///
/// Supports the forms used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///     #[test]
///     fn prop((a, b) in strategy()) { ... }
///     #[test]
///     fn multi(a in 0usize..4, b in 1u32..9) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)]
     $($(#[$meta:meta])* fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let strategy = ($($strat,)+);
                $crate::test_runner::run_cases(
                    &config,
                    stringify!($name),
                    &strategy,
                    |($($pat,)+)| { $body },
                );
            }
        )*
    };
    ($($(#[$meta:meta])* fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $($(#[$meta])* fn $name($($pat in $strat),+) $body)*
        }
    };
}

/// Asserts a property; panics (failing the case) when false.
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// Asserts equality within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

/// Asserts inequality within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { assert_ne!($($arg)*) };
}

/// Skips the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return;
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_filters_generate_in_bounds() {
        let strat = (2usize..7, 0.0f64..1.0).prop_filter("even", |(n, _)| n % 2 == 0);
        let mut g = super::Gen::new(1);
        let mut produced = 0;
        for _ in 0..200 {
            if let Some((n, x)) = super::Strategy::generate(&strat, &mut g) {
                assert!(n % 2 == 0 && (2..7).contains(&n));
                assert!((0.0..1.0).contains(&x));
                produced += 1;
            }
        }
        assert!(produced > 0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_single_binding(x in 1u32..5) {
            prop_assert!((1..5).contains(&x));
        }

        #[test]
        fn macro_multi_binding(a in 0usize..3, b in any::<u64>()) {
            prop_assume!(a != 2);
            prop_assert!(a < 2);
            prop_assert_eq!(b, b);
        }

        #[test]
        fn macro_tuple_pattern((n, m) in (1usize..4, 1usize..4).prop_map(|(a, b)| (a, a + b))) {
            prop_assert!(m > n || n >= 1);
        }
    }
}
