//! Offline vendored subset of the `criterion` benchmarking API.
//!
//! The build environment has no network access, so this crate provides a
//! working stand-in for the criterion surface the workspace's benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Instead of criterion's statistical machinery it runs a warmup plus
//! `sample_size` timed samples and prints mean / min / max per benchmark —
//! enough to compare implementations locally and keep `cargo bench`
//! compiling and useful.

#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter rendering.
    pub fn new(name: impl Into<String>, param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), param),
        }
    }

    /// An id rendered from a parameter only.
    pub fn from_parameter(param: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{param}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { name: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { name: s }
    }
}

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 10,
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark with no external input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
        };
        for _ in 0..self.sample_size {
            f(&mut b);
        }
        report(&self.name, &id.name, &b.samples);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
        };
        for _ in 0..self.sample_size {
            f(&mut b, input);
        }
        report(&self.name, &id.name, &b.samples);
        self
    }

    /// Ends the group (printing is per-benchmark; this is a no-op kept for
    /// API compatibility).
    pub fn finish(&mut self) {}
}

/// Passed to benchmark closures; [`Bencher::iter`] times the routine.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times one execution of `routine` (after a single untimed warmup on
    /// the first call) and records it as a sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.samples.is_empty() {
            let _warmup = black_box(routine());
        }
        let start = Instant::now();
        let out = routine();
        self.samples.push(start.elapsed());
        let _ = black_box(out);
    }
}

/// An opaque value sink preventing the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

fn report(group: &str, bench: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{group}/{bench}: no samples (closure never called iter)");
        return;
    }
    let secs: Vec<f64> = samples.iter().map(|d| d.as_secs_f64()).collect();
    let mean = secs.iter().sum::<f64>() / secs.len() as f64;
    let min = secs.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = secs.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "{group}/{bench}: mean {} min {} max {} ({} samples)",
        fmt_time(mean),
        fmt_time(min),
        fmt_time(max),
        secs.len()
    );
}

fn fmt_time(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3}s")
    } else if s >= 1e-3 {
        format!("{:.3}ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3}us", s * 1e6)
    } else {
        format!("{:.0}ns", s * 1e9)
    }
}

/// Groups benchmark functions under one name. Vendored subset of
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emits `main()` running the given groups. Vendored subset of
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("unit");
        g.sample_size(3);
        let mut calls = 0;
        g.bench_function("noop", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        g.finish();
        assert_eq!(calls, 3 + 1, "3 samples + 1 warmup");
    }

    #[test]
    fn bench_ids_render() {
        assert_eq!(BenchmarkId::new("f", 32).name, "f/32");
        assert_eq!(BenchmarkId::from_parameter(7).name, "7");
    }
}
