//! `dcn` — command-line front end for the library.
//!
//! ```text
//! dcn gen  <family> --switches N --radix R --h H [--seed S] [--out FILE] [--dot]
//! dcn eval <topology.json> [--k K] [--eps E]        # tub, BBW, MCF, ECMP, λ2
//! dcn frontier <family> --radix R --h H [--criterion tub|bbw] [--max-switches N]
//! dcn limits --radix R --h H                         # Theorem 4.1 / Eq. 3
//! ```
//!
//! Families: `jellyfish`, `xpander`, `fatclique`, `fattree`, `clos`.
//! Topologies are exchanged as the JSON format of `dcn::model::TopologySpec`.

use dcn::cache::{CacheHandle, SolveCtx};
use dcn::core::frontier::{frontier_max_servers, Criterion, Family};
use dcn::core::universal::{max_full_throughput_servers, universal_tub, UniRegularParams};
use dcn::core::{tub, MatchingBackend};
use dcn::graph::adjacency_lambda2;
use dcn::mcf::{ecmp_throughput, ksp_mcf_throughput, Engine};
use dcn::model::Topology;
use dcn::partition::bisection_bandwidth;
use dcn::topo::{fat_tree, folded_clos, ClosParams};
use std::process::ExitCode;

struct Args {
    positional: Vec<String>,
    flags: std::collections::HashMap<String, String>,
    switches: std::collections::HashSet<String>,
}

fn parse_args(raw: &[String]) -> Args {
    let mut positional = Vec::new();
    let mut flags = std::collections::HashMap::new();
    let mut switches = std::collections::HashSet::new();
    let mut i = 0;
    while i < raw.len() {
        let a = &raw[i];
        if let Some(name) = a.strip_prefix("--") {
            if i + 1 < raw.len() && !raw[i + 1].starts_with("--") {
                flags.insert(name.to_string(), raw[i + 1].clone());
                i += 2;
            } else {
                switches.insert(name.to_string());
                i += 1;
            }
        } else {
            positional.push(a.clone());
            i += 1;
        }
    }
    Args {
        positional,
        flags,
        switches,
    }
}

impl Args {
    fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        self.flags
            .get(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  dcn gen <jellyfish|xpander|fatclique|fattree|clos> [--switches N] [--radix R] [--h H] [--layers L] [--pods P] [--seed S] [--out FILE] [--dot]\n  dcn eval <topology.json> [--k K] [--eps E] [--no-mcf]\n  dcn frontier <jellyfish|xpander|fatclique> [--radix R] [--h H] [--criterion tub|bbw] [--max-switches N] [--seed S]\n  dcn limits [--radix R] [--h H]"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.is_empty() {
        return usage();
    }
    let cmd = raw[0].clone();
    let args = parse_args(&raw[1..]);
    let result = match cmd.as_str() {
        "gen" => cmd_gen(&args),
        "eval" => cmd_eval(&args),
        "frontier" => cmd_frontier(&args),
        "limits" => cmd_limits(&args),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn family_of(name: &str) -> Option<Family> {
    match name {
        "jellyfish" => Some(Family::Jellyfish),
        "xpander" => Some(Family::Xpander),
        "fatclique" => Some(Family::FatClique),
        _ => None,
    }
}

fn cmd_gen(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let kind = args
        .positional
        .first()
        .ok_or("gen needs a family name")?
        .as_str();
    let radix: u32 = args.get("radix", 12);
    let h: u32 = args.get("h", 4);
    let switches: usize = args.get("switches", 64);
    let seed: u64 = args.get("seed", 1);
    let topo: Topology = match kind {
        "fattree" => fat_tree(radix as usize)?,
        "clos" => folded_clos(ClosParams {
            radix: radix as usize,
            layers: args.get("layers", 3),
            top_pods: args.get("pods", radix as usize),
            spine_uplink_fraction: args.get("spine-fraction", 1.0),
            leaf_servers: args.get("leaf-servers", 0),
        })?,
        other => family_of(other)
            .ok_or_else(|| format!("unknown family '{other}'"))?
            .build(switches, radix, h, seed)?,
    };
    eprintln!(
        "generated {}: {} switches, {} servers, {} links",
        topo.name(),
        topo.n_switches(),
        topo.n_servers(),
        topo.graph().m()
    );
    let body = if args.switches.contains("dot") {
        topo.to_dot()
    } else {
        topo.to_json()
    };
    match args.flags.get("out") {
        Some(path) => std::fs::write(path, body)?,
        None => println!("{body}"),
    }
    Ok(())
}

fn cmd_eval(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let path = args.positional.first().ok_or("eval needs a topology.json")?;
    let json = std::fs::read_to_string(path)?;
    let topo = Topology::from_json(&json)?;
    println!(
        "topology {}: {} switches, {} servers, {} links, class {:?}",
        topo.name(),
        topo.n_switches(),
        topo.n_servers(),
        topo.graph().m(),
        topo.class()
    );
    let cache = CacheHandle::from_env();
    let sctx = SolveCtx::unlimited(&cache);
    let bound = tub(&topo, MatchingBackend::default(), &sctx)?;
    println!("tub                 = {:.4}  ({})", bound.bound, bound.backend);
    let bbw = bisection_bandwidth(&topo, 4, 7, &sctx)?;
    println!(
        "bisection bandwidth = {bbw:.1}  ({:.3} of N/2)",
        bbw / (topo.n_servers() as f64 / 2.0)
    );
    if let Some(l2) = adjacency_lambda2(topo.graph(), 300) {
        let r = topo.graph().degree(0) as f64;
        println!(
            "spectral λ2         = {l2:.3}  (Ramanujan bound {:.3})",
            2.0 * (r - 1.0).sqrt()
        );
    }
    if !args.switches.contains("no-mcf") {
        let k: usize = args.get("k", 16);
        let eps: f64 = args.get("eps", 0.05);
        let tm = bound.traffic_matrix(&topo)?;
        let mcf = ksp_mcf_throughput(&topo, &tm, k, Engine::Fptas { eps }, &sctx)?;
        println!(
            "ksp-mcf θ(worst)    = [{:.4}, {:.4}]  (K = {k}, eps = {eps})",
            mcf.theta_lb, mcf.theta_ub
        );
        let ecmp = ecmp_throughput(&topo, &tm)?;
        println!("ecmp θ(worst)       = {ecmp:.4}");
    }
    Ok(())
}

fn cmd_frontier(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let kind = args
        .positional
        .first()
        .ok_or("frontier needs a family name")?;
    let family = family_of(kind).ok_or_else(|| format!("unknown family '{kind}'"))?;
    let radix: u32 = args.get("radix", 14);
    let h: u32 = args.get("h", 4);
    let max_switches: usize = args.get("max-switches", 1024);
    let seed: u64 = args.get("seed", 5);
    let criterion = match args
        .flags
        .get("criterion")
        .map(String::as_str)
        .unwrap_or("tub")
    {
        "bbw" => Criterion::FullBisection { tries: 3 },
        _ => Criterion::FullThroughput {
            backend: MatchingBackend::Auto { exact_below: 600 },
        },
    };
    let cache = CacheHandle::from_env();
    let sctx = SolveCtx::unlimited(&cache);
    match frontier_max_servers(
        family,
        radix,
        h,
        criterion,
        max_switches,
        seed,
        &sctx,
    )? {
        Some(n) => println!(
            "{} radix={radix} H={h}: largest size satisfying the criterion ≈ {n} servers"
        , family.name()),
        None => println!(
            "{} radix={radix} H={h}: even the smallest instance fails the criterion",
            family.name()
        ),
    }
    Ok(())
}

fn cmd_limits(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let radix: u32 = args.get("radix", 32);
    let h: u32 = args.get("h", 8);
    println!("Theorem 4.1 limits for radix {radix}, H = {h}:");
    for n in [10_000u64, 50_000, 100_000, 500_000, 1_000_000] {
        if let Some(b) = universal_tub(UniRegularParams {
            n_servers: n,
            radix,
            h,
        }) {
            println!("  N = {n:>9}: θ* <= {b:.3}");
        }
    }
    match max_full_throughput_servers(radix, h, 1 << 24) {
        Some(n) => println!(
            "Equation 3: no uni-regular topology beyond {n} servers can have full throughput."
        ),
        None => println!("Equation 3: no full-throughput size exists for these parameters."),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args_of(raw: &[&str]) -> Args {
        let v: Vec<String> = raw.iter().map(|s| s.to_string()).collect();
        parse_args(&v)
    }

    #[test]
    fn positional_and_flags() {
        let a = args_of(&["jellyfish", "--radix", "16", "--dot"]);
        assert_eq!(a.positional, vec!["jellyfish"]);
        assert_eq!(a.get("radix", 0u32), 16);
        assert!(a.switches.contains("dot"));
    }

    #[test]
    fn defaults_apply() {
        let a = args_of(&["eval"]);
        assert_eq!(a.get("k", 16usize), 16);
        assert_eq!(a.get("eps", 0.05f64), 0.05);
    }

    #[test]
    fn flag_value_parsing_falls_back_on_garbage() {
        let a = args_of(&["--radix", "not-a-number"]);
        assert_eq!(a.get("radix", 12u32), 12);
    }

    #[test]
    fn trailing_flag_is_a_switch() {
        let a = args_of(&["gen", "--quick"]);
        assert!(a.switches.contains("quick"));
        assert!(a.flags.is_empty());
    }

    #[test]
    fn family_lookup() {
        assert!(family_of("jellyfish").is_some());
        assert!(family_of("xpander").is_some());
        assert!(family_of("fatclique").is_some());
        assert!(family_of("fattree").is_none()); // handled separately in gen
        assert!(family_of("nonsense").is_none());
    }
}
