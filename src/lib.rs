#![forbid(unsafe_code)]
//! Umbrella crate re-exporting the entire `dcn` workspace.
#![warn(missing_docs)]

pub use dcn_cache as cache;
pub use dcn_core as core;
pub use dcn_estimators as estimators;
pub use dcn_fleet as fleet;
pub use dcn_graph as graph;
pub use dcn_guard as guard;
pub use dcn_lp as lp;
pub use dcn_match as matching;
pub use dcn_mcf as mcf;
pub use dcn_model as model;
pub use dcn_obs as obs;
pub use dcn_partition as partition;
pub use dcn_sim as sim;
pub use dcn_topo as topo;
