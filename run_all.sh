#!/usr/bin/env bash
# Runs every experiment binary, teeing output to results/logs/.
# Usage: ./run_all.sh [--quick|--large]
set -u
MODE="${1:-}"
BINS=(
  fig3_gap
  fig4_paths
  fig5_compare
  fig8_frontier
  fig9_cost
  fig10_failures
  table3_limits
  table5_oversub
  tablea1_clos
  figa1_theory_gap
  figa2_jellyfish_ft
  figa3_xpander_ft
  figa4_expansion
  figa5_gap_k
  ablation_matching
  ablation_switch_level
  routing_showdown
  validate_worstcase
  spinefree_eval
  fct_failures
)
mkdir -p results/logs
cargo build --release -p dcn-bench || exit 1
for b in "${BINS[@]}"; do
  echo "### running $b $MODE"
  cargo run --release -q -p dcn-bench --bin "$b" -- $MODE 2>&1 | tee "results/logs/$b.log"
done
# fig5 additionally has a --large panel (Figure 5c/d).
if [ "$MODE" != "--quick" ]; then
  echo "### running fig5_compare --large"
  cargo run --release -q -p dcn-bench --bin fig5_compare -- --large 2>&1 | tee results/logs/fig5_large.log
fi
echo "all experiments done; CSVs in results/, logs in results/logs/"
