//! Quickstart: the paper's Figure 6/7 worked example, end to end.
//!
//! A uni-regular topology of five 3-port switches (one server each, so the
//! network is a 5-cycle) has *full bisection bandwidth* but cannot reach
//! *full throughput*: its worst-case permutation tops out at θ = 5/6.
//! This example computes every quantity the paper derives for it:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dcn::core::{tub, MatchingBackend};
use dcn::graph::Graph;
use dcn::mcf::{ksp_mcf_throughput, Engine};
use dcn::model::Topology;
use dcn::partition::bisection_bandwidth;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cache = dcn_cache::CacheHandle::from_env();
    let sctx = dcn_cache::SolveCtx::unlimited(&cache);
    // Five 3-port switches, one server each → a 5-cycle of switch links.
    let graph = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)])?;
    let topo = Topology::new(graph, vec![1; 5], "figure6-middle")?;
    println!("topology: {} ({} switches, {} servers, {} links)",
        topo.name(), topo.n_switches(), topo.n_servers(), topo.graph().m());

    // Bisection bandwidth: any balanced cut of a cycle crosses 2 links,
    // and N/2 = 2.5 → "full bisection" fails by the strict definition but
    // the paper's point is throughput, so print both.
    let bbw = bisection_bandwidth(&topo, 8, 1, &sctx)?;
    println!("bisection bandwidth: {bbw} (N/2 = {})", topo.n_servers() as f64 / 2.0);

    // The throughput upper bound and its maximal permutation.
    let bound = tub(&topo, MatchingBackend::Exact, &sctx)?;
    println!("tub = {:.4} via {}", bound.bound, bound.backend);
    println!("maximal permutation (switch -> switch):");
    for &(u, v) in &bound.pairs {
        println!("  s{u} -> s{v}  (distance 2)");
    }

    // Exact KSP-MCF throughput of that worst-case traffic matrix.
    let tm = bound.traffic_matrix(&topo)?;
    let exact = ksp_mcf_throughput(&topo, &tm, 8, Engine::Exact, &sctx)?;
    println!("exact θ(T) of the maximal permutation = {:.4} (paper: 5/6 ≈ 0.8333)",
        exact.theta_lb);
    println!("fraction of flow on shortest paths: {:.3} (optimal routing mixes in the 3-hop paths)",
        exact.shortest_path_fraction);

    // The FPTAS brackets the same value.
    let approx = ksp_mcf_throughput(&topo, &tm, 8, Engine::Fptas { eps: 0.02 }, &sctx)?;
    println!("fptas bracket: [{:.4}, {:.4}]", approx.theta_lb, approx.theta_ub);

    assert!((exact.theta_lb - 5.0 / 6.0).abs() < 1e-9);
    println!("\n=> tub = {:.3} upper-bounds the true worst-case throughput {:.3}:", bound.bound, exact.theta_lb);
    println!("   the topology is NOT full throughput even though each cut looks healthy.");
    Ok(())
}
