//! Expansion planner: will random-rewiring growth keep the fabric at full
//! throughput, or does the target size require planning H in advance?
//!
//! Walks the §5.1 scenario: start from a Jellyfish at `init` switches and
//! grow to `target`, checking the tub at every 20% step — and then shows
//! what H a designer should have picked for the *target* size (the paper's
//! "plan ahead like Clos" recommendation).
//!
//! ```text
//! cargo run --release --example expansion_planner -- [init] [target] [h] [radix]
//! ```

use dcn::core::expansion_eval::expansion_curve;
use dcn::core::frontier::Family;
use dcn::core::{tub, MatchingBackend};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cache = dcn_cache::CacheHandle::from_env();
    let sctx = dcn_cache::SolveCtx::unlimited(&cache);
    let args: Vec<String> = std::env::args().collect();
    let init: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(48);
    let target: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(120);
    let h: u32 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(4);
    let radix: u32 = args.get(4).and_then(|s| s.parse().ok()).unwrap_or(12);
    let backend = MatchingBackend::Auto { exact_below: 500 };

    let topo = Family::Jellyfish.build(init, radix, h, 3)?;
    let steps = ((target.saturating_sub(init)) as f64 / (init as f64 * 0.2)).ceil() as usize;
    println!(
        "growing jellyfish {} -> ~{} switches (H={h}, radix={radix}) by random rewiring:\n",
        topo.n_switches(),
        target
    );
    let curve = expansion_curve(&topo, h, steps.max(1), 0.2, backend, 5, &sctx)?;
    println!("{:>8} {:>9} {:>7} {:>11}", "ratio", "switches", "tub", "normalized");
    for p in &curve {
        println!(
            "{:>8.2} {:>9.0} {:>7.3} {:>11.3}",
            p.ratio,
            p.ratio * topo.n_switches() as f64,
            p.tub,
            p.normalized
        );
    }
    let final_point = curve.last().expect("non-empty curve");
    if final_point.tub >= 1.0 - 1e-9 {
        println!("\n=> expansion preserves full throughput; no re-planning needed.");
        return Ok(());
    }
    println!(
        "\n=> throughput after expansion: {:.3} (dropped {:.0}% from the start).",
        final_point.tub,
        (1.0 - final_point.normalized) * 100.0
    );
    // What should the designer have picked for the target size?
    for h_plan in (1..h).rev() {
        let planned = Family::Jellyfish.build(target * h as usize / h_plan as usize, radix, h_plan, 3)?;
        let t = tub(&planned, backend, &sctx)?;
        if t.bound >= 1.0 - 1e-9 {
            println!(
                "   planning ahead: H={h_plan} keeps tub = {:.3} at the target size \
                 ({} switches for the same {} servers).",
                t.bound,
                planned.n_switches(),
                planned.n_servers()
            );
            return Ok(());
        }
    }
    println!("   no H at this radix reaches full throughput at the target size (see Eq. 3).");
    Ok(())
}
