//! Design advisor: given a target server population and a switch SKU
//! (radix), compare concrete datacenter designs the way §5 of the paper
//! does — by throughput, not bisection bandwidth.
//!
//! ```text
//! cargo run --release --example design_advisor -- [n_servers] [radix]
//! ```
//!
//! Defaults: 1024 servers, radix 14. For each candidate (Clos, Jellyfish,
//! Xpander, FatClique at several H), prints switch count, tub, bisection
//! fraction, and whether Equation 3 even *permits* full throughput at this
//! size — the checklist a topology designer would walk before committing.

use dcn::core::frontier::Family;
use dcn::core::universal::{full_throughput_possible, UniRegularParams};
use dcn::core::{tub, MatchingBackend};
use dcn::partition::bisection_bandwidth;
use dcn::topo::folded_clos;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cache = dcn_cache::CacheHandle::from_env();
    let sctx = dcn_cache::SolveCtx::unlimited(&cache);
    let args: Vec<String> = std::env::args().collect();
    let n_servers: u64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1024);
    let radix: u32 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(14);
    println!("=== design advisor: {n_servers} servers, radix-{radix} switches ===\n");
    println!(
        "{:<18} {:>4} {:>9} {:>7} {:>9} {:>12}",
        "design", "H", "switches", "tub", "bbw/(N/2)", "eq3-permits?"
    );

    // Clos baseline.
    if let Some((p, sw)) = dcn::core::cost::min_clos_switches(n_servers, radix) {
        let topo = folded_clos(p)?;
        let t = tub(&topo, MatchingBackend::Auto { exact_below: 600 }, &sctx)?;
        let bbw =
            bisection_bandwidth(&topo, 3, 7, &sctx)? / (topo.n_servers() as f64 / 2.0);
        println!(
            "{:<18} {:>4} {:>9} {:>7.3} {:>9.3} {:>12}",
            format!("clos({}L)", p.layers),
            radix / 2,
            sw,
            t.bound.min(1.0),
            bbw.min(1.0),
            "always"
        );
    } else {
        println!("clos: no {radix}-radix Clos reaches {n_servers} servers within 5 layers");
    }

    // Uni-regular candidates across H.
    for family in [Family::Jellyfish, Family::Xpander, Family::FatClique] {
        for h in [3u32, 4, 5, 6] {
            if h + 3 > radix {
                continue;
            }
            let n_switches = n_servers.div_ceil(h as u64) as usize;
            let topo = match family.build(n_switches, radix, h, 99) {
                Ok(t) => t,
                Err(_) => continue,
            };
            let t = tub(&topo, MatchingBackend::Auto { exact_below: 600 }, &sctx)?;
            let bbw =
                bisection_bandwidth(&topo, 3, 7, &sctx)? / (topo.n_servers() as f64 / 2.0);
            let permitted = full_throughput_possible(UniRegularParams {
                n_servers: topo.n_servers(),
                radix,
                h,
            });
            println!(
                "{:<18} {:>4} {:>9} {:>7.3} {:>9.3} {:>12}",
                format!("{}", family.name()),
                h,
                topo.n_switches(),
                t.bound.min(1.0),
                bbw.min(1.0),
                if permitted { "yes" } else { "no (Eq.3)" }
            );
        }
    }

    println!(
        "\nreading guide: a design is only placement-independent if tub >= 1; \
         a high bbw fraction with a low tub is exactly the paper's warning."
    );
    Ok(())
}
