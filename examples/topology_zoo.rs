//! Topology zoo: report cards for every family in the workspace.
//!
//! Builds comparable instances of each generator (same radix, similar
//! server counts), prints the §5-style report card for each, and closes
//! with the edge-connectivity resilience metric.
//!
//! ```text
//! cargo run --release --example topology_zoo -- [radix]
//! ```

use dcn::core::{report_card, MatchingBackend};
use dcn::graph::edge_connectivity;
use dcn::guard::prelude::*;
use dcn::model::Topology;
use dcn::topo::{
    dragonfly, f10, fat_tree, fatclique, jellyfish, slimfly, spinefree, xpander,
    FatCliqueParams, SpineFreeParams,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cache = dcn_cache::CacheHandle::from_env();
    let sctx = dcn_cache::SolveCtx::unlimited(&cache);
    let args: Vec<String> = std::env::args().collect();
    let radix: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(12);
    let h = 4u32;
    let r_net = radix - h as usize;
    let mut rng = StdRng::seed_from_u64(101);

    let mut zoo: Vec<Topology> = vec![
        fat_tree(radix.min(8))?,
        f10(radix.min(8))?,
        jellyfish(64, r_net, h, &mut rng)?,
        xpander(64usize.div_ceil(r_net + 1), r_net, h, &mut rng)?,
    ];
    if let Some(p) = FatCliqueParams::search(64 * h as u64, h, radix) {
        zoo.push(fatclique(p)?);
    }
    zoo.push(dragonfly(2, 4, 2)?);
    zoo.push(slimfly(5, 3)?);
    zoo.push(spinefree(
        SpineFreeParams {
            pods: 12,
            servers_per_pod: 32,
            trunk: 8.0,
            degree: 11,
        },
        &mut rng,
    )?);

    for topo in &zoo {
        let card = report_card(topo, MatchingBackend::Auto { exact_below: 400 }, 3, 7, &sctx)?;
        print!("{}", card.render());
        // Edge connectivity: affordable at zoo sizes.
        let ec = edge_connectivity(topo.graph(), &unlimited())?;
        let min_deg = (0..topo.n_switches() as u32)
            .map(|u| {
                topo.graph()
                    .neighbors(u)
                    .map(|(_, e)| topo.graph().capacity(e))
                    .sum::<f64>()
            })
            .fold(f64::INFINITY, f64::min);
        println!("  edge conn.     = {ec:.0} (min degree {min_deg:.0})\n");
    }
    Ok(())
}
