//! Slowdown study: what do topology + routing choices mean for flow
//! completion times?
//!
//! Builds a fat-tree and a cost-comparable Jellyfish, generates a skewed
//! workload (elephants + mice), and runs the flow-level simulator under
//! three path policies, reporting mean and tail slowdowns — the
//! application-visible face of the paper's throughput story.
//!
//! ```text
//! cargo run --release --example slowdown_study -- [radix]
//! ```

use dcn::model::workload::elephant_mice;
use dcn::sim::{flows_from_tm, run_to_completion, PathPolicy, SizedFlow};
use dcn::topo::{fat_tree, jellyfish};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let radix: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(8);
    let ft = fat_tree(radix)?;
    // Jellyfish with the same switch count and radix, H chosen to host at
    // least as many servers.
    let mut rng = StdRng::seed_from_u64(3);
    let h = (ft.n_servers() as usize).div_ceil(ft.n_switches()) as u32;
    let jf = jellyfish(ft.n_switches(), radix - h as usize, h, &mut rng)?;
    println!(
        "fat-tree: {} switches / {} servers; jellyfish: {} switches / {} servers (H={h})\n",
        ft.n_switches(),
        ft.n_servers(),
        jf.n_switches(),
        jf.n_servers()
    );
    println!(
        "{:<12} {:<12} {:>8} {:>8} {:>9} {:>9}",
        "topology", "policy", "mean", "p99", "makespan", "jain"
    );
    for (name, topo) in [("fat-tree", &ft), ("jellyfish", &jf)] {
        let tm = elephant_mice(topo, topo.switches_with_servers().len() / 4, 0.6, &mut rng)?;
        for (pname, policy) in [
            ("ecmp-hash", PathPolicy::EcmpHash),
            ("ksp-stripe8", PathPolicy::KspStripe { k: 8 }),
            ("vlb", PathPolicy::Vlb),
        ] {
            let flows = flows_from_tm(&tm);
            let routed = policy.route_all(topo, &flows, 17)?;
            // Pareto-ish flow sizes: mice 0.1–1, elephants 5–20.
            let mut szrng = StdRng::seed_from_u64(29);
            let sized: Vec<SizedFlow> = routed
                .into_iter()
                .map(|r| {
                    let big = r.flow.demand >= 1.0 && szrng.gen_bool(0.2);
                    let size = if big {
                        szrng.gen_range(5.0..20.0)
                    } else {
                        szrng.gen_range(0.1..1.0)
                    };
                    SizedFlow { routed: r, size }
                })
                .collect();
            let report = run_to_completion(topo, &sized);
            let alloc_rates: Vec<f64> = report.outcomes.iter().map(|o| 1.0 / o.slowdown.max(1e-9)).collect();
            let jain = {
                let n = alloc_rates.len() as f64;
                let s: f64 = alloc_rates.iter().sum();
                let s2: f64 = alloc_rates.iter().map(|r| r * r).sum();
                if s2 > 0.0 { s * s / (n * s2) } else { 1.0 }
            };
            println!(
                "{:<12} {:<12} {:>8.2} {:>8.2} {:>9.2} {:>9.3}",
                name,
                pname,
                report.mean_slowdown(),
                report.percentile_slowdown(99.0),
                report.makespan,
                jain
            );
        }
    }
    println!("\nslowdown = FCT / uncontended FCT; lower is better.");
    Ok(())
}
