//! Failure analysis: how gracefully does an expander fabric degrade?
//!
//! Reproduces the Figure 10 methodology on a user-sized Jellyfish: sweeps
//! random link-failure fractions, compares actual throughput (tub) against
//! the nominal `(1 - f) θ` line, and reports the RMS deviation.
//!
//! ```text
//! cargo run --release --example failure_analysis -- [switches] [h] [radix]
//! ```

use dcn::core::frontier::Family;
use dcn::core::resilience::{failure_sweep, rms_deviation};
use dcn::core::MatchingBackend;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cache = dcn_cache::CacheHandle::from_env();
    let sctx = dcn_cache::SolveCtx::unlimited(&cache);
    let args: Vec<String> = std::env::args().collect();
    let switches: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(160);
    let h: u32 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4);
    let radix: u32 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(12);

    let topo = Family::Jellyfish.build(switches, radix, h, 7)?;
    println!(
        "jellyfish: {} switches, {} servers, network degree {}\n",
        topo.n_switches(),
        topo.n_servers(),
        radix - h
    );
    let fractions = [0.0, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30];
    let points = failure_sweep(
        &topo,
        &fractions,
        3,
        MatchingBackend::Auto { exact_below: 500 },
        13,
        &sctx,
    )?;
    println!("{:>9} {:>9} {:>9} {:>10}", "failed", "nominal", "actual", "deviation");
    for p in &points {
        match (p.actual, p.deviation()) {
            (Some(actual), Some(dev)) => println!(
                "{:>8.0}% {:>9.3} {:>9.3} {:>10.3}",
                p.fraction * 100.0,
                p.nominal,
                actual,
                dev
            ),
            _ => println!(
                "{:>8.0}% {:>9.3} {:>9} {:>10}   (all samples disconnected)",
                p.fraction * 100.0,
                p.nominal,
                "-",
                "-"
            ),
        }
    }
    let rms = rms_deviation(&points);
    println!("\nRMS deviation from graceful degradation: {rms:.4}");
    if rms < 0.02 {
        println!("=> degrades gracefully at this scale (like the paper's 32K instance).");
    } else {
        println!(
            "=> degrades less than gracefully: failures thin out the shortest paths \
             between the worst-case pairs (the paper's 131K finding)."
        );
    }
    Ok(())
}
