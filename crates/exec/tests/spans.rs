//! Integration test pinning cross-thread span attribution: spans opened
//! inside `Pool::par_map` tasks must land on identical hierarchical paths
//! with identical counts whether the pool runs 1 worker (serial path, on
//! the caller thread) or 4 (scoped workers inheriting the caller's span
//! path as thread span parent).
//!
//! Single test function on purpose: it uses `dcn_obs::reset()` between
//! phases, which would race concurrently-running sibling tests.

use dcn_exec::Pool;
use dcn_guard::{Budget, BudgetError};
use std::sync::OnceLock;

/// Forces `DCN_OBS=summary` before anything reads the mode (spans are
/// inert under the default `off`).
fn init() {
    static INIT: OnceLock<()> = OnceLock::new();
    INIT.get_or_init(|| {
        std::env::set_var("DCN_OBS", "summary");
        assert_eq!(dcn_obs::mode(), dcn_obs::Mode::Summary);
    });
}

fn sweep_span_counts(threads: usize) -> Vec<(String, u64)> {
    dcn_obs::reset();
    let items: Vec<u64> = (0..24).collect();
    let out = {
        let _sweep = dcn_obs::span!("exec.itest.sweep");
        Pool::new(threads)
            .par_map(&Budget::unlimited(), &items, |i, &x| {
                let _cell = dcn_obs::span!("exec.itest.cell");
                Ok::<_, BudgetError>(x * 2 + i as u64)
            })
            .expect("sweep")
    };
    assert_eq!(out, (0..24).map(|x| x * 3).collect::<Vec<u64>>());
    dcn_obs::span_snapshot()
        .into_iter()
        .map(|(path, stat)| (path, stat.count))
        .collect()
}

#[test]
fn span_attribution_identical_at_1_and_4_threads() {
    init();
    let serial = sweep_span_counts(1);
    let parallel = sweep_span_counts(4);
    assert_eq!(
        serial, parallel,
        "span paths/counts must not depend on worker count"
    );
    // Pin the exact attribution tree: tasks nest under the submitting
    // sweep span, and task-interior spans nest under the task span.
    let expect: Vec<(String, u64)> = vec![
        ("exec.itest.sweep".into(), 1),
        ("exec.itest.sweep/exec.pool.task".into(), 24),
        ("exec.itest.sweep/exec.pool.task/exec.itest.cell".into(), 24),
    ];
    assert_eq!(serial, expect);

    // Without an enclosing span, tasks become roots on both paths.
    dcn_obs::reset();
    let items = [1u64, 2, 3];
    for threads in [1, 4] {
        Pool::new(threads)
            .par_map(&Budget::unlimited(), &items, |_, &x| {
                Ok::<_, BudgetError>(x)
            })
            .expect("rootless sweep");
    }
    let roots: Vec<(String, u64)> = dcn_obs::span_snapshot()
        .into_iter()
        .map(|(path, stat)| (path, stat.count))
        .collect();
    assert_eq!(roots, vec![("exec.pool.task".into(), 6)]);
}
