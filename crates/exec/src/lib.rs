#![forbid(unsafe_code)]
//! `dcn-exec`: a deterministic parallel fan-out engine.
//!
//! The paper's evaluation is dominated by embarrassingly-parallel sweeps —
//! TUB over topology families, resilience curves over hundreds of random
//! failure samples, per-commodity KSP path enumeration, near-worst traffic
//! search. Every one of those is a list of independent solves, and this
//! crate is the one place in the workspace allowed to spawn threads to run
//! them concurrently.
//!
//! # Determinism contract
//!
//! [`Pool::par_map`] guarantees **byte-identical output at any thread
//! count**, including 1:
//!
//! * Results are merged in input order, never completion order.
//! * Task closures receive their input index, so randomized tasks derive a
//!   private RNG stream from [`task_seed`]`(run_seed, index)` instead of
//!   sharing a sequential generator whose state would depend on
//!   scheduling.
//! * On failure, the error returned is the one the lowest-index failing
//!   task produced — exactly the error a serial in-order loop would have
//!   stopped at. (Task indices are claimed in increasing order, so when
//!   any task fails, every lower-index task has also run to completion.)
//!
//! # Budget propagation
//!
//! Every fan-out takes a [`Budget`]. Workers checkpoint the deadline and
//! [`CancelFlag`] before claiming each task and short-circuit the whole
//! pool on the first error or cancellation: in-flight tasks finish, queued
//! tasks are never started. Budgets with wall-clock deadlines are
//! inherently time-dependent; determinism is guaranteed for budgets that
//! do not expire mid-run (the common case: [`dcn_guard::prelude::unlimited`]).
//!
//! # Span attribution
//!
//! Workers inherit the submitting thread's span path as their thread span
//! parent ([`dcn_obs::set_thread_span_parent`]), and every task runs
//! under an `exec.pool.task` span on both the serial and parallel paths —
//! so span paths and counts are identical at any thread count, and
//! per-event traces (`dcn-trace`) show tasks nested under the fan-out
//! that submitted them. Attribution is observability-only: it never
//! affects task results or output bytes.
//!
//! # Thread count
//!
//! [`Pool::from_env`] reads `DCN_EXEC_THREADS` (re-read on every call, so
//! tests can flip it); unset or invalid falls back to the machine's
//! available parallelism. [`Pool::new`] pins an explicit count.
//!
//! ```
//! use dcn_exec::Pool;
//! use dcn_guard::prelude::*;
//!
//! let squares = Pool::new(4)
//!     .par_map(&unlimited(), &[1u64, 2, 3, 4], |_, &x| Ok::<_, BudgetError>(x * x))
//!     .unwrap();
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

#![warn(missing_docs)]

use dcn_guard::{Budget, BudgetError};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Instant;

/// A fan-out execution context: a fixed worker count applied to scoped
/// thread teams. Creating a `Pool` is free — threads are spawned per
/// [`Pool::par_map`] call and joined before it returns, so borrows of the
/// caller's stack flow into tasks without `'static` bounds.
#[derive(Debug, Clone, Copy)]
pub struct Pool {
    threads: usize,
}

impl Pool {
    /// A pool with an explicit worker count (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        Pool {
            threads: threads.max(1),
        }
    }

    /// A pool sized by the `DCN_EXEC_THREADS` environment variable, read
    /// afresh on every call (so a test or harness can change it between
    /// fan-outs). Unset, empty, zero, or unparsable values fall back to
    /// the machine's available parallelism.
    pub fn from_env() -> Self {
        let from_var = dcn_guard::env::EXEC_THREADS
            .parsed::<usize>()
            .filter(|&n| n > 0);
        let threads = from_var.unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        });
        Pool::new(threads)
    }

    /// The worker count this pool fans out to.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Applies `f` to every item, in parallel, preserving input order.
    ///
    /// `f(index, &item)` must be deterministic in its arguments for the
    /// determinism contract to hold; randomized tasks should seed from
    /// [`task_seed`]`(run_seed, index)`. The first error (by input index)
    /// short-circuits the pool and is returned; `budget` deadlines and
    /// cancellation are checked before each task claim and surface as
    /// `E::from(BudgetError)`.
    ///
    /// ```
    /// use dcn_exec::Pool;
    /// use dcn_guard::prelude::*;
    ///
    /// // Output order tracks *input* order, not completion order, so the
    /// // result is identical for any worker count — including 1.
    /// let doubled = Pool::from_env()
    ///     .par_map(&unlimited(), &[10u32, 20, 30], |i, &x| {
    ///         Ok::<_, BudgetError>(x * 2 + i as u32)
    ///     })
    ///     .unwrap();
    /// assert_eq!(doubled, vec![20, 41, 62]);
    ///
    /// // Errors propagate as the lowest failing input index would.
    /// let err = Pool::new(4)
    ///     .par_map(&unlimited(), &[1u64, 2, 3], |_, &x| {
    ///         if x % 2 == 0 {
    ///             Err(BudgetError::IterationsExceeded { cap: x })
    ///         } else {
    ///             Ok(x)
    ///         }
    ///     })
    ///     .unwrap_err();
    /// assert_eq!(err, BudgetError::IterationsExceeded { cap: 2 });
    /// ```
    pub fn par_map<I, T, E, F>(&self, budget: &Budget, items: &[I], f: F) -> Result<Vec<T>, E>
    where
        I: Sync,
        T: Send,
        E: Send + From<BudgetError>,
        F: Fn(usize, &I) -> Result<T, E> + Sync,
    {
        dcn_obs::counter!(dcn_obs::names::EXEC_POOL_RUNS).inc();
        dcn_obs::gauge!(dcn_obs::names::EXEC_POOL_THREADS).set(self.threads as f64);
        if items.is_empty() {
            return Ok(Vec::new());
        }
        let workers = self.threads.min(items.len());
        if workers <= 1 {
            return self.serial_map(budget, items, f);
        }
        let tasks_ctr = dcn_obs::counter!(dcn_obs::names::EXEC_POOL_TASKS);
        let busy_hist = dcn_obs::histogram!(dcn_obs::names::EXEC_POOL_WORKER_BUSY_NS);
        // Cross-thread span attribution: each worker inherits the
        // submitting thread's span path as its thread span parent, so a
        // task's spans report under the same hierarchical path at any
        // worker count (the serial path below nests naturally on the
        // caller thread). Observability-only; never affects results.
        let span_parent = dcn_obs::current_span_path();
        let next = AtomicUsize::new(0);
        let stop = AtomicBool::new(false);
        // Each worker claims monotonically increasing indices and collects
        // (index, result) pairs locally; the caller thread merges them back
        // into input order. No shared mutable slots, no unsafe.
        let locals: Vec<Vec<(usize, Result<T, E>)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| {
                        let _ = dcn_obs::set_thread_span_parent(span_parent.clone());
                        let started = Instant::now();
                        let mut local: Vec<(usize, Result<T, E>)> = Vec::new();
                        loop {
                            if stop.load(Ordering::Relaxed) {
                                break;
                            }
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= items.len() {
                                break;
                            }
                            // Deadline/cancellation checkpoint before each
                            // claim: a cancelled pool stops within one task
                            // per worker.
                            if let Err(e) = budget.meter().checkpoint() {
                                stop.store(true, Ordering::Relaxed);
                                dcn_obs::counter!(dcn_obs::names::EXEC_POOL_SHORT_CIRCUITS)
                                    .inc();
                                local.push((i, Err(E::from(e))));
                                break;
                            }
                            let r = {
                                let _task = dcn_obs::span!(dcn_obs::names::EXEC_POOL_TASK);
                                f(i, &items[i])
                            };
                            tasks_ctr.inc();
                            let failed = r.is_err();
                            local.push((i, r));
                            if failed {
                                stop.store(true, Ordering::Relaxed);
                                dcn_obs::counter!(dcn_obs::names::EXEC_POOL_SHORT_CIRCUITS)
                                    .inc();
                                break;
                            }
                        }
                        busy_hist.record_u64(started.elapsed().as_nanos() as u64);
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(local) => local,
                    // A panicking task is a bug in the caller's closure
                    // (solver code is panic-free by lint); re-raise it on
                    // the caller thread rather than inventing an error.
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        });
        let mut slots: Vec<Option<Result<T, E>>> = Vec::with_capacity(items.len());
        slots.resize_with(items.len(), || None);
        for (i, r) in locals.into_iter().flatten() {
            slots[i] = Some(r);
        }
        // Lowest-index error wins: identical to what a serial in-order
        // loop would have returned, at any worker count.
        let mut out = Vec::with_capacity(items.len());
        for slot in slots {
            match slot {
                Some(Ok(v)) => out.push(v),
                Some(Err(e)) => return Err(e),
                // Unreached only when an error short-circuited the pool,
                // and that error returns above before any hole is visited.
                None => unreachable!("hole below the first error in par_map merge"),
            }
        }
        Ok(out)
    }

    /// [`Pool::par_map`] followed by an in-order fold on the caller
    /// thread: `reduce(acc, result_i)` is applied for `i = 0, 1, 2, …`
    /// regardless of completion order, so non-commutative reductions (and
    /// float accumulation) stay deterministic at any thread count.
    pub fn par_map_reduce<I, T, E, A, F, R>(
        &self,
        budget: &Budget,
        items: &[I],
        f: F,
        init: A,
        mut reduce: R,
    ) -> Result<A, E>
    where
        I: Sync,
        T: Send,
        E: Send + From<BudgetError>,
        F: Fn(usize, &I) -> Result<T, E> + Sync,
        R: FnMut(A, T) -> A,
    {
        let mapped = self.par_map(budget, items, f)?;
        Ok(mapped.into_iter().fold(init, &mut reduce))
    }

    /// The single-worker path: a plain in-order loop with the same budget
    /// checkpoints as the parallel path, so `DCN_EXEC_THREADS=1` exercises
    /// identical semantics without spawning.
    fn serial_map<I, T, E, F>(&self, budget: &Budget, items: &[I], f: F) -> Result<Vec<T>, E>
    where
        E: From<BudgetError>,
        F: Fn(usize, &I) -> Result<T, E>,
    {
        let tasks_ctr = dcn_obs::counter!(dcn_obs::names::EXEC_POOL_TASKS);
        let started = Instant::now();
        let mut out = Vec::with_capacity(items.len());
        for (i, item) in items.iter().enumerate() {
            if let Err(e) = budget.meter().checkpoint() {
                dcn_obs::counter!(dcn_obs::names::EXEC_POOL_SHORT_CIRCUITS).inc();
                return Err(E::from(e));
            }
            let r = {
                let _task = dcn_obs::span!(dcn_obs::names::EXEC_POOL_TASK);
                f(i, item)
            };
            tasks_ctr.inc();
            match r {
                Ok(v) => out.push(v),
                Err(e) => {
                    dcn_obs::counter!(dcn_obs::names::EXEC_POOL_SHORT_CIRCUITS).inc();
                    return Err(e);
                }
            }
        }
        dcn_obs::histogram!(dcn_obs::names::EXEC_POOL_WORKER_BUSY_NS)
            .record_u64(started.elapsed().as_nanos() as u64);
        Ok(out)
    }
}

impl Default for Pool {
    fn default() -> Self {
        Pool::from_env()
    }
}

/// Derives the RNG seed for task `task_index` of a run seeded with
/// `run_seed` (a splitmix64 finalizer over the pair). Tasks that seed
/// `StdRng::seed_from_u64(task_seed(seed, i))` draw from statistically
/// independent streams whose values do not depend on scheduling — the
/// keystone of the determinism contract for randomized sweeps.
pub fn task_seed(run_seed: u64, task_index: u64) -> u64 {
    let mut z = run_seed.wrapping_add((task_index.wrapping_add(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_guard::CancelFlag;

    #[test]
    fn maps_in_input_order() {
        for threads in [1, 2, 4, 7] {
            let items: Vec<u64> = (0..100).collect();
            let out = Pool::new(threads)
                .par_map(&Budget::unlimited(), &items, |i, &x| {
                    Ok::<_, BudgetError>(x * 2 + i as u64)
                })
                .unwrap();
            assert_eq!(out, (0..100).map(|x| x * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_input_is_empty_output() {
        let out: Vec<u64> = Pool::new(4)
            .par_map(&Budget::unlimited(), &[] as &[u64], |_, &x| {
                Ok::<_, BudgetError>(x)
            })
            .unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn lowest_index_error_wins_at_any_thread_count() {
        let items: Vec<u64> = (0..64).collect();
        for threads in [1, 4] {
            let err = Pool::new(threads)
                .par_map(&Budget::unlimited(), &items, |_, &x| {
                    if x >= 10 {
                        Err(BudgetError::IterationsExceeded { cap: x })
                    } else {
                        Ok(x)
                    }
                })
                .unwrap_err();
            assert_eq!(err, BudgetError::IterationsExceeded { cap: 10 });
        }
    }

    #[test]
    fn reduce_folds_in_input_order() {
        let items: Vec<u64> = (0..20).collect();
        let concat = Pool::new(4)
            .par_map_reduce(
                &Budget::unlimited(),
                &items,
                |_, &x| Ok::<_, BudgetError>(x.to_string()),
                String::new(),
                |acc, s| acc + &s + ",",
            )
            .unwrap();
        let serial: String = (0..20).map(|x| format!("{x},")).collect();
        assert_eq!(concat, serial);
    }

    #[test]
    fn cancellation_short_circuits_the_pool() {
        let flag = CancelFlag::new();
        flag.cancel();
        let budget = Budget::unlimited().with_cancel(flag);
        let items: Vec<u64> = (0..1000).collect();
        let err = Pool::new(4)
            .par_map(&budget, &items, |_, &x| Ok::<_, BudgetError>(x))
            .unwrap_err();
        assert!(matches!(err, BudgetError::Cancelled { .. }));
    }

    #[test]
    fn poisoned_worker_stops_queued_tasks() {
        // One task fails immediately; every other worker observes the stop
        // flag before its *next* claim, so the overwhelming majority of the
        // queue is never started (at most ~one in-flight task per worker
        // runs to completion after the poison).
        let executed = AtomicUsize::new(0);
        let items: Vec<u64> = (0..10_000).collect();
        let err = Pool::new(4)
            .par_map(&Budget::unlimited(), &items, |i, &x| {
                executed.fetch_add(1, Ordering::Relaxed);
                if i == 0 {
                    Err(BudgetError::IterationsExceeded { cap: 0 })
                } else {
                    std::thread::sleep(std::time::Duration::from_micros(50));
                    Ok(x)
                }
            })
            .unwrap_err();
        assert_eq!(err, BudgetError::IterationsExceeded { cap: 0 });
        let ran = executed.load(Ordering::Relaxed);
        assert!(ran < items.len(), "pool kept draining after poison: {ran}");
    }

    #[test]
    fn task_seed_streams_differ() {
        let s: Vec<u64> = (0..100).map(|i| task_seed(42, i)).collect();
        let mut uniq = s.clone();
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), s.len());
        // And differ from a neighboring run seed's streams.
        assert_ne!(task_seed(42, 0), task_seed(43, 0));
    }

    #[test]
    fn from_env_reads_each_call() {
        // Not asserting a specific count (the variable may be set by the
        // CI matrix); just that the pool is well-formed.
        assert!(Pool::from_env().threads() >= 1);
        assert_eq!(Pool::new(0).threads(), 1);
    }
}
