//! Per-run manifests: a JSON sidecar capturing enough provenance to
//! reproduce and compare benchmark runs (seed, CLI args, wall time, and a
//! full dump of the metrics registry at capture time).

use crate::json::Json;
use crate::{mode, snapshot, MetricSnapshot};
use std::io::Write;
use std::path::Path;

/// Provenance record for one benchmark run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunManifest {
    /// Logical run name (usually the table/CSV stem, e.g. `fig3_gap`).
    pub name: String,
    /// RNG seed the run used, when the binary reported one.
    pub seed: Option<u64>,
    /// Full command-line arguments (argv[1..]).
    pub args: Vec<String>,
    /// Wall-clock duration of the run in seconds.
    pub wall_seconds: f64,
    /// Observability mode the run executed under (`off`/`summary`/`trace`).
    pub mode: String,
    /// Worker-thread count the run's `dcn_exec` pools fanned out to.
    /// Excluded from manifest diffs: the determinism contract says results
    /// must not depend on it.
    pub threads: u64,
    /// Metrics registry dump: (metric name, kind, field name/value pairs).
    pub metrics: Vec<ManifestMetric>,
}

/// One metric entry in a manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct ManifestMetric {
    /// Metric name, e.g. `mcf.fptas.augmentations`.
    pub name: String,
    /// Metric kind: `counter`, `gauge`, `histogram`, or `span`.
    pub kind: String,
    /// Exported fields, e.g. `[("value", 42.0)]` or `[("p50", 1.2), ...]`.
    pub fields: Vec<(String, f64)>,
}

impl RunManifest {
    /// Captures the current registry state into a manifest.
    ///
    /// `wall_seconds` is supplied by the caller (typically measured from
    /// process start) so manifests are meaningful even under `DCN_OBS=off`.
    pub fn capture(name: &str, seed: Option<u64>, wall_seconds: f64, threads: usize) -> RunManifest {
        let metrics = snapshot()
            .into_iter()
            .map(|m: MetricSnapshot| ManifestMetric {
                name: m.name.to_string(),
                kind: m.kind.to_string(),
                fields: m
                    .fields
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), v))
                    .collect(),
            })
            .collect();
        RunManifest {
            name: name.to_string(),
            seed,
            args: std::env::args().skip(1).collect(),
            wall_seconds,
            mode: mode().name().to_string(),
            threads: threads as u64,
            metrics,
        }
    }

    /// Serialises to pretty JSON.
    pub fn to_json(&self) -> String {
        let metrics = self
            .metrics
            .iter()
            .map(|m| {
                Json::obj([
                    ("name", Json::from(m.name.as_str())),
                    ("kind", Json::from(m.kind.as_str())),
                    (
                        "fields",
                        Json::Obj(
                            m.fields
                                .iter()
                                .map(|(k, v)| (k.clone(), Json::Num(*v)))
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        Json::obj([
            ("name", Json::from(self.name.as_str())),
            (
                "seed",
                match self.seed {
                    Some(s) => Json::from(s),
                    None => Json::Null,
                },
            ),
            (
                "args",
                Json::Arr(self.args.iter().map(|a| Json::from(a.as_str())).collect()),
            ),
            ("wall_seconds", Json::Num(self.wall_seconds)),
            ("mode", Json::from(self.mode.as_str())),
            ("threads", Json::from(self.threads)),
            ("metrics", Json::Arr(metrics)),
        ])
        .to_string_pretty()
    }

    /// Parses a manifest back from JSON (inverse of [`RunManifest::to_json`]).
    pub fn from_json(text: &str) -> Result<RunManifest, String> {
        let v = Json::parse(text).map_err(|e| e.to_string())?;
        let name = v
            .get("name")
            .and_then(Json::as_str)
            .ok_or("missing name")?
            .to_string();
        let seed = match v.get("seed") {
            Some(Json::Null) | None => None,
            Some(j) => Some(j.as_u64().ok_or("seed not a u64")?),
        };
        let args = v
            .get("args")
            .and_then(Json::as_array)
            .unwrap_or(&[])
            .iter()
            .map(|a| a.as_str().map(str::to_string).ok_or("arg not a string"))
            .collect::<Result<Vec<_>, _>>()?;
        let wall_seconds = v
            .get("wall_seconds")
            .and_then(Json::as_f64)
            .ok_or("missing wall_seconds")?;
        let mode = v
            .get("mode")
            .and_then(Json::as_str)
            .unwrap_or("off")
            .to_string();
        // Manifests written before the exec pool existed carry no thread
        // count; 0 marks "unrecorded".
        let threads = v.get("threads").and_then(Json::as_u64).unwrap_or(0);
        let mut metrics = Vec::new();
        for m in v.get("metrics").and_then(Json::as_array).unwrap_or(&[]) {
            let mname = m
                .get("name")
                .and_then(Json::as_str)
                .ok_or("metric missing name")?
                .to_string();
            let kind = m
                .get("kind")
                .and_then(Json::as_str)
                .ok_or("metric missing kind")?
                .to_string();
            let mut fields = Vec::new();
            if let Some(Json::Obj(pairs)) = m.get("fields") {
                for (k, fv) in pairs {
                    fields.push((k.clone(), fv.as_f64().ok_or("field not numeric")?));
                }
            }
            metrics.push(ManifestMetric {
                name: mname,
                kind,
                fields,
            });
        }
        Ok(RunManifest {
            name,
            seed,
            args,
            wall_seconds,
            mode,
            threads,
            metrics,
        })
    }

    /// Writes the manifest next to a results file, as `<stem>.manifest.json`.
    pub fn write_to(&self, path: &Path) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_json().as_bytes())?;
        f.write_all(b"\n")
    }

    /// Convenience: looks up a metric's field value by name.
    pub fn metric_field(&self, metric: &str, field: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|m| m.name == metric)
            .and_then(|m| m.fields.iter().find(|(k, _)| k == field))
            .map(|(_, v)| *v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let m = RunManifest {
            name: "fig3_gap".into(),
            seed: Some(42),
            args: vec!["--quick".into()],
            wall_seconds: 1.25,
            mode: "summary".into(),
            threads: 4,
            metrics: vec![ManifestMetric {
                name: "mcf.fptas.phases".into(),
                kind: "counter".into(),
                fields: vec![("value".into(), 17.0)],
            }],
        };
        let text = m.to_json();
        let back = RunManifest::from_json(&text).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.metric_field("mcf.fptas.phases", "value"), Some(17.0));
    }

    #[test]
    fn seed_null_round_trips() {
        let m = RunManifest {
            name: "t".into(),
            seed: None,
            args: vec![],
            wall_seconds: 0.0,
            mode: "off".into(),
            threads: 1,
            metrics: vec![],
        };
        let back = RunManifest::from_json(&m.to_json()).unwrap();
        assert_eq!(back.seed, None);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(RunManifest::from_json("{").is_err());
        assert!(RunManifest::from_json(r#"{"seed":1}"#).is_err());
    }
}
