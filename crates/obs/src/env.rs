//! Central registry of every `DCN_*` environment variable the workspace
//! reads.
//!
//! Environment variables are configuration surface: README documents
//! them, CI jobs set them, and EXPERIMENTS.md measurements are only
//! reproducible if the knobs they were taken under are identifiable. A
//! raw `std::env::var("DCN_…")` call site used to be able to invent a
//! knob (or typo an existing one) silently; now `dcn-lint`'s
//! `env-registry` rule requires every read to go through one of the
//! [`EnvVar`] constants below and requires every constant to be read
//! somewhere — so unknown and dead variables both fail CI, exactly as
//! metric names are policed by `dcn_obs::names`.
//!
//! The registry lives in `dcn-obs` (the bottom of the crate stack, so
//! `obs` and `trace` can use it without a dependency cycle) and is
//! re-exported as `dcn_guard::env`, the name the rest of the workspace
//! imports it under. The README's environment-variable table is
//! generated from [`ALL`] (`cargo run -p dcn-lint -- --env-table`) and
//! checked for drift by the same lint rule.
//!
//! Test-only variables (e.g. the fault-injection harness's
//! `DCN_FAULT_TEST_*` hooks) are deliberately not registered: the rule
//! scopes to library/binary code, and test knobs are not user surface.

/// One registered environment variable: its name, a human-readable
/// default, and a one-line description. The `name` field must be the
/// first field textually — the lint registry parser keys on it.
#[derive(Debug, Clone, Copy)]
pub struct EnvVar {
    /// The variable name, `DCN_` upper-snake (enforced by `dcn-lint`).
    pub name: &'static str,
    /// Human-readable default, for the README table (not parsed).
    pub default: &'static str,
    /// One-line description, for the README table.
    pub doc: &'static str,
}

impl EnvVar {
    /// The variable's value as UTF-8, if set and valid UTF-8.
    pub fn get(&self) -> Option<String> {
        std::env::var(self.name).ok()
    }

    /// The variable's value as an `OsString`, if set (for paths, which
    /// need not be UTF-8).
    pub fn get_os(&self) -> Option<std::ffi::OsString> {
        std::env::var_os(self.name)
    }

    /// The trimmed value parsed as `T`; `None` when unset, empty, or
    /// unparsable — callers supply their own default, keeping "bad value"
    /// and "no value" deliberately indistinguishable (a typo'd knob must
    /// degrade to the default, never abort a run).
    pub fn parsed<T: std::str::FromStr>(&self) -> Option<T> {
        self.get().and_then(|s| s.trim().parse().ok())
    }
}

// --- dcn-obs / dcn-guard ---------------------------------------------------

/// Observability mode.
pub const OBS: EnvVar = EnvVar {
    name: "DCN_OBS",
    default: "off",
    doc: "Observability mode: `off`, `summary` (metrics + span totals on stderr), or `trace` (adds live logging and enables per-event capture).",
};

/// Post-solve certificate validation toggle.
pub const VALIDATE: EnvVar = EnvVar {
    name: "DCN_VALIDATE",
    default: "on in debug builds, off in release",
    doc: "Post-solve certificate validation: `1`/`on`/`true` forces on, `0`/`off`/`false` forces off.",
};

// --- dcn-exec --------------------------------------------------------------

/// Worker-thread count for deterministic pool fan-outs.
pub const EXEC_THREADS: EnvVar = EnvVar {
    name: "DCN_EXEC_THREADS",
    default: "available parallelism",
    doc: "Worker count for every `dcn-exec` parallel fan-out; results are byte-identical at any value, including 1.",
};

// --- dcn-cache -------------------------------------------------------------

/// In-memory cache byte budget.
pub const CACHE_BYTES: EnvVar = EnvVar {
    name: "DCN_CACHE_BYTES",
    default: "268435456 (256 MiB)",
    doc: "In-memory byte budget of the solver result cache; `0` disables caching entirely.",
};

/// Persistent cache tier root.
pub const CACHE_DIR: EnvVar = EnvVar {
    name: "DCN_CACHE_DIR",
    default: "unset (memory-only)",
    doc: "When set, enables the on-disk cache tier rooted at this directory (one JSON record per entry, surviving across processes).",
};

// --- dcn-trace -------------------------------------------------------------

/// Chrome trace output path.
pub const TRACE_FILE: EnvVar = EnvVar {
    name: "DCN_TRACE_FILE",
    default: "unset (tracing off unless DCN_OBS=trace)",
    doc: "Chrome `trace_event` JSON output path; setting it enables per-event tracing.",
};

/// Trace event buffer cap.
pub const TRACE_MAX_EVENTS: EnvVar = EnvVar {
    name: "DCN_TRACE_MAX_EVENTS",
    default: "2000000",
    doc: "Cap on buffered trace events; events past the cap bump `trace.events.dropped` instead of allocating.",
};

// --- dcn-bench -------------------------------------------------------------

/// Results directory override.
pub const RESULTS_DIR: EnvVar = EnvVar {
    name: "DCN_RESULTS_DIR",
    default: "results/ at the workspace root",
    doc: "Output directory for tables, CSVs, run manifests, and traces.",
};

/// Perf-gate baseline file override.
pub const BENCH_BASELINE: EnvVar = EnvVar {
    name: "DCN_BENCH_BASELINE",
    default: "BENCH_BASELINE.json at the workspace root",
    doc: "Perf-gate baseline file compared against fresh manifests (refreshed with `--baseline`).",
};

// --- dcn-fleet -------------------------------------------------------------

/// Fleet worker-process count.
pub const FLEET_WORKERS: EnvVar = EnvVar {
    name: "DCN_FLEET_WORKERS",
    default: "1 (in-process passthrough)",
    doc: "Worker-process count for sharded sweeps; sweeps shard only at 2 or more.",
};

/// Fleet queue root override.
pub const FLEET_DIR: EnvVar = EnvVar {
    name: "DCN_FLEET_DIR",
    default: "under DCN_CACHE_DIR, else under the results dir",
    doc: "Root directory of the spill-to-disk work queue for sharded sweeps.",
};

/// Per-unit worker lease.
pub const FLEET_LEASE_SECS: EnvVar = EnvVar {
    name: "DCN_FLEET_LEASE_SECS",
    default: "600",
    doc: "Wall-clock lease per claimed unit; a worker holding a claim past it is SIGKILLed and the unit retried.",
};

/// Retry cap before quarantine.
pub const FLEET_MAX_RETRIES: EnvVar = EnvVar {
    name: "DCN_FLEET_MAX_RETRIES",
    default: "2",
    doc: "Crash retries per unit before it is quarantined as poison.",
};

/// Retry backoff base.
pub const FLEET_BACKOFF_MS: EnvVar = EnvVar {
    name: "DCN_FLEET_BACKOFF_MS",
    default: "50",
    doc: "Base of the exponential per-unit retry backoff (`base * 2^attempt` milliseconds).",
};

/// Crash-injection test hook.
pub const FLEET_INJECT_KILL_AFTER: EnvVar = EnvVar {
    name: "DCN_FLEET_INJECT_KILL_AFTER",
    default: "unset",
    doc: "Test hook: after this many units complete, SIGKILL one live worker exactly once (exercises crash recovery).",
};

// --- dcnd ------------------------------------------------------------------

/// Unix socket path the daemon listens on.
pub const DCND_SOCKET: EnvVar = EnvVar {
    name: "DCN_DCND_SOCKET",
    default: "unset (serve stdin/stdout)",
    doc: "When set, `dcnd` listens on this unix socket path instead of serving line-delimited queries over stdin/stdout.",
};

/// Daemon admission-queue depth.
pub const DCND_QUEUE_DEPTH: EnvVar = EnvVar {
    name: "DCN_DCND_QUEUE_DEPTH",
    default: "256",
    doc: "Maximum queries admitted per `dcnd` scheduling batch; excess queries in a batch receive a typed `rejected` response with reason `queue-full`.",
};

/// Daemon solve concurrency cap.
pub const DCND_MAX_INFLIGHT: EnvVar = EnvVar {
    name: "DCN_DCND_MAX_INFLIGHT",
    default: "DCN_EXEC_THREADS",
    doc: "Cap on cold solves in flight at once inside `dcnd`; warm (cache-served) queries bypass it.",
};

/// Daemon global deadline.
pub const DCND_GLOBAL_DEADLINE_MS: EnvVar = EnvVar {
    name: "DCN_DCND_GLOBAL_DEADLINE_MS",
    default: "unset (unlimited)",
    doc: "Global wall-clock budget for all cold solves in a `dcnd` process, anchored at startup; once exhausted, warm queries still answer from cache and cold queries get a typed `rejected` response (`0` rejects every cold solve immediately).",
};

/// Daemon response-timing toggle.
pub const DCND_TIMING: EnvVar = EnvVar {
    name: "DCN_DCND_TIMING",
    default: "off",
    doc: "When `1`/`on`/`true`, `dcnd` responses include a `wall_ms` provenance field; off by default so replayed batches are byte-identical.",
};

/// Every registered variable, in README-table order. The lint rule and
/// the `--env-table` generator both key on this list.
pub const ALL: &[&EnvVar] = &[
    &OBS,
    &VALIDATE,
    &EXEC_THREADS,
    &CACHE_BYTES,
    &CACHE_DIR,
    &TRACE_FILE,
    &TRACE_MAX_EVENTS,
    &RESULTS_DIR,
    &BENCH_BASELINE,
    &FLEET_WORKERS,
    &FLEET_DIR,
    &FLEET_LEASE_SECS,
    &FLEET_MAX_RETRIES,
    &FLEET_BACKOFF_MS,
    &FLEET_INJECT_KILL_AFTER,
    &DCND_SOCKET,
    &DCND_QUEUE_DEPTH,
    &DCND_MAX_INFLIGHT,
    &DCND_GLOBAL_DEADLINE_MS,
    &DCND_TIMING,
];

#[cfg(test)]
mod tests {
    use super::ALL;

    #[test]
    fn names_are_unique_and_conventional() {
        let mut seen = std::collections::BTreeSet::new();
        for v in ALL {
            assert!(seen.insert(v.name), "duplicate env var {}", v.name);
            assert!(
                v.name.starts_with("DCN_"),
                "{} lacks the DCN_ prefix",
                v.name
            );
            assert!(
                v.name
                    .chars()
                    .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_'),
                "{} is not upper-snake",
                v.name
            );
            assert!(!v.doc.is_empty() && !v.default.is_empty());
        }
    }

    #[test]
    fn parsed_trims_and_rejects_garbage() {
        // Use a name no other test reads; set_var is process-global.
        std::env::set_var("DCN_ENVTEST_PARSE", " 42 ");
        let v = super::EnvVar {
            name: "DCN_ENVTEST_PARSE",
            default: "0",
            doc: "test",
        };
        assert_eq!(v.parsed::<u64>(), Some(42));
        std::env::set_var("DCN_ENVTEST_PARSE", "nope");
        assert_eq!(v.parsed::<u64>(), None);
        std::env::remove_var("DCN_ENVTEST_PARSE");
        assert_eq!(v.parsed::<u64>(), None);
        assert!(v.get().is_none());
        assert!(v.get_os().is_none());
    }
}
