//! A minimal JSON value type with parser and pretty-printer.
//!
//! The workspace has no network access to crates.io, so serde is
//! unavailable; this module carries the (small) JSON surface the workspace
//! needs: run manifests (`dcn-bench`) and the topology interchange format
//! (`dcn-model`). Objects preserve insertion order so output is stable
//! and diffable across runs.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as f64; integers round-trip up to 2^53).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

/// Parse error: byte offset and message.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Byte offset where parsing failed.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (impl Into<String>, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as f64, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as u64, if a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.trunc() == *n => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as &str, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a slice, if an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Parses a JSON document (rejects trailing garbage).
    pub fn parse(s: &str) -> Result<Json, JsonError> {
        let b = s.as_bytes();
        let mut p = Parser { b, i: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.i != b.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }

    /// Compact rendering.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with 2-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, depth + 1);
                    write_str(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline_indent(out, indent, depth);
                out.push('}');
            }
        }
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Num(v as f64)
    }
}

impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::Num(v as f64)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Num(v as f64)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * depth {
            out.push(' ');
        }
    }
}

fn write_num(out: &mut String, n: f64) {
    if n.is_finite() {
        if n == n.trunc() && n.abs() < 1e15 {
            let _ = write!(out, "{}", n as i64);
            // Keep a float marker so round-trips preserve "1.0" semantics?
            // JSON integers and floats are the same type; emit integers
            // plain, which both our parser and external tools accept.
        } else {
            let _ = write!(out, "{n}");
        }
    } else {
        // JSON has no Inf/NaN; null is the conventional fallback.
        out.push_str("null");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            at: self.i,
            msg: msg.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), JsonError> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.i += 1;
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).map_err(|_| self.err("utf8"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.i + 4 >= self.b.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex =
                                std::str::from_utf8(&self.b[self.i + 1..self.i + 5])
                                    .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.i += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.i += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (multi-byte safe).
                    let rest = std::str::from_utf8(&self.b[self.i..])
                        .map_err(|_| self.err("invalid utf8"))?;
                    let Some(c) = rest.chars().next() else {
                        return Err(self.err("truncated string"));
                    };
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse(" -12.5e2 ").unwrap(), Json::Num(-1250.0));
        assert_eq!(
            Json::parse(r#""a\nbA""#).unwrap(),
            Json::Str("a\nbA".into())
        );
    }

    #[test]
    fn parse_nested() {
        let v = Json::parse(r#"{"name":"x","servers":[1,1],"links":[[0,9,1.0]]}"#).unwrap();
        assert_eq!(v.get("name").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("servers").unwrap().as_array().unwrap().len(), 2);
        let links = v.get("links").unwrap().as_array().unwrap();
        assert_eq!(links[0].as_array().unwrap()[1].as_u64(), Some(9));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{not json").is_err());
        assert!(Json::parse("[1, 2,]").is_err());
        assert!(Json::parse("{}extra").is_err());
        assert!(Json::parse("").is_err());
    }

    #[test]
    fn round_trip_pretty_and_compact() {
        let v = Json::obj([
            ("name", Json::from("t")),
            ("vals", Json::Arr(vec![1.5.into(), 2u64.into(), Json::Null])),
            ("ok", Json::Bool(false).clone()),
        ]);
        for text in [v.to_string_pretty(), v.to_string_compact()] {
            assert_eq!(Json::parse(&text).unwrap(), v);
        }
    }

    #[test]
    fn float_precision_survives() {
        let x = 0.1234567890123456_f64;
        let v = Json::Num(x);
        let back = Json::parse(&v.to_string_compact()).unwrap();
        assert_eq!(back.as_f64(), Some(x));
    }

    #[test]
    fn order_preserved() {
        let v = Json::parse(r#"{"z":1,"a":2}"#).unwrap();
        if let Json::Obj(pairs) = &v {
            assert_eq!(pairs[0].0, "z");
            assert_eq!(pairs[1].0, "a");
        } else {
            panic!("not an object");
        }
    }
}
