//! Central registry of every metric and span name in the workspace.
//!
//! Metric names are load-bearing: run manifests written by `dcn-bench`
//! key on them, EXPERIMENTS.md's triage notes reference them, and the
//! fallback-provenance counters (`mcf.fallback.exact_to_fptas`,
//! `core.tub.fallbacks`) are how a reviewer tells a clean solve from a
//! degraded one. A typo at a call site used to silently fork a metric;
//! now `dcn-lint`'s `metric-registry` rule requires every
//! `counter!`/`gauge!`/`histogram!`/`span!` call site to pass one of the
//! constants below (never a raw string), and requires every constant to be
//! used somewhere — so typos fail CI and dead metrics get deleted instead
//! of lingering in manifests.
//!
//! Naming convention: `<crate>.<module>.<event>`, lower-case, dot-
//! separated (enforced by a test below and by the lint rule). Constants
//! are grouped by owning crate.

// --- dcn-graph -------------------------------------------------------------

/// Yen/KSP spur searches attempted (counter).
pub const GRAPH_KSP_SPUR_SEARCHES: &str = "graph.ksp.spur_searches";
/// Yen/KSP candidate paths generated (counter).
pub const GRAPH_KSP_CANDIDATES: &str = "graph.ksp.candidates";
/// Slack-DFS node expansions during path enumeration (counter).
pub const GRAPH_KSP_SLACK_DFS_EXPANSIONS: &str = "graph.ksp.slack_dfs_expansions";
/// Multi-source distance computation (span).
pub const GRAPH_DIST_FROM_SOURCES: &str = "graph.dist.from_sources";
/// BFS runs issued by the distance oracle (counter).
pub const GRAPH_DIST_BFS_RUNS: &str = "graph.dist.bfs_runs";
/// Peak BFS frontier size per run (histogram).
pub const GRAPH_DIST_BFS_FRONTIER_PEAK: &str = "graph.dist.bfs_frontier_peak";
/// Dinic BFS phases per budgeted max-flow solve (counter).
pub const GRAPH_MAXFLOW_PHASES: &str = "graph.maxflow.phases";

// --- dcn-lp ----------------------------------------------------------------

/// Simplex pivots across both phases (counter).
pub const LP_SIMPLEX_PIVOTS: &str = "lp.simplex.pivots";
/// Degenerate (zero-progress) pivots (counter).
pub const LP_SIMPLEX_DEGENERATE_PIVOTS: &str = "lp.simplex.degenerate_pivots";
/// Switches into Bland's anti-cycling rule (counter).
pub const LP_SIMPLEX_BLAND_ACTIVATIONS: &str = "lp.simplex.bland_activations";
/// Basis refactorizations (counter).
pub const LP_SIMPLEX_REFACTORIZATIONS: &str = "lp.simplex.refactorizations";
/// Refactorization-and-resume recoveries after a singular basis (counter).
pub const LP_SIMPLEX_REFACTOR_RESUMES: &str = "lp.simplex.refactor_resumes";
/// Phase-1 iterations of the two-phase simplex (counter).
pub const LP_SIMPLEX_PHASE1_ITERS: &str = "lp.simplex.phase1_iters";
/// Phase-2 iterations of the two-phase simplex (counter).
pub const LP_SIMPLEX_PHASE2_ITERS: &str = "lp.simplex.phase2_iters";
/// One `LpProblem::solve` call (span).
pub const LP_SIMPLEX_SOLVE: &str = "lp.simplex.solve";

// --- dcn-mcf ---------------------------------------------------------------

/// One FPTAS solve (span).
pub const MCF_FPTAS_SOLVE: &str = "mcf.fptas.solve";
/// Garg–Könemann phases completed (counter).
pub const MCF_FPTAS_PHASES: &str = "mcf.fptas.phases";
/// Flow augmentations performed (counter).
pub const MCF_FPTAS_AUGMENTATIONS: &str = "mcf.fptas.augmentations";
/// FPTAS runs truncated by budget exhaustion (counter).
pub const MCF_FPTAS_TRUNCATED_RUNS: &str = "mcf.fptas.truncated_runs";
/// Relative bracket width actually achieved (gauge).
pub const MCF_FPTAS_ACHIEVED_EPS: &str = "mcf.fptas.achieved_eps";
/// Exact-engine solves that fell back to the FPTAS (counter).
pub const MCF_FALLBACK_EXACT_TO_FPTAS: &str = "mcf.fallback.exact_to_fptas";
/// One exact (LP) MCF solve (span).
pub const MCF_EXACT_SOLVE: &str = "mcf.exact.solve";
/// LP columns in the exact formulation (histogram).
pub const MCF_EXACT_COLUMNS: &str = "mcf.exact.columns";
/// LP rows in the exact formulation (histogram).
pub const MCF_EXACT_ROWS: &str = "mcf.exact.rows";

// --- dcn-match / dcn-partition --------------------------------------------

/// Kernighan–Lin/FM refinement passes (counter).
pub const PARTITION_FM_PASSES: &str = "partition.fm.passes";
/// FM vertex moves accepted (counter).
pub const PARTITION_FM_MOVES: &str = "partition.fm.moves";
/// Coarsening rounds in the multilevel partitioner (counter).
pub const PARTITION_COARSEN_ROUNDS: &str = "partition.coarsen.rounds";
/// One bisection call (span).
pub const PARTITION_BISECT_BISECTION: &str = "partition.bisect.bisection";
/// Cut values observed per bisection try (histogram).
pub const PARTITION_BISECT_TRY_CUT: &str = "partition.bisect.try_cut";
/// Bisection tries truncated by budget exhaustion (counter).
pub const PARTITION_BISECT_TRUNCATED_TRIES: &str = "partition.bisect.truncated_tries";
/// Best cut found so far (gauge).
pub const PARTITION_BISECT_BEST_CUT: &str = "partition.bisect.best_cut";
/// Coarsening hierarchy depth per bisection (histogram).
pub const PARTITION_BISECT_COARSEN_LEVELS: &str = "partition.bisect.coarsen_levels";

// --- dcn-core --------------------------------------------------------------

/// One TUB computation (span).
pub const CORE_TUB: &str = "core.tub";
/// All-pairs shortest paths inside TUB (span).
pub const CORE_TUB_APSP: &str = "core.tub.apsp";
/// Maximal-permutation matching inside TUB (span).
pub const CORE_TUB_MATCHING: &str = "core.tub.matching";
/// Last computed TUB value (gauge).
pub const CORE_TUB_BOUND: &str = "core.tub.bound";
/// TUB solves that fell back from Hungarian to the greedy matcher (counter).
pub const CORE_TUB_FALLBACKS: &str = "core.tub.fallbacks";
/// Failure samples excluded from RMS because the fabric disconnected
/// (counter).
pub const CORE_RESILIENCE_DISCONNECTED_SAMPLES: &str = "core.resilience.disconnected_samples";
/// One routed lower-bound computation (span).
pub const CORE_LOWER: &str = "core.lower";
/// One frontier-sweep cell evaluated as a pool task (span).
pub const CORE_FRONTIER_CELL: &str = "core.frontier.cell";
/// One resilience failure sample evaluated as a pool task (span).
pub const CORE_RESILIENCE_SAMPLE: &str = "core.resilience.sample";
/// One near-worst candidate TM evaluated as a pool task (span).
pub const CORE_NEARWORST_CANDIDATE: &str = "core.nearworst.candidate";
/// One expansion-ensemble curve evaluated as a pool task (span).
pub const CORE_EXPANSION_CURVE: &str = "core.expansion.curve";

// --- dcn-exec --------------------------------------------------------------

/// Fan-out calls issued to a [`Pool`] (counter).
pub const EXEC_POOL_RUNS: &str = "exec.pool.runs";
/// Tasks executed across all pool runs (counter).
pub const EXEC_POOL_TASKS: &str = "exec.pool.tasks";
/// Pool runs cut short by a task error, deadline, or cancellation (counter).
pub const EXEC_POOL_SHORT_CIRCUITS: &str = "exec.pool.short_circuits";
/// Per-worker busy time per pool run, in nanoseconds (histogram).
pub const EXEC_POOL_WORKER_BUSY_NS: &str = "exec.pool.worker_busy_ns";
/// Worker count of the most recent pool run (gauge).
pub const EXEC_POOL_THREADS: &str = "exec.pool.threads";
/// One claimed task executed inside a pool fan-out (span). Nested under
/// the submitting thread's span path via cross-thread attribution.
pub const EXEC_POOL_TASK: &str = "exec.pool.task";

// --- dcn-fleet -------------------------------------------------------------

/// Work units written into the spill-to-disk queue (counter).
pub const FLEET_UNITS_ENQUEUED: &str = "fleet.units.enqueued";
/// Units whose results were already on disk at supervisor startup —
/// crash recovery from a previous run (counter).
pub const FLEET_UNITS_RECOVERED: &str = "fleet.units.recovered";
/// Units newly completed by workers during this supervision (counter).
pub const FLEET_UNITS_COMPLETED: &str = "fleet.units.completed";
/// Units re-enqueued after a worker crash or lease kill (counter).
pub const FLEET_UNITS_RETRIED: &str = "fleet.units.retried";
/// Poison units quarantined after exhausting their retries (counter).
pub const FLEET_UNITS_QUARANTINED: &str = "fleet.units.quarantined";
/// Worker processes spawned by the supervisor (counter).
pub const FLEET_WORKER_SPAWNS: &str = "fleet.worker.spawns";
/// Worker processes that exited abnormally (counter).
pub const FLEET_WORKER_CRASHES: &str = "fleet.worker.crashes";
/// Workers SIGKILLed for holding a claim past its lease (counter).
pub const FLEET_WORKER_LEASE_KILLS: &str = "fleet.worker.lease_kills";

// --- dcn-guard -------------------------------------------------------------

/// Post-solve certificate validation failures (counter).
pub const GUARD_VALIDATE_FAILURES: &str = "guard.validate.failures";
/// Budget iteration caps hit (counter).
pub const GUARD_BUDGET_ITERATIONS_EXCEEDED: &str = "guard.budget.iterations_exceeded";
/// Budget wall-clock deadlines hit (counter).
pub const GUARD_BUDGET_DEADLINE_EXCEEDED: &str = "guard.budget.deadline_exceeded";
/// Budgets observed cancelled (counter).
pub const GUARD_BUDGET_CANCELLED: &str = "guard.budget.cancelled";

// --- dcn-bench -------------------------------------------------------------

/// Exact MCF throughput of the last fig3 instance (gauge).
pub const BENCH_FIG3_EXACT_THETA: &str = "bench.fig3.exact_theta";
/// Bisection-bandwidth proxy of the last fig3 instance (gauge).
pub const BENCH_FIG3_BBW_PROXY: &str = "bench.fig3.bbw_proxy";
/// Wall time of a [`dcn_obs::time_scope`]-wrapped experiment body (span).
pub const BENCH_TIMED: &str = "bench.timed";

// --- dcn-cache -------------------------------------------------------------

/// Solver-result cache lookups served from memory (counter).
pub const CACHE_HIT: &str = "cache.hit";
/// Solver-result cache lookups that had to recompute (counter).
pub const CACHE_MISS: &str = "cache.miss";
/// Entries evicted to stay under the cache byte budget (counter).
pub const CACHE_EVICT: &str = "cache.evict";
/// Lookups served by deserializing an on-disk record (counter).
pub const CACHE_DISK_HIT: &str = "cache.disk.hit";
/// On-disk records quarantined as corrupt or invalid (counter).
pub const CACHE_QUARANTINED: &str = "cache.quarantined";
/// hits / (hits + misses) at manifest-capture time (gauge).
pub const CACHE_HIT_RATE: &str = "cache.hit_rate";

// --- dcn-trace -------------------------------------------------------------

/// Trace events appended to the per-thread buffers (counter).
pub const TRACE_EVENTS_RECORDED: &str = "trace.events.recorded";
/// Trace events dropped at the `DCN_TRACE_MAX_EVENTS` cap (counter).
pub const TRACE_EVENTS_DROPPED: &str = "trace.events.dropped";

// --- dcnd ------------------------------------------------------------------

/// Queries answered `ok` (counter).
pub const DCND_QUERIES_OK: &str = "dcnd.queries.ok";
/// Queries answered with a typed `rejected` response (counter).
pub const DCND_QUERIES_REJECTED: &str = "dcnd.queries.rejected";
/// Queries answered with a typed `error` response (counter).
pub const DCND_QUERIES_ERROR: &str = "dcnd.queries.error";
/// Queries collapsed onto an identical in-batch canonical key (counter).
pub const DCND_QUERIES_DEDUPED: &str = "dcnd.queries.deduped";
/// One admitted query batch scheduled on the pool (span).
pub const DCND_BATCH: &str = "dcnd.batch";
/// One cold query solve inside a batch (span).
pub const DCND_SOLVE: &str = "dcnd.solve";

/// Every registered name, for exhaustiveness tests and tooling.
pub const ALL: &[&str] = &[
    GRAPH_KSP_SPUR_SEARCHES,
    GRAPH_KSP_CANDIDATES,
    GRAPH_KSP_SLACK_DFS_EXPANSIONS,
    GRAPH_DIST_FROM_SOURCES,
    GRAPH_DIST_BFS_RUNS,
    GRAPH_DIST_BFS_FRONTIER_PEAK,
    GRAPH_MAXFLOW_PHASES,
    LP_SIMPLEX_PIVOTS,
    LP_SIMPLEX_DEGENERATE_PIVOTS,
    LP_SIMPLEX_BLAND_ACTIVATIONS,
    LP_SIMPLEX_REFACTORIZATIONS,
    LP_SIMPLEX_REFACTOR_RESUMES,
    LP_SIMPLEX_PHASE1_ITERS,
    LP_SIMPLEX_PHASE2_ITERS,
    LP_SIMPLEX_SOLVE,
    MCF_FPTAS_SOLVE,
    MCF_FPTAS_PHASES,
    MCF_FPTAS_AUGMENTATIONS,
    MCF_FPTAS_TRUNCATED_RUNS,
    MCF_FPTAS_ACHIEVED_EPS,
    MCF_FALLBACK_EXACT_TO_FPTAS,
    MCF_EXACT_SOLVE,
    MCF_EXACT_COLUMNS,
    MCF_EXACT_ROWS,
    PARTITION_FM_PASSES,
    PARTITION_FM_MOVES,
    PARTITION_COARSEN_ROUNDS,
    PARTITION_BISECT_BISECTION,
    PARTITION_BISECT_TRY_CUT,
    PARTITION_BISECT_TRUNCATED_TRIES,
    PARTITION_BISECT_BEST_CUT,
    PARTITION_BISECT_COARSEN_LEVELS,
    CORE_TUB,
    CORE_TUB_APSP,
    CORE_TUB_MATCHING,
    CORE_TUB_BOUND,
    CORE_TUB_FALLBACKS,
    CORE_RESILIENCE_DISCONNECTED_SAMPLES,
    CORE_LOWER,
    CORE_FRONTIER_CELL,
    CORE_RESILIENCE_SAMPLE,
    CORE_NEARWORST_CANDIDATE,
    CORE_EXPANSION_CURVE,
    EXEC_POOL_RUNS,
    EXEC_POOL_TASKS,
    EXEC_POOL_SHORT_CIRCUITS,
    EXEC_POOL_WORKER_BUSY_NS,
    EXEC_POOL_THREADS,
    EXEC_POOL_TASK,
    FLEET_UNITS_ENQUEUED,
    FLEET_UNITS_RECOVERED,
    FLEET_UNITS_COMPLETED,
    FLEET_UNITS_RETRIED,
    FLEET_UNITS_QUARANTINED,
    FLEET_WORKER_SPAWNS,
    FLEET_WORKER_CRASHES,
    FLEET_WORKER_LEASE_KILLS,
    GUARD_VALIDATE_FAILURES,
    GUARD_BUDGET_ITERATIONS_EXCEEDED,
    GUARD_BUDGET_DEADLINE_EXCEEDED,
    GUARD_BUDGET_CANCELLED,
    BENCH_FIG3_EXACT_THETA,
    BENCH_FIG3_BBW_PROXY,
    BENCH_TIMED,
    CACHE_HIT,
    CACHE_MISS,
    CACHE_EVICT,
    CACHE_DISK_HIT,
    CACHE_QUARANTINED,
    CACHE_HIT_RATE,
    TRACE_EVENTS_RECORDED,
    TRACE_EVENTS_DROPPED,
    DCND_QUERIES_OK,
    DCND_QUERIES_REJECTED,
    DCND_QUERIES_ERROR,
    DCND_QUERIES_DEDUPED,
    DCND_BATCH,
    DCND_SOLVE,
];

#[cfg(test)]
mod tests {
    use super::ALL;

    #[test]
    fn names_are_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for &n in ALL {
            assert!(seen.insert(n), "duplicate metric name {n}");
        }
    }

    #[test]
    fn names_follow_convention() {
        for &n in ALL {
            assert!(
                n.split('.').count() >= 2,
                "{n} is not <crate>.<module>.<event>-shaped"
            );
            assert!(
                n.chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '.' || c == '_'),
                "{n} contains characters outside [a-z0-9._]"
            );
            assert!(
                !n.starts_with('.') && !n.ends_with('.') && !n.contains(".."),
                "{n} has empty segments"
            );
        }
    }
}
