#![forbid(unsafe_code)]
//! `dcn-obs`: zero-dependency observability for the dcn workspace.
//!
//! The iterative solvers at the heart of the TUB pipeline — the
//! Garg–Könemann FPTAS, the dense simplex, Yen's KSP, the multilevel
//! partitioner — are performance-critical and were previously black boxes.
//! This crate gives them a shared, thread-safe metrics registry plus
//! hierarchical span timers, cheap enough to leave compiled in:
//!
//! * [`Counter`] — monotonically increasing `u64`; one relaxed atomic add
//!   per event, never gated, never locked.
//! * [`Gauge`] — last-write-wins `f64` (stored as bits in an atomic).
//! * [`Histogram`] — log-bucketed (8 sub-buckets per octave, ~9% relative
//!   resolution) with quantile readout; one atomic add per record.
//! * [`span!`] — scoped wall-time timers with parent/child attribution,
//!   active when `DCN_OBS` is `summary` or `trace`, or when a
//!   [`TraceSink`] is installed (per-event export, see `dcn-trace`).
//!
//! # Modes
//!
//! The `DCN_OBS` environment variable selects a mode, read once:
//!
//! * `off` (default) — spans and obs-gated logging are no-ops; scalar
//!   metrics still count (a few relaxed atomics) but nothing is printed.
//! * `summary` — spans are recorded; harnesses print a registry summary.
//! * `trace` — like `summary`, plus [`obs_log!`] lines are emitted as
//!   they happen.
//!
//! # Naming convention
//!
//! Metrics are named `<crate>.<module>.<event>`, e.g.
//! `mcf.fptas.augmentations` or `lp.simplex.pivots`. Spans use the same
//! convention and compose hierarchically at runtime
//! (`core.tub/core.tub.matching`).
//!
//! # Hot-path cost
//!
//! The metric macros cache the registry lookup in a per-call-site static
//! (`OnceLock`), so steady-state cost is one atomic load plus one atomic
//! add — no locks, no allocation, regardless of mode. Span enter/exit in
//! `off` mode is a single relaxed load and an untouched guard.

#![warn(missing_docs)]

pub mod env;
pub mod json;
pub mod manifest;
pub mod names;

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Mode

/// Observability mode, from the `DCN_OBS` environment variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Mode {
    /// Spans and logging disabled; scalar metrics still count.
    Off,
    /// Spans recorded; summaries printed by harnesses.
    Summary,
    /// `summary` plus live [`obs_log!`] output.
    Trace,
}

impl Mode {
    /// Lower-case name (`off` / `summary` / `trace`).
    pub fn name(self) -> &'static str {
        match self {
            Mode::Off => "off",
            Mode::Summary => "summary",
            Mode::Trace => "trace",
        }
    }
}

static MODE: OnceLock<Mode> = OnceLock::new();

/// The process-wide mode. Reads `DCN_OBS` on first call; unknown values
/// fall back to `off` so a typo can never change benchmark output.
#[inline]
pub fn mode() -> Mode {
    *MODE.get_or_init(|| match env::OBS.get().as_deref() {
        Some("summary") => Mode::Summary,
        Some("trace") => Mode::Trace,
        _ => Mode::Off,
    })
}

/// True when spans/summaries are active (`summary` or `trace`).
#[inline]
pub fn enabled() -> bool {
    mode() != Mode::Off
}

// ---------------------------------------------------------------------------
// Trace sink

/// Phase of one trace event forwarded to an installed [`TraceSink`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TracePhase {
    /// A span was entered (Chrome `ph: "B"`).
    Begin,
    /// A span was exited (Chrome `ph: "E"`).
    End,
    /// A point event with no duration, e.g. a cache hit (Chrome `ph: "i"`).
    Instant,
}

/// Receiver for per-event span enter/exit and instant notifications.
///
/// `dcn-obs` itself only *aggregates* spans (per-path totals); a sink —
/// in practice `dcn_trace::ChromeTracer` — turns every individual
/// enter/exit into a timestamped event for `chrome://tracing`. The sink
/// is expected to be cheap (append to a thread-local buffer) because it
/// runs inside the span hot path.
pub trait TraceSink: Send + Sync {
    /// Records one event. `path` is the full hierarchical span path for
    /// [`TracePhase::Begin`]/[`TracePhase::End`], or a metric-registry
    /// event name for [`TracePhase::Instant`].
    fn record(&self, phase: TracePhase, path: &str);
}

static TRACE_SINK: OnceLock<&'static dyn TraceSink> = OnceLock::new();

/// Installs the process-wide trace sink. Returns `false` (and leaves the
/// existing sink in place) if one was already installed. Spans become
/// active once a sink is installed, even under `DCN_OBS=off`, so traces
/// can be captured without changing any printed output.
pub fn install_trace_sink(sink: &'static dyn TraceSink) -> bool {
    TRACE_SINK.set(sink).is_ok()
}

/// The installed trace sink, if any.
#[inline]
pub fn trace_sink() -> Option<&'static dyn TraceSink> {
    TRACE_SINK.get().copied()
}

/// True when a trace sink is installed (per-event export is active).
#[inline]
pub fn trace_active() -> bool {
    TRACE_SINK.get().is_some()
}

/// Forwards an instant event (e.g. a cache hit) to the installed sink;
/// a single `OnceLock` load when tracing is inactive. `name` should be a
/// `dcn_obs::names` constant so traces and manifests stay in sync (the
/// `metric-registry` lint checks call sites).
#[inline]
pub fn trace_instant(name: &str) {
    if let Some(sink) = trace_sink() {
        sink.record(TracePhase::Instant, name);
    }
}

// ---------------------------------------------------------------------------
// Metrics

/// A monotonically increasing counter.
#[derive(Debug)]
pub struct Counter {
    val: AtomicU64,
}

impl Counter {
    const fn new() -> Self {
        Counter {
            val: AtomicU64::new(0),
        }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.val.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.val.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.val.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.val.store(0, Ordering::Relaxed);
    }
}

/// A last-write-wins `f64` gauge.
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    const fn new() -> Self {
        Gauge {
            bits: AtomicU64::new(0),
        }
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    fn reset(&self) {
        self.bits.store(0, Ordering::Relaxed);
    }
}

/// Sub-buckets per octave: values within a bucket differ by < 2^(1/8) ≈ 9%.
const SUBBUCKETS: usize = 8;
/// Octaves covered: 2^-32 .. 2^64 (seconds-to-counts range with slack).
const MIN_EXP: i32 = -32;
const MAX_EXP: i32 = 64;
const N_BUCKETS: usize = ((MAX_EXP - MIN_EXP) as usize) * SUBBUCKETS + 2;

/// A log-bucketed histogram of non-negative `f64` samples.
///
/// Recording is one relaxed atomic add into a bucket chosen from the
/// sample's exponent and top mantissa bits — no locks, no allocation.
/// Quantiles are estimated as the geometric midpoint of the bucket holding
/// the requested rank, giving ~9% relative accuracy.
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Sum stored as integer nano-units to stay atomic without a lock.
    sum_nanos: AtomicU64,
}

impl Histogram {
    fn new() -> Self {
        let mut buckets = Vec::with_capacity(N_BUCKETS);
        buckets.resize_with(N_BUCKETS, || AtomicU64::new(0));
        Histogram {
            buckets,
            count: AtomicU64::new(0),
            sum_nanos: AtomicU64::new(0),
        }
    }

    #[inline]
    fn bucket_index(v: f64) -> usize {
        if !v.is_finite() || v <= 0.0 {
            return 0; // zero / negative / NaN bucket
        }
        let bits = v.to_bits();
        let exp = ((bits >> 52) & 0x7ff) as i32 - 1023;
        if exp < MIN_EXP {
            return 0;
        }
        if exp >= MAX_EXP {
            return N_BUCKETS - 1;
        }
        let sub = ((bits >> (52 - 3)) & 0x7) as usize; // top 3 mantissa bits
        1 + ((exp - MIN_EXP) as usize) * SUBBUCKETS + sub
    }

    /// Lower edge of a bucket (inverse of [`Self::bucket_index`]).
    fn bucket_lower(idx: usize) -> f64 {
        if idx == 0 {
            return 0.0;
        }
        let i = idx - 1;
        let exp = MIN_EXP + (i / SUBBUCKETS) as i32;
        let sub = (i % SUBBUCKETS) as f64;
        (1.0 + sub / SUBBUCKETS as f64) * (exp as f64).exp2()
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: f64) {
        self.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        if v.is_finite() && v > 0.0 {
            self.sum_nanos
                .fetch_add((v * 1e9) as u64, Ordering::Relaxed);
        }
    }

    /// Records an integer sample (convenience for size/count metrics).
    #[inline]
    pub fn record_u64(&self, v: u64) {
        self.record(v as f64);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of recorded samples (nano-unit precision).
    pub fn sum(&self) -> f64 {
        self.sum_nanos.load(Ordering::Relaxed) as f64 / 1e9
    }

    /// Mean of recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() / n as f64
        }
    }

    /// Estimated quantile `q` in [0, 1]: the geometric midpoint of the
    /// bucket containing the rank-`ceil(q*n)` sample. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                if idx == 0 {
                    return 0.0;
                }
                let lo = Self::bucket_lower(idx);
                let hi = if idx + 1 < N_BUCKETS {
                    Self::bucket_lower(idx + 1)
                } else {
                    lo * 2.0
                };
                return (lo * hi).sqrt();
            }
        }
        Self::bucket_lower(N_BUCKETS - 1)
    }

    /// Largest recorded bucket's upper midpoint (cheap max estimate).
    pub fn max_estimate(&self) -> f64 {
        self.quantile(1.0)
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum_nanos.store(0, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("mean", &self.mean())
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Registry

enum Metric {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

struct Registry {
    metrics: Vec<(&'static str, Metric)>,
}

static REGISTRY: Mutex<Registry> = Mutex::new(Registry {
    metrics: Vec::new(),
});

fn register(name: &'static str, m: Metric) {
    REGISTRY
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .metrics
        .push((name, m));
}

/// Registers (or creates) a counter. Use the [`counter!`] macro at call
/// sites — it caches this lookup in a per-site static.
pub fn register_counter(name: &'static str) -> &'static Counter {
    let c: &'static Counter = Box::leak(Box::new(Counter::new()));
    register(name, Metric::Counter(c));
    c
}

/// Registers a gauge. Use the [`gauge!`] macro at call sites.
pub fn register_gauge(name: &'static str) -> &'static Gauge {
    let g: &'static Gauge = Box::leak(Box::new(Gauge::new()));
    register(name, Metric::Gauge(g));
    g
}

/// Registers a histogram. Use the [`histogram!`] macro at call sites.
pub fn register_histogram(name: &'static str) -> &'static Histogram {
    let h: &'static Histogram = Box::leak(Box::new(Histogram::new()));
    register(name, Metric::Histogram(h));
    h
}

/// Returns a registered counter, creating a call-site static via macro.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static SITE: ::std::sync::OnceLock<&'static $crate::Counter> =
            ::std::sync::OnceLock::new();
        *SITE.get_or_init(|| $crate::register_counter($name))
    }};
}

/// Returns a registered gauge (per-call-site cached).
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static SITE: ::std::sync::OnceLock<&'static $crate::Gauge> =
            ::std::sync::OnceLock::new();
        *SITE.get_or_init(|| $crate::register_gauge($name))
    }};
}

/// Returns a registered histogram (per-call-site cached).
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static SITE: ::std::sync::OnceLock<&'static $crate::Histogram> =
            ::std::sync::OnceLock::new();
        *SITE.get_or_init(|| $crate::register_histogram($name))
    }};
}

/// Emits a diagnostic line to stderr, gated on mode: silent when `off`,
/// buffered into nothing when `summary` would be noisy — lines print in
/// `summary` and `trace` modes only.
#[macro_export]
macro_rules! obs_log {
    ($($arg:tt)*) => {
        if $crate::enabled() {
            eprintln!($($arg)*);
        }
    };
}

// ---------------------------------------------------------------------------
// Spans

/// Aggregated statistics for one span path.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SpanStat {
    /// Number of completed spans at this path.
    pub count: u64,
    /// Total wall seconds (including children).
    pub total_secs: f64,
    /// Wall seconds excluding child spans.
    pub self_secs: f64,
}

static SPANS: Mutex<BTreeMap<String, SpanStat>> = Mutex::new(BTreeMap::new());

struct SpanFrame {
    path: String,
    child_secs: f64,
}

thread_local! {
    static SPAN_STACK: RefCell<Vec<SpanFrame>> = const { RefCell::new(Vec::new()) };
    /// Path prefix applied to root spans on this thread. Set by
    /// `dcn_exec` workers so a task's spans report under the submitting
    /// thread's span path — cross-thread attribution without any shared
    /// mutable state (see [`set_thread_span_parent`]).
    static SPAN_PARENT: RefCell<Option<String>> = const { RefCell::new(None) };
}

/// Sets this thread's span parent: while `Some`, spans entered with an
/// empty stack nest under the given path instead of becoming roots.
/// Returns the previous value so callers can restore it. Used by
/// `dcn_exec::Pool` workers to carry the submitting thread's span path
/// across the thread boundary; attribution is observability-only and
/// never affects solver output.
pub fn set_thread_span_parent(parent: Option<String>) -> Option<String> {
    SPAN_PARENT.with(|p| std::mem::replace(&mut *p.borrow_mut(), parent))
}

/// The full path of the innermost open span on this thread, falling back
/// to the thread span parent (if set) when no span is open. `None` when
/// neither exists or spans are inactive.
pub fn current_span_path() -> Option<String> {
    SPAN_STACK
        .with(|s| s.borrow().last().map(|f| f.path.clone()))
        .or_else(|| SPAN_PARENT.with(|p| p.borrow().clone()))
}

/// RAII guard produced by [`span!`]; records on drop.
pub struct SpanGuard {
    start: Option<Instant>,
}

impl SpanGuard {
    /// Starts a span named `name`, nested under any enclosing span on this
    /// thread (or under the thread span parent when the stack is empty).
    /// A no-op unless the mode is `summary`/`trace` or a [`TraceSink`] is
    /// installed.
    pub fn enter(name: &'static str) -> SpanGuard {
        if !enabled() && !trace_active() {
            return SpanGuard { start: None };
        }
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            let path = match stack.last() {
                Some(parent) => format!("{}/{}", parent.path, name),
                None => match SPAN_PARENT.with(|p| p.borrow().clone()) {
                    Some(parent) => format!("{parent}/{name}"),
                    None => name.to_string(),
                },
            };
            if let Some(sink) = trace_sink() {
                sink.record(TracePhase::Begin, &path);
            }
            stack.push(SpanFrame {
                path,
                child_secs: 0.0,
            });
        });
        SpanGuard {
            start: Some(Instant::now()),
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let elapsed = start.elapsed().as_secs_f64();
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            let frame = match stack.pop() {
                Some(f) => f,
                None => return, // reset() raced a live span; drop silently
            };
            if let Some(sink) = trace_sink() {
                sink.record(TracePhase::End, &frame.path);
            }
            if let Some(parent) = stack.last_mut() {
                parent.child_secs += elapsed;
            }
            // Poison recovery rather than a panic inside Drop: a panic
            // while this mutex is held elsewhere must not cascade into an
            // abort; span totals are plain accumulators, valid regardless
            // of where another thread unwound.
            let mut spans = SPANS.lock().unwrap_or_else(|e| e.into_inner());
            let stat = spans.entry(frame.path).or_default();
            stat.count += 1;
            stat.total_secs += elapsed;
            stat.self_secs += (elapsed - frame.child_secs).max(0.0);
        });
    }
}

/// Opens a scoped span timer: `let _g = span!("mcf.fptas.solve");`.
/// Hierarchy is tracked per thread; nested spans report under
/// `parent/child` paths.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::SpanGuard::enter($name)
    };
}

/// Times `f` under a span, also returning the elapsed seconds (measured
/// even when obs is off, so callers can keep reporting timings).
pub fn time_scope<T>(name: &'static str, f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let guard = SpanGuard::enter(name);
    let out = f();
    drop(guard);
    (out, start.elapsed().as_secs_f64())
}

/// Snapshot of all span statistics, sorted by path.
pub fn span_snapshot() -> Vec<(String, SpanStat)> {
    SPANS
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .iter()
        .map(|(k, v)| (k.clone(), v.clone()))
        .collect()
}

// ---------------------------------------------------------------------------
// Readout

/// One metric's exported state (for summaries and manifests).
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSnapshot {
    /// Metric name (`<crate>.<module>.<event>`; spans use `span:<path>`).
    pub name: String,
    /// `counter` / `gauge` / `histogram` / `span`.
    pub kind: &'static str,
    /// Exported fields (e.g. `value`, or `count`/`p50`/`p99`).
    pub fields: Vec<(&'static str, f64)>,
}

/// Snapshot of every registered metric plus span stats.
pub fn snapshot() -> Vec<MetricSnapshot> {
    let mut out = Vec::new();
    {
        let reg = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
        for (name, m) in &reg.metrics {
            let snap = match m {
                Metric::Counter(c) => MetricSnapshot {
                    name: name.to_string(),
                    kind: "counter",
                    fields: vec![("value", c.get() as f64)],
                },
                Metric::Gauge(g) => MetricSnapshot {
                    name: name.to_string(),
                    kind: "gauge",
                    fields: vec![("value", g.get())],
                },
                Metric::Histogram(h) => MetricSnapshot {
                    name: name.to_string(),
                    kind: "histogram",
                    fields: vec![
                        ("count", h.count() as f64),
                        ("mean", h.mean()),
                        ("p50", h.quantile(0.5)),
                        ("p90", h.quantile(0.9)),
                        ("p99", h.quantile(0.99)),
                        ("max", h.max_estimate()),
                    ],
                },
            };
            out.push(snap);
        }
    }
    for (path, stat) in span_snapshot() {
        out.push(MetricSnapshot {
            name: format!("span:{path}"),
            kind: "span",
            fields: vec![
                ("count", stat.count as f64),
                ("total_secs", stat.total_secs),
                ("self_secs", stat.self_secs),
            ],
        });
    }
    out
}

/// Human-readable summary of the registry, one metric per line, sorted by
/// name. Counters with value zero are elided to keep summaries focused on
/// what actually ran.
pub fn summary() -> String {
    use std::fmt::Write;
    let mut snaps = snapshot();
    snaps.sort_by(|a, b| a.name.cmp(&b.name));
    let mut out = String::new();
    let _ = writeln!(out, "-- dcn-obs summary (mode={}) --", mode().name());
    for s in &snaps {
        match s.kind {
            "counter" | "gauge" => {
                let v = s.fields[0].1;
                // Counters are integral; elide never-bumped ones.
                if s.kind == "counter" && v < 0.5 {
                    continue;
                }
                let _ = writeln!(out, "  {:<44} {:>14}", s.name, trim_num(v));
            }
            "histogram" => {
                // fields[0] is the integral sample count; elide empty ones.
                if s.fields[0].1 < 0.5 {
                    continue;
                }
                let _ = writeln!(
                    out,
                    "  {:<44} n={} mean={} p50={} p99={} max={}",
                    s.name,
                    trim_num(s.fields[0].1),
                    trim_num(s.fields[1].1),
                    trim_num(s.fields[2].1),
                    trim_num(s.fields[4].1),
                    trim_num(s.fields[5].1),
                );
            }
            _ => {
                let _ = writeln!(
                    out,
                    "  {:<44} n={} total={:.6}s self={:.6}s",
                    s.name,
                    trim_num(s.fields[0].1),
                    s.fields[1].1,
                    s.fields[2].1,
                );
            }
        }
    }
    out
}

fn trim_num(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.6}")
    }
}

/// Zeroes every metric and clears span statistics (test support; metric
/// statics stay registered).
pub fn reset() {
    let reg = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    for (_, m) in &reg.metrics {
        match m {
            Metric::Counter(c) => c.reset(),
            Metric::Gauge(g) => g.reset(),
            Metric::Histogram(h) => h.reset(),
        }
    }
    SPANS.lock().unwrap_or_else(|e| e.into_inner()).clear();
}

/// Current value of a registered counter by name (0 if absent; sums
/// duplicates). Test/diagnostic support.
pub fn counter_value(name: &str) -> u64 {
    let reg = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    reg.metrics
        .iter()
        .filter(|(n, _)| *n == name)
        .map(|(_, m)| match m {
            Metric::Counter(c) => c.get(),
            _ => 0,
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_macro_caches_and_counts() {
        let c = counter!("obs.test.counter_macro");
        let before = c.get();
        for _ in 0..100 {
            counter!("obs.test.counter_macro_inner").inc();
        }
        c.add(5);
        assert_eq!(c.get(), before + 5);
        assert!(counter_value("obs.test.counter_macro_inner") >= 100);
    }

    #[test]
    fn gauge_stores_f64() {
        let g = gauge!("obs.test.gauge");
        g.set(0.125);
        assert_eq!(g.get(), 0.125);
        g.set(-3.5);
        assert_eq!(g.get(), -3.5);
    }

    #[test]
    fn histogram_bucket_round_trip() {
        for v in [1e-9, 0.001, 0.5, 1.0, 3.7, 1024.0, 1e12] {
            let idx = Histogram::bucket_index(v);
            let lo = Histogram::bucket_lower(idx);
            let hi = Histogram::bucket_lower(idx + 1);
            assert!(lo <= v && v < hi, "v={v} not in [{lo}, {hi}) (idx {idx})");
        }
        assert_eq!(Histogram::bucket_index(0.0), 0);
        assert_eq!(Histogram::bucket_index(-1.0), 0);
        assert_eq!(Histogram::bucket_index(f64::NAN), 0);
    }

    #[test]
    fn mode_defaults_off() {
        // The test harness does not set DCN_OBS; default must be Off so
        // metric paths stay cheap.
        assert_eq!(mode(), Mode::Off);
        assert!(!enabled());
    }
}
