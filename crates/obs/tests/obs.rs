//! Integration tests for dcn-obs: histogram quantile accuracy on known
//! distributions, concurrent counter increments, nested-span attribution,
//! and manifest round-trips.
//!
//! All tests share one process, so observability is forced on once before
//! the mode is first read (spans are inert under the default `off`).

use dcn_obs::manifest::RunManifest;
use dcn_obs::{counter, gauge, histogram, span};
use std::sync::OnceLock;

/// Forces `DCN_OBS=summary` before anything reads the mode.
fn init() {
    static INIT: OnceLock<()> = OnceLock::new();
    INIT.get_or_init(|| {
        std::env::set_var("DCN_OBS", "summary");
        assert_eq!(dcn_obs::mode(), dcn_obs::Mode::Summary);
    });
}

#[test]
fn histogram_quantiles_on_uniform_distribution() {
    init();
    let h = histogram!("obs.itest.uniform");
    for v in 1..=1000u64 {
        h.record_u64(v);
    }
    assert_eq!(h.count(), 1000);
    // Log-bucketing guarantees ~9% relative accuracy per bucket; allow 15%.
    for (q, expect) in [(0.5, 500.0), (0.9, 900.0), (0.99, 990.0)] {
        let got = h.quantile(q);
        assert!(
            (got - expect).abs() / expect < 0.15,
            "p{q}: got {got}, want ~{expect}"
        );
    }
    let mean = h.mean();
    assert!((mean - 500.5).abs() < 1.0, "mean {mean}");
}

#[test]
fn histogram_quantiles_on_bimodal_distribution() {
    init();
    let h = histogram!("obs.itest.bimodal");
    // 90 samples at ~1ms, 10 at ~1s: p50 must sit in the low mode, p99 in
    // the high one — the shape a solver's per-phase timing typically has.
    for _ in 0..90 {
        h.record(1e-3);
    }
    for _ in 0..10 {
        h.record(1.0);
    }
    let p50 = h.quantile(0.5);
    let p99 = h.quantile(0.99);
    assert!((5e-4..2e-3).contains(&p50), "p50 {p50}");
    assert!((0.5..2.0).contains(&p99), "p99 {p99}");
    assert!(h.max_estimate() >= 0.5);
}

#[test]
fn histogram_extremes_clamp_not_panic() {
    init();
    let h = histogram!("obs.itest.extremes");
    for v in [0.0, -1.0, f64::NAN, f64::INFINITY, 1e300, 1e-300] {
        h.record(v);
    }
    assert_eq!(h.count(), 6);
    assert!(h.quantile(1.0).is_finite());
}

#[test]
fn concurrent_counter_increments_lose_nothing() {
    init();
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 20_000;
    let before = dcn_obs::counter_value("obs.itest.concurrent");
    std::thread::scope(|s| {
        for _ in 0..THREADS {
            s.spawn(|| {
                for _ in 0..PER_THREAD {
                    counter!("obs.itest.concurrent").inc();
                }
            });
        }
    });
    let after = dcn_obs::counter_value("obs.itest.concurrent");
    assert_eq!(after - before, THREADS as u64 * PER_THREAD);
}

#[test]
fn nested_spans_attribute_child_time_to_parent_total_only() {
    init();
    {
        let _outer = span!("obs.itest.outer");
        std::thread::sleep(std::time::Duration::from_millis(30));
        {
            let _inner = span!("obs.itest.inner");
            std::thread::sleep(std::time::Duration::from_millis(30));
        }
    }
    let spans = dcn_obs::span_snapshot();
    let get = |p: &str| {
        spans
            .iter()
            .find(|(path, _)| path == p)
            .map(|(_, s)| s.clone())
            .unwrap_or_else(|| panic!("span {p} missing from {spans:?}"))
    };
    let outer = get("obs.itest.outer");
    let inner = get("obs.itest.outer/obs.itest.inner");
    assert_eq!(outer.count, 1);
    assert_eq!(inner.count, 1);
    // Outer total covers both sleeps; outer self excludes the inner one.
    assert!(outer.total_secs >= 0.055, "outer total {}", outer.total_secs);
    assert!(inner.total_secs >= 0.025, "inner total {}", inner.total_secs);
    assert!(
        outer.self_secs <= outer.total_secs - inner.total_secs + 0.02,
        "outer self {} should exclude inner {}",
        outer.self_secs,
        inner.total_secs
    );
}

#[test]
fn time_scope_returns_value_and_elapsed() {
    init();
    let (val, secs) = dcn_obs::time_scope("obs.itest.timed", || {
        std::thread::sleep(std::time::Duration::from_millis(10));
        42
    });
    assert_eq!(val, 42);
    assert!(secs >= 0.005, "elapsed {secs}");
}

#[test]
fn manifest_captures_registry_and_round_trips() {
    init();
    counter!("obs.itest.manifest_counter").add(7);
    gauge!("obs.itest.manifest_gauge").set(0.75);
    histogram!("obs.itest.manifest_hist").record(2.0);
    let m = RunManifest::capture("itest", Some(1234), 0.5, 4);
    assert_eq!(m.seed, Some(1234));
    assert_eq!(m.threads, 4);
    assert_eq!(m.mode, "summary");
    assert!(m.metric_field("obs.itest.manifest_counter", "value").unwrap() >= 7.0);
    assert_eq!(
        m.metric_field("obs.itest.manifest_gauge", "value"),
        Some(0.75)
    );
    assert!(m.metric_field("obs.itest.manifest_hist", "count").unwrap() >= 1.0);

    let text = m.to_json();
    let back = RunManifest::from_json(&text).unwrap();
    assert_eq!(back, m);

    // And survives a disk round-trip through write_to.
    let dir = std::env::temp_dir().join("dcn-obs-itest");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("itest.manifest.json");
    m.write_to(&path).unwrap();
    let loaded = RunManifest::from_json(&std::fs::read_to_string(&path).unwrap()).unwrap();
    assert_eq!(loaded, m);
}

#[test]
fn summary_lists_live_metrics_only() {
    init();
    counter!("obs.itest.summary_live").inc();
    let _dead = counter!("obs.itest.summary_dead");
    let text = dcn_obs::summary();
    assert!(text.contains("obs.itest.summary_live"));
    assert!(!text.contains("obs.itest.summary_dead"), "zero counters elided");
}
