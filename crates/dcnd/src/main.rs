//! `dcnd` binary: serve stdin/stdout (default), a unix socket
//! (`DCN_DCND_SOCKET` or `--socket <path>`), or answer exactly one query
//! and exit (`--oneshot` — the form CI compares daemon responses
//! against, byte for byte).

use dcn_dcnd::{Daemon, DaemonConfig};
use std::io::Write;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config = DaemonConfig::from_env();
    let mut oneshot = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--oneshot" => oneshot = true,
            "--socket" => {
                i += 1;
                let Some(path) = args.get(i) else {
                    eprintln!("--socket needs a path");
                    return ExitCode::FAILURE;
                };
                config.socket = Some(path.into());
            }
            "--help" | "-h" => {
                println!(
                    "dcnd: throughput-query daemon\n\
                     usage: dcnd [--oneshot] [--socket <path>]\n\
                     reads line-delimited JSON queries:\n\
                     {{\"id\":1,\"topology\":{{\"family\":\"fat_tree\",\"k\":8}},\
                     \"estimator\":\"tub\"}}"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown flag {other}");
                return ExitCode::FAILURE;
            }
        }
        i += 1;
    }
    if oneshot {
        // One query, one response, fresh daemon state: the one-shot
        // answer a served response must be byte-identical to.
        let mut line = String::new();
        if std::io::stdin().read_line(&mut line).is_err() || line.trim().is_empty() {
            eprintln!("--oneshot expects one query line on stdin");
            return ExitCode::FAILURE;
        }
        let daemon = Daemon::new(config);
        let responses = daemon.process_batch(&[line]);
        let mut out = std::io::stdout();
        for r in responses {
            if writeln!(out, "{r}").is_err() {
                return ExitCode::FAILURE;
            }
        }
        return ExitCode::SUCCESS;
    }
    let daemon = Daemon::new(config.clone());
    let served = match &config.socket {
        Some(path) => daemon.serve_socket(path),
        None => {
            let stdin = std::io::stdin();
            daemon.serve(stdin.lock(), std::io::stdout())
        }
    };
    // Same contract as the bench harness: DCN_OBS=summary gets the
    // metric/span summary on stderr at exit, stdout stays untouched.
    if dcn_obs::enabled() {
        eprint!("{}", dcn_obs::summary());
    }
    match served {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("dcnd: {e}");
            ExitCode::FAILURE
        }
    }
}
