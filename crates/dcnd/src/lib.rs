//! `dcnd`: the long-running throughput-query daemon (ROADMAP item 2).
//!
//! The paper's thesis is that throughput — TUB cross-checked by KSP-MCF
//! — is *the* metric a topology should be judged by, which makes
//! "evaluate this (topology, traffic-matrix, estimator) triple" the unit
//! of service this workspace exports. `dcnd` turns the one-shot solvers
//! into exactly that service: it reads line-delimited JSON queries over
//! stdin (or a unix socket via `DCN_DCND_SOCKET`), answers warm queries
//! straight from the shared `DCN_CACHE_DIR` tier, schedules cold solves
//! on `dcn_exec::Pool` under a process-global deadline budget, and
//! collapses isomorphic-by-construction queries via cheap canonical keys
//! for the parameter-determined families (fat-tree, Clos). Seeded random
//! families (Jellyfish, Xpander, FatClique) are deliberately *not*
//! canonicalized: their specs are hashed verbatim, so textually distinct
//! specs stay distinct even when parameter-identical.
//!
//! Admission control has four outcomes per query, each a typed response:
//!
//! * **warm** — the canonical key is already in a cache tier; answered
//!   immediately (even after the global budget is exhausted) with
//!   provenance `"cache":"hit"`.
//! * **cold** — scheduled on the pool under the global budget; answered
//!   with `"cache":"miss"` (or `"dedup"` for in-batch duplicates of the
//!   same canonical key, `"off"` when caching is disabled).
//! * **rejected** — `{"status":"rejected","reason":...}` when the global
//!   budget is already exhausted (`global-budget-exhausted`) or the
//!   admission queue is out of capacity (`queue-full`).
//! * **error** — `{"status":"error",...}` for malformed queries and
//!   failed solves.
//!
//! Determinism contract: with `DCN_DCND_TIMING` off (the default),
//! responses to a replayed batch are byte-identical run over run, and
//! each `value` is bit-identical to the one-shot answer for the same
//! triple (`dcnd --oneshot` — CI's `dcnd-smoke` job gates on both).
//!
//! Every solver entry point reached from here takes the unified
//! [`SolveCtx`] introduced alongside this crate; the daemon threads one
//! per-process context (shared cache + global budget) through the whole
//! stack. See DESIGN.md §15.

#![forbid(unsafe_code)]

use dcn_cache::{CacheEntry, CacheHandle, CacheKey, KeyBuilder, SolveCtx};
use dcn_core::frontier::Family;
use dcn_core::{CoreError, MatchingBackend};
use dcn_estimators::{
    BbwProxy, EstimatorError, HoeflerMethod, JainMethod, SinglaBound, SparsestCut,
    ThroughputEstimator, TubEstimator,
};
use dcn_guard::{env, Budget, BudgetError};
use dcn_mcf::McfError;
use dcn_model::{Topology, TrafficMatrix};
use dcn_obs::json::Json;
use dcn_topo::{fat_tree, folded_clos, ClosParams};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{BufRead, Write};
use std::time::Duration;

/// Daemon configuration, read once at startup from the registered
/// `DCN_DCND_*` knobs (see `dcn_guard::env`).
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Unix socket path to listen on; `None` serves stdin/stdout.
    pub socket: Option<std::path::PathBuf>,
    /// Queries admitted per scheduling batch; `0` rejects everything
    /// with a typed `queue-full` response.
    pub queue_depth: usize,
    /// Cap on cold solves in flight at once (pool fan-out width).
    pub max_inflight: usize,
    /// Global wall-clock budget for all cold solves, anchored at
    /// [`Daemon::new`]; `None` is unlimited.
    pub global_deadline: Option<Duration>,
    /// Include `wall_ms` in provenance (off ⇒ byte-stable replays).
    pub timing: bool,
}

impl DaemonConfig {
    /// Reads every knob from the environment registry.
    pub fn from_env() -> DaemonConfig {
        DaemonConfig {
            socket: env::DCND_SOCKET.get_os().map(std::path::PathBuf::from),
            queue_depth: env::DCND_QUEUE_DEPTH.parsed::<usize>().unwrap_or(256),
            max_inflight: env::DCND_MAX_INFLIGHT
                .parsed::<usize>()
                .filter(|&n| n > 0)
                .unwrap_or_else(|| dcn_exec::Pool::from_env().threads()),
            global_deadline: env::DCND_GLOBAL_DEADLINE_MS
                .parsed::<u64>()
                .map(Duration::from_millis),
            timing: matches!(
                env::DCND_TIMING.get().as_deref().map(str::trim),
                Some("1") | Some("on") | Some("true")
            ),
        }
    }
}

/// A cached daemon answer: the scalar value of one (topology, TM,
/// estimator) triple under the canonical key. Persisted to the disk
/// tier so a restarted daemon stays warm.
#[derive(Clone)]
pub struct Answer(pub f64);

impl CacheEntry for Answer {
    const KIND: &'static str = "dcnd-answer";

    fn approx_bytes(&self) -> usize {
        8
    }

    fn to_json(&self) -> Json {
        Json::Num(self.0)
    }

    fn from_json(json: &Json) -> Result<Self, String> {
        json.as_f64()
            .map(Answer)
            .ok_or_else(|| "dcnd answer: expected a number".into())
    }

    fn validate(&self) -> Result<(), String> {
        if self.0.is_finite() {
            Ok(())
        } else {
            Err(format!("dcnd answer not finite: {}", self.0))
        }
    }
}

/// One parsed, admissible query: specs kept verbatim for solving, plus
/// the precomputed canonical identity used for cache lookups and
/// in-batch dedup.
#[derive(Debug, Clone)]
pub struct Query {
    /// Echoed back in the response (`null` when absent).
    pub id: Json,
    /// The `topology` spec object, verbatim.
    pub topology: Json,
    /// The `tm` spec object, verbatim (`null` ⇒ all-to-all).
    pub tm: Json,
    /// Estimator name (`tub`, `bbw`, `sc`, `singla`, `hm(k)`, `jm(k)`).
    pub estimator: String,
    /// Canonical identity of the (topology, tm, estimator) triple.
    pub key: CacheKey,
    /// Whether the topology family was canonicalized (fat-tree/Clos) —
    /// diagnostic only; the key is authoritative either way.
    pub canonical: bool,
}

/// Parses one query line. Errors are returned as user-facing strings
/// that become typed `error` responses.
pub fn parse_query(line: &str) -> Result<Query, String> {
    let q = Json::parse(line).map_err(|e| format!("bad json: {e}"))?;
    let topology = q
        .get("topology")
        .cloned()
        .ok_or("query needs a `topology` spec")?;
    let tm = q.get("tm").cloned().unwrap_or(Json::Null);
    let estimator = q
        .get("estimator")
        .and_then(Json::as_str)
        .ok_or("query needs an `estimator` name")?
        .to_string();
    make_estimator(&estimator)?;
    let (topo_ident, canonical) = canonical_topo_ident(&topology)?;
    let tm_ident = canonical_tm_ident(&tm)?;
    let key = KeyBuilder::new(Answer::KIND)
        .str(&topo_ident)
        .str(&tm_ident)
        .str(&estimator)
        .finish();
    Ok(Query {
        id: q.get("id").cloned().unwrap_or(Json::Null),
        topology,
        tm,
        estimator,
        key,
        canonical,
    })
}

/// The canonical identity string of a topology spec, computed *without*
/// building the topology (admission must stay cheap).
///
/// Fat-tree and Clos instances are fully determined by their
/// parameters, so their identity is the normalized parameter list —
/// textually different spellings (field order, omitted defaults,
/// whitespace) of the same instance collapse to one identity. Seeded
/// random families are hashed on their compact spec text instead:
/// equality of parameters does not make two *spellings* the same query,
/// and the daemon must never pretend two random builds are
/// interchangeable. Returns `(identity, canonicalized?)`.
pub fn canonical_topo_ident(spec: &Json) -> Result<(String, bool), String> {
    let family = spec
        .get("family")
        .and_then(Json::as_str)
        .ok_or("topology spec needs a `family`")?;
    let num = |key: &str| spec.get(key).and_then(Json::as_f64);
    match family {
        "fat_tree" => {
            let k = num("k").ok_or("fat_tree needs `k`")? as u64;
            Ok((format!("fat_tree(k={k})"), true))
        }
        "clos" => {
            let radix = num("radix").ok_or("clos needs `radix`")? as u64;
            let layers = num("layers").unwrap_or(3.0) as u64;
            let top_pods = num("top_pods").unwrap_or(radix as f64) as u64;
            let spine = num("spine_uplink_fraction").unwrap_or(1.0);
            let leaf = num("leaf_servers").unwrap_or(0.0) as u64;
            Ok((
                format!(
                    "clos(radix={radix},layers={layers},top_pods={top_pods},\
                     spine={spine},leaf={leaf})"
                ),
                true,
            ))
        }
        "jellyfish" | "xpander" | "fatclique" => Ok((spec.to_string_compact(), false)),
        other => Err(format!("unknown topology family `{other}`")),
    }
}

/// The canonical identity string of a TM spec (`null` ⇒ all-to-all).
/// TM generators are parameter-determined given their seed, so the
/// normalized parameter list is always safe to canonicalize.
pub fn canonical_tm_ident(spec: &Json) -> Result<String, String> {
    if matches!(spec, Json::Null) {
        return Ok("all_to_all".into());
    }
    let kind = spec
        .get("kind")
        .and_then(Json::as_str)
        .ok_or("tm spec needs a `kind`")?;
    let seed = spec.get("seed").and_then(Json::as_u64).unwrap_or(1);
    match kind {
        "all_to_all" => Ok("all_to_all".into()),
        "random_permutation" => Ok(format!("random_permutation(seed={seed})")),
        "random_hose" => {
            let cycles = spec.get("cycles").and_then(Json::as_u64).unwrap_or(4);
            Ok(format!("random_hose(cycles={cycles},seed={seed})"))
        }
        other => Err(format!("unknown tm kind `{other}`")),
    }
}

/// Builds the topology a spec describes. Only called on the cold path —
/// warm queries are answered from the canonical key alone.
pub fn build_topology(spec: &Json) -> Result<Topology, String> {
    let family = spec
        .get("family")
        .and_then(Json::as_str)
        .ok_or("topology spec needs a `family`")?;
    let num = |key: &str| spec.get(key).and_then(Json::as_f64);
    match family {
        "fat_tree" => {
            let k = num("k").ok_or("fat_tree needs `k`")? as usize;
            fat_tree(k).map_err(|e| e.to_string())
        }
        "clos" => {
            let radix = num("radix").ok_or("clos needs `radix`")? as usize;
            folded_clos(ClosParams {
                radix,
                layers: num("layers").unwrap_or(3.0) as usize,
                top_pods: num("top_pods").unwrap_or(radix as f64) as usize,
                spine_uplink_fraction: num("spine_uplink_fraction").unwrap_or(1.0),
                leaf_servers: num("leaf_servers").unwrap_or(0.0) as usize,
            })
            .map_err(|e| e.to_string())
        }
        "jellyfish" | "xpander" | "fatclique" => {
            let fam = Family::from_name(family).ok_or("unreachable: family matched above")?;
            let switches = num("switches").ok_or(format!("{family} needs `switches`"))? as usize;
            let radix = num("radix").ok_or(format!("{family} needs `radix`"))? as u32;
            let h = num("h").unwrap_or(4.0) as u32;
            let seed = spec.get("seed").and_then(Json::as_u64).unwrap_or(1);
            fam.build(switches, radix, h, seed).map_err(|e| e.to_string())
        }
        other => Err(format!("unknown topology family `{other}`")),
    }
}

/// Builds the traffic matrix a spec describes for `topo`.
pub fn build_tm(spec: &Json, topo: &Topology) -> Result<TrafficMatrix, String> {
    if matches!(spec, Json::Null) {
        return TrafficMatrix::all_to_all(topo).map_err(|e| e.to_string());
    }
    let kind = spec
        .get("kind")
        .and_then(Json::as_str)
        .ok_or("tm spec needs a `kind`")?;
    let seed = spec.get("seed").and_then(Json::as_u64).unwrap_or(1);
    let mut rng = StdRng::seed_from_u64(seed);
    match kind {
        "all_to_all" => TrafficMatrix::all_to_all(topo).map_err(|e| e.to_string()),
        "random_permutation" => {
            TrafficMatrix::random_permutation(topo, &mut rng).map_err(|e| e.to_string())
        }
        "random_hose" => {
            let cycles = spec.get("cycles").and_then(Json::as_u64).unwrap_or(4) as usize;
            TrafficMatrix::random_hose(topo, cycles, &mut rng).map_err(|e| e.to_string())
        }
        other => Err(format!("unknown tm kind `{other}`")),
    }
}

/// Instantiates the estimator a name describes, with the daemon's fixed
/// deterministic parameters (the same ones `dcnd --oneshot` uses, so
/// daemon and one-shot answers agree bit for bit).
pub fn make_estimator(name: &str) -> Result<Box<dyn ThroughputEstimator>, String> {
    if let Some(k) = name
        .strip_prefix("hm(")
        .and_then(|s| s.strip_suffix(')'))
        .and_then(|s| s.parse::<usize>().ok())
    {
        return Ok(Box::new(HoeflerMethod { k }));
    }
    if let Some(k) = name
        .strip_prefix("jm(")
        .and_then(|s| s.strip_suffix(')'))
        .and_then(|s| s.parse::<usize>().ok())
    {
        return Ok(Box::new(JainMethod { k }));
    }
    match name {
        "tub" => Ok(Box::new(TubEstimator {
            backend: MatchingBackend::Auto { exact_below: 600 },
        })),
        "bbw" => Ok(Box::new(BbwProxy { tries: 3, seed: 7 })),
        "sc" => Ok(Box::new(SparsestCut { power_iters: 100 })),
        "singla" => Ok(Box::new(SinglaBound)),
        other => Err(format!("unknown estimator `{other}`")),
    }
}

/// True when an estimator failure is budget exhaustion (⇒ a typed
/// `rejected` response) rather than a genuine solve error.
fn is_budget_exhaustion(e: &EstimatorError) -> bool {
    fn core(e: &CoreError) -> bool {
        matches!(e, CoreError::Budget(_)) || matches!(e, CoreError::Mcf(McfError::Budget(_)))
    }
    match e {
        EstimatorError::Mcf(McfError::Budget(_)) => true,
        EstimatorError::Mcf(_) | EstimatorError::Graph(_) => false,
        EstimatorError::Core(c) => core(c),
    }
}

/// How a query was answered, for the provenance field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CacheProvenance {
    /// Served from a cache tier without solving.
    Hit,
    /// Cold solve (stored under the canonical key afterwards).
    Miss,
    /// Collapsed onto an identical in-batch canonical key.
    Dedup,
    /// Caching disabled; every query recomputes.
    Off,
}

impl CacheProvenance {
    fn name(self) -> &'static str {
        match self {
            CacheProvenance::Hit => "hit",
            CacheProvenance::Miss => "miss",
            CacheProvenance::Dedup => "dedup",
            CacheProvenance::Off => "off",
        }
    }
}

/// The outcome of solving one canonical key.
enum SolveOutcome {
    Ok {
        value: f64,
        fallback: bool,
        wall_ms: Option<f64>,
    },
    BudgetExhausted,
    Failed(String),
}

/// The daemon: shared cache handle, global budget (anchored at
/// construction), and scheduling pool.
pub struct Daemon {
    config: DaemonConfig,
    cache: CacheHandle,
    budget: Budget,
    pool: dcn_exec::Pool,
}

impl Daemon {
    /// Builds a daemon over the process cache tier
    /// ([`CacheHandle::from_env`]); the global deadline starts counting
    /// here.
    pub fn new(config: DaemonConfig) -> Daemon {
        let budget = match config.global_deadline {
            Some(d) => Budget::unlimited().with_wall(d),
            None => Budget::unlimited(),
        };
        Daemon {
            config,
            cache: CacheHandle::from_env(),
            budget,
            pool: dcn_exec::Pool::from_env(),
        }
    }

    /// As [`Daemon::new`] but over an explicit cache handle (tests).
    pub fn with_cache(config: DaemonConfig, cache: CacheHandle) -> Daemon {
        let mut d = Daemon::new(config);
        d.cache = cache;
        d
    }

    /// The daemon's cache handle (tests assert on its counters).
    pub fn cache(&self) -> &CacheHandle {
        &self.cache
    }

    /// Answers one batch of query lines, responses in input order.
    ///
    /// Pipeline: parse → canonical key → in-batch dedup → warm probe
    /// ([`CacheHandle::peek`]) → admission (global budget) → cold solves
    /// fanned out on the pool in chunks of `max_inflight` → responses.
    pub fn process_batch(&self, lines: &[String]) -> Vec<String> {
        let _batch = dcn_obs::span!(dcn_obs::names::DCND_BATCH);
        let parsed: Vec<Result<Query, String>> =
            lines.iter().map(|l| parse_query(l)).collect();

        // First occurrence of each cold canonical key solves; later ones
        // collapse onto it. Warm keys answer straight from the tier.
        let mut outcomes: Vec<Option<CacheProvenance>> = vec![None; parsed.len()];
        let mut warm: Vec<(usize, f64)> = Vec::new();
        let mut cold: Vec<usize> = Vec::new(); // solver index per unique key
        let mut seen: std::collections::HashMap<CacheKey, usize> =
            std::collections::HashMap::new();
        for (i, q) in parsed.iter().enumerate() {
            let Ok(q) = q else { continue };
            if !self.cache.is_enabled() {
                // No cache to share results through: every occurrence
                // recomputes (identical solves land on one `solved` key,
                // which is fine — the solvers are deterministic).
                outcomes[i] = Some(CacheProvenance::Off);
                cold.push(i);
                continue;
            }
            if let Some(Answer(v)) = self.cache.peek::<Answer>(q.key) {
                outcomes[i] = Some(CacheProvenance::Hit);
                warm.push((i, v));
                continue;
            }
            match seen.get(&q.key) {
                Some(_) => {
                    outcomes[i] = Some(CacheProvenance::Dedup);
                    dcn_obs::counter!(dcn_obs::names::DCND_QUERIES_DEDUPED).inc();
                }
                None => {
                    seen.insert(q.key, i);
                    outcomes[i] = Some(CacheProvenance::Miss);
                    cold.push(i);
                }
            }
        }

        // Admission: an exhausted global budget rejects every cold solve
        // (warm answers above already went through).
        let exhausted = self.budget.meter().checkpoint().is_err();
        let mut solved: std::collections::HashMap<CacheKey, SolveOutcome> =
            std::collections::HashMap::new();
        if !exhausted {
            for chunk in cold.chunks(self.config.max_inflight.max(1)) {
                let results: Result<Vec<(CacheKey, SolveOutcome)>, BudgetError> =
                    self.pool.par_map(&self.budget, chunk, |_, &qi| {
                        let q = parsed[qi].as_ref().expect("cold index is parsed");
                        Ok((q.key, self.solve(q)))
                    });
                match results {
                    Ok(rs) => solved.extend(rs),
                    // The pool short-circuited on budget exhaustion
                    // mid-batch: everything not yet solved is rejected.
                    Err(_) => break,
                }
            }
        }

        // Fold the hit/miss counters into the `cache.hit_rate` gauge so
        // `DCN_OBS=summary` reports warm-tier effectiveness per run.
        dcn_cache::publish_hit_rate();

        let timing = self.config.timing;
        parsed
            .iter()
            .enumerate()
            .map(|(i, q)| match q {
                Err(e) => {
                    dcn_obs::counter!(dcn_obs::names::DCND_QUERIES_ERROR).inc();
                    respond_error(&Json::Null, e)
                }
                Ok(q) => match outcomes[i] {
                    Some(CacheProvenance::Hit) => {
                        let v = warm
                            .iter()
                            .find(|&&(wi, _)| wi == i)
                            .map(|&(_, v)| v)
                            .expect("warm index recorded");
                        dcn_obs::counter!(dcn_obs::names::DCND_QUERIES_OK).inc();
                        respond_ok(q, v, CacheProvenance::Hit, false, None)
                    }
                    Some(prov) => match solved.get(&q.key) {
                        Some(SolveOutcome::Ok {
                            value,
                            fallback,
                            wall_ms,
                        }) => {
                            dcn_obs::counter!(dcn_obs::names::DCND_QUERIES_OK).inc();
                            let wall = if timing && prov == CacheProvenance::Dedup {
                                Some(0.0)
                            } else {
                                *wall_ms
                            };
                            respond_ok(q, *value, prov, *fallback, wall)
                        }
                        Some(SolveOutcome::BudgetExhausted) | None => {
                            dcn_obs::counter!(dcn_obs::names::DCND_QUERIES_REJECTED).inc();
                            respond_rejected(q, "global-budget-exhausted")
                        }
                        Some(SolveOutcome::Failed(e)) => {
                            dcn_obs::counter!(dcn_obs::names::DCND_QUERIES_ERROR).inc();
                            respond_error(&q.id, e)
                        }
                    },
                    None => unreachable!("parsed queries always get an outcome"),
                },
            })
            .collect()
    }

    /// Solves one cold query under the daemon's global context; the
    /// result lands in the cache under the canonical key.
    fn solve(&self, q: &Query) -> SolveOutcome {
        let ctx = SolveCtx::new(&self.cache, &self.budget);
        let fallbacks_before = dcn_obs::counter_value(dcn_obs::names::CORE_TUB_FALLBACKS)
            + dcn_obs::counter_value(dcn_obs::names::MCF_FALLBACK_EXACT_TO_FPTAS);
        let (result, secs) = dcn_obs::time_scope(dcn_obs::names::DCND_SOLVE, || {
            self.cache.get_or_compute::<Answer, EstimatorError>(
                || q.key,
                || {
                    let topo = build_topology(&q.topology)
                        .map_err(|e| EstimatorError::Core(CoreError::OutOfRegime(e)))?;
                    let tm = build_tm(&q.tm, &topo)
                        .map_err(|e| EstimatorError::Core(CoreError::OutOfRegime(e)))?;
                    let est = make_estimator(&q.estimator)
                        .map_err(|e| EstimatorError::Core(CoreError::OutOfRegime(e)))?;
                    est.estimate(&topo, &tm, &ctx).map(Answer)
                },
            )
        });
        let fallbacks_after = dcn_obs::counter_value(dcn_obs::names::CORE_TUB_FALLBACKS)
            + dcn_obs::counter_value(dcn_obs::names::MCF_FALLBACK_EXACT_TO_FPTAS);
        match result {
            Ok(Answer(value)) => SolveOutcome::Ok {
                value,
                // Best-effort: counter delta around this solve. Exact in
                // a serial batch; under parallel fan-out a concurrent
                // solve's fallback can attribute here — provenance, not
                // correctness.
                fallback: fallbacks_after > fallbacks_before,
                wall_ms: self.config.timing.then_some(secs * 1e3),
            },
            Err(e) if is_budget_exhaustion(&e) => SolveOutcome::BudgetExhausted,
            Err(e) => SolveOutcome::Failed(e.to_string()),
        }
    }

    /// Serves line-delimited queries from `input`, writing one response
    /// line per query to `out` in input order. Lines batch up to
    /// `queue_depth` per scheduling round; a zero-depth queue rejects
    /// every query with a typed `queue-full` response.
    pub fn serve(
        &self,
        input: impl BufRead,
        mut out: impl Write,
    ) -> std::io::Result<()> {
        let mut batch: Vec<String> = Vec::new();
        for line in input.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            if self.config.queue_depth == 0 {
                let id = Json::parse(&line)
                    .ok()
                    .and_then(|q| q.get("id").cloned())
                    .unwrap_or(Json::Null);
                dcn_obs::counter!(dcn_obs::names::DCND_QUERIES_REJECTED).inc();
                writeln!(out, "{}", reject_line(&id, "queue-full"))?;
                out.flush()?;
                continue;
            }
            batch.push(line);
            if batch.len() >= self.config.queue_depth {
                self.flush_batch(&mut batch, &mut out)?;
            }
        }
        self.flush_batch(&mut batch, &mut out)?;
        Ok(())
    }

    fn flush_batch(
        &self,
        batch: &mut Vec<String>,
        out: &mut impl Write,
    ) -> std::io::Result<()> {
        if batch.is_empty() {
            return Ok(());
        }
        for response in self.process_batch(batch) {
            writeln!(out, "{response}")?;
        }
        out.flush()?;
        batch.clear();
        Ok(())
    }

    /// Serves connections on a unix socket sequentially (the workspace's
    /// concurrency discipline keeps threads inside `dcn-exec`; the pool
    /// still parallelizes each batch's solves).
    pub fn serve_socket(&self, path: &std::path::Path) -> std::io::Result<()> {
        let _ = std::fs::remove_file(path);
        let listener = std::os::unix::net::UnixListener::bind(path)?;
        for conn in listener.incoming() {
            let conn = conn?;
            let reader = std::io::BufReader::new(conn.try_clone()?);
            self.serve(reader, conn)?;
        }
        Ok(())
    }
}

fn provenance_json(prov: CacheProvenance, fallback: bool, wall_ms: Option<f64>) -> Json {
    let mut fields = vec![
        ("cache".to_string(), Json::Str(prov.name().into())),
        ("fallback".to_string(), Json::Bool(fallback)),
    ];
    if let Some(ms) = wall_ms {
        fields.push(("wall_ms".to_string(), Json::Num(ms)));
    }
    Json::Obj(fields)
}

fn respond_ok(
    q: &Query,
    value: f64,
    prov: CacheProvenance,
    fallback: bool,
    wall_ms: Option<f64>,
) -> String {
    Json::obj([
        ("id", q.id.clone()),
        ("status", Json::Str("ok".into())),
        ("estimator", Json::Str(q.estimator.clone())),
        ("value", Json::Num(value)),
        ("provenance", provenance_json(prov, fallback, wall_ms)),
    ])
    .to_string_compact()
}

fn respond_rejected(q: &Query, reason: &str) -> String {
    reject_line(&q.id, reason)
}

fn reject_line(id: &Json, reason: &str) -> String {
    Json::obj([
        ("id", id.clone()),
        ("status", Json::Str("rejected".into())),
        ("reason", Json::Str(reason.into())),
    ])
    .to_string_compact()
}

fn respond_error(id: &Json, error: &str) -> String {
    Json::obj([
        ("id", id.clone()),
        ("status", Json::Str("error".into())),
        ("error", Json::Str(error.into())),
    ])
    .to_string_compact()
}
