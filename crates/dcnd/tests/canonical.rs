//! Canonical-key semantics: parameter-determined families (fat-tree,
//! Clos) collapse textually different spellings of the same instance
//! onto one cache key and one solve; seeded random families (Jellyfish,
//! Xpander, FatClique) are deliberately *not* canonicalized.
//!
//! The daemon tests assert against the process-global `cache.hit` /
//! `cache.miss` counters, so every test that solves anything serializes
//! on [`counters`] — the test harness runs tests on multiple threads in
//! one process. All solves use the `singla` estimator, which reads only
//! the topology and never touches the cache internally, so counter
//! deltas are exact.

use dcn_cache::CacheHandle;
use dcn_dcnd::{parse_query, Daemon, DaemonConfig};
use dcn_obs::json::Json;
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

fn config() -> DaemonConfig {
    DaemonConfig {
        socket: None,
        queue_depth: 256,
        max_inflight: 2,
        global_deadline: None,
        timing: false,
    }
}

/// Serializes tests that read or bump the global cache counters.
fn counters() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn hits() -> u64 {
    dcn_obs::counter_value(dcn_obs::names::CACHE_HIT)
}

fn misses() -> u64 {
    dcn_obs::counter_value(dcn_obs::names::CACHE_MISS)
}

/// The `provenance.cache` field of a response line.
fn provenance(response: &str) -> String {
    Json::parse(response)
        .expect("response is json")
        .get("provenance")
        .and_then(|p| p.get("cache"))
        .and_then(Json::as_str)
        .unwrap_or_default()
        .to_string()
}

fn status(response: &str) -> String {
    Json::parse(response)
        .expect("response is json")
        .get("status")
        .and_then(Json::as_str)
        .unwrap_or_default()
        .to_string()
}

#[test]
fn fat_tree_spellings_share_a_key() {
    let a = parse_query(r#"{"id":1,"topology":{"family":"fat_tree","k":8},"estimator":"tub"}"#)
        .unwrap();
    let b = parse_query(r#"{"estimator":"tub","topology":{"k":8,"family":"fat_tree"},"id":2}"#)
        .unwrap();
    assert_eq!(a.key, b.key, "field order must not change the key");
    assert!(a.canonical && b.canonical);

    let c = parse_query(r#"{"topology":{"family":"fat_tree","k":10},"estimator":"tub"}"#)
        .unwrap();
    assert_ne!(a.key, c.key, "different k is a different instance");
}

#[test]
fn clos_omitted_defaults_share_a_key() {
    let terse =
        parse_query(r#"{"topology":{"family":"clos","radix":8},"estimator":"sc"}"#).unwrap();
    let explicit = parse_query(
        r#"{"topology":{"leaf_servers":0,"family":"clos","radix":8,"layers":3,"top_pods":8,"spine_uplink_fraction":1.0},"estimator":"sc"}"#,
    )
    .unwrap();
    assert_eq!(
        terse.key, explicit.key,
        "spelling out the defaults must not change the key"
    );
    assert!(terse.canonical);

    let tapered = parse_query(
        r#"{"topology":{"family":"clos","radix":8,"spine_uplink_fraction":0.5},"estimator":"sc"}"#,
    )
    .unwrap();
    assert_ne!(terse.key, tapered.key, "a tapered spine is a different instance");
}

#[test]
fn seeded_families_never_canonicalize() {
    let a = parse_query(
        r#"{"topology":{"family":"jellyfish","switches":20,"radix":8,"h":4,"seed":3},"estimator":"singla"}"#,
    )
    .unwrap();
    // Parameter-identical, different field order: for a seeded family
    // this is a different *spelling*, and spellings do not collapse.
    let b = parse_query(
        r#"{"topology":{"seed":3,"family":"jellyfish","switches":20,"radix":8,"h":4},"estimator":"singla"}"#,
    )
    .unwrap();
    assert!(!a.canonical && !b.canonical);
    assert_ne!(a.key, b.key, "seeded families key on the spec text");

    // The same text, byte for byte, is still one key.
    let c = parse_query(
        r#"{"topology":{"family":"jellyfish","switches":20,"radix":8,"h":4,"seed":3},"estimator":"singla"}"#,
    )
    .unwrap();
    assert_eq!(a.key, c.key);
}

#[test]
fn tm_and_estimator_partition_the_keyspace() {
    let tub = parse_query(r#"{"topology":{"family":"fat_tree","k":8},"estimator":"tub"}"#)
        .unwrap();
    let sc = parse_query(r#"{"topology":{"family":"fat_tree","k":8},"estimator":"sc"}"#)
        .unwrap();
    assert_ne!(tub.key, sc.key, "the estimator is part of the identity");

    let implicit =
        parse_query(r#"{"topology":{"family":"fat_tree","k":8},"estimator":"hm(4)"}"#).unwrap();
    let explicit = parse_query(
        r#"{"topology":{"family":"fat_tree","k":8},"estimator":"hm(4)","tm":{"kind":"all_to_all"}}"#,
    )
    .unwrap();
    assert_eq!(implicit.key, explicit.key, "omitted tm means all-to-all");

    let perm = parse_query(
        r#"{"topology":{"family":"fat_tree","k":8},"estimator":"hm(4)","tm":{"kind":"random_permutation","seed":5}}"#,
    )
    .unwrap();
    assert_ne!(implicit.key, perm.key, "the tm is part of the identity");
}

#[test]
fn daemon_collapses_canonical_duplicates_onto_one_solve() {
    let _guard = counters();
    let daemon = Daemon::with_cache(config(), CacheHandle::in_memory(1 << 20));
    let batch: Vec<String> = [
        r#"{"id":1,"topology":{"family":"fat_tree","k":4},"estimator":"singla"}"#,
        r#"{"id":2,"estimator":"singla","topology":{"k":4,"family":"fat_tree"}}"#,
        r#"{"id":3,"topology":{"family":"clos","radix":4},"estimator":"singla"}"#,
        r#"{"id":4,"topology":{"family":"clos","radix":4,"layers":3,"top_pods":4},"estimator":"singla"}"#,
        r#"{"id":5,"topology":{"family":"jellyfish","switches":20,"radix":8,"h":4,"seed":3},"estimator":"singla"}"#,
        r#"{"id":6,"topology":{"seed":3,"family":"jellyfish","switches":20,"radix":8,"h":4},"estimator":"singla"}"#,
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();

    let (h0, m0) = (hits(), misses());
    let cold = daemon.process_batch(&batch);
    let (h1, m1) = (hits(), misses());

    // Two spellings of one fat tree → one solve; same for the Clos pair;
    // the two jellyfish spellings stay two solves. 4 misses, 0 hits.
    assert_eq!(m1 - m0, 4, "fat-tree and clos pairs each collapse to one solve");
    assert_eq!(h1 - h0, 0, "a cold batch hits nothing");
    let provs: Vec<String> = cold.iter().map(|r| provenance(r)).collect();
    assert_eq!(provs, ["miss", "dedup", "miss", "dedup", "miss", "miss"]);

    // Collapsed duplicates answer identically to their representative
    // (same value, same estimator — only id and provenance differ).
    let value = |r: &str| Json::parse(r).unwrap().get("value").and_then(Json::as_f64);
    assert_eq!(value(&cold[0]), value(&cold[1]));
    assert_eq!(value(&cold[2]), value(&cold[3]));

    // Replaying the batch serves every line from the warm tier.
    let (h1, m1) = (hits(), misses());
    let warm = daemon.process_batch(&batch);
    let (h2, m2) = (hits(), misses());
    assert_eq!(h2 - h1, 6, "every replayed line is a warm hit");
    assert_eq!(m2 - m1, 0);
    for r in &warm {
        assert_eq!(provenance(r), "hit");
    }
    for (c, w) in cold.iter().zip(&warm) {
        assert_eq!(value(c), value(w), "warm answers equal cold answers");
    }
}

#[test]
fn exhausted_budget_rejects_cold_and_still_serves_warm() {
    let _guard = counters();
    let cache = CacheHandle::in_memory(1 << 20);
    let warm_line =
        r#"{"id":"warm","topology":{"family":"fat_tree","k":4},"estimator":"singla"}"#.to_string();
    let cold_line =
        r#"{"id":"cold","topology":{"family":"clos","radix":8},"estimator":"singla"}"#.to_string();

    // Warm the cache with an unlimited daemon first.
    let unlimited = Daemon::with_cache(config(), cache.clone());
    let seeded = unlimited.process_batch(std::slice::from_ref(&warm_line));
    assert_eq!(status(&seeded[0]), "ok");

    // A zero global deadline is exhausted from the first checkpoint:
    // cold queries get the typed rejection, warm ones still answer.
    let exhausted = Daemon::with_cache(
        DaemonConfig {
            global_deadline: Some(Duration::ZERO),
            ..config()
        },
        cache,
    );
    let responses = exhausted.process_batch(&[warm_line, cold_line]);
    assert_eq!(status(&responses[0]), "ok");
    assert_eq!(provenance(&responses[0]), "hit");
    assert_eq!(
        responses[1],
        r#"{"id":"cold","status":"rejected","reason":"global-budget-exhausted"}"#,
        "rejection is typed and deterministic"
    );
}

#[test]
fn served_responses_are_byte_identical_to_oneshot() {
    let _guard = counters();
    let line =
        r#"{"id":7,"topology":{"family":"fat_tree","k":4},"estimator":"singla","tm":{"kind":"random_permutation","seed":5}}"#
            .to_string();
    // Two fresh daemons (fresh caches) answering the same cold query
    // must produce the same bytes — the `--oneshot` contract.
    let a = Daemon::with_cache(config(), CacheHandle::in_memory(1 << 20));
    let b = Daemon::with_cache(config(), CacheHandle::in_memory(1 << 20));
    let ra = a.process_batch(std::slice::from_ref(&line));
    let rb = b.process_batch(std::slice::from_ref(&line));
    assert_eq!(ra, rb);
    assert_eq!(status(&ra[0]), "ok");
    assert_eq!(provenance(&ra[0]), "miss");
}

#[test]
fn zero_queue_depth_rejects_everything() {
    let _guard = counters();
    let daemon = Daemon::with_cache(
        DaemonConfig {
            queue_depth: 0,
            ..config()
        },
        CacheHandle::in_memory(1 << 20),
    );
    let input = b"{\"id\":9,\"topology\":{\"family\":\"fat_tree\",\"k\":4},\"estimator\":\"singla\"}\n";
    let mut out = Vec::new();
    daemon.serve(&input[..], &mut out).unwrap();
    assert_eq!(
        String::from_utf8(out).unwrap(),
        "{\"id\":9,\"status\":\"rejected\",\"reason\":\"queue-full\"}\n"
    );
}

#[test]
fn malformed_queries_get_typed_errors() {
    let daemon = Daemon::with_cache(config(), CacheHandle::disabled());
    let batch: Vec<String> = [
        r#"{"topology":{"family":"nope"},"estimator":"tub"}"#,
        r#"{"topology":{"family":"fat_tree","k":4},"estimator":"warp"}"#,
        r#"not json"#,
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    for r in daemon.process_batch(&batch) {
        assert_eq!(status(&r), "error");
    }
}
