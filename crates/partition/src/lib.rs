#![forbid(unsafe_code)]
//! Graph partitioning for capacity metrics.
//!
//! The paper estimates bisection bandwidth with METIS; this crate carries a
//! from-scratch multilevel bisector in the same algorithm family:
//!
//! 1. **Coarsening** by randomized heavy-edge matching until the graph is
//!    small ([`coarsen`]).
//! 2. **Initial partition** of the coarsest graph by greedy BFS region
//!    growing from random seeds.
//! 3. **Uncoarsening** with Fiduccia–Mattheyses boundary refinement at
//!    every level ([`fm`]).
//!
//! Balance is measured in *server* weight: a bisection splits the servers
//! (not the switches) into halves, which is what "bisection bandwidth at
//! least half the servers" means for bi-regular topologies whose spine
//! switches host nothing.
//!
//! Like METIS, the result is an upper bound on the true minimum balanced
//! cut (the problem is NP-hard); the paper's full-BBW frontier inherits
//! the same caveat.
//!
//! The crate also implements the spectral sweep-cut heuristic used for the
//! sparsest-cut comparison in Figure 5: the Fiedler vector is computed by
//! shifted power iteration and the best prefix cut of the sorted vector is
//! returned ([`spectral::sparsest_cut_sweep`]).

#![warn(missing_docs)]

pub mod bisect;
pub mod coarsen;
pub mod fm;
pub mod spectral;

pub use bisect::{bisection, bisection_bandwidth, has_full_bisection, PartitionResult};
pub use spectral::sparsest_cut_sweep;

/// A weighted graph used internally across coarsening levels.
#[derive(Debug, Clone)]
pub(crate) struct WGraph {
    /// Adjacency: `(neighbor, edge_weight)`, deduplicated.
    pub adj: Vec<Vec<(u32, f64)>>,
    /// Node weights (servers per merged super-node).
    pub node_w: Vec<u64>,
}

impl WGraph {
    pub(crate) fn n(&self) -> usize {
        self.adj.len()
    }

    pub(crate) fn total_node_weight(&self) -> u64 {
        self.node_w.iter().sum()
    }

    /// Cut capacity of a 0/1 side assignment.
    pub(crate) fn cut(&self, side: &[u8]) -> f64 {
        let mut cut = 0.0;
        for (u, nbrs) in self.adj.iter().enumerate() {
            for &(v, w) in nbrs {
                if (v as usize) > u && side[u] != side[v as usize] {
                    cut += w;
                }
            }
        }
        cut
    }

    pub(crate) fn from_topology_graph(g: &dcn_graph::Graph, node_w: &[u64]) -> Self {
        let c = g.coalesced();
        let adj = (0..c.n() as u32)
            .map(|u| {
                c.neighbors(u)
                    .map(|(v, e)| (v, c.capacity(e)))
                    .collect::<Vec<_>>()
            })
            .collect();
        WGraph {
            adj,
            node_w: node_w.to_vec(),
        }
    }
}
