//! Multilevel bisection and the bisection-bandwidth metric.

use crate::coarsen::coarsen_once;
use crate::fm::refine;
use crate::WGraph;
use dcn_cache::{CacheEntry, KeyBuilder, SolveCtx};
use dcn_guard::{Budget, BudgetError, BudgetMeter};
use dcn_model::Topology;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of a balanced bisection.
#[derive(Debug, Clone)]
pub struct PartitionResult {
    /// Side (0/1) per switch.
    pub side: Vec<u8>,
    /// Total capacity of links crossing the cut.
    pub cut: f64,
    /// Server weight on each side.
    pub weights: (u64, u64),
}

/// Balanced bisection of the switch graph, minimizing cut capacity while
/// splitting total *server* weight as evenly as the per-switch granularity
/// allows. `tries` independent multilevel runs are performed and the best
/// cut returned (like `METIS` with multiple seeds).
///
/// Meters one tick per FM move step across all multilevel tries. When the
/// budget runs out after at least one completed try, the best result so
/// far is returned (a valid, if possibly looser, cut upper bound);
/// exhaustion before any try finishes propagates as an error.
pub fn bisection(
    topo: &Topology,
    tries: u32,
    seed: u64,
    budget: &Budget,
) -> Result<PartitionResult, BudgetError> {
    let _span = dcn_obs::span!(dcn_obs::names::PARTITION_BISECT_BISECTION);
    let mut meter = budget.meter();
    let cut_hist = dcn_obs::histogram!(dcn_obs::names::PARTITION_BISECT_TRY_CUT);
    let node_w: Vec<u64> = topo.servers().iter().map(|&s| s as u64).collect();
    let g = WGraph::from_topology_graph(topo.graph(), &node_w);
    let total = g.total_node_weight();
    let max_node = node_w.iter().copied().max().unwrap_or(1).max(1);
    // A "half" always exists with weight <= ceil(total/2) + max_node - 1
    // (greedy argument), so that is the strict acceptance limit; moves may
    // pass through a looser limit during refinement.
    let strict = total.div_ceil(2) + max_node - 1;
    let loose = strict + 2 * max_node;
    let mut best: Option<PartitionResult> = None;
    for t in 0..tries.max(1) {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(t as u64));
        let side = match multilevel_bisect(&g, strict, loose, &mut rng, &mut meter) {
            Ok(side) => side,
            Err(e) => {
                // Keep the best completed try, if any; otherwise the
                // exhaustion is fatal.
                return match best {
                    Some(b) => {
                        dcn_obs::counter!(dcn_obs::names::PARTITION_BISECT_TRUNCATED_TRIES).inc();
                        dcn_obs::gauge!(dcn_obs::names::PARTITION_BISECT_BEST_CUT).set(b.cut);
                        Ok(b)
                    }
                    None => Err(e),
                };
            }
        };
        let cut = g.cut(&side);
        let mut w = [0u64; 2];
        for (u, &s) in side.iter().enumerate() {
            w[s as usize] += g.node_w[u];
        }
        cut_hist.record(cut);
        let candidate = PartitionResult {
            side,
            cut,
            weights: (w[0], w[1]),
        };
        if best.as_ref().is_none_or(|b| candidate.cut < b.cut) {
            best = Some(candidate);
        }
    }
    // `tries.max(1)` guarantees at least one loop body ran to completion.
    let best = match best {
        Some(b) => b,
        // dcn-lint: allow(panic-freedom) — tries.max(1) above guarantees at least one completed try populated `best`
        None => unreachable!("bisection loop ran zero completed tries"),
    };
    dcn_obs::gauge!(dcn_obs::names::PARTITION_BISECT_BEST_CUT).set(best.cut);
    Ok(best)
}

fn multilevel_bisect<R: Rng>(
    g: &WGraph,
    strict: u64,
    loose: u64,
    rng: &mut R,
    meter: &mut BudgetMeter<'_>,
) -> Result<Vec<u8>, BudgetError> {
    // Coarsen.
    let mut levels = Vec::new();
    let mut cur = g.clone();
    while cur.n() > 64 {
        match coarsen_once(&cur, rng) {
            Some(lvl) => {
                let next = lvl.coarse.clone();
                levels.push(lvl);
                cur = next;
            }
            None => break,
        }
    }
    dcn_obs::histogram!(dcn_obs::names::PARTITION_BISECT_COARSEN_LEVELS).record_u64(levels.len() as u64);
    // Initial partition of the coarsest graph: greedy BFS region growing
    // from a random seed until half the weight is collected.
    let mut side = grow_partition(&cur, rng);
    refine(&cur, &mut side, strict, loose, 10, meter)?;
    // Uncoarsen with refinement. Level i maps the graph at level i-1
    // (or the input graph for i == 0) onto `levels[i].coarse`.
    for i in (0..levels.len()).rev() {
        let lvl = &levels[i];
        let mut fine_side = vec![0u8; lvl.map.len()];
        for u in 0..lvl.map.len() {
            fine_side[u] = side[lvl.map[u] as usize];
        }
        side = fine_side;
        let fine_graph = if i == 0 { g } else { &levels[i - 1].coarse };
        refine(fine_graph, &mut side, strict, loose, 6, meter)?;
    }
    Ok(side)
}

/// Greedy BFS region growing: start from a random node, absorb the
/// neighbor most connected to the region until half the weight is inside.
fn grow_partition<R: Rng>(g: &WGraph, rng: &mut R) -> Vec<u8> {
    let n = g.n();
    let total = g.total_node_weight();
    let target = total / 2;
    let mut side = vec![1u8; n];
    let start = rng.gen_range(0..n);
    let mut in_region = vec![false; n];
    let mut conn = vec![0.0f64; n];
    let mut weight = 0u64;
    let mut cur = start;
    loop {
        in_region[cur] = true;
        side[cur] = 0;
        weight += g.node_w[cur];
        if weight >= target {
            break;
        }
        for &(v, w) in &g.adj[cur] {
            if !in_region[v as usize] {
                conn[v as usize] += w;
            }
        }
        // Pick the most-connected frontier node; fall back to any
        // unvisited node for disconnected graphs.
        let mut best: Option<(usize, f64)> = None;
        for v in 0..n {
            if !in_region[v] && conn[v] > 0.0
                && best.is_none_or(|(_, bw)| conn[v] > bw) {
                    best = Some((v, conn[v]));
                }
        }
        cur = match best {
            Some((v, _)) => v,
            None => match (0..n).find(|&v| !in_region[v]) {
                Some(v) => v,
                None => break,
            },
        };
    }
    side
}

/// The cut value of a cached bisection-bandwidth computation. A plain
/// newtype so the scalar can live in the cache with a kind tag and a
/// finite-and-non-negative certificate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CachedCut(pub f64);

impl CacheEntry for CachedCut {
    const KIND: &'static str = "bbw";

    fn approx_bytes(&self) -> usize {
        std::mem::size_of::<CachedCut>()
    }

    fn to_json(&self) -> dcn_obs::json::Json {
        dcn_obs::json::Json::Num(self.0)
    }

    fn from_json(json: &dcn_obs::json::Json) -> Result<Self, String> {
        json.as_f64().map(CachedCut).ok_or_else(|| "expected a number".into())
    }

    fn validate(&self) -> Result<(), String> {
        if self.0.is_finite() && self.0 >= 0.0 {
            Ok(())
        } else {
            Err(format!("cut {} not finite and non-negative", self.0))
        }
    }
}

/// The bisection bandwidth of a topology: the best (smallest) balanced cut
/// found across `tries` multilevel runs. Like METIS, this *over*-estimates
/// the true bisection bandwidth (finding it exactly is NP-hard).
///
/// Memoized through the [`CacheHandle`] per `(topology, tries, seed)` —
/// the partitioner is seeded, so equal keys reproduce the same cut.
pub fn bisection_bandwidth(
    topo: &Topology,
    tries: u32,
    seed: u64,
    ctx: &SolveCtx<'_>,
) -> Result<f64, BudgetError> {
    let cut = ctx.cache.get_or_compute(
        || {
            KeyBuilder::new("bbw")
                .topology(topo)
                .u64(tries as u64)
                .u64(seed)
                .finish()
        },
        || bisection(topo, tries, seed, ctx.budget).map(|r| CachedCut(r.cut)),
    )?;
    Ok(cut.0)
}

/// Whether the topology has full bisection bandwidth: cut capacity at
/// least half the servers (each server at unit line rate).
pub fn has_full_bisection(
    topo: &Topology,
    tries: u32,
    seed: u64,
    ctx: &SolveCtx<'_>,
) -> Result<bool, BudgetError> {
    Ok(bisection_bandwidth(topo, tries, seed, ctx)? >= topo.n_servers() as f64 / 2.0 - 1e-9)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_cache::prelude::*;
    use dcn_graph::Graph;
    use dcn_topo::{fat_tree, jellyfish};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn dumbbell_cut_is_bridge() {
        // Two K5 cliques with one bridge; servers on every switch.
        let mut edges = Vec::new();
        for c in 0..2u32 {
            let base = c * 5;
            for i in 0..5 {
                for j in (i + 1)..5 {
                    edges.push((base + i, base + j));
                }
            }
        }
        edges.push((0, 5));
        let g = Graph::from_edges(10, &edges).unwrap();
        let t = Topology::new(g, vec![2; 10], "dumbbell").unwrap();
        let r = bisection(&t, 4, 7, &Budget::unlimited()).unwrap();
        assert_eq!(r.cut, 1.0);
        assert_eq!(r.weights.0 + r.weights.1, 20);
        assert_eq!(r.weights.0, 10);
    }

    #[test]
    fn fat_tree_has_full_bisection() {
        let t = fat_tree(4).unwrap();
        let bbw = bisection_bandwidth(&t, 8, 3, &unlimited_ctx()).unwrap();
        // Full bisection: at least N/2 = 8.
        assert!(bbw >= 8.0, "bbw = {bbw}");
    }

    #[test]
    fn jellyfish_bbw_reasonable() {
        let mut rng = StdRng::seed_from_u64(1);
        // 32 switches, degree 8, H=4: a random 8-regular graph's balanced
        // cut is roughly n*r/4 minus expansion slack.
        let t = jellyfish(32, 8, 4, &mut rng).unwrap();
        let bbw = bisection_bandwidth(&t, 4, 3, &unlimited_ctx()).unwrap();
        assert!(bbw >= 30.0, "bbw = {bbw} too small for a degree-8 expander");
        assert!(bbw <= 64.0, "bbw = {bbw} exceeds the random-cut average");
    }

    #[test]
    fn high_degree_jellyfish_has_full_bisection() {
        let mut rng = StdRng::seed_from_u64(2);
        // Degree 16 network ports vs H=4 servers: plenty of fabric capacity.
        let t = jellyfish(32, 16, 4, &mut rng).unwrap();
        assert!(has_full_bisection(&t, 4, 3, &unlimited_ctx()).unwrap());
    }

    #[test]
    fn ring_bbw_is_two() {
        let edges: Vec<(u32, u32)> = (0..16u32).map(|i| (i, (i + 1) % 16)).collect();
        let g = Graph::from_edges(16, &edges).unwrap();
        let t = Topology::new(g, vec![1; 16], "ring").unwrap();
        let bbw = bisection_bandwidth(&t, 8, 5, &unlimited_ctx()).unwrap();
        assert_eq!(bbw, 2.0);
        assert!(!has_full_bisection(&t, 8, 5, &unlimited_ctx()).unwrap());
    }

    #[test]
    fn budget_exhaustion_reports_or_returns_partial() {
        let t = fat_tree(4).unwrap();
        // Cap so tight the first multilevel try cannot finish.
        let tiny = Budget::unlimited().with_iter_cap(1);
        assert!(matches!(
            bisection(&t, 4, 3, &tiny),
            Err(BudgetError::IterationsExceeded { cap: 1 })
        ));
        // A cap that lets some tries finish returns a valid partition.
        let medium = Budget::unlimited().with_iter_cap(10_000);
        if let Ok(r) = bisection(&t, 64, 3, &medium) {
            assert_eq!(r.weights.0 + r.weights.1, t.n_servers() as u64);
        }
        // Unlimited budgets are deterministic for a fixed seed.
        let a = bisection(&t, 4, 3, &Budget::unlimited()).unwrap();
        let b = bisection(&t, 4, 3, &Budget::unlimited()).unwrap();
        assert_eq!(a.cut, b.cut);
    }

    #[test]
    fn serverless_switches_can_sit_anywhere() {
        // Star: center serverless, 4 leaves with servers. A balanced server
        // split puts 2 leaves per side; the cut is 2 (or 3 with the
        // center's extra edge when the center's side has 2 leaves).
        let g = Graph::from_edges(5, &[(4, 0), (4, 1), (4, 2), (4, 3)]).unwrap();
        let t = Topology::new(g, vec![2, 2, 2, 2, 0], "star").unwrap();
        let r = bisection(&t, 8, 2, &Budget::unlimited()).unwrap();
        assert_eq!(r.weights.0, 4);
        assert_eq!(r.weights.1, 4);
        assert_eq!(r.cut, 2.0);
    }
}

#[cfg(test)]
mod exhaustive_tests {
    use super::*;
    use dcn_cache::prelude::*;
    use dcn_graph::Graph;
    use dcn_topo::jellyfish;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Brute force over all balanced 0/1 assignments (n <= 14).
    fn exhaustive_best_cut(topo: &Topology) -> f64 {
        let g = topo.graph().coalesced();
        let n = g.n();
        assert!(n <= 14, "exhaustive bisection only for tiny graphs");
        let weights: Vec<u64> = topo.servers().iter().map(|&s| s as u64).collect();
        let total: u64 = weights.iter().sum();
        let max_node = weights.iter().copied().max().unwrap_or(1).max(1);
        let strict = total.div_ceil(2) + max_node - 1;
        let mut best = f64::INFINITY;
        for mask in 1u32..(1 << n) - 1 {
            let mut w0 = 0u64;
            for (i, &w) in weights.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    w0 += w;
                }
            }
            if w0 > strict || total - w0 > strict {
                continue;
            }
            let mut cut = 0.0;
            for (e, &(u, v)) in g.edges().iter().enumerate() {
                if (mask >> u & 1) != (mask >> v & 1) {
                    cut += g.capacity(e as u32);
                }
            }
            best = best.min(cut);
        }
        best
    }

    #[test]
    fn multilevel_matches_exhaustive_on_small_instances() {
        let mut rng = StdRng::seed_from_u64(13);
        for trial in 0..4 {
            let t = jellyfish(12, 4, 2, &mut rng).unwrap();
            let heuristic = bisection_bandwidth(&t, 8, trial, &unlimited_ctx()).unwrap();
            let exact = exhaustive_best_cut(&t);
            // The heuristic is an upper bound on the true minimum...
            assert!(
                heuristic >= exact - 1e-9,
                "trial {trial}: heuristic {heuristic} below exact {exact}?!"
            );
            // ...and with 8 restarts on 12 nodes it should actually find it.
            assert!(
                heuristic <= exact + 1e-9,
                "trial {trial}: heuristic {heuristic} missed exact {exact}"
            );
        }
    }

    #[test]
    fn exhaustive_agrees_on_weighted_dumbbell() {
        let g = Graph::from_weighted_edges(
            6,
            &[
                (0, 1, 2.0),
                (1, 2, 2.0),
                (2, 0, 2.0),
                (3, 4, 2.0),
                (4, 5, 2.0),
                (5, 3, 2.0),
                (0, 3, 1.0),
            ],
        )
        .unwrap();
        let t = Topology::new(g, vec![2; 6], "dumbbell").unwrap();
        assert_eq!(exhaustive_best_cut(&t), 1.0);
        assert_eq!(bisection_bandwidth(&t, 8, 3, &unlimited_ctx()).unwrap(), 1.0);
    }
}
