//! Spectral sweep cut: the sparsest-cut heuristic of Jyothi et al. [26/27],
//! used as a comparison point in Figure 5 of the paper.
//!
//! The Fiedler vector (second-smallest Laplacian eigenvector) is computed
//! by power iteration on the shifted matrix `cI - L` with deflation of the
//! constant vector; nodes are then sorted by their component and every
//! prefix cut is evaluated. Returned is the cut minimizing the hose-model
//! sparsity `cut(S) / min(servers(S), servers(S̄))` — which is itself a
//! valid throughput upper bound (the smaller side can demand all of its
//! hose rate across the cut).

use dcn_model::Topology;

/// Result of the spectral sweep.
#[derive(Debug, Clone)]
pub struct SweepCut {
    /// Side-0 membership per switch.
    pub in_s: Vec<bool>,
    /// Cut capacity.
    pub cut: f64,
    /// Hose-sparsity `cut / min(servers(S), servers(S̄))`.
    pub sparsity: f64,
}

/// Computes the spectral sweep cut. `iters` controls power-iteration count
/// (200 is plenty for the expanders studied here).
pub fn sparsest_cut_sweep(topo: &Topology, iters: usize) -> SweepCut {
    let g = topo.graph().coalesced();
    let n = g.n();
    assert!(n >= 2, "sweep cut needs at least two switches");
    // Weighted degrees.
    let deg: Vec<f64> = (0..n as u32)
        .map(|u| g.neighbors(u).map(|(_, e)| g.capacity(e)).sum())
        .collect();
    let c = 2.0 * deg.iter().cloned().fold(0.0, f64::max) + 1.0;
    // Power iteration on (cI - L) x = c x - deg x + A x, deflating 1.
    let mut x: Vec<f64> = (0..n).map(|i| ((i * 2654435761) % 1000) as f64 / 1000.0 - 0.5).collect();
    deflate(&mut x);
    normalize(&mut x);
    let mut y = vec![0.0f64; n];
    for _ in 0..iters {
        for u in 0..n {
            y[u] = (c - deg[u]) * x[u];
        }
        for u in 0..n as u32 {
            for (v, e) in g.neighbors(u) {
                y[u as usize] += g.capacity(e) * x[v as usize];
            }
        }
        std::mem::swap(&mut x, &mut y);
        deflate(&mut x);
        normalize(&mut x);
    }
    // Sweep.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| x[a].total_cmp(&x[b]));
    let total_servers: u64 = topo.n_servers();
    let mut in_s = vec![false; n];
    let mut best: Option<SweepCut> = None;
    let mut cut = 0.0f64;
    let mut servers_s = 0u64;
    let mut current = vec![false; n];
    for (idx, &u) in order.iter().enumerate().take(n - 1) {
        // Move u into S; update the running cut.
        for (v, e) in g.neighbors(u as u32) {
            if current[v as usize] {
                cut -= g.capacity(e);
            } else {
                cut += g.capacity(e);
            }
        }
        current[u] = true;
        servers_s += topo.servers_at(u as u32) as u64;
        let _ = idx;
        let min_side = servers_s.min(total_servers - servers_s);
        if min_side == 0 {
            continue;
        }
        let sparsity = cut / min_side as f64;
        if best.as_ref().is_none_or(|b| sparsity < b.sparsity) {
            in_s.copy_from_slice(&current);
            best = Some(SweepCut {
                in_s: in_s.clone(),
                cut,
                sparsity,
            });
        }
    }
    // dcn-lint: allow(panic-freedom) — callers guarantee servers on ≥ 2 switches, so some sweep prefix splits them
    best.expect("at least one prefix with servers on both sides")
}

fn deflate(x: &mut [f64]) {
    let mean = x.iter().sum::<f64>() / x.len() as f64;
    for v in x.iter_mut() {
        *v -= mean;
    }
}

fn normalize(x: &mut [f64]) {
    let norm = x.iter().map(|v| v * v).sum::<f64>().sqrt();
    if norm > 0.0 {
        for v in x.iter_mut() {
            *v /= norm;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_graph::Graph;
    use dcn_model::Topology;

    #[test]
    fn finds_dumbbell_bottleneck() {
        let mut edges = Vec::new();
        for c in 0..2u32 {
            let base = c * 6;
            for i in 0..6 {
                for j in (i + 1)..6 {
                    edges.push((base + i, base + j));
                }
            }
        }
        edges.push((0, 6));
        let g = Graph::from_edges(12, &edges).unwrap();
        let t = Topology::new(g, vec![2; 12], "dumbbell").unwrap();
        let sc = sparsest_cut_sweep(&t, 300);
        assert_eq!(sc.cut, 1.0);
        assert!((sc.sparsity - 1.0 / 12.0).abs() < 1e-12);
        // The cut splits the cliques.
        let side0 = sc.in_s.iter().filter(|&&b| b).count();
        assert_eq!(side0, 6);
    }

    #[test]
    fn cycle_sweep_is_balanced_two_cut() {
        let edges: Vec<(u32, u32)> = (0..10u32).map(|i| (i, (i + 1) % 10)).collect();
        let g = Graph::from_edges(10, &edges).unwrap();
        let t = Topology::new(g, vec![1; 10], "ring").unwrap();
        let sc = sparsest_cut_sweep(&t, 400);
        assert_eq!(sc.cut, 2.0);
        let side0 = sc.in_s.iter().filter(|&&b| b).count();
        assert!((4..=6).contains(&side0));
    }

    #[test]
    fn sparsity_upper_bounds_cut_ratio() {
        // On a complete graph the sparsest hose cut is (n/2)^2-ish edges
        // over n/2 servers: sparsity >= 1 (full throughput plausible).
        let mut edges = Vec::new();
        for i in 0..8u32 {
            for j in (i + 1)..8 {
                edges.push((i, j));
            }
        }
        let g = Graph::from_edges(8, &edges).unwrap();
        let t = Topology::new(g, vec![1; 8], "k8").unwrap();
        let sc = sparsest_cut_sweep(&t, 200);
        assert!(sc.sparsity >= 1.0);
    }
}
