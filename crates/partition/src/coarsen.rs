//! Heavy-edge matching coarsening.

use crate::WGraph;
use rand::seq::SliceRandom;
use rand::Rng;

/// One coarsening level: the coarse graph plus the fine→coarse node map.
pub(crate) struct Level {
    pub coarse: WGraph,
    pub map: Vec<u32>,
}

/// Coarsens `g` one level by randomized heavy-edge matching: visit nodes in
/// random order; match each unmatched node with its heaviest-edge unmatched
/// neighbor. Returns `None` when coarsening stalls (less than 10% shrink).
pub(crate) fn coarsen_once<R: Rng>(g: &WGraph, rng: &mut R) -> Option<Level> {
    dcn_obs::counter!(dcn_obs::names::PARTITION_COARSEN_ROUNDS).inc();
    let n = g.n();
    let mut order: Vec<u32> = (0..n as u32).collect();
    order.shuffle(rng);
    let mut mate = vec![u32::MAX; n];
    for &u in &order {
        if mate[u as usize] != u32::MAX {
            continue;
        }
        let mut best: Option<(u32, f64)> = None;
        for &(v, w) in &g.adj[u as usize] {
            if mate[v as usize] == u32::MAX && v != u
                && best.is_none_or(|(_, bw)| w > bw) {
                    best = Some((v, w));
                }
        }
        match best {
            Some((v, _)) => {
                mate[u as usize] = v;
                mate[v as usize] = u;
            }
            None => mate[u as usize] = u, // self-matched (singleton)
        }
    }
    // Assign coarse ids.
    let mut map = vec![u32::MAX; n];
    let mut next = 0u32;
    for u in 0..n as u32 {
        if map[u as usize] != u32::MAX {
            continue;
        }
        let v = mate[u as usize];
        map[u as usize] = next;
        if v != u && v != u32::MAX {
            map[v as usize] = next;
        }
        next += 1;
    }
    let coarse_n = next as usize;
    if coarse_n as f64 > 0.9 * n as f64 {
        return None;
    }
    // Build coarse graph with accumulated weights.
    let mut node_w = vec![0u64; coarse_n];
    for u in 0..n {
        node_w[map[u] as usize] += g.node_w[u];
    }
    let mut acc: Vec<std::collections::HashMap<u32, f64>> =
        vec![std::collections::HashMap::new(); coarse_n];
    for u in 0..n {
        let cu = map[u];
        for &(v, w) in &g.adj[u] {
            let cv = map[v as usize];
            if cu != cv && (v as usize) > u {
                *acc[cu as usize].entry(cv).or_insert(0.0) += w;
                *acc[cv as usize].entry(cu).or_insert(0.0) += w;
            }
        }
    }
    let adj = acc
        .into_iter()
        .map(|m| {
            let mut v: Vec<(u32, f64)> = m.into_iter().collect();
            v.sort_by_key(|&(u, _)| u);
            v
        })
        .collect();
    Some(Level {
        coarse: WGraph { adj, node_w },
        map,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn grid(n: usize) -> WGraph {
        // Path graph with unit weights.
        let mut adj = vec![Vec::new(); n];
        for i in 0..n - 1 {
            adj[i].push(((i + 1) as u32, 1.0));
            adj[i + 1].push((i as u32, 1.0));
        }
        WGraph {
            adj,
            node_w: vec![1; n],
        }
    }

    #[test]
    fn coarsening_halves_roughly() {
        let g = grid(100);
        let mut rng = StdRng::seed_from_u64(1);
        let lvl = coarsen_once(&g, &mut rng).unwrap();
        assert!(lvl.coarse.n() <= 90);
        assert!(lvl.coarse.n() >= 50);
        assert_eq!(lvl.coarse.total_node_weight(), 100);
    }

    #[test]
    fn edge_weights_accumulate() {
        // Triangle with unit weights coarsens to 2 nodes with edge weight 2.
        let adj = vec![
            vec![(1u32, 1.0), (2u32, 1.0)],
            vec![(0u32, 1.0), (2u32, 1.0)],
            vec![(0u32, 1.0), (1u32, 1.0)],
        ];
        let g = WGraph {
            adj,
            node_w: vec![1; 3],
        };
        let mut rng = StdRng::seed_from_u64(2);
        let lvl = coarsen_once(&g, &mut rng).unwrap();
        assert_eq!(lvl.coarse.n(), 2);
        let total_w: f64 = lvl.coarse.adj[0].iter().map(|&(_, w)| w).sum();
        assert_eq!(total_w, 2.0);
    }

    #[test]
    fn cut_preserved_under_map() {
        let g = grid(20);
        let mut rng = StdRng::seed_from_u64(3);
        let lvl = coarsen_once(&g, &mut rng).unwrap();
        // Any coarse side assignment projects to a fine assignment with the
        // same cut.
        let coarse_side: Vec<u8> = (0..lvl.coarse.n()).map(|i| (i % 2) as u8).collect();
        let fine_side: Vec<u8> = lvl.map.iter().map(|&c| coarse_side[c as usize]).collect();
        assert_eq!(lvl.coarse.cut(&coarse_side), g.cut(&fine_side));
    }
}
