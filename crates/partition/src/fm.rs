//! Fiduccia–Mattheyses boundary refinement.
//!
//! Moves are allowed to pass through mildly unbalanced states (`loose`
//! limit) but a prefix of moves is only *accepted* when both sides are
//! within the `strict` balance limit — this is how FM escapes local minima
//! without drifting away from a true bisection.

use crate::WGraph;
use dcn_guard::{BudgetError, BudgetMeter};

/// One FM pass. Returns the cut improvement (>= 0 when the initial state
/// was balanced). One budget tick per move step (each an `O(n)` scan for
/// the best unlocked move); on exhaustion the tentative moves made so far
/// are rolled back to the best balanced prefix before the error
/// propagates, so `side` is never left mid-pass.
pub(crate) fn fm_pass(
    g: &WGraph,
    side: &mut [u8],
    strict: u64,
    loose: u64,
    meter: &mut BudgetMeter<'_>,
) -> Result<f64, BudgetError> {
    dcn_obs::counter!(dcn_obs::names::PARTITION_FM_PASSES).inc();
    let moves_ctr = dcn_obs::counter!(dcn_obs::names::PARTITION_FM_MOVES);
    let n = g.n();
    let gain_of = |u: usize, side: &[u8]| -> f64 {
        let mut gain = 0.0;
        for &(v, w) in &g.adj[u] {
            if side[v as usize] != side[u] {
                gain += w;
            } else {
                gain -= w;
            }
        }
        gain
    };
    let mut weight = [0u64; 2];
    for u in 0..n {
        weight[side[u] as usize] += g.node_w[u];
    }
    let balanced = |w: &[u64; 2]| w[0] <= strict && w[1] <= strict;
    let mut gains: Vec<f64> = (0..n).map(|u| gain_of(u, side)).collect();
    let mut locked = vec![false; n];
    let mut moves: Vec<usize> = Vec::with_capacity(n);
    let mut cum_gain = 0.0;
    let initial_balanced = balanced(&weight);
    let mut best_gain = if initial_balanced {
        0.0
    } else {
        f64::NEG_INFINITY
    };
    let mut best_prefix: Option<usize> = if initial_balanced { Some(0) } else { None };
    let mut exhausted: Option<BudgetError> = None;
    for _step in 0..n {
        if let Err(e) = meter.tick() {
            // Roll back to the best balanced prefix below, then report.
            exhausted = Some(e);
            break;
        }
        // Pick the best unlocked move that stays within the loose limit.
        let mut pick: Option<(usize, f64)> = None;
        for u in 0..n {
            if locked[u] {
                continue;
            }
            let to = 1 - side[u] as usize;
            if weight[to] + g.node_w[u] > loose {
                continue;
            }
            if pick.is_none_or(|(_, pg)| gains[u] > pg) {
                pick = Some((u, gains[u]));
            }
        }
        let (u, g_u) = match pick {
            Some(p) => p,
            None => break,
        };
        let from = side[u] as usize;
        let to = 1 - from;
        weight[from] -= g.node_w[u];
        weight[to] += g.node_w[u];
        side[u] = to as u8;
        locked[u] = true;
        cum_gain += g_u;
        moves_ctr.inc();
        moves.push(u);
        gains[u] = -gains[u];
        for &(v, w) in &g.adj[u] {
            let v = v as usize;
            if side[v] == side[u] {
                gains[v] -= 2.0 * w;
            } else {
                gains[v] += 2.0 * w;
            }
        }
        if balanced(&weight) && cum_gain > best_gain + 1e-12 {
            best_gain = cum_gain;
            best_prefix = Some(moves.len());
        }
    }
    let prefix = best_prefix.unwrap_or(0);
    for &u in moves.iter().skip(prefix).rev() {
        side[u] ^= 1;
    }
    match exhausted {
        Some(e) => Err(e),
        None => Ok(best_gain.max(0.0)),
    }
}

/// Runs FM passes until no improvement (bounded by `max_passes`).
pub(crate) fn refine(
    g: &WGraph,
    side: &mut [u8],
    strict: u64,
    loose: u64,
    max_passes: usize,
    meter: &mut BudgetMeter<'_>,
) -> Result<(), BudgetError> {
    for pass in 0..max_passes {
        let gain = fm_pass(g, side, strict, loose, meter)?;
        // Keep iterating at least once even with zero gain: the first pass
        // may only have restored balance.
        if gain <= 1e-12 && pass > 0 {
            break;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_guard::Budget;

    fn refine_unlimited(g: &WGraph, side: &mut [u8], strict: u64, loose: u64, passes: usize) {
        let budget = Budget::unlimited();
        let mut meter = budget.meter();
        refine(g, side, strict, loose, passes, &mut meter).unwrap();
    }

    /// Two K4 cliques joined by a single bridge edge: ideal cut = 1.
    fn two_cliques() -> WGraph {
        let mut adj = vec![Vec::new(); 8];
        let mut add = |a: usize, b: usize| {
            adj[a].push((b as u32, 1.0));
            adj[b].push((a as u32, 1.0));
        };
        for c in 0..2 {
            let base = c * 4;
            for i in 0..4 {
                for j in (i + 1)..4 {
                    add(base + i, base + j);
                }
            }
        }
        add(0, 4);
        WGraph {
            adj,
            node_w: vec![1; 8],
        }
    }

    #[test]
    fn fm_finds_bridge_cut() {
        let g = two_cliques();
        // Bad initial partition: alternate sides.
        let mut side: Vec<u8> = (0..8).map(|i| (i % 2) as u8).collect();
        refine_unlimited(&g, &mut side, 4, 6, 20);
        assert_eq!(g.cut(&side), 1.0, "side = {side:?}");
        let w0: u64 = side.iter().filter(|&&s| s == 0).count() as u64;
        assert_eq!(w0, 4);
    }

    #[test]
    fn fm_never_worsens_balanced_start() {
        let g = two_cliques();
        let mut side: Vec<u8> = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let before = g.cut(&side);
        let budget = Budget::unlimited();
        let mut meter = budget.meter();
        let gain = fm_pass(&g, &mut side, 4, 6, &mut meter).unwrap();
        assert!(gain >= 0.0);
        assert!(g.cut(&side) <= before);
        let w0: u64 = side.iter().filter(|&&s| s == 0).count() as u64;
        assert_eq!(w0, 4);
    }

    #[test]
    fn strict_limit_enforced_on_result() {
        let g = two_cliques();
        let mut side: Vec<u8> = (0..8).map(|i| (i % 2) as u8).collect();
        refine_unlimited(&g, &mut side, 5, 8, 20);
        let w0 = side.iter().filter(|&&s| s == 0).count();
        assert!((3..=5).contains(&w0), "w0 = {w0}");
    }

    #[test]
    fn unbalanced_start_gets_rebalanced_or_reverted() {
        let g = two_cliques();
        // Everything on side 0: strict limit 4 forces a rebalance if any
        // balanced prefix is reachable, else no change.
        let mut side = vec![0u8; 8];
        let budget = Budget::unlimited();
        let mut meter = budget.meter();
        fm_pass(&g, &mut side, 4, 8, &mut meter).unwrap();
        let w0 = side.iter().filter(|&&s| s == 0).count();
        assert!(w0 == 8 || w0 <= 4 + 4);
        // In practice the pass finds the 4/4 split.
        refine_unlimited(&g, &mut side, 4, 8, 10);
        let w0 = side.iter().filter(|&&s| s == 0).count();
        assert_eq!(w0, 4, "side = {side:?}");
    }

    #[test]
    fn exhausted_pass_leaves_balanced_state_and_reports() {
        let g = two_cliques();
        let mut side: Vec<u8> = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let budget = Budget::unlimited().with_iter_cap(1);
        let mut meter = budget.meter();
        // First tick consumes the cap; the second move step errors out.
        let r = fm_pass(&g, &mut side, 4, 6, &mut meter);
        assert!(matches!(r, Err(BudgetError::IterationsExceeded { cap: 1 })));
        // The rollback keeps the partition balanced.
        let w0 = side.iter().filter(|&&s| s == 0).count();
        assert_eq!(w0, 4, "side = {side:?}");
    }
}
