//! Fiduccia–Mattheyses boundary refinement.
//!
//! Moves are allowed to pass through mildly unbalanced states (`loose`
//! limit) but a prefix of moves is only *accepted* when both sides are
//! within the `strict` balance limit — this is how FM escapes local minima
//! without drifting away from a true bisection.

use crate::WGraph;

/// One FM pass. Returns the cut improvement (>= 0 when the initial state
/// was balanced).
pub(crate) fn fm_pass(g: &WGraph, side: &mut [u8], strict: u64, loose: u64) -> f64 {
    dcn_obs::counter!("partition.fm.passes").inc();
    let moves_ctr = dcn_obs::counter!("partition.fm.moves");
    let n = g.n();
    let gain_of = |u: usize, side: &[u8]| -> f64 {
        let mut gain = 0.0;
        for &(v, w) in &g.adj[u] {
            if side[v as usize] != side[u] {
                gain += w;
            } else {
                gain -= w;
            }
        }
        gain
    };
    let mut weight = [0u64; 2];
    for u in 0..n {
        weight[side[u] as usize] += g.node_w[u];
    }
    let balanced = |w: &[u64; 2]| w[0] <= strict && w[1] <= strict;
    let mut gains: Vec<f64> = (0..n).map(|u| gain_of(u, side)).collect();
    let mut locked = vec![false; n];
    let mut moves: Vec<usize> = Vec::with_capacity(n);
    let mut cum_gain = 0.0;
    let initial_balanced = balanced(&weight);
    let mut best_gain = if initial_balanced {
        0.0
    } else {
        f64::NEG_INFINITY
    };
    let mut best_prefix: Option<usize> = if initial_balanced { Some(0) } else { None };
    for _step in 0..n {
        // Pick the best unlocked move that stays within the loose limit.
        let mut pick: Option<(usize, f64)> = None;
        for u in 0..n {
            if locked[u] {
                continue;
            }
            let to = 1 - side[u] as usize;
            if weight[to] + g.node_w[u] > loose {
                continue;
            }
            if pick.is_none_or(|(_, pg)| gains[u] > pg) {
                pick = Some((u, gains[u]));
            }
        }
        let (u, g_u) = match pick {
            Some(p) => p,
            None => break,
        };
        let from = side[u] as usize;
        let to = 1 - from;
        weight[from] -= g.node_w[u];
        weight[to] += g.node_w[u];
        side[u] = to as u8;
        locked[u] = true;
        cum_gain += g_u;
        moves_ctr.inc();
        moves.push(u);
        gains[u] = -gains[u];
        for &(v, w) in &g.adj[u] {
            let v = v as usize;
            if side[v] == side[u] {
                gains[v] -= 2.0 * w;
            } else {
                gains[v] += 2.0 * w;
            }
        }
        if balanced(&weight) && cum_gain > best_gain + 1e-12 {
            best_gain = cum_gain;
            best_prefix = Some(moves.len());
        }
    }
    let prefix = best_prefix.unwrap_or(0);
    for &u in moves.iter().skip(prefix).rev() {
        side[u] ^= 1;
    }
    best_gain.max(0.0)
}

/// Runs FM passes until no improvement (bounded by `max_passes`).
pub(crate) fn refine(g: &WGraph, side: &mut [u8], strict: u64, loose: u64, max_passes: usize) {
    for pass in 0..max_passes {
        let gain = fm_pass(g, side, strict, loose);
        // Keep iterating at least once even with zero gain: the first pass
        // may only have restored balance.
        if gain <= 1e-12 && pass > 0 {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two K4 cliques joined by a single bridge edge: ideal cut = 1.
    fn two_cliques() -> WGraph {
        let mut adj = vec![Vec::new(); 8];
        let mut add = |a: usize, b: usize| {
            adj[a].push((b as u32, 1.0));
            adj[b].push((a as u32, 1.0));
        };
        for c in 0..2 {
            let base = c * 4;
            for i in 0..4 {
                for j in (i + 1)..4 {
                    add(base + i, base + j);
                }
            }
        }
        add(0, 4);
        WGraph {
            adj,
            node_w: vec![1; 8],
        }
    }

    #[test]
    fn fm_finds_bridge_cut() {
        let g = two_cliques();
        // Bad initial partition: alternate sides.
        let mut side: Vec<u8> = (0..8).map(|i| (i % 2) as u8).collect();
        refine(&g, &mut side, 4, 6, 20);
        assert_eq!(g.cut(&side), 1.0, "side = {side:?}");
        let w0: u64 = side.iter().filter(|&&s| s == 0).count() as u64;
        assert_eq!(w0, 4);
    }

    #[test]
    fn fm_never_worsens_balanced_start() {
        let g = two_cliques();
        let mut side: Vec<u8> = vec![0, 0, 0, 0, 1, 1, 1, 1];
        let before = g.cut(&side);
        let gain = fm_pass(&g, &mut side, 4, 6);
        assert!(gain >= 0.0);
        assert!(g.cut(&side) <= before);
        let w0: u64 = side.iter().filter(|&&s| s == 0).count() as u64;
        assert_eq!(w0, 4);
    }

    #[test]
    fn strict_limit_enforced_on_result() {
        let g = two_cliques();
        let mut side: Vec<u8> = (0..8).map(|i| (i % 2) as u8).collect();
        refine(&g, &mut side, 5, 8, 20);
        let w0 = side.iter().filter(|&&s| s == 0).count();
        assert!((3..=5).contains(&w0), "w0 = {w0}");
    }

    #[test]
    fn unbalanced_start_gets_rebalanced_or_reverted() {
        let g = two_cliques();
        // Everything on side 0: strict limit 4 forces a rebalance if any
        // balanced prefix is reachable, else no change.
        let mut side = vec![0u8; 8];
        fm_pass(&g, &mut side, 4, 8);
        let w0 = side.iter().filter(|&&s| s == 0).count();
        assert!(w0 == 8 || w0 <= 4 + 4);
        // In practice the pass finds the 4/4 split.
        refine(&g, &mut side, 4, 8, 10);
        let w0 = side.iter().filter(|&&s| s == 0).count();
        assert_eq!(w0, 4, "side = {side:?}");
    }
}
