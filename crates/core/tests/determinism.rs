//! The exec determinism contract, end to end: a full resilience curve and
//! a near-worst traffic search must be *byte-identical* under
//! `DCN_EXEC_THREADS=1` and `DCN_EXEC_THREADS=4`.
//!
//! Everything lives in one `#[test]` because the thread count is a
//! process-global environment variable: separate tests would race on it.

use dcn_core::nearworst::adversarial_search;
use dcn_core::resilience::failure_sweep;
use dcn_core::MatchingBackend;
use dcn_exec::{task_seed, Pool};
use dcn_guard::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use dcn_cache::prelude::*;

fn with_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    std::env::set_var("DCN_EXEC_THREADS", n.to_string());
    let out = f();
    std::env::remove_var("DCN_EXEC_THREADS");
    out
}

#[test]
fn thread_count_never_changes_results() {
    let mut rng = StdRng::seed_from_u64(99);
    let topo = dcn_topo::jellyfish(36, 8, 4, &mut rng).unwrap();

    // 1. Raw par_map with per-task RNG streams.
    let draw = |threads: usize| {
        with_threads(threads, || {
            let items: Vec<u64> = (0..64).collect();
            Pool::from_env()
                .par_map(&unlimited(), &items, |i, _| {
                    let mut r = StdRng::seed_from_u64(task_seed(7, i as u64));
                    Ok::<_, BudgetError>(r.next_u64())
                })
                .unwrap()
        })
    };
    assert_eq!(draw(1), draw(4), "par_map RNG streams depend on threads");

    // 2. Full resilience curve, compared field-by-field at the bit level.
    // Run uncached, then cold and warm against one shared cache: hits must
    // be bit-identical to recomputation at every thread count.
    let sweep = |threads: usize, cache: &dcn_cache::CacheHandle| {
        with_threads(threads, || {
            failure_sweep(
                &topo,
                &[0.0, 0.05, 0.1, 0.2],
                3,
                MatchingBackend::Exact,
                11,
                &SolveCtx::unlimited(cache),
            )
            .unwrap()
        })
    };
    let cache = dcn_cache::CacheHandle::in_memory(1 << 24);
    let runs = [
        sweep(1, &nocache()),
        sweep(4, &nocache()),
        sweep(1, &cache), // cold
        sweep(4, &cache), // warm
        sweep(1, &cache), // warm
    ];
    for pair in runs.windows(2) {
        let (s1, s4) = (&pair[0], &pair[1]);
        assert_eq!(s1.len(), s4.len());
        for (a, b) in s1.iter().zip(s4.iter()) {
            assert_eq!(a.fraction.to_bits(), b.fraction.to_bits());
            assert_eq!(a.nominal.to_bits(), b.nominal.to_bits());
            assert_eq!(a.actual.map(f64::to_bits), b.actual.map(f64::to_bits));
            assert_eq!(a.trials, b.trials);
        }
    }

    // 3. Near-worst search: the accepted swap sequence (and thus the final
    // θ and improvement count) must not depend on the pool width.
    let search = |threads: usize| {
        with_threads(threads, || {
            adversarial_search(&topo, 12, 6, 0.1, 3, &unlimited_ctx()).unwrap()
        })
    };
    let (n1, n4) = (search(1), search(4));
    assert_eq!(n1.theta.to_bits(), n4.theta.to_bits());
    assert_eq!(n1.theta_start.to_bits(), n4.theta_start.to_bits());
    assert_eq!(n1.improvements, n4.improvements);
}
