//! Theorem 8.4: a throughput *lower* bound, and the theoretical gap of
//! Figure A.1.
//!
//! Under Assumption 1 (ingress capacity saturated) and an additive path
//! slack `M` (all used paths at most `M` hops longer than shortest):
//!
//! `θ(T) >= 2E / (Σ_uv t_uv · M + Σ_uv t_uv L_uv)`
//!
//! (the paper states the uniform-H case, where `Σ t_uv <= N`). The
//! difference `tub - lower` is the **theoretical throughput gap**: the
//! worst error the upper bound can exhibit. Corollary 2 shows it vanishes
//! asymptotically; Figure A.1 plots it at finite sizes.

use crate::tub::{tub, MatchingBackend, TubResult};
use crate::CoreError;
use dcn_cache::SolveCtx;
use dcn_graph::DistMatrix;
use dcn_model::{Topology, TrafficMatrix};

/// The Theorem 8.4 lower bound for a specific traffic matrix.
pub fn throughput_lower_bound(
    topo: &Topology,
    tm: &TrafficMatrix,
    m_slack: u16,
) -> Result<f64, CoreError> {
    let _span = dcn_obs::span!(dcn_obs::names::CORE_LOWER);
    let k = topo.switches_with_servers();
    let dist = DistMatrix::from_sources(topo.graph(), &k)?;
    let mut weighted = 0.0;
    let mut volume = 0.0;
    for d in tm.demands() {
        weighted += d.amount * dist.dist(d.src, d.dst) as f64;
        volume += d.amount;
    }
    let capacity = 2.0 * topo.graph().total_capacity();
    let denom = volume * m_slack as f64 + weighted;
    if denom <= 0.0 {
        return Err(CoreError::OutOfRegime(
            "lower bound undefined for empty traffic".into(),
        ));
    }
    Ok(capacity / denom)
}

/// The theoretical gap at the maximal permutation: `(tub, lower, gap)`.
pub fn theoretical_gap(
    topo: &Topology,
    m_slack: u16,
    backend: MatchingBackend,
    ctx: &SolveCtx<'_>,
) -> Result<(TubResult, f64, f64), CoreError> {
    let ub = tub(topo, backend, ctx)?;
    let tm = ub.traffic_matrix(topo)?;
    let lb = throughput_lower_bound(topo, &tm, m_slack)?;
    let gap = (ub.bound - lb).max(0.0);
    Ok((ub, lb, gap))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_cache::prelude::*;
    use dcn_graph::Graph;
    use dcn_topo::jellyfish;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ring(n: usize, h: u32) -> Topology {
        let edges: Vec<(u32, u32)> = (0..n as u32).map(|i| (i, (i + 1) % n as u32)).collect();
        let g = Graph::from_edges(n, &edges).unwrap();
        Topology::new(g, vec![h; n], "ring").unwrap()
    }

    #[test]
    fn lower_at_most_upper() {
        let mut rng = StdRng::seed_from_u64(11);
        let t = jellyfish(24, 5, 4, &mut rng).unwrap();
        let (ub, lb, gap) = theoretical_gap(&t, 1, MatchingBackend::Exact, &unlimited_ctx()).unwrap();
        assert!(lb <= ub.bound + 1e-12);
        assert!((gap - (ub.bound - lb).max(0.0)).abs() < 1e-12);
        assert!(lb > 0.0);
    }

    #[test]
    fn lower_bound_brackets_exact_mcf() {
        // On C5 with the distance-2 permutation: tub = 1, exact θ = 5/6,
        // and the M=1 lower bound must sit at or below 5/6.
        let t = ring(5, 1);
        let ub = tub(&t, MatchingBackend::Exact, &unlimited_ctx()).unwrap();
        let tm = ub.traffic_matrix(&t).unwrap();
        let lb = throughput_lower_bound(&t, &tm, 1).unwrap();
        let exact = dcn_mcf::ksp_mcf_throughput(&t, &tm, 8, dcn_mcf::Engine::Exact, &unlimited_ctx())
            .unwrap()
            .theta_lb;
        assert!(
            lb <= exact + 1e-9,
            "lower bound {lb} exceeds exact throughput {exact}"
        );
        assert!(exact <= ub.bound + 1e-9);
        // C5 numbers: 2E = 10, volume 5, Σ t L = 10 → lb = 10/15 = 2/3.
        assert!((lb - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn zero_slack_lower_equals_tub_on_symmetric_ring() {
        // With M = 0 the lower bound equals 2E / Σ t L = tub at the
        // maximal permutation.
        let t = ring(6, 2);
        let ub = tub(&t, MatchingBackend::Exact, &unlimited_ctx()).unwrap();
        let tm = ub.traffic_matrix(&t).unwrap();
        let lb = throughput_lower_bound(&t, &tm, 0).unwrap();
        assert!((lb - ub.bound).abs() < 1e-12);
    }

    #[test]
    fn gap_shrinks_with_slack() {
        let mut rng = StdRng::seed_from_u64(12);
        let t = jellyfish(24, 5, 4, &mut rng).unwrap();
        let (_, lb1, _) = theoretical_gap(&t, 1, MatchingBackend::Exact, &unlimited_ctx()).unwrap();
        let (_, lb3, _) = theoretical_gap(&t, 3, MatchingBackend::Exact, &unlimited_ctx()).unwrap();
        assert!(lb3 <= lb1, "more slack can only lower the guarantee");
    }
}
