//! Theorem 4.1 and its corollaries: limits that hold for *every*
//! uni-regular topology with given `(N, R, H)`, independent of wiring and
//! routing.

use dcn_graph::moore;

/// Parameters of a uni-regular design point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UniRegularParams {
    /// Total servers.
    pub n_servers: u64,
    /// Switch radix.
    pub radix: u32,
    /// Servers per switch.
    pub h: u32,
}

impl UniRegularParams {
    /// Network degree `R - H`.
    pub fn r_net(&self) -> u32 {
        self.radix - self.h
    }

    /// Number of switches `N / H` (rounded up).
    pub fn n_switches(&self) -> u64 {
        (self.n_servers).div_ceil(self.h as u64)
    }

    fn validate(&self) -> Option<()> {
        if self.h == 0 || self.radix <= self.h || self.n_servers < 2 * self.h as u64 {
            None
        } else {
            Some(())
        }
    }
}

/// Theorem 4.1 (Equation 2): the maximum achievable throughput of any
/// uni-regular topology with these parameters, under any routing:
///
/// `θ* <= N (R - H) / (H^2 D)` with `D = Σ_{m=1}^{d} W_m`.
///
/// Returns `None` for parameters outside the theorem's regime (no servers,
/// degenerate degree, or no finite Moore diameter).
pub fn universal_tub(p: UniRegularParams) -> Option<f64> {
    p.validate()?;
    let n_sw = p.n_servers as f64 / p.h as f64;
    let d = moore::d_total(n_sw, p.r_net())?;
    if d <= 0.0 {
        return None;
    }
    Some(p.n_servers as f64 * p.r_net() as f64 / (p.h as f64 * p.h as f64 * d))
}

/// Equation 3: the necessary condition for *any* full-throughput
/// uni-regular topology: `D <= N (R - H) / H^2`.
pub fn full_throughput_possible(p: UniRegularParams) -> bool {
    universal_tub(p).is_some_and(|b| b >= 1.0 - 1e-12)
}

/// Corollary 1: the largest `N` (multiple of `H`) for which Equation 3
/// still admits a full-throughput uni-regular topology. Beyond this size,
/// **no** wiring of radix-`R` switches with `H` servers each can sustain
/// arbitrary traffic. Returns `None` when even the smallest size fails.
// dcn-lint: allow(budget-coverage) — closed-form scan bounded by the caller-supplied cap
pub fn max_full_throughput_servers(radix: u32, h: u32, cap: u64) -> Option<u64> {
    if h == 0 || radix <= h {
        return None;
    }
    // The bound is not perfectly monotone in N (the Moore diameter jumps),
    // but the condition eventually fails permanently (Corollary 1 proof):
    // scan exponentially for an upper bracket, then binary search the last
    // stretch, then verify by linear descent over switch counts.
    let probe = |n_servers: u64| {
        full_throughput_possible(UniRegularParams {
            n_servers,
            radix,
            h,
        })
    };
    let mut last_good: Option<u64> = None;
    let mut n = 2 * h as u64;
    while n <= cap {
        if probe(n) {
            last_good = Some(n);
        }
        // Step by one switch for small sizes, then grow multiplicatively
        // with a per-diameter-regime refinement below.
        n = (n + h as u64).max(n + n / 64);
    }
    let coarse = last_good?;
    // Refine: walk upward switch-by-switch from the coarse hit until the
    // condition fails for a full Moore-diameter regime.
    let mut best = coarse;
    let mut n = coarse + h as u64;
    let mut misses = 0u32;
    while n <= cap && misses < 4096 {
        if probe(n) {
            best = n;
            misses = 0;
        } else {
            misses += 1;
        }
        n += h as u64;
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_decreases_with_scale() {
        let small = universal_tub(UniRegularParams {
            n_servers: 1_000,
            radix: 32,
            h: 8,
        })
        .unwrap();
        let large = universal_tub(UniRegularParams {
            n_servers: 1_000_000,
            radix: 32,
            h: 8,
        })
        .unwrap();
        assert!(small > large);
        assert!(large < 1.0, "1M servers at H=8 cannot be full throughput");
    }

    #[test]
    fn paper_table3_order_of_magnitude() {
        // Table 3 (R=32): max full-throughput N is ~111K for H=8,
        // ~256K for H=7, ~3.97M for H=6. Our Eq-3 scan should land in the
        // same decade; exact values depend on Moore-bound rounding.
        let n8 = max_full_throughput_servers(32, 8, 1 << 21).unwrap();
        assert!(
            (50_000..300_000).contains(&n8),
            "H=8 limit {n8} not in expected range"
        );
        let n7 = max_full_throughput_servers(32, 7, 1 << 22).unwrap();
        assert!(
            (100_000..800_000).contains(&n7),
            "H=7 limit {n7} not in expected range"
        );
        assert!(n7 > n8, "smaller H must scale further");
    }

    #[test]
    fn more_servers_per_switch_hurts() {
        for h in 5..9u32 {
            let a = universal_tub(UniRegularParams {
                n_servers: 100_000,
                radix: 32,
                h,
            })
            .unwrap();
            let b = universal_tub(UniRegularParams {
                n_servers: 100_000,
                radix: 32,
                h: h + 1,
            })
            .unwrap();
            assert!(a > b, "H={h}: {a} should exceed H={}: {b}", h + 1);
        }
    }

    #[test]
    fn degenerate_params_rejected() {
        assert!(universal_tub(UniRegularParams {
            n_servers: 100,
            radix: 8,
            h: 0
        })
        .is_none());
        assert!(universal_tub(UniRegularParams {
            n_servers: 100,
            radix: 8,
            h: 8
        })
        .is_none());
        assert!(universal_tub(UniRegularParams {
            n_servers: 4,
            radix: 8,
            h: 4
        })
        .is_none());
        assert!(max_full_throughput_servers(8, 8, 1000).is_none());
    }

    #[test]
    fn small_topologies_admit_full_throughput() {
        // A 32-port switch with 8 servers and few switches: condition holds.
        assert!(full_throughput_possible(UniRegularParams {
            n_servers: 1024,
            radix: 32,
            h: 8
        }));
    }
}
