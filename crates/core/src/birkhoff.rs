//! Birkhoff–von Neumann decomposition of saturated hose traffic matrices.
//!
//! Theorem 2.1 of the paper rests on exactly this: a saturated hose-model
//! traffic matrix (every switch sends and receives at full rate `H`) is
//! `H` times a doubly-stochastic matrix, hence a convex combination of
//! permutation matrices — so the worst-case throughput is attained at a
//! permutation. [`birkhoff_decompose`] makes that constructive: it peels
//! permutation components off the matrix until nothing remains, which is
//! both a proof artifact (tests verify the reconstruction) and a practical
//! tool (e.g. scheduling a TM as a sequence of circuit configurations).

use crate::CoreError;
use dcn_graph::NodeId;
use dcn_match::bipartite_perfect_matching;
use dcn_model::{Topology, TrafficMatrix};
use std::collections::HashMap;

/// One permutation component of the decomposition.
#[derive(Debug, Clone)]
pub struct BirkhoffComponent {
    /// Convex weight in (0, 1].
    pub weight: f64,
    /// The permutation as `(src, dst)` switch pairs.
    pub pairs: Vec<(NodeId, NodeId)>,
}

/// Decomposes a *saturated, uniform-H* hose traffic matrix into at most
/// `max_components` permutation components: `T = H * Σ w_i P_i` with
/// `Σ w_i = 1`.
///
/// Errors when the matrix is not saturated (row/column sums differing
/// from `H` by more than 0.1%) or the peeling needs more components than
/// allowed (Birkhoff guarantees at most `(|K|-1)^2 + 1`).
// dcn-lint: allow(budget-coverage) — peeling is capped by max_components and the level binary search by log(levels)
pub fn birkhoff_decompose(
    topo: &Topology,
    tm: &TrafficMatrix,
    max_components: usize,
) -> Result<Vec<BirkhoffComponent>, CoreError> {
    let k = topo.switches_with_servers();
    let h = topo.h_max() as f64;
    let index: HashMap<NodeId, usize> = k.iter().enumerate().map(|(i, &u)| (u, i)).collect();
    let n = k.len();
    // Dense residual in K-index space, normalized to doubly stochastic.
    let mut residual = vec![0.0f64; n * n];
    for d in tm.demands() {
        let (i, j) = (index[&d.src], index[&d.dst]);
        residual[i * n + j] += d.amount / h;
    }
    const TOL: f64 = 1e-3;
    for i in 0..n {
        let row: f64 = (0..n).map(|j| residual[i * n + j]).sum();
        let col: f64 = (0..n).map(|j| residual[j * n + i]).sum();
        if (row - 1.0).abs() > TOL || (col - 1.0).abs() > TOL {
            return Err(CoreError::OutOfRegime(format!(
                "matrix is not saturated at switch {} (row {row:.4}, col {col:.4}); \
                 Birkhoff decomposition needs a saturated hose matrix",
                k[i]
            )));
        }
    }
    let mut components = Vec::new();
    let mut remaining = 1.0f64;
    const EPS: f64 = 1e-9;
    while remaining > EPS {
        if components.len() >= max_components {
            return Err(CoreError::OutOfRegime(format!(
                "decomposition exceeded {max_components} components \
                 (remaining mass {remaining:.6})"
            )));
        }
        // Max-bottleneck perfect matching on the residual support. An
        // arbitrary support matching (what a plain Hall-based peel gives)
        // can mix edges from different underlying permutations and peel
        // only the smallest entry each round, inflating the component
        // count toward |support| - n + 1. Maximizing the matching's
        // minimum residual instead peels the heaviest permutation layer
        // whole, so a mix of k permutations decomposes back into ~k
        // components. Found by binary search over the distinct residual
        // weights: keep only edges >= threshold and test for a perfect
        // matching (exists at the smallest weight by Birkhoff/Hall).
        let mut levels: Vec<f64> = residual.iter().copied().filter(|&x| x > EPS).collect();
        levels.sort_by(|a, b| b.total_cmp(a));
        levels.dedup_by(|a, b| (*a - *b).abs() < EPS);
        let adj_at = |threshold: f64| -> Vec<Vec<usize>> {
            (0..n)
                .map(|i| {
                    (0..n)
                        .filter(|&j| residual[i * n + j] >= threshold - EPS)
                        .collect::<Vec<usize>>()
                })
                .collect()
        };
        // Smallest index (largest threshold) whose subgraph has a perfect
        // matching; feasibility is monotone in the index.
        let (mut lo, mut hi) = (0usize, levels.len().saturating_sub(1));
        while lo < hi {
            let mid = (lo + hi) / 2;
            if bipartite_perfect_matching(n, &adj_at(levels[mid])).is_some() {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        let matching = bipartite_perfect_matching(n, &adj_at(levels[lo])).ok_or_else(|| {
            CoreError::OutOfRegime(
                "no perfect matching in the residual support (numerical drift)".into(),
            )
        })?;
        let weight = matching
            .iter()
            .enumerate()
            .map(|(i, &j)| residual[i * n + j])
            .fold(f64::INFINITY, f64::min);
        for (i, &j) in matching.iter().enumerate() {
            residual[i * n + j] -= weight;
        }
        remaining -= weight;
        components.push(BirkhoffComponent {
            weight,
            pairs: matching
                .iter()
                .enumerate()
                .map(|(i, &j)| (k[i], k[j]))
                .collect(),
        });
    }
    Ok(components)
}

/// Reconstructs the traffic matrix from components (for verification):
/// entries `H * Σ_i w_i [P_i]_{uv}`, skipping self-pairs.
pub fn reconstruct(
    topo: &Topology,
    components: &[BirkhoffComponent],
) -> HashMap<(NodeId, NodeId), f64> {
    let h = topo.h_max() as f64;
    let mut acc: HashMap<(NodeId, NodeId), f64> = HashMap::new();
    for c in components {
        for &(u, v) in &c.pairs {
            if u != v {
                *acc.entry((u, v)).or_insert(0.0) += c.weight * h;
            }
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_graph::Graph;

    fn ring(n: usize, h: u32) -> Topology {
        let edges: Vec<(u32, u32)> = (0..n as u32).map(|i| (i, (i + 1) % n as u32)).collect();
        let g = Graph::from_edges(n, &edges).unwrap();
        Topology::new(g, vec![h; n], "ring").unwrap()
    }

    #[test]
    fn permutation_decomposes_to_itself() {
        let t = ring(6, 3);
        let tm = TrafficMatrix::permutation(&t, &[(0, 3), (3, 0), (1, 4), (4, 1), (2, 5), (5, 2)])
            .unwrap();
        let comps = birkhoff_decompose(&t, &tm, 10).unwrap();
        assert_eq!(comps.len(), 1);
        assert!((comps[0].weight - 1.0).abs() < 1e-9);
    }

    #[test]
    fn all_to_all_reconstructs() {
        let t = ring(5, 2);
        let tm = TrafficMatrix::all_to_all(&t).unwrap();
        let comps = birkhoff_decompose(&t, &tm, 64).unwrap();
        let total: f64 = comps.iter().map(|c| c.weight).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // Reconstruction matches every entry.
        let rec = reconstruct(&t, &comps);
        for d in tm.demands() {
            let got = rec.get(&(d.src, d.dst)).copied().unwrap_or(0.0);
            assert!(
                (got - d.amount).abs() < 1e-6,
                "entry ({}, {}): {} vs {}",
                d.src,
                d.dst,
                got,
                d.amount
            );
        }
    }

    #[test]
    fn convex_mix_recovers_weights() {
        // 0.25 * P1 + 0.75 * P2 over 4 switches.
        let t = ring(4, 4);
        let p1 = TrafficMatrix::permutation(&t, &[(0, 1), (1, 0), (2, 3), (3, 2)]).unwrap();
        let p2 = TrafficMatrix::permutation(&t, &[(0, 2), (2, 0), (1, 3), (3, 1)]).unwrap();
        let mut demands = Vec::new();
        for d in p1.scaled(0.25).demands() {
            demands.push(*d);
        }
        for d in p2.scaled(0.75).demands() {
            demands.push(*d);
        }
        let mix = TrafficMatrix::new(&t, demands).unwrap();
        let comps = birkhoff_decompose(&t, &mix, 8).unwrap();
        assert_eq!(comps.len(), 2);
        let mut ws: Vec<f64> = comps.iter().map(|c| c.weight).collect();
        ws.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!((ws[0] - 0.25).abs() < 1e-9);
        assert!((ws[1] - 0.75).abs() < 1e-9);
    }

    #[test]
    fn unsaturated_rejected() {
        let t = ring(4, 2);
        let half = TrafficMatrix::permutation(&t, &[(0, 2), (2, 0), (1, 3), (3, 1)])
            .unwrap()
            .scaled(0.5);
        assert!(matches!(
            birkhoff_decompose(&t, &half, 8),
            Err(CoreError::OutOfRegime(_))
        ));
    }

    #[test]
    fn theorem21_witness() {
        // The decomposition certifies Theorem 2.1's premise: any saturated
        // hose matrix is a convex combination of permutations. Check on a
        // random hose mix.
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let t = ring(8, 3);
        let mut rng = StdRng::seed_from_u64(5);
        let mix = TrafficMatrix::random_hose(&t, 3, &mut rng).unwrap();
        let comps = birkhoff_decompose(&t, &mix, 64).unwrap();
        assert!(comps.len() <= 3 + 2, "peeling should find few components");
        let total: f64 = comps.iter().map(|c| c.weight).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for c in &comps {
            // Every component is a genuine derangement of the K set.
            assert_eq!(c.pairs.len(), 8);
            let mut seen = std::collections::HashSet::new();
            for &(u, v) in &c.pairs {
                assert!(seen.insert(v), "dst {v} repeated");
                assert_ne!(u, v, "self-pair in component");
            }
        }
    }
}
