//! Failure resilience (Figure 10): nominal vs actual throughput under
//! random link failures.
//!
//! With failure fraction `f` and pre-failure throughput `θ`, the *nominal*
//! throughput is `(1 - f) θ` — what graceful degradation would give. The
//! *actual* value is the tub of the degraded topology; the gap between the
//! two is the paper's resilience deviation.

use crate::tub::{tub, MatchingBackend};
use crate::CoreError;
use dcn_cache::SolveCtx;
use dcn_exec::{task_seed, Pool};
use dcn_model::Topology;
use dcn_topo::fail_random_links;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One point of a failure sweep.
#[derive(Debug, Clone, Copy)]
pub struct FailurePoint {
    /// Fraction of links failed.
    pub fraction: f64,
    /// `(1 - f) * θ0`.
    pub nominal: f64,
    /// Mean tub over the sampled failure patterns, or `None` when every
    /// sampled pattern disconnected the topology (`trials == 0`) — an
    /// explicitly-marked empty point, never a silent `0.0`.
    pub actual: Option<f64>,
    /// Trials that produced a connected degraded topology.
    pub trials: u32,
}

impl FailurePoint {
    /// Deviation of actual from nominal, or `None` for an empty point.
    pub fn deviation(&self) -> Option<f64> {
        self.actual.map(|a| self.nominal - a)
    }
}

/// Sweeps failure fractions, sampling `trials` random failure patterns per
/// fraction. Disconnecting samples are skipped — each skip bumps the
/// `core.resilience.disconnected_samples` counter and is reflected in the
/// returned per-point `trials` count; a point where *every* sample
/// disconnected carries `actual: None` rather than a fabricated zero.
///
/// The `fractions × trials` samples are independent, so they fan out
/// across the [`dcn_exec`] pool. Each sample draws from its own RNG stream
/// seeded by `task_seed(seed, sample_index)`, so the curve is byte-
/// identical at any `DCN_EXEC_THREADS` value (including 1). All samples
/// share the one [`CacheHandle`]; repeated failure patterns (and sweep
/// reruns) hit the cache without changing any output.
pub fn failure_sweep(
    topo: &Topology,
    fractions: &[f64],
    trials: u32,
    backend: MatchingBackend,
    seed: u64,
    ctx: &SolveCtx<'_>,
) -> Result<Vec<FailurePoint>, CoreError> {
    let theta0 = tub(topo, backend, ctx)?.bound.min(1.0);
    let skipped_ctr = dcn_obs::counter!(dcn_obs::names::CORE_RESILIENCE_DISCONNECTED_SAMPLES);
    let trials = trials.max(1);
    // One task per (fraction, trial) sample; merged back per fraction.
    let samples: Vec<f64> = fractions
        .iter()
        .flat_map(|&f| std::iter::repeat_n(f, trials as usize))
        .collect();
    let results = Pool::from_env().par_map(ctx.budget, &samples, |i, &f| -> Result<_, CoreError> {
        let _sample = dcn_obs::span!(dcn_obs::names::CORE_RESILIENCE_SAMPLE);
        let mut rng = StdRng::seed_from_u64(task_seed(seed, i as u64));
        match fail_random_links(topo, f, &mut rng) {
            Ok(degraded) => Ok(Some(tub(&degraded, backend, ctx)?.bound.min(1.0))),
            Err(_) => {
                skipped_ctr.inc();
                Ok(None)
            }
        }
    })?;
    let out = fractions
        .iter()
        .enumerate()
        .map(|(fi, &f)| {
            let per_fraction = &results[fi * trials as usize..(fi + 1) * trials as usize];
            let ok = per_fraction.iter().flatten().count() as u32;
            let sum: f64 = per_fraction.iter().flatten().sum();
            FailurePoint {
                fraction: f,
                nominal: (1.0 - f) * theta0,
                actual: (ok > 0).then(|| sum / ok as f64),
                trials: ok,
            }
        })
        .collect();
    Ok(out)
}

/// Root-mean-square deviation of actual from nominal over a sweep
/// (Figure 10(c)). Empty points (`trials == 0`, no connected sample) are
/// excluded from the mean rather than counted as zero-throughput; a sweep
/// consisting only of empty points has deviation 0.
pub fn rms_deviation(points: &[FailurePoint]) -> f64 {
    let deviations: Vec<f64> = points.iter().filter_map(FailurePoint::deviation).collect();
    if deviations.is_empty() {
        return 0.0;
    }
    let sum: f64 = deviations.iter().map(|d| d.powi(2)).sum();
    (sum / deviations.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_cache::prelude::*;
    use dcn_topo::jellyfish;

    #[test]
    fn sweep_shapes() {
        let mut rng = StdRng::seed_from_u64(17);
        let t = jellyfish(40, 8, 4, &mut rng).unwrap();
        let pts = failure_sweep(
            &t,
            &[0.0, 0.1, 0.2],
            2,
            MatchingBackend::Exact,
            5,
            &unlimited_ctx(),
        )
        .unwrap();
        assert_eq!(pts.len(), 3);
        // Zero failures: actual == nominal == θ0.
        assert!((pts[0].nominal - pts[0].actual.unwrap()).abs() < 1e-9);
        // Nominal decreases linearly.
        assert!(pts[1].nominal < pts[0].nominal);
        assert!(pts[2].nominal < pts[1].nominal);
        // Actual can never exceed 1 and stays non-negative.
        for p in &pts {
            let a = p.actual.expect("connected samples at low f");
            assert!((0.0..=1.0 + 1e-9).contains(&a), "{p:?}");
            assert!(p.trials > 0);
        }
    }

    #[test]
    fn rms_zero_for_perfect_resilience() {
        let pts = vec![
            FailurePoint {
                fraction: 0.1,
                nominal: 0.9,
                actual: Some(0.9),
                trials: 1,
            },
            FailurePoint {
                fraction: 0.2,
                nominal: 0.8,
                actual: Some(0.8),
                trials: 1,
            },
        ];
        assert_eq!(rms_deviation(&pts), 0.0);
        assert_eq!(rms_deviation(&[]), 0.0);
    }

    #[test]
    fn rms_positive_when_degrading_badly() {
        let pts = vec![FailurePoint {
            fraction: 0.1,
            nominal: 0.9,
            actual: Some(0.7),
            trials: 1,
        }];
        assert!((rms_deviation(&pts) - 0.2).abs() < 1e-12);
    }

    #[test]
    fn empty_points_are_excluded_not_zeroed() {
        // One real point with zero deviation plus one empty point: the
        // old behavior treated the empty point as actual = 0.0 and
        // reported a huge spurious deviation; now it is skipped.
        let pts = vec![
            FailurePoint {
                fraction: 0.1,
                nominal: 0.9,
                actual: Some(0.9),
                trials: 3,
            },
            FailurePoint {
                fraction: 0.9,
                nominal: 0.1,
                actual: None,
                trials: 0,
            },
        ];
        assert_eq!(rms_deviation(&pts), 0.0);
        assert_eq!(pts[1].deviation(), None);
        // A sweep made only of empty points degrades to 0, not NaN.
        assert_eq!(rms_deviation(&pts[1..]), 0.0);
    }
}
