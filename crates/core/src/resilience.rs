//! Failure resilience (Figure 10): nominal vs actual throughput under
//! random link failures.
//!
//! With failure fraction `f` and pre-failure throughput `θ`, the *nominal*
//! throughput is `(1 - f) θ` — what graceful degradation would give. The
//! *actual* value is the tub of the degraded topology; the gap between the
//! two is the paper's resilience deviation.

use crate::tub::{tub, MatchingBackend};
use crate::CoreError;
use dcn_model::Topology;
use dcn_topo::fail_random_links;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One point of a failure sweep.
#[derive(Debug, Clone, Copy)]
pub struct FailurePoint {
    /// Fraction of links failed.
    pub fraction: f64,
    /// `(1 - f) * θ0`.
    pub nominal: f64,
    /// Mean tub over the sampled failure patterns.
    pub actual: f64,
    /// Trials that produced a connected degraded topology.
    pub trials: u32,
}

/// Sweeps failure fractions, sampling `trials` random failure patterns per
/// fraction. Disconnecting samples are skipped (and reflected in the
/// returned per-point `trials` count).
pub fn failure_sweep(
    topo: &Topology,
    fractions: &[f64],
    trials: u32,
    backend: MatchingBackend,
    seed: u64,
) -> Result<Vec<FailurePoint>, CoreError> {
    let theta0 = tub(topo, backend)?.bound.min(1.0);
    let mut out = Vec::with_capacity(fractions.len());
    let mut rng = StdRng::seed_from_u64(seed);
    for &f in fractions {
        let mut sum = 0.0;
        let mut ok = 0u32;
        for _ in 0..trials.max(1) {
            match fail_random_links(topo, f, &mut rng) {
                Ok(degraded) => {
                    sum += tub(&degraded, backend)?.bound.min(1.0);
                    ok += 1;
                }
                Err(_) => continue,
            }
        }
        let actual = if ok > 0 { sum / ok as f64 } else { 0.0 };
        out.push(FailurePoint {
            fraction: f,
            nominal: (1.0 - f) * theta0,
            actual,
            trials: ok,
        });
    }
    Ok(out)
}

/// Root-mean-square deviation of actual from nominal over a sweep
/// (Figure 10(c)).
pub fn rms_deviation(points: &[FailurePoint]) -> f64 {
    if points.is_empty() {
        return 0.0;
    }
    let sum: f64 = points
        .iter()
        .map(|p| (p.nominal - p.actual).powi(2))
        .sum();
    (sum / points.len() as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_topo::jellyfish;

    #[test]
    fn sweep_shapes() {
        let mut rng = StdRng::seed_from_u64(17);
        let t = jellyfish(40, 8, 4, &mut rng).unwrap();
        let pts = failure_sweep(
            &t,
            &[0.0, 0.1, 0.2],
            2,
            MatchingBackend::Exact,
            5,
        )
        .unwrap();
        assert_eq!(pts.len(), 3);
        // Zero failures: actual == nominal == θ0.
        assert!((pts[0].nominal - pts[0].actual).abs() < 1e-9);
        // Nominal decreases linearly.
        assert!(pts[1].nominal < pts[0].nominal);
        assert!(pts[2].nominal < pts[1].nominal);
        // Actual can never exceed 1 and stays non-negative.
        for p in &pts {
            assert!((0.0..=1.0 + 1e-9).contains(&p.actual), "{p:?}");
            assert!(p.trials > 0);
        }
    }

    #[test]
    fn rms_zero_for_perfect_resilience() {
        let pts = vec![
            FailurePoint {
                fraction: 0.1,
                nominal: 0.9,
                actual: 0.9,
                trials: 1,
            },
            FailurePoint {
                fraction: 0.2,
                nominal: 0.8,
                actual: 0.8,
                trials: 1,
            },
        ];
        assert_eq!(rms_deviation(&pts), 0.0);
        assert_eq!(rms_deviation(&[]), 0.0);
    }

    #[test]
    fn rms_positive_when_degrading_badly() {
        let pts = vec![FailurePoint {
            fraction: 0.1,
            nominal: 0.9,
            actual: 0.7,
            trials: 1,
        }];
        assert!((rms_deviation(&pts) - 0.2).abs() < 1e-12);
    }
}
