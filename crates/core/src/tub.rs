//! The throughput upper bound (tub) of Theorem 2.2 / Equation 1, with the
//! Equation 18 generalization to switches whose server counts differ.
//!
//! Pipeline (§2.2 of the paper):
//!
//! 1. BFS from every server-hosting switch gives pairwise shortest-path
//!    lengths `L_uv`.
//! 2. A maximum-weight perfect matching on the implicit complete bipartite
//!    graph with weights `L_uv · min(H_u, H_v)` yields the **maximal
//!    permutation traffic matrix** — the permutation that maximizes total
//!    (demand-weighted) path length.
//! 3. `tub = 2E / Σ_(u,v) L_uv · min(H_u, H_v)` over the matched pairs.
//!
//! Any permutation yields a valid upper bound (Equation 1 takes a minimum
//! over permutations), so the scalable greedy matching (the paper's own
//! Algorithm 1) trades tightness for speed without losing soundness.

use crate::CoreError;
use dcn_cache::{CacheEntry, CacheKey, KeyBuilder, SolveCtx};
use dcn_graph::{DistMatrix, NodeId};
use dcn_guard::Budget;
use dcn_match::{greedy_max, hungarian_max, improve_2swap, Matching};
use dcn_model::{Topology, TrafficMatrix};
use dcn_obs::json::Json;

/// Which matching algorithm computes the maximal permutation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatchingBackend {
    /// Exact O(n^3) Hungarian — the tightest bound, small/medium topologies.
    Exact,
    /// The paper's Algorithm 1 greedy plus `passes` 2-swap sweeps.
    Greedy {
        /// Number of 2-swap local-search sweeps after the greedy pass.
        improvement_passes: usize,
    },
    /// Exact below `exact_below` server-hosting switches, greedy above.
    Auto {
        /// Threshold (in server-hosting switches) for the exact backend.
        exact_below: usize,
    },
}

impl Default for MatchingBackend {
    fn default() -> Self {
        MatchingBackend::Auto { exact_below: 1024 }
    }
}

impl MatchingBackend {
    /// Serializes the backend for `dcn-fleet` work-unit payloads.
    pub fn to_json(&self) -> Json {
        match self {
            MatchingBackend::Exact => Json::obj([("kind", Json::Str("exact".to_string()))]),
            MatchingBackend::Greedy { improvement_passes } => Json::obj([
                ("kind", Json::Str("greedy".to_string())),
                ("improvement_passes", Json::Num(*improvement_passes as f64)),
            ]),
            MatchingBackend::Auto { exact_below } => Json::obj([
                ("kind", Json::Str("auto".to_string())),
                ("exact_below", Json::Num(*exact_below as f64)),
            ]),
        }
    }

    /// Deserializes a [`MatchingBackend::to_json`] record.
    pub fn from_json(json: &Json) -> Result<MatchingBackend, String> {
        let kind = json
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("matching backend missing kind")?;
        match kind {
            "exact" => Ok(MatchingBackend::Exact),
            "greedy" => {
                let improvement_passes = json
                    .get("improvement_passes")
                    .and_then(Json::as_u64)
                    .ok_or("greedy backend missing improvement_passes")?;
                Ok(MatchingBackend::Greedy {
                    improvement_passes: improvement_passes as usize,
                })
            }
            "auto" => {
                let exact_below = json
                    .get("exact_below")
                    .and_then(Json::as_u64)
                    .ok_or("auto backend missing exact_below")?;
                Ok(MatchingBackend::Auto {
                    exact_below: exact_below as usize,
                })
            }
            other => Err(format!("unknown matching backend kind {other:?}")),
        }
    }
}

/// Result of a tub computation.
#[derive(Debug, Clone)]
pub struct TubResult {
    /// The throughput upper bound (Equation 1 / 18). May exceed 1 for
    /// over-provisioned fabrics; `min(bound, ...)` is up to the caller.
    pub bound: f64,
    /// The maximal permutation: `(src, dst)` switch pairs with demand
    /// `min(H_src, H_dst)` each.
    pub pairs: Vec<(NodeId, NodeId)>,
    /// The denominator `Σ L_uv · min(H_u, H_v)`.
    pub weighted_path_len: f64,
    /// `2E`: twice the total switch-to-switch link capacity.
    pub capacity: f64,
    /// Which backend produced the matching.
    pub backend: &'static str,
    /// True when the requested exact matching exhausted its budget and the
    /// greedy fallback produced this (still sound, possibly looser) bound.
    pub fallback: bool,
}

impl TubResult {
    /// The maximal permutation as a validated traffic matrix.
    pub fn traffic_matrix(&self, topo: &Topology) -> Result<TrafficMatrix, CoreError> {
        Ok(TrafficMatrix::permutation(topo, &self.pairs)?)
    }

    /// True if the bound admits full throughput (>= 1 up to fp jitter).
    pub fn is_full_throughput(&self) -> bool {
        self.bound >= 1.0 - 1e-9
    }
}

/// Maps a persisted backend label back to the interned `&'static str` the
/// solver uses; unknown labels reject the record (→ quarantine).
fn intern_backend(label: &str) -> Result<&'static str, String> {
    match label {
        "hungarian" => Ok("hungarian"),
        "greedy+2swap" => Ok("greedy+2swap"),
        "greedy+2swap(fallback)" => Ok("greedy+2swap(fallback)"),
        other => Err(format!("unknown tub backend {other:?}")),
    }
}

impl CacheEntry for TubResult {
    const KIND: &'static str = "tub";

    fn approx_bytes(&self) -> usize {
        std::mem::size_of::<TubResult>() + self.pairs.len() * std::mem::size_of::<(NodeId, NodeId)>()
    }

    fn to_json(&self) -> Json {
        let pairs = self
            .pairs
            .iter()
            .map(|&(u, v)| Json::Arr(vec![Json::Num(u as f64), Json::Num(v as f64)]))
            .collect();
        Json::obj([
            ("bound", Json::Num(self.bound)),
            ("weighted_path_len", Json::Num(self.weighted_path_len)),
            ("capacity", Json::Num(self.capacity)),
            ("backend", Json::Str(self.backend.to_string())),
            ("fallback", Json::Bool(self.fallback)),
            ("pairs", Json::Arr(pairs)),
        ])
    }

    fn from_json(json: &Json) -> Result<Self, String> {
        let num = |k: &str| {
            json.get(k)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("missing {k}"))
        };
        let backend = json
            .get("backend")
            .and_then(Json::as_str)
            .ok_or("missing backend")?;
        let fallback = match json.get("fallback") {
            Some(Json::Bool(b)) => *b,
            _ => return Err("missing fallback".into()),
        };
        let mut pairs = Vec::new();
        for p in json.get("pairs").and_then(Json::as_array).ok_or("missing pairs")? {
            let p = p.as_array().ok_or("bad pair")?;
            let [u, v] = p else { return Err("bad pair arity".into()) };
            let (u, v) = (u.as_u64().ok_or("bad pair src")?, v.as_u64().ok_or("bad pair dst")?);
            if u > NodeId::MAX as u64 || v > NodeId::MAX as u64 {
                return Err("pair out of NodeId range".into());
            }
            pairs.push((u as NodeId, v as NodeId));
        }
        Ok(TubResult {
            bound: num("bound")?,
            pairs,
            weighted_path_len: num("weighted_path_len")?,
            capacity: num("capacity")?,
            backend: intern_backend(backend)?,
            fallback,
        })
    }

    fn validate(&self) -> Result<(), String> {
        if !(self.bound.is_finite() && self.weighted_path_len.is_finite() && self.capacity.is_finite())
        {
            return Err("non-finite tub fields".into());
        }
        if self.weighted_path_len <= 0.0 || self.bound <= 0.0 || self.capacity <= 0.0 {
            return Err("non-positive tub fields".into());
        }
        // Equation 1's defining identity must survive the round trip.
        let recomputed = self.capacity / self.weighted_path_len;
        if (recomputed - self.bound).abs() > dcn_guard::validate::DEFAULT_TOL * self.bound.max(1.0) {
            return Err(format!(
                "bound {} inconsistent with capacity/weight {}",
                self.bound, recomputed
            ));
        }
        if self.pairs.is_empty() {
            return Err("empty maximal permutation".into());
        }
        if self.pairs.iter().any(|&(u, v)| u == v) {
            return Err("self-pair in maximal permutation".into());
        }
        Ok(())
    }
}

/// Cache key for a tub computation: topology content plus the matching
/// backend and its parameters. The budget is deliberately excluded (see
/// the `dcn-cache` crate docs).
fn tub_key(topo: &Topology, backend: MatchingBackend) -> CacheKey {
    let (tag, param) = match backend {
        MatchingBackend::Exact => (0u64, 0u64),
        MatchingBackend::Greedy { improvement_passes } => (1, improvement_passes as u64),
        MatchingBackend::Auto { exact_below } => (2, exact_below as u64),
    };
    KeyBuilder::new("tub")
        .topology(topo)
        .u64(tag)
        .u64(param)
        .finish()
}

/// Computes the throughput upper bound for a (near-)uni-regular or
/// bi-regular topology.
///
/// The Hungarian matcher meters the [`Budget`]; if it is exhausted the
/// computation *degrades* rather than fails: the paper's own greedy
/// Algorithm 1 (plus 2-swap sweeps) stands in, which still yields a sound
/// upper bound — any permutation does. The degradation is flagged in
/// [`TubResult::fallback`] and counted in `core.tub.fallbacks`, so
/// manifests record it.
///
/// Results are memoized through the [`CacheHandle`] under a key derived
/// from the topology content and backend (budget excluded — a cached
/// generous-budget result can serve a tight-budget call). Pass
/// `dcn_cache::prelude::nocache()` to always recompute.
///
/// ```
/// use dcn_cache::prelude::*;
/// use dcn_core::{tub, MatchingBackend};
/// use dcn_guard::prelude::*;
/// use dcn_topo::fat_tree;
///
/// // Every Clos has full throughput (§4.1): the bound is exactly 1.
/// let topo = fat_tree(4)?;
/// let bound = tub(&topo, MatchingBackend::Exact, &unlimited_ctx())?;
/// assert!((bound.bound - 1.0).abs() < 1e-9);
/// assert!(bound.is_full_throughput());
/// # Ok::<(), dcn_core::CoreError>(())
/// ```
pub fn tub(
    topo: &Topology,
    backend: MatchingBackend,
    ctx: &SolveCtx<'_>,
) -> Result<TubResult, CoreError> {
    ctx.cache.get_or_compute(|| tub_key(topo, backend), || tub_uncached(topo, backend, ctx.budget))
}

fn tub_uncached(
    topo: &Topology,
    backend: MatchingBackend,
    budget: &Budget,
) -> Result<TubResult, CoreError> {
    let _span = dcn_obs::span!(dcn_obs::names::CORE_TUB);
    let k = topo.switches_with_servers();
    if k.len() < 2 {
        return Err(CoreError::OutOfRegime(
            "tub needs at least two switches with servers".into(),
        ));
    }
    let dist = {
        let _apsp = dcn_obs::span!(dcn_obs::names::CORE_TUB_APSP);
        DistMatrix::from_sources(topo.graph(), &k)?
    };
    let weight = |i: usize, j: usize| -> i64 {
        if i == j {
            return 0;
        }
        let (u, v) = (k[i], k[j]);
        let h = topo.servers_at(u).min(topo.servers_at(v)) as i64;
        dist.dist(u, v) as i64 * h
    };
    let n = k.len();
    let (matching, backend_name, fallback) = {
        let _m = dcn_obs::span!(dcn_obs::names::CORE_TUB_MATCHING);
        run_matching(n, weight, backend, budget)
    };
    let mut pairs = Vec::with_capacity(n);
    let mut weighted_path_len = 0.0;
    for (i, &j) in matching.assignment.iter().enumerate() {
        if i == j {
            continue;
        }
        pairs.push((k[i], k[j]));
        weighted_path_len += weight(i, j) as f64;
    }
    let capacity = 2.0 * topo.graph().total_capacity();
    if weighted_path_len <= 0.0 {
        return Err(CoreError::OutOfRegime(
            "maximal permutation has zero total path length".into(),
        ));
    }
    let bound = capacity / weighted_path_len;
    dcn_obs::gauge!(dcn_obs::names::CORE_TUB_BOUND).set(bound);
    Ok(TubResult {
        bound,
        pairs,
        weighted_path_len,
        capacity,
        backend: backend_name,
        fallback,
    })
}

fn run_matching(
    n: usize,
    weight: impl Fn(usize, usize) -> i64 + Copy,
    backend: MatchingBackend,
    budget: &Budget,
) -> (Matching, &'static str, bool) {
    // Exact matching with greedy degradation on budget exhaustion. The
    // greedy path is O(n^2) with no unbounded loops, so it always
    // completes; soundness is preserved because Equation 1 minimizes over
    // permutations — any permutation upper-bounds throughput.
    let exact_or_greedy = |passes: usize| match hungarian_max(n, weight, budget) {
        Ok(m) => (m, "hungarian", false),
        Err(e) => {
            dcn_obs::counter!(dcn_obs::names::CORE_TUB_FALLBACKS).inc();
            dcn_obs::obs_log!("core.tub: hungarian aborted ({e}); using greedy fallback");
            let mut m = greedy_max(n, weight);
            improve_2swap(n, weight, &mut m, passes);
            (m, "greedy+2swap(fallback)", true)
        }
    };
    match backend {
        MatchingBackend::Exact => exact_or_greedy(2),
        MatchingBackend::Greedy { improvement_passes } => {
            let mut m = greedy_max(n, weight);
            improve_2swap(n, weight, &mut m, improvement_passes);
            (m, "greedy+2swap", false)
        }
        MatchingBackend::Auto { exact_below } => {
            if n < exact_below {
                exact_or_greedy(2)
            } else {
                let mut m = greedy_max(n, weight);
                improve_2swap(n, weight, &mut m, 2);
                (m, "greedy+2swap", false)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_cache::prelude::*;
    use dcn_graph::Graph;
    use dcn_topo::{fat_tree, jellyfish};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ring(n: usize, h: u32) -> Topology {
        let edges: Vec<(u32, u32)> = (0..n as u32).map(|i| (i, (i + 1) % n as u32)).collect();
        let g = Graph::from_edges(n, &edges).unwrap();
        Topology::new(g, vec![h; n], "ring").unwrap()
    }

    #[test]
    fn five_cycle_tub_is_one() {
        // Figure 6 middle topology: C5, H=1. Maximal permutation pairs
        // nodes at distance 2: denominator 5*2 = 10, capacity 2E = 10.
        let t = ring(5, 1);
        let r = tub(&t, MatchingBackend::Exact, &unlimited_ctx()).unwrap();
        assert!((r.bound - 1.0).abs() < 1e-12, "bound = {}", r.bound);
        assert_eq!(r.pairs.len(), 5);
        assert!(r.is_full_throughput());
    }

    #[test]
    fn four_cycle_tub() {
        // C4, H=1: maximal permutation pairs opposite corners (distance 2),
        // denominator 4*2 = 8, 2E = 8 → tub = 1.
        let t = ring(4, 1);
        let r = tub(&t, MatchingBackend::Exact, &unlimited_ctx()).unwrap();
        assert!((r.bound - 1.0).abs() < 1e-12);
    }

    #[test]
    fn fat_tree_tub_is_one() {
        // Table A.1: Clos tub = 1.00.
        let t = fat_tree(4).unwrap();
        let r = tub(&t, MatchingBackend::Exact, &unlimited_ctx()).unwrap();
        assert!((r.bound - 1.0).abs() < 1e-9, "bound = {}", r.bound);
        let t8 = fat_tree(8).unwrap();
        let r8 = tub(&t8, MatchingBackend::Exact, &unlimited_ctx()).unwrap();
        assert!((r8.bound - 1.0).abs() < 1e-9, "bound = {}", r8.bound);
    }

    #[test]
    fn tub_upper_bounds_mcf_throughput() {
        // Soundness: tub >= exact KSP-MCF throughput of the maximal
        // permutation, on several random Jellyfish instances.
        let mut rng = StdRng::seed_from_u64(3);
        for seed in 0..3u64 {
            let _ = seed;
            let t = jellyfish(16, 4, 3, &mut rng).unwrap();
            let r = tub(&t, MatchingBackend::Exact, &unlimited_ctx()).unwrap();
            let tm = r.traffic_matrix(&t).unwrap();
            let th = dcn_mcf::ksp_mcf_throughput(&t, &tm, 32, dcn_mcf::Engine::Exact, &unlimited_ctx())
                .unwrap()
                .theta_lb;
            assert!(
                th <= r.bound + 1e-9,
                "mcf {} > tub {} on {}",
                th,
                r.bound,
                t.name()
            );
        }
    }

    #[test]
    fn greedy_bound_is_valid_but_looser() {
        let mut rng = StdRng::seed_from_u64(5);
        let t = jellyfish(30, 5, 4, &mut rng).unwrap();
        let exact = tub(&t, MatchingBackend::Exact, &unlimited_ctx()).unwrap();
        let greedy = tub(
            &t,
            MatchingBackend::Greedy {
                improvement_passes: 3,
            },
            &unlimited_ctx(),
        )
        .unwrap();
        // Greedy's permutation has no greater total weight → bound no
        // tighter (no smaller... the bound is capacity/weight, so greedy's
        // bound is >= exact's bound).
        assert!(greedy.bound >= exact.bound - 1e-12);
        assert_eq!(greedy.backend, "greedy+2swap");
        assert_eq!(exact.backend, "hungarian");
    }

    #[test]
    fn auto_backend_switches() {
        let mut rng = StdRng::seed_from_u64(6);
        let t = jellyfish(20, 4, 2, &mut rng).unwrap();
        let small = tub(&t, MatchingBackend::Auto { exact_below: 100 }, &unlimited_ctx()).unwrap();
        assert_eq!(small.backend, "hungarian");
        let large = tub(&t, MatchingBackend::Auto { exact_below: 10 }, &unlimited_ctx()).unwrap();
        assert_eq!(large.backend, "greedy+2swap");
    }

    #[test]
    fn biregular_ignores_serverless_switches_in_pairs() {
        let t = fat_tree(4).unwrap();
        let r = tub(&t, MatchingBackend::Exact, &unlimited_ctx()).unwrap();
        for &(u, v) in &r.pairs {
            assert!(t.servers_at(u) > 0);
            assert!(t.servers_at(v) > 0);
        }
    }

    #[test]
    fn eq18_uses_min_h() {
        // Two switches joined by a link, H = 1 and 3: demand min = 1,
        // L = 1 → denominator 2 (both directions), 2E = 2 → tub = 1.
        let g = Graph::from_edges(2, &[(0, 1)]).unwrap();
        let t = Topology::new(g, vec![1, 3], "pair").unwrap();
        let r = tub(&t, MatchingBackend::Exact, &unlimited_ctx()).unwrap();
        assert!((r.bound - 1.0).abs() < 1e-12);
    }

    #[test]
    fn exhausted_hungarian_degrades_to_greedy() {
        let t = ring(8, 1);
        let tiny = Budget::unlimited().with_iter_cap(1);
        let r = tub(&t, MatchingBackend::Exact, &nocache_ctx(&tiny)).unwrap();
        assert!(r.fallback);
        assert_eq!(r.backend, "greedy+2swap(fallback)");
        // Still a sound upper bound: no tighter than the exact one.
        let exact = tub(&t, MatchingBackend::Exact, &unlimited_ctx()).unwrap();
        assert!(!exact.fallback);
        assert!(r.bound >= exact.bound - 1e-12);
        // And repeated unlimited calls agree.
        let b = tub(&t, MatchingBackend::Exact, &unlimited_ctx()).unwrap();
        assert_eq!(b.bound, exact.bound);
    }

    #[test]
    fn single_server_switch_errors() {
        let g = Graph::from_edges(2, &[(0, 1)]).unwrap();
        let t = Topology::new(g, vec![2, 0], "one").unwrap();
        assert!(matches!(
            tub(&t, MatchingBackend::Exact, &unlimited_ctx()),
            Err(CoreError::OutOfRegime(_))
        ));
    }
}
