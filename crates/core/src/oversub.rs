//! Over-subscription ratios (Table 5): bisection-bandwidth based vs
//! throughput based.
//!
//! The Fat-Tree paper defines over-subscription from bisection bandwidth;
//! this paper argues throughput itself is the right measure for
//! uni-regular topologies (`θ = f` means every server can sustain a
//! fraction `f` of line rate, i.e. over-subscription `1 : 1/f`).

use crate::tub::{tub, MatchingBackend};
use crate::CoreError;
use dcn_cache::SolveCtx;
use dcn_model::Topology;
use dcn_partition::bisection_bandwidth;

/// The two over-subscription measures for one topology.
#[derive(Debug, Clone, Copy)]
pub struct Oversubscription {
    /// `BBW / (N/2)`: 1.0 = full bisection bandwidth. Values above 1 are
    /// clamped (extra bisection capacity cannot be used by the hose model).
    pub bbw_fraction: f64,
    /// The throughput upper bound, clamped to 1.
    pub tub_fraction: f64,
}

impl Oversubscription {
    /// Renders a fraction as the paper's `a:b` ratio with small integers
    /// (e.g. 0.75 → "3:4", 0.5 → "1:2").
    pub fn ratio_string(fraction: f64) -> String {
        let mut best = (1u32, 1u32, f64::INFINITY);
        for den in 1..=16u32 {
            let num = (fraction * den as f64).round().max(1.0) as u32;
            let err = (fraction - num as f64 / den as f64).abs();
            if err < best.2 - 1e-12 {
                best = (num, den, err);
            }
        }
        let g = gcd(best.0, best.1);
        format!("{}:{}", best.0 / g, best.1 / g)
    }
}

fn gcd(a: u32, b: u32) -> u32 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Computes both over-subscription measures.
pub fn oversubscription(
    topo: &Topology,
    backend: MatchingBackend,
    bbw_tries: u32,
    seed: u64,
    ctx: &SolveCtx<'_>,
) -> Result<Oversubscription, CoreError> {
    let bbw = bisection_bandwidth(topo, bbw_tries, seed, ctx)?;
    let half = topo.n_servers() as f64 / 2.0;
    let t = tub(topo, backend, ctx)?;
    Ok(Oversubscription {
        bbw_fraction: (bbw / half).min(1.0),
        tub_fraction: t.bound.min(1.0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_cache::prelude::*;
    use dcn_topo::{fat_tree, jellyfish};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ratio_strings_match_paper_format() {
        assert_eq!(Oversubscription::ratio_string(0.75), "3:4");
        assert_eq!(Oversubscription::ratio_string(0.5), "1:2");
        assert_eq!(Oversubscription::ratio_string(1.0), "1:1");
        assert_eq!(Oversubscription::ratio_string(2.0 / 3.0), "2:3");
    }

    #[test]
    fn fat_tree_measures_agree() {
        // Table 5: for Clos the two measures coincide (both 1:2 for the
        // oversubscribed case; both full here).
        let t = fat_tree(4).unwrap();
        let o = oversubscription(&t, MatchingBackend::Exact, 6, 3, &unlimited_ctx()).unwrap();
        assert!((o.tub_fraction - 1.0).abs() < 1e-9);
        assert!((o.bbw_fraction - 1.0).abs() < 1e-9);
    }

    #[test]
    fn uniregular_tub_leq_bbw_measure() {
        // Table 5's point: the throughput-based measure is more
        // conservative than the BBW-based one. The separation appears once
        // maximal-permutation path lengths exceed ~3 hops, i.e. well past
        // the Moore diameter-2 size for the network degree (here 26
        // switches for degree 5; we use 150). Both quantities are
        // heuristic estimates (TUB via matching on BFS distances, BBW via
        // a few randomized partitioner tries), so the comparison carries a
        // few percent of noise on any single instance; assert the trend
        // with a 5-point slack.
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..2 {
            let t = jellyfish(150, 5, 5, &mut rng).unwrap();
            let o = oversubscription(&t, MatchingBackend::Exact, 4, 11, &unlimited_ctx()).unwrap();
            assert!(
                o.tub_fraction <= o.bbw_fraction + 0.05,
                "tub {} vs bbw {}",
                o.tub_fraction,
                o.bbw_fraction
            );
        }
    }
}
