//! Adversarial traffic search: can anything beat the maximal permutation?
//!
//! §3.1 of the paper validates the maximal permutation as (near-)worst-case
//! by comparing against random permutations. This module goes one step
//! further: a local search over permutation space that starts from the
//! maximal permutation and accepts 2-swaps whenever they *reduce* the
//! routed KSP-MCF throughput. If the search cannot descend, the matching
//! heuristic really did find (a local minimum indistinguishable from) the
//! worst case — a stronger certificate than random sampling.

use crate::tub::{tub, MatchingBackend};
use crate::CoreError;
use dcn_cache::SolveCtx;
use dcn_exec::Pool;
use dcn_graph::NodeId;
use dcn_mcf::{ksp_mcf_throughput, Engine};
use dcn_model::{Topology, TrafficMatrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Outcome of the adversarial search.
#[derive(Debug, Clone)]
pub struct AdversarialResult {
    /// The worst traffic matrix found.
    pub tm: TrafficMatrix,
    /// Its routed (FPTAS lower-bound) throughput.
    pub theta: f64,
    /// Throughput of the starting maximal permutation.
    pub theta_start: f64,
    /// Accepted descending swaps.
    pub improvements: u32,
}

/// Fixed number of 2-swap proposals evaluated per descent round.
///
/// Deliberately *not* derived from the pool's thread count: the proposal
/// sequence and acceptance decisions must be identical at any
/// `DCN_EXEC_THREADS`, so the batch boundary is part of the algorithm,
/// not the execution environment.
const PROPOSAL_BATCH: usize = 8;

/// Searches for a permutation with lower KSP-MCF throughput than the
/// maximal permutation, using `iters` random 2-swap proposals.
///
/// Each proposal exchanges the destinations of two sources. Proposals are
/// drawn in fixed batches of [`PROPOSAL_BATCH`] from a single seeded RNG,
/// the batch's MCF solves fan out across the [`dcn_exec`] pool, and the
/// *steepest* strictly-descending candidate of the batch (first on ties)
/// is accepted. Acceptance tests are expensive — every one is an MCF
/// solve — so keep `iters` modest (tens) and topologies small/medium.
pub fn adversarial_search(
    topo: &Topology,
    iters: u32,
    k_paths: usize,
    eps: f64,
    seed: u64,
    ctx: &SolveCtx<'_>,
) -> Result<AdversarialResult, CoreError> {
    let bound = tub(topo, MatchingBackend::Auto { exact_below: 500 }, ctx)?;
    let mut pairs: Vec<(NodeId, NodeId)> = bound.pairs.clone();
    let eval = |pairs: &[(NodeId, NodeId)]| -> Result<f64, CoreError> {
        let tm = TrafficMatrix::permutation(topo, pairs)?;
        Ok(ksp_mcf_throughput(topo, &tm, k_paths, Engine::Fptas { eps }, ctx)?.theta_lb)
    };
    let mut theta = eval(&pairs)?;
    let theta_start = theta;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut improvements = 0u32;
    let pool = Pool::from_env();
    let mut proposed = 0u32;
    while proposed < iters && pairs.len() >= 2 {
        // Draw the whole batch serially from the shared RNG so the
        // proposal stream does not depend on evaluation order.
        let mut candidates: Vec<Vec<(NodeId, NodeId)>> = Vec::with_capacity(PROPOSAL_BATCH);
        while proposed < iters && candidates.len() < PROPOSAL_BATCH {
            proposed += 1;
            let a = rng.gen_range(0..pairs.len());
            // Draw b uniformly from the other len-1 indices directly,
            // rather than rejection-sampling until b != a.
            let mut b = rng.gen_range(0..pairs.len() - 1);
            if b >= a {
                b += 1;
            }
            let mut candidate = pairs.clone();
            let (da, db) = (candidate[a].1, candidate[b].1);
            // Swapping destinations can create self-pairs; skip those.
            if candidate[a].0 == db || candidate[b].0 == da {
                continue;
            }
            candidate[a].1 = db;
            candidate[b].1 = da;
            candidates.push(candidate);
        }
        if candidates.is_empty() {
            continue;
        }
        let thetas = pool.par_map(ctx.budget, &candidates, |_, cand| {
            let _cand = dcn_obs::span!(dcn_obs::names::CORE_NEARWORST_CANDIDATE);
            eval(cand)
        })?;
        let best = thetas
            .iter()
            .enumerate()
            .filter(|(_, &t)| t < theta - 1e-9)
            .min_by(|(_, x), (_, y)| x.total_cmp(y));
        if let Some((ci, &cand_theta)) = best {
            pairs = candidates.swap_remove(ci);
            theta = cand_theta;
            improvements += 1;
        }
    }
    Ok(AdversarialResult {
        tm: TrafficMatrix::permutation(topo, &pairs)?,
        theta,
        theta_start,
        improvements,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_cache::prelude::*;
    use dcn_topo::jellyfish;

    #[test]
    fn search_never_increases_theta() {
        let mut rng = StdRng::seed_from_u64(3);
        let topo = jellyfish(20, 5, 4, &mut rng).unwrap();
        let r = adversarial_search(&topo, 10, 16, 0.1, 7, &unlimited_ctx()).unwrap();
        assert!(r.theta <= r.theta_start + 1e-9);
        assert!(r.tm.is_permutation(&topo));
        r.tm.check_hose(&topo).unwrap();
    }

    #[test]
    fn maximal_permutation_is_near_local_minimum() {
        // On a small expander the matching-based worst case should leave
        // little room for descent: any improvement found is small relative
        // to the throughput itself (within the FPTAS's eps plus slack).
        let mut rng = StdRng::seed_from_u64(5);
        let topo = jellyfish(16, 4, 3, &mut rng).unwrap();
        let r = adversarial_search(&topo, 20, 16, 0.05, 11, &unlimited_ctx()).unwrap();
        let descent = (r.theta_start - r.theta) / r.theta_start.max(1e-9);
        assert!(
            descent < 0.15,
            "local search descended {:.1}% below the maximal permutation \
             ({} -> {})",
            descent * 100.0,
            r.theta_start,
            r.theta
        );
    }
}
