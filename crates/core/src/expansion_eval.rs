//! Throughput under incremental expansion (§5.1 and Figure A.4).
//!
//! Starting from a uni-regular topology, switches are added by random
//! rewiring (keeping servers per switch constant) and the tub is tracked,
//! normalized by the initial value. The paper's finding: expansion that
//! ignores the target size can push a full-throughput topology well below
//! full throughput.

use crate::tub::{tub, MatchingBackend};
use crate::CoreError;
use dcn_cache::SolveCtx;
use dcn_exec::Pool;
use dcn_model::Topology;
use dcn_topo::expand_by_rewiring;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One point of an expansion curve.
#[derive(Debug, Clone, Copy)]
pub struct ExpansionPoint {
    /// Current size over initial size (1.0 = no expansion yet).
    pub ratio: f64,
    /// Absolute tub at this size.
    pub tub: f64,
    /// tub normalized by the initial tub (both clamped to 1 first, as the
    /// paper normalizes deployable throughput).
    pub normalized: f64,
}

/// Expands `initial` in `steps` increments of `step_fraction` of the
/// *initial* switch count (the paper uses 20% steps up to 2.6x), computing
/// the tub after each step.
#[allow(clippy::too_many_arguments)]
pub fn expansion_curve(
    initial: &Topology,
    h: u32,
    steps: usize,
    step_fraction: f64,
    backend: MatchingBackend,
    seed: u64,
    ctx: &SolveCtx<'_>,
) -> Result<Vec<ExpansionPoint>, CoreError> {
    if step_fraction.is_nan() || step_fraction <= 0.0 {
        return Err(CoreError::OutOfRegime(format!(
            "step fraction must be positive (got {step_fraction})"
        )));
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let n0 = initial.n_switches();
    let step = ((n0 as f64 * step_fraction).round() as usize).max(1);
    let theta0 = tub(initial, backend, ctx)?.bound.min(1.0);
    let mut out = vec![ExpansionPoint {
        ratio: 1.0,
        tub: theta0,
        normalized: 1.0,
    }];
    let mut current = initial.clone();
    for _ in 0..steps {
        current = expand_by_rewiring(&current, step, h, &mut rng)?;
        let th = tub(&current, backend, ctx)?.bound.min(1.0);
        out.push(ExpansionPoint {
            ratio: current.n_switches() as f64 / n0 as f64,
            tub: th,
            normalized: if theta0 > 0.0 { th / theta0 } else { 0.0 },
        });
    }
    Ok(out)
}

/// Runs [`expansion_curve`] once per seed across the [`dcn_exec`] pool and
/// averages the curves pointwise. Rewiring is random, so a single curve is
/// one sample; the ensemble mean is what Figure A.4 actually plots. Each
/// curve is inherently sequential (every step rewires the previous
/// topology), so the fan-out is across seeds.
///
/// The expansion ratios are identical across seeds (step sizes depend only
/// on `steps`/`step_fraction`); tub and normalized values are averaged.
/// All seeds share the one [`CacheHandle`]: the initial topology's tub is
/// computed once and every rerun of the ensemble warm-starts.
#[allow(clippy::too_many_arguments)]
pub fn expansion_ensemble(
    initial: &Topology,
    h: u32,
    steps: usize,
    step_fraction: f64,
    backend: MatchingBackend,
    seeds: &[u64],
    ctx: &SolveCtx<'_>,
) -> Result<Vec<ExpansionPoint>, CoreError> {
    if seeds.is_empty() {
        return Err(CoreError::OutOfRegime("empty seed ensemble".into()));
    }
    let curves = Pool::from_env().par_map(ctx.budget, seeds, |_, &seed| {
        let _curve = dcn_obs::span!(dcn_obs::names::CORE_EXPANSION_CURVE);
        expansion_curve(initial, h, steps, step_fraction, backend, seed, ctx)
    })?;
    let n = curves[0].len();
    let k = curves.len() as f64;
    let mean = (0..n)
        .map(|i| ExpansionPoint {
            ratio: curves[0][i].ratio,
            tub: curves.iter().map(|c| c[i].tub).sum::<f64>() / k,
            normalized: curves.iter().map(|c| c[i].normalized).sum::<f64>() / k,
        })
        .collect();
    Ok(mean)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_cache::prelude::*;
    use dcn_topo::jellyfish;

    #[test]
    fn curve_monotone_ratios_and_bounded() {
        let mut rng = StdRng::seed_from_u64(23);
        let t = jellyfish(30, 6, 5, &mut rng).unwrap();
        let curve = expansion_curve(&t, 5, 4, 0.2, MatchingBackend::Exact, 7, &unlimited_ctx()).unwrap();
        assert_eq!(curve.len(), 5);
        assert!((curve[0].ratio - 1.0).abs() < 1e-12);
        assert!((curve[0].normalized - 1.0).abs() < 1e-12);
        for w in curve.windows(2) {
            assert!(w[1].ratio > w[0].ratio);
        }
        for p in &curve {
            assert!(p.tub >= 0.0 && p.tub <= 1.0 + 1e-9);
            assert!(p.normalized <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn throughput_trends_down_under_heavy_expansion() {
        // Expanding a borderline-full-throughput instance 2x+ while
        // keeping H fixed should not increase throughput.
        let mut rng = StdRng::seed_from_u64(29);
        let t = jellyfish(24, 5, 5, &mut rng).unwrap();
        let curve = expansion_curve(&t, 5, 6, 0.25, MatchingBackend::Exact, 11, &unlimited_ctx()).unwrap();
        let first = curve.first().unwrap().tub;
        let last = curve.last().unwrap().tub;
        assert!(
            last <= first + 0.05,
            "expansion should not raise throughput: {first} -> {last}"
        );
    }

    #[test]
    fn zero_step_fraction_rejected() {
        let mut rng = StdRng::seed_from_u64(31);
        let t = jellyfish(20, 4, 4, &mut rng).unwrap();
        assert!(expansion_curve(&t, 4, 2, 0.0, MatchingBackend::Exact, 1, &unlimited_ctx()).is_err());
    }
}
