//! Topology cost: switch counts needed to support a server population at
//! full capacity (Figure 9, Figures A.2/A.3, and the §5.1 discussion).

use crate::frontier::{satisfies, Criterion, Family};
use crate::CoreError;
use dcn_cache::SolveCtx;
use dcn_topo::ClosParams;

/// The cheapest (fewest-switch) Clos supporting at least `n_servers` with
/// radix-`radix` switches, searching layers 2..=5 and partial top-level
/// deployment. A non-blocking Clos has both full bisection bandwidth and
/// full throughput, so one count serves both criteria.
pub fn min_clos_switches(n_servers: u64, radix: u32) -> Option<(ClosParams, u64)> {
    let mut best: Option<(ClosParams, u64)> = None;
    for layers in 2..=5usize {
        let half = (radix as u64) / 2;
        let per_pod = half.pow(layers as u32 - 1);
        let pods_needed = n_servers.div_ceil(per_pod);
        if pods_needed < 2 || pods_needed > radix as u64 {
            continue;
        }
        let p = ClosParams {
            radix: radix as usize,
            layers,
            top_pods: pods_needed as usize,
            spine_uplink_fraction: 1.0,
            leaf_servers: 0,
        };
        if p.n_servers() < n_servers {
            continue;
        }
        let sw = p.n_switches();
        if best.as_ref().is_none_or(|&(_, b)| sw < b) {
            best = Some((p, sw));
        }
    }
    best
}

/// Result of a uni-regular sizing search.
#[derive(Debug, Clone, Copy)]
pub struct UniRegularCost {
    /// Servers per switch of the cheapest feasible configuration.
    pub h: u32,
    /// Switches used.
    pub switches: u64,
    /// Servers actually hosted (>= the requested population).
    pub servers: u64,
}

/// The fewest switches with which `family` supports `n_servers` under
/// `criterion`, searching servers-per-switch downward from `radix - 3`
/// (fewer servers per switch = more switches, so the first feasible `H`
/// from above is the cheapest). Returns `None` when no `H` works.
pub fn min_uniregular_switches(
    family: Family,
    n_servers: u64,
    radix: u32,
    criterion: Criterion,
    seed: u64,
    ctx: &SolveCtx<'_>,
) -> Result<Option<UniRegularCost>, CoreError> {
    for h in (1..=(radix.saturating_sub(3))).rev() {
        let n_switches = n_servers.div_ceil(h as u64) as usize;
        let topo = match family.build(n_switches, radix, h, seed) {
            Ok(t) => t,
            Err(_) => continue,
        };
        if topo.n_servers() < n_servers {
            // Family granularity rounded down; try one size up.
            let topo2 = match family.build(n_switches + 1, radix, h, seed) {
                Ok(t) => t,
                Err(_) => continue,
            };
            if topo2.n_servers() >= n_servers && satisfies(&topo2, criterion, seed, ctx)? {
                return Ok(Some(UniRegularCost {
                    h,
                    switches: topo2.n_switches() as u64,
                    servers: topo2.n_servers(),
                }));
            }
            continue;
        }
        if satisfies(&topo, criterion, seed, ctx)? {
            return Ok(Some(UniRegularCost {
                h,
                switches: topo.n_switches() as u64,
                servers: topo.n_servers(),
            }));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tub::MatchingBackend;

    #[test]
    fn clos_sizing_basics() {
        // 128 servers with radix-8: full 3-layer fat-tree (2*4^3 = 128).
        let (p, sw) = min_clos_switches(128, 8).unwrap();
        assert_eq!(p.layers, 3);
        assert_eq!(p.n_servers(), 128);
        assert_eq!(sw, 80);
        // Partial deployment for smaller populations.
        let (p2, sw2) = min_clos_switches(64, 8).unwrap();
        assert!(p2.n_servers() >= 64);
        assert!(sw2 < 80);
    }

    #[test]
    fn clos_prefers_fewer_layers_when_possible() {
        // 16 servers on radix-8: a leaf-spine (2-layer) suffices.
        let (p, _) = min_clos_switches(16, 8).unwrap();
        assert_eq!(p.layers, 2);
    }

    #[test]
    fn no_clos_when_population_too_large() {
        // Radix 4, 5 layers max: 2 * 2^5 = 64 servers max.
        assert!(min_clos_switches(1_000_000, 4).is_none());
    }

    #[test]
    fn uniregular_full_throughput_needs_more_switches_than_bbw() {
        // The paper's cost finding, at miniature scale: for the same server
        // population, the full-throughput Jellyfish uses at least as many
        // switches as the full-BBW one.
        let n = 600u64;
        let radix = 12;
        let ft = min_uniregular_switches(
            Family::Jellyfish,
            n,
            radix,
            Criterion::FullThroughput {
                backend: MatchingBackend::Exact,
            },
            3,
            &dcn_cache::prelude::unlimited_ctx(),
        )
        .unwrap();
        let fb = min_uniregular_switches(
            Family::Jellyfish,
            n,
            radix,
            Criterion::FullBisection { tries: 3 },
            3,
            &dcn_cache::prelude::unlimited_ctx(),
        )
        .unwrap();
        let (ft, fb) = (ft.expect("ft feasible"), fb.expect("fb feasible"));
        assert!(
            ft.switches >= fb.switches,
            "full throughput {} vs full bbw {}",
            ft.switches,
            fb.switches
        );
        assert!(ft.h <= fb.h);
        assert!(ft.servers >= n && fb.servers >= n);
    }
}
