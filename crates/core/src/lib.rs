#![forbid(unsafe_code)]
//! The paper's primary contribution, as a library.
//!
//! * [`tub`] — the throughput upper bound of Theorem 2.2 (Equation 1) and
//!   its per-switch-H generalization (Equation 18), computed via all-pairs
//!   BFS plus maximum-weight matching. This is the quantity the paper
//!   calls **tub** throughout its evaluation.
//! * [`universal`] — Theorem 4.1: a throughput bound over *all*
//!   uni-regular topologies of given `(N, R, H)`, the Equation 3 necessary
//!   condition for full throughput, and the Corollary 1 scaling limit
//!   `N*(R, H)`.
//! * [`lower`] — Theorem 8.4: the throughput lower bound under an additive
//!   path-length slack `M`, and the theoretical gap of Figure A.1.
//! * [`frontier`] — binary search for the full-throughput and
//!   full-bisection-bandwidth frontiers (Figure 8, Table 3).
//! * [`cost`] — switch-count comparisons between uni-regular families and
//!   Clos at equal capacity (Figure 9, Figures A.2/A.3).
//! * [`oversub`] — throughput- vs bisection-based over-subscription
//!   (Table 5).
//! * [`resilience`] — nominal vs actual throughput under random link
//!   failures (Figure 10).
//! * [`expansion_eval`] — normalized throughput under random-rewiring
//!   expansion (Figure A.4).

#![warn(missing_docs)]

pub mod birkhoff;
pub mod cost;
pub mod expansion_eval;
pub mod frontier;
pub mod lower;
pub mod nearworst;
pub mod oversub;
pub mod report;
pub mod resilience;
pub mod tub;
pub mod universal;

pub use birkhoff::{birkhoff_decompose, BirkhoffComponent};
pub use nearworst::{adversarial_search, AdversarialResult};
pub use report::{report_card, ReportCard};
pub use tub::{tub, MatchingBackend, TubResult};

use dcn_guard::BudgetError;
use dcn_mcf::McfError;
use dcn_model::ModelError;

/// Errors from throughput-bound computations.
#[derive(Debug)]
pub enum CoreError {
    /// Underlying topology/traffic model error.
    Model(ModelError),
    /// Underlying graph error.
    Graph(dcn_graph::GraphError),
    /// Underlying MCF error.
    Mcf(McfError),
    /// Parameters outside the regime a theorem applies to.
    OutOfRegime(String),
    /// The execution budget ran out and no fallback could absorb it.
    Budget(BudgetError),
}

impl From<ModelError> for CoreError {
    fn from(e: ModelError) -> Self {
        CoreError::Model(e)
    }
}

impl From<dcn_graph::GraphError> for CoreError {
    fn from(e: dcn_graph::GraphError) -> Self {
        CoreError::Graph(e)
    }
}

impl From<McfError> for CoreError {
    fn from(e: McfError) -> Self {
        CoreError::Mcf(e)
    }
}

impl From<BudgetError> for CoreError {
    fn from(e: BudgetError) -> Self {
        CoreError::Budget(e)
    }
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::Model(e) => write!(f, "model error: {e}"),
            CoreError::Graph(e) => write!(f, "graph error: {e}"),
            CoreError::Mcf(e) => write!(f, "mcf error: {e}"),
            CoreError::OutOfRegime(s) => write!(f, "out of regime: {s}"),
            CoreError::Budget(e) => write!(f, "computation aborted: {e}"),
        }
    }
}

impl std::error::Error for CoreError {}
