//! The full-throughput and full-bisection-bandwidth frontiers (§4.2,
//! Figure 8, Table 3): for a topology family and servers-per-switch `H`,
//! the largest size that still satisfies a capacity criterion.

use crate::tub::{tub, MatchingBackend};
use crate::CoreError;
use dcn_cache::{CacheKey, KeyBuilder, SolveCtx};
use dcn_exec::Pool;
use dcn_obs::json::Json;
use dcn_model::Topology;
use dcn_partition::bisection_bandwidth;
use dcn_topo::{fatclique, jellyfish, xpander, FatCliqueParams};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Uni-regular topology families of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Random regular graphs (Singla et al., NSDI'12).
    Jellyfish,
    /// Random lifts of a complete graph (Valadarsky et al., CoNEXT'16).
    Xpander,
    /// Three-level clique-of-cliques (Zhang et al., NSDI'19).
    FatClique,
}

impl Family {
    /// Lower-case family name used in tables and file names.
    pub fn name(&self) -> &'static str {
        match self {
            Family::Jellyfish => "jellyfish",
            Family::Xpander => "xpander",
            Family::FatClique => "fatclique",
        }
    }

    /// Inverse of [`Family::name`], for deserializing work units.
    pub fn from_name(name: &str) -> Option<Family> {
        match name {
            "jellyfish" => Some(Family::Jellyfish),
            "xpander" => Some(Family::Xpander),
            "fatclique" => Some(Family::FatClique),
            _ => None,
        }
    }

    /// Builds an instance with roughly `n_switches` switches of radix
    /// `radix` and `h` servers per switch. The actual switch count may be
    /// rounded to the family's granularity (Xpander lift size, FatClique
    /// block structure, Jellyfish parity).
    pub fn build(
        &self,
        n_switches: usize,
        radix: u32,
        h: u32,
        seed: u64,
    ) -> Result<Topology, CoreError> {
        if radix <= h {
            return Err(CoreError::OutOfRegime(format!(
                "radix {radix} must exceed H {h}"
            )));
        }
        let r_net = (radix - h) as usize;
        let mut rng = StdRng::seed_from_u64(seed);
        let topo = match self {
            Family::Jellyfish => {
                let mut n = n_switches.max(r_net + 1);
                if !(n * r_net).is_multiple_of(2) {
                    n += 1;
                }
                jellyfish(n, r_net, h, &mut rng)?
            }
            Family::Xpander => {
                let lift = n_switches.div_ceil(r_net + 1).max(1);
                xpander(lift, r_net, h, &mut rng)?
            }
            Family::FatClique => {
                let target_servers = n_switches as u64 * h as u64;
                let params = FatCliqueParams::search(target_servers, h, radix as usize)
                    .ok_or_else(|| {
                        CoreError::OutOfRegime(format!(
                            "no fatclique fits {n_switches} switches radix {radix} H {h}"
                        ))
                    })?;
                fatclique(params)?
            }
        };
        Ok(topo)
    }
}

/// Capacity criterion a frontier is drawn against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Criterion {
    /// `tub >= 1`: the topology *may* support any hose-model traffic.
    FullThroughput {
        /// Matching backend for the tub computation.
        backend: MatchingBackend,
    },
    /// Bisection bandwidth at least `N/2` (`tries` multilevel runs).
    FullBisection {
        /// Multilevel partitioner restarts.
        tries: u32,
    },
}

impl Criterion {
    /// Serializes the criterion for `dcn-fleet` work-unit payloads.
    pub fn to_json(&self) -> Json {
        match self {
            Criterion::FullThroughput { backend } => Json::obj([
                ("kind", Json::Str("full_throughput".to_string())),
                ("backend", backend.to_json()),
            ]),
            Criterion::FullBisection { tries } => Json::obj([
                ("kind", Json::Str("full_bisection".to_string())),
                ("tries", Json::Num(*tries as f64)),
            ]),
        }
    }

    /// Deserializes a [`Criterion::to_json`] record.
    pub fn from_json(json: &Json) -> Result<Criterion, String> {
        let kind = json
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("criterion missing kind")?;
        match kind {
            "full_throughput" => {
                let backend = json.get("backend").ok_or("criterion missing backend")?;
                Ok(Criterion::FullThroughput {
                    backend: MatchingBackend::from_json(backend)?,
                })
            }
            "full_bisection" => {
                let tries = json
                    .get("tries")
                    .and_then(Json::as_u64)
                    .ok_or("criterion missing tries")?;
                Ok(Criterion::FullBisection {
                    tries: tries as u32,
                })
            }
            other => Err(format!("unknown criterion kind {other:?}")),
        }
    }

    /// Absorbs the criterion into a cache-key builder (used by
    /// [`FrontierConfig::work_key`]).
    fn absorb(&self, kb: KeyBuilder) -> KeyBuilder {
        match self {
            Criterion::FullThroughput { backend } => {
                let kb = kb.str("full_throughput");
                match backend {
                    MatchingBackend::Exact => kb.str("exact"),
                    MatchingBackend::Greedy { improvement_passes } => {
                        kb.str("greedy").u64(*improvement_passes as u64)
                    }
                    MatchingBackend::Auto { exact_below } => {
                        kb.str("auto").u64(*exact_below as u64)
                    }
                }
            }
            Criterion::FullBisection { tries } => kb.str("full_bisection").u64(*tries as u64),
        }
    }
}

/// Does the topology satisfy the criterion?
pub fn satisfies(
    topo: &Topology,
    criterion: Criterion,
    seed: u64,
    ctx: &SolveCtx<'_>,
) -> Result<bool, CoreError> {
    match criterion {
        Criterion::FullThroughput { backend } => {
            Ok(tub(topo, backend, ctx)?.bound >= 1.0 - 1e-9)
        }
        Criterion::FullBisection { tries } => {
            let bbw = bisection_bandwidth(topo, tries, seed, ctx)?;
            Ok(bbw >= topo.n_servers() as f64 / 2.0 - 1e-9)
        }
    }
}

/// The frontier: the largest server count (searching over switch counts up
/// to `max_switches`) at which the family still satisfies the criterion.
///
/// Satisfaction is treated as monotone in size (true for these families in
/// the paper's regime up to instance noise); a doubling scan brackets the
/// transition and binary search pins it down. Returns `None` when even the
/// smallest instance fails.
#[allow(clippy::too_many_arguments)]
pub fn frontier_max_servers(
    family: Family,
    radix: u32,
    h: u32,
    criterion: Criterion,
    max_switches: usize,
    seed: u64,
    ctx: &SolveCtx<'_>,
) -> Result<Option<u64>, CoreError> {
    let min_switches = ((radix - h) as usize + 2).max(4);
    let check = |n_switches: usize| -> Result<Option<u64>, CoreError> {
        let topo = match family.build(n_switches, radix, h, seed) {
            Ok(t) => t,
            Err(_) => return Ok(None), // infeasible size for this family
        };
        if satisfies(&topo, criterion, seed, ctx)? {
            Ok(Some(topo.n_servers()))
        } else {
            Ok(None)
        }
    };
    // Doubling scan for the bracket.
    let mut lo = min_switches;
    let mut best = match check(lo)? {
        Some(n) => n,
        None => return Ok(None),
    };
    let mut hi = lo;
    while hi < max_switches {
        let next = (hi * 2).min(max_switches);
        match check(next)? {
            Some(n) => {
                best = best.max(n);
                lo = next;
                if next == max_switches {
                    return Ok(Some(best));
                }
            }
            None => {
                hi = next;
                // Binary search inside (lo, hi).
                let mut lo_b = lo;
                let mut hi_b = hi;
                while hi_b - lo_b > (lo_b / 16).max(1) {
                    let mid = lo_b + (hi_b - lo_b) / 2;
                    match check(mid)? {
                        Some(n) => {
                            best = best.max(n);
                            lo_b = mid;
                        }
                        None => hi_b = mid,
                    }
                }
                return Ok(Some(best));
            }
        }
        hi = hi.max(lo);
    }
    Ok(Some(best))
}

/// One frontier to compute: a family/size/criterion cell of a figure or
/// table sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrontierConfig {
    /// Topology family.
    pub family: Family,
    /// Switch radix.
    pub radix: u32,
    /// Servers per switch.
    pub h: u32,
    /// Capacity criterion to search against.
    pub criterion: Criterion,
    /// Search cap on switch count.
    pub max_switches: usize,
    /// Seed for instance construction and the partitioner.
    pub seed: u64,
}

impl FrontierConfig {
    /// Serializes the cell as a self-contained `dcn-fleet` work-unit
    /// payload: a worker process reconstructs the whole frontier search
    /// from this record and nothing else.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("family", Json::Str(self.family.name().to_string())),
            ("radix", Json::Num(self.radix as f64)),
            ("h", Json::Num(self.h as f64)),
            ("criterion", self.criterion.to_json()),
            ("max_switches", Json::Num(self.max_switches as f64)),
            ("seed", Json::Num(self.seed as f64)),
        ])
    }

    /// Deserializes a [`FrontierConfig::to_json`] record.
    pub fn from_json(json: &Json) -> Result<FrontierConfig, String> {
        let family = json
            .get("family")
            .and_then(Json::as_str)
            .and_then(Family::from_name)
            .ok_or("frontier config missing or unknown family")?;
        let radix = json
            .get("radix")
            .and_then(Json::as_u64)
            .ok_or("frontier config missing radix")?;
        let h = json
            .get("h")
            .and_then(Json::as_u64)
            .ok_or("frontier config missing h")?;
        let criterion = Criterion::from_json(
            json.get("criterion").ok_or("frontier config missing criterion")?,
        )?;
        let max_switches = json
            .get("max_switches")
            .and_then(Json::as_u64)
            .ok_or("frontier config missing max_switches")?;
        let seed = json
            .get("seed")
            .and_then(Json::as_u64)
            .ok_or("frontier config missing seed")?;
        Ok(FrontierConfig {
            family,
            radix: radix as u32,
            h: h as u32,
            criterion,
            max_switches: max_switches as usize,
            seed,
        })
    }

    /// The cell's 128-bit content key: a stable identity derived from
    /// every field, used by `dcn-fleet` as the work id (and thus as the
    /// queue/result file stem), so a restarted sweep recognizes its own
    /// half-finished cells across processes.
    pub fn work_key(&self) -> CacheKey {
        self.criterion
            .absorb(
                KeyBuilder::new("frontier-cell")
                    .str(self.family.name())
                    .u64(self.radix as u64)
                    .u64(self.h as u64),
            )
            .u64(self.max_switches as u64)
            .u64(self.seed)
            .finish()
    }
}

/// Computes [`frontier_max_servers`] for every configuration, fanning out
/// across the [`dcn_exec`] pool. Each frontier search is adaptive (its
/// probes depend on earlier answers), so the parallelism is across sweep
/// cells, not inside one search. Results come back in input order; a cell
/// whose family cannot be built at any probed size yields `None`.
///
/// All cells share the one [`CacheHandle`]: identical probe topologies
/// across cells (and across a rerun of the whole sweep) hit the cache,
/// which is what makes warm reruns fast. Sharing is safe for determinism
/// because cached results are byte-identical to recomputed ones.
pub fn frontier_sweep(
    configs: &[FrontierConfig],
    ctx: &SolveCtx<'_>,
) -> Result<Vec<Option<u64>>, CoreError> {
    Pool::from_env().par_map(ctx.budget, configs, |_, c| {
        let _cell = dcn_obs::span!(dcn_obs::names::CORE_FRONTIER_CELL);
        frontier_max_servers(
            c.family,
            c.radix,
            c.h,
            c.criterion,
            c.max_switches,
            c.seed,
            ctx,
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_cache::prelude::*;

    #[test]
    fn build_all_families() {
        for f in [Family::Jellyfish, Family::Xpander, Family::FatClique] {
            let t = f.build(60, 16, 4, 7).unwrap();
            assert!(t.n_switches() >= 30, "{}: {}", f.name(), t.n_switches());
            assert!(t.graph().is_connected());
        }
    }

    #[test]
    fn jellyfish_throughput_frontier_detects_transition() {
        // H=4 on radix 12 (network degree 8): tub = 1 exactly while every
        // switch can be paired at distance 2; once distance-3 pairs appear
        // (a few dozen switches), tub drops below 1. The frontier must land
        // strictly between the smallest instance and the search cap.
        let ft = frontier_max_servers(
            Family::Jellyfish,
            12,
            4,
            Criterion::FullThroughput {
                backend: MatchingBackend::Exact,
            },
            512,
            3,
            &unlimited_ctx(),
        )
        .unwrap()
        .expect("small instances are full throughput");
        assert!(
            (40..2000).contains(&ft),
            "frontier {ft} should be an interior transition"
        );
    }

    #[test]
    fn bbw_frontier_detects_transition() {
        // Network degree 10, H=3: a random 10-regular graph's balanced cut
        // is ~1.46n, full bisection needs 1.5n — the criterion fails past a
        // small size, and the search must find that interior transition.
        let fb = frontier_max_servers(
            Family::Jellyfish,
            13,
            3,
            Criterion::FullBisection { tries: 3 },
            600,
            3,
            &unlimited_ctx(),
        )
        .unwrap()
        .expect("small dense instances are full bisection");
        assert!(
            (12..1800).contains(&fb),
            "BBW frontier {fb} should be an interior transition"
        );
    }

    /// The paper's Figure 8 separation — full BBW persisting to sizes where
    /// full throughput is gone — emerges at thousands of switches; this
    /// scale test is excluded from the default run (see `fig8_frontier`
    /// for the full experiment).
    #[test]
    #[ignore = "scale test: minutes of CPU; run explicitly or via fig8_frontier"]
    fn paper_regime_throughput_frontier_below_bbw_at_scale() {
        let radix = 32;
        let h = 8; // network degree 24, the paper's configuration
        let backend = MatchingBackend::Auto { exact_below: 700 };
        let ft = frontier_max_servers(
            Family::Jellyfish,
            radix,
            h,
            Criterion::FullThroughput { backend },
            4096,
            3,
            &unlimited_ctx(),
        )
        .unwrap()
        .unwrap_or(0);
        let fb = frontier_max_servers(
            Family::Jellyfish,
            radix,
            h,
            Criterion::FullBisection { tries: 2 },
            4096,
            3,
            &unlimited_ctx(),
        )
        .unwrap()
        .unwrap_or(0);
        assert!(
            fb >= ft,
            "BBW frontier {fb} should not sit below throughput frontier {ft}"
        );
    }

    #[test]
    fn smaller_h_scales_further() {
        let radix = 12;
        let backend = MatchingBackend::Exact;
        let f6 = frontier_max_servers(
            Family::Jellyfish,
            radix,
            6,
            Criterion::FullThroughput { backend },
            400,
            5,
            &unlimited_ctx(),
        )
        .unwrap()
        .unwrap_or(0);
        let f4 = frontier_max_servers(
            Family::Jellyfish,
            radix,
            4,
            Criterion::FullThroughput { backend },
            400,
            5,
            &unlimited_ctx(),
        )
        .unwrap()
        .unwrap_or(0);
        assert!(
            f4 >= f6,
            "H=4 frontier ({f4}) should be at least H=6 frontier ({f6})"
        );
    }

    #[test]
    fn radix_must_exceed_h() {
        assert!(Family::Jellyfish.build(10, 4, 4, 1).is_err());
    }

    #[test]
    fn config_json_round_trips_and_keys_are_stable() {
        let configs = [
            FrontierConfig {
                family: Family::Jellyfish,
                radix: 14,
                h: 4,
                criterion: Criterion::FullThroughput {
                    backend: MatchingBackend::Auto { exact_below: 600 },
                },
                max_switches: 384,
                seed: 5,
            },
            FrontierConfig {
                family: Family::Xpander,
                radix: 32,
                h: 8,
                criterion: Criterion::FullBisection { tries: 3 },
                max_switches: 4096,
                seed: 7,
            },
            FrontierConfig {
                family: Family::FatClique,
                radix: 12,
                h: 3,
                criterion: Criterion::FullThroughput {
                    backend: MatchingBackend::Greedy {
                        improvement_passes: 2,
                    },
                },
                max_switches: 1536,
                seed: 0,
            },
        ];
        let mut keys = std::collections::BTreeSet::new();
        for c in configs {
            let back = FrontierConfig::from_json(&c.to_json()).unwrap();
            assert_eq!(back, c);
            // Round-tripping must preserve the work identity, and all
            // three cells must key differently.
            assert_eq!(back.work_key(), c.work_key());
            assert!(keys.insert(c.work_key().to_hex()));
        }
    }

    #[test]
    fn work_key_separates_every_field() {
        let base = FrontierConfig {
            family: Family::Jellyfish,
            radix: 14,
            h: 4,
            criterion: Criterion::FullBisection { tries: 3 },
            max_switches: 384,
            seed: 5,
        };
        let variants = [
            FrontierConfig { family: Family::Xpander, ..base },
            FrontierConfig { radix: 15, ..base },
            FrontierConfig { h: 5, ..base },
            FrontierConfig { criterion: Criterion::FullBisection { tries: 4 }, ..base },
            FrontierConfig { max_switches: 385, ..base },
            FrontierConfig { seed: 6, ..base },
        ];
        for v in variants {
            assert_ne!(v.work_key(), base.work_key(), "{v:?} collided with base");
        }
    }
}
