//! One-call topology report card: every §5-style metric for one instance.
//!
//! This is the programmatic face of the paper's "throughput-centric view":
//! a designer hands in a topology and gets back the numbers that §5 argues
//! should drive decisions — tub first, bisection bandwidth second, plus
//! the Equation-3 feasibility verdict and expander diagnostics.

use crate::tub::{tub, MatchingBackend, TubResult};
use crate::universal::{universal_tub, UniRegularParams};
use crate::CoreError;
use dcn_cache::SolveCtx;
use dcn_graph::adjacency_lambda2;
use dcn_model::{TopoClass, Topology};
use dcn_partition::bisection_bandwidth;

/// The full report for a topology instance.
#[derive(Debug, Clone)]
pub struct ReportCard {
    /// Topology name.
    pub name: String,
    /// Figure-1 classification.
    pub class: TopoClass,
    /// Switch count.
    pub n_switches: usize,
    /// Server count `N`.
    pub n_servers: u64,
    /// Total link capacity `E`.
    pub n_links: f64,
    /// Throughput upper bound (Equation 1 / 18), unclamped.
    pub tub: f64,
    /// The tub evidence (maximal permutation etc.).
    pub tub_detail: TubResult,
    /// Bisection bandwidth estimate.
    pub bbw: f64,
    /// `bbw / (N/2)`.
    pub bbw_fraction: f64,
    /// Theorem 4.1 bound at these `(N, R, H)` — `None` for bi-regular or
    /// irregular instances.
    pub universal_bound: Option<f64>,
    /// Deflated adjacency spectral radius — `None` for irregular graphs.
    pub lambda2: Option<f64>,
    /// `2 sqrt(r-1)` for the network degree, when regular.
    pub ramanujan_bound: Option<f64>,
}

impl ReportCard {
    /// True when the instance may support arbitrary traffic.
    pub fn is_full_throughput(&self) -> bool {
        self.tub >= 1.0 - 1e-9
    }

    /// True when the instance has full bisection bandwidth.
    pub fn is_full_bisection(&self) -> bool {
        self.bbw_fraction >= 1.0 - 1e-9
    }

    /// The paper's warning flag: healthy cuts, insufficient worst-case
    /// throughput (the Figure 2 wedge).
    pub fn bisection_overpromises(&self) -> bool {
        self.is_full_bisection() && !self.is_full_throughput()
    }

    /// Renders a compact multi-line summary.
    pub fn render(&self) -> String {
        let mut s = String::new();
        use std::fmt::Write;
        // fmt::Write into a String cannot fail; discard the Results.
        let _ = writeln!(
            s,
            "{} — {:?}, {} switches, {} servers, {} links",
            self.name, self.class, self.n_switches, self.n_servers, self.n_links
        );
        let _ = writeln!(s, "  tub            = {:.4}", self.tub);
        let _ = writeln!(
            s,
            "  bisection      = {:.1} ({:.3} of N/2)",
            self.bbw, self.bbw_fraction
        );
        if let Some(u) = self.universal_bound {
            let _ = writeln!(s, "  Thm 4.1 bound  = {u:.4}");
        }
        if let (Some(l2), Some(rb)) = (self.lambda2, self.ramanujan_bound) {
            let _ = writeln!(s, "  λ2             = {l2:.3} (Ramanujan {rb:.3})");
        }
        if self.bisection_overpromises() {
            let _ = writeln!(
                s,
                "  ⚠ full bisection bandwidth but NOT full throughput (Figure 2 wedge)"
            );
        }
        s
    }
}

/// Computes the report card. `bbw_tries`/`seed` drive the partitioner.
pub fn report_card(
    topo: &Topology,
    backend: MatchingBackend,
    bbw_tries: u32,
    seed: u64,
    ctx: &SolveCtx<'_>,
) -> Result<ReportCard, CoreError> {
    let tub_detail = tub(topo, backend, ctx)?;
    let bbw = bisection_bandwidth(topo, bbw_tries, seed, ctx)?;
    let half = topo.n_servers() as f64 / 2.0;
    let universal_bound = match topo.class() {
        TopoClass::UniRegular { h } => {
            // Theorem 4.1 counts unit-capacity network ports; trunked
            // links contribute their capacity. Require (near-)uniform
            // capacity degree, otherwise the theorem does not apply.
            let cap_deg = |u: u32| -> f64 {
                topo.graph()
                    .neighbors(u)
                    .map(|(_, e)| topo.graph().capacity(e))
                    .sum()
            };
            let d0 = cap_deg(0);
            let uniform = (0..topo.n_switches() as u32)
                .all(|u| (cap_deg(u) - d0).abs() < 0.5);
            if uniform && d0 >= 1.0 {
                universal_tub(UniRegularParams {
                    n_servers: topo.n_servers(),
                    radix: d0.round() as u32 + h,
                    h,
                })
            } else {
                None
            }
        }
        _ => None,
    };
    let lambda2 = adjacency_lambda2(topo.graph(), 300);
    let ramanujan_bound = lambda2.map(|_| {
        let r = topo.graph().degree(0) as f64;
        2.0 * (r - 1.0).sqrt()
    });
    Ok(ReportCard {
        name: topo.name().to_string(),
        class: topo.class(),
        n_switches: topo.n_switches(),
        n_servers: topo.n_servers(),
        n_links: topo.e_links(),
        tub: tub_detail.bound,
        tub_detail,
        bbw,
        bbw_fraction: bbw / half,
        universal_bound,
        lambda2,
        ramanujan_bound,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_cache::prelude::*;
    use dcn_topo::{fat_tree, jellyfish};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fat_tree_report() {
        let t = fat_tree(4).unwrap();
        let r = report_card(&t, MatchingBackend::Exact, 4, 1, &unlimited_ctx()).unwrap();
        assert!(r.is_full_throughput());
        assert!(r.is_full_bisection());
        assert!(!r.bisection_overpromises());
        assert!(r.universal_bound.is_none(), "bi-regular: Thm 4.1 N/A");
        assert!(r.lambda2.is_none(), "fat-tree is not regular (leaves vs cores)");
        let text = r.render();
        assert!(text.contains("tub"));
        assert!(!text.contains('⚠'));
    }

    #[test]
    fn overpromising_expander_flagged() {
        // Degree 10, H = 3, large enough that tub < 1 but bisection holds:
        // (from the frontier analysis, ~250 switches).
        let mut rng = StdRng::seed_from_u64(5);
        let t = jellyfish(260, 10, 3, &mut rng).unwrap();
        let r = report_card(&t, MatchingBackend::Auto { exact_below: 300 }, 3, 7, &unlimited_ctx()).unwrap();
        assert!(r.universal_bound.is_some());
        assert!(r.lambda2.is_some());
        assert!(r.tub <= r.universal_bound.unwrap() + 1e-9);
        if r.bisection_overpromises() {
            assert!(r.render().contains('⚠'));
        }
    }

    #[test]
    fn uniregular_bounds_ordered() {
        let mut rng = StdRng::seed_from_u64(9);
        let t = jellyfish(60, 8, 4, &mut rng).unwrap();
        let r = report_card(&t, MatchingBackend::Exact, 3, 7, &unlimited_ctx()).unwrap();
        // tub <= Thm 4.1 universal bound, always.
        assert!(r.tub <= r.universal_bound.unwrap() + 1e-9);
        // λ2 below Ramanujan + slack for a random regular graph.
        assert!(r.lambda2.unwrap() <= r.ramanujan_bound.unwrap() + 0.5);
    }
}
