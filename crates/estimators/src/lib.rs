#![forbid(unsafe_code)]
//! The throughput estimators the paper compares **tub** against (§3.2,
//! Figure 5), reimplemented from their original descriptions:
//!
//! * [`HoeflerMethod`] — Hoefler et al. [51/23]: each flow splits into one
//!   sub-flow per admissible path; every link's capacity is shared equally
//!   among all sub-flows crossing it.
//! * [`JainMethod`] — Jain et al. [24]: flows are routed incrementally,
//!   one path round at a time; each round's sub-flows get an equal share of
//!   the *residual* capacity on every link they cross.
//! * [`SinglaBound`] — Singla et al. NSDI'14 [43]: an upper bound on the
//!   *average* throughput under uniform traffic, driven by the mean
//!   shortest-path distance: `θ <= 2E / Σ_u H_u d̄_u`.
//! * [`BbwProxy`] — bisection bandwidth divided by `N/2` (the implicit
//!   estimate behind every "full bisection bandwidth" claim).
//! * [`SparsestCut`] — the spectral sweep-cut bound of Jyothi et al.
//!   [26/27].
//! * [`TubEstimator`] — the paper's bound, adapted to the same interface.
//!
//! All estimators implement [`ThroughputEstimator`] so the Figure 5
//! accuracy/efficiency comparison can sweep them uniformly. HM and JM
//! estimate the throughput *of a given traffic matrix*; the cut- and
//! distance-based estimators depend only on the topology and ignore it.

#![warn(missing_docs)]

use dcn_cache::SolveCtx;
use dcn_core::{tub, CoreError, MatchingBackend};
use dcn_graph::DistMatrix;
use dcn_mcf::{McfError, PathSet};
use dcn_model::{Topology, TrafficMatrix};
use std::borrow::Cow;
use dcn_partition::{bisection_bandwidth, sparsest_cut_sweep};

/// Error from an estimator run.
#[derive(Debug)]
pub enum EstimatorError {
    /// Underlying MCF error.
    Mcf(McfError),
    /// Underlying core (tub) error.
    Core(CoreError),
    /// Underlying graph error.
    Graph(dcn_graph::GraphError),
}

impl From<McfError> for EstimatorError {
    fn from(e: McfError) -> Self {
        EstimatorError::Mcf(e)
    }
}

impl From<CoreError> for EstimatorError {
    fn from(e: CoreError) -> Self {
        EstimatorError::Core(e)
    }
}

impl From<dcn_graph::GraphError> for EstimatorError {
    fn from(e: dcn_graph::GraphError) -> Self {
        EstimatorError::Graph(e)
    }
}

impl std::fmt::Display for EstimatorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EstimatorError::Mcf(e) => write!(f, "mcf: {e}"),
            EstimatorError::Core(e) => write!(f, "core: {e}"),
            EstimatorError::Graph(e) => write!(f, "graph: {e}"),
        }
    }
}

impl std::error::Error for EstimatorError {}

/// A throughput estimator in the Figure 5 comparison.
pub trait ThroughputEstimator {
    /// Short name used in result tables (`tub`, `bbw`, `sc`, `singla`,
    /// `hm(k)`, `jm(k)`). Borrowed for the fixed-name estimators so hot
    /// sweep loops don't allocate per call; only the parameterized
    /// `hm(k)`/`jm(k)` names format an owned string.
    fn name(&self) -> Cow<'static, str>;

    /// Estimate of `θ(T)` (or of worst-case throughput, for estimators
    /// that ignore the traffic matrix), metered against `budget`.
    /// Estimators that delegate to cached solvers (path sets, tub,
    /// bisection) memoize through `cache`; pass
    /// `dcn_cache::prelude::nocache()` to force recomputation.
    fn estimate(
        &self,
        topo: &Topology,
        tm: &TrafficMatrix,
        ctx: &SolveCtx<'_>,
    ) -> Result<f64, EstimatorError>;
}

/// Hoefler's method with `k` paths per flow.
pub struct HoeflerMethod {
    /// Paths per flow.
    pub k: usize,
}

impl ThroughputEstimator for HoeflerMethod {
    fn name(&self) -> Cow<'static, str> {
        Cow::Owned(format!("hm({})", self.k))
    }

    fn estimate(
        &self,
        topo: &Topology,
        tm: &TrafficMatrix,
        ctx: &SolveCtx<'_>,
    ) -> Result<f64, EstimatorError> {
        let ps = PathSet::k_shortest_shared(topo, tm, self.k, ctx)?.0;
        // Sub-flow count per directed edge.
        let mut count = vec![0u32; ps.n_directed_edges()];
        for c in ps.commodities() {
            for p in &c.paths {
                for &h in &p.hops {
                    count[PathSet::dir_index(h)] += 1;
                }
            }
        }
        // Each sub-flow gets the bottleneck equal share along its path.
        let mut theta = f64::INFINITY;
        for c in ps.commodities() {
            let mut rate = 0.0;
            for p in &c.paths {
                let share = p
                    .hops
                    .iter()
                    .map(|&h| {
                        let i = PathSet::dir_index(h);
                        ps.graph().capacity((i / 2) as u32) / count[i] as f64
                    })
                    .fold(f64::INFINITY, f64::min);
                rate += share;
            }
            theta = theta.min(rate / c.demand);
        }
        Ok(theta)
    }
}

/// Jain's method with `k` paths per flow.
pub struct JainMethod {
    /// Paths per flow.
    pub k: usize,
}

impl ThroughputEstimator for JainMethod {
    fn name(&self) -> Cow<'static, str> {
        Cow::Owned(format!("jm({})", self.k))
    }

    fn estimate(
        &self,
        topo: &Topology,
        tm: &TrafficMatrix,
        ctx: &SolveCtx<'_>,
    ) -> Result<f64, EstimatorError> {
        let ps = PathSet::k_shortest_shared(topo, tm, self.k, ctx)?.0;
        let n_dir = ps.n_directed_edges();
        let mut residual: Vec<f64> = (0..n_dir)
            .map(|i| ps.graph().capacity((i / 2) as u32))
            .collect();
        let mut rate: Vec<f64> = vec![0.0; ps.commodities().len()];
        let max_rounds = ps
            .commodities()
            .iter()
            .map(|c| c.paths.len())
            .max()
            .unwrap_or(0);
        for round in 0..max_rounds {
            // Sub-flows added this round: the round-th path of each flow.
            let mut count = vec![0u32; n_dir];
            for c in ps.commodities() {
                if let Some(p) = c.paths.get(round) {
                    for &h in &p.hops {
                        count[PathSet::dir_index(h)] += 1;
                    }
                }
            }
            // Each new sub-flow gets the bottleneck share of the residual.
            let mut sent: Vec<(usize, f64)> = Vec::new();
            for (j, c) in ps.commodities().iter().enumerate() {
                if let Some(p) = c.paths.get(round) {
                    let share = p
                        .hops
                        .iter()
                        .map(|&h| {
                            let i = PathSet::dir_index(h);
                            residual[i] / count[i] as f64
                        })
                        .fold(f64::INFINITY, f64::min);
                    sent.push((j, share.max(0.0)));
                }
            }
            // Commit allocations.
            for &(j, share) in &sent {
                rate[j] += share;
                for &h in &ps.commodities()[j].paths[round].hops {
                    residual[PathSet::dir_index(h)] -= share;
                }
            }
        }
        let theta = ps
            .commodities()
            .iter()
            .zip(rate.iter())
            .map(|(c, &r)| r / c.demand)
            .fold(f64::INFINITY, f64::min);
        Ok(theta)
    }
}

/// The Singla et al. NSDI'14 average-throughput bound.
pub struct SinglaBound;

impl ThroughputEstimator for SinglaBound {
    fn name(&self) -> Cow<'static, str> {
        Cow::Borrowed("singla")
    }

    fn estimate(
        &self,
        topo: &Topology,
        _tm: &TrafficMatrix,
        _ctx: &SolveCtx<'_>,
    ) -> Result<f64, EstimatorError> {
        let k = topo.switches_with_servers();
        let dist = DistMatrix::from_sources(topo.graph(), &k)?;
        // Σ_u H_u * mean distance from u to the other switches in K.
        let mut weighted = 0.0;
        for &u in &k {
            let row = dist.row(u);
            let sum: u64 = k
                .iter()
                .filter(|&&v| v != u)
                .map(|&v| row[v as usize] as u64)
                .sum();
            let mean = sum as f64 / (k.len() - 1) as f64;
            weighted += topo.servers_at(u) as f64 * mean;
        }
        Ok(2.0 * topo.graph().total_capacity() / weighted)
    }
}

/// Bisection bandwidth over `N/2`.
pub struct BbwProxy {
    /// Multilevel partitioner restarts.
    pub tries: u32,
    /// Partitioner seed.
    pub seed: u64,
}

impl ThroughputEstimator for BbwProxy {
    fn name(&self) -> Cow<'static, str> {
        Cow::Borrowed("bbw")
    }

    fn estimate(
        &self,
        topo: &Topology,
        _tm: &TrafficMatrix,
        ctx: &SolveCtx<'_>,
    ) -> Result<f64, EstimatorError> {
        let bbw = bisection_bandwidth(topo, self.tries, self.seed, ctx)
            .map_err(|e| EstimatorError::Core(CoreError::Budget(e)))?;
        Ok(bbw / (topo.n_servers() as f64 / 2.0))
    }
}

/// Spectral sparsest-cut bound.
pub struct SparsestCut {
    /// Power-iteration count for the Fiedler vector.
    pub power_iters: usize,
}

impl ThroughputEstimator for SparsestCut {
    fn name(&self) -> Cow<'static, str> {
        Cow::Borrowed("sc")
    }

    fn estimate(
        &self,
        topo: &Topology,
        _tm: &TrafficMatrix,
        _ctx: &SolveCtx<'_>,
    ) -> Result<f64, EstimatorError> {
        Ok(sparsest_cut_sweep(topo, self.power_iters).sparsity)
    }
}

/// The paper's tub, adapted to the estimator interface (ignores the given
/// traffic matrix: tub is already a worst-case bound).
pub struct TubEstimator {
    /// Matching backend for the maximal permutation.
    pub backend: MatchingBackend,
}

impl ThroughputEstimator for TubEstimator {
    fn name(&self) -> Cow<'static, str> {
        Cow::Borrowed("tub")
    }

    fn estimate(
        &self,
        topo: &Topology,
        _tm: &TrafficMatrix,
        ctx: &SolveCtx<'_>,
    ) -> Result<f64, EstimatorError> {
        Ok(tub(topo, self.backend, ctx)?.bound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_cache::prelude::*;
    use dcn_mcf::{ksp_mcf_throughput, Engine};
    use dcn_topo::jellyfish;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Topology, TrafficMatrix) {
        let mut rng = StdRng::seed_from_u64(1);
        let topo = jellyfish(20, 5, 4, &mut rng).unwrap();
        let t = tub(&topo, MatchingBackend::Exact, &unlimited_ctx()).unwrap();
        let tm = t.traffic_matrix(&topo).unwrap();
        (topo, tm)
    }

    #[test]
    fn hm_is_feasible_lower_estimate() {
        let (topo, tm) = setup();
        let hm = HoeflerMethod { k: 8 }
            .estimate(&topo, &tm, &unlimited_ctx())
            .unwrap();
        let exact = ksp_mcf_throughput(&topo, &tm, 8, Engine::Exact, &unlimited_ctx())
            .unwrap()
            .theta_lb;
        // HM's equal-split allocation is feasible, so it cannot exceed the
        // LP optimum on the same path set.
        assert!(hm <= exact + 1e-9, "hm {hm} > exact {exact}");
        assert!(hm > 0.0);
    }

    #[test]
    fn jm_is_feasible_and_at_least_single_round_hm() {
        let (topo, tm) = setup();
        let jm = JainMethod { k: 8 }
            .estimate(&topo, &tm, &unlimited_ctx())
            .unwrap();
        let exact = ksp_mcf_throughput(&topo, &tm, 8, Engine::Exact, &unlimited_ctx())
            .unwrap()
            .theta_lb;
        assert!(jm <= exact + 1e-9, "jm {jm} > exact {exact}");
        assert!(jm > 0.0);
    }

    #[test]
    fn singla_upper_bounds_tub() {
        // The average-distance bound uses mean distances; tub uses the
        // *maximal* permutation's distances, which are no smaller — so
        // singla >= tub on uni-regular topologies (Figure 5(c)).
        let (topo, tm) = setup();
        let s = SinglaBound.estimate(&topo, &tm, &unlimited_ctx()).unwrap();
        let t = TubEstimator {
            backend: MatchingBackend::Exact,
        }
        .estimate(&topo, &tm, &unlimited_ctx())
        .unwrap();
        assert!(s >= t - 1e-9, "singla {s} < tub {t}");
    }

    #[test]
    fn all_estimators_run_and_name() {
        let (topo, tm) = setup();
        let estimators: Vec<Box<dyn ThroughputEstimator>> = vec![
            Box::new(HoeflerMethod { k: 4 }),
            Box::new(JainMethod { k: 4 }),
            Box::new(SinglaBound),
            Box::new(BbwProxy { tries: 2, seed: 3 }),
            Box::new(SparsestCut { power_iters: 100 }),
            Box::new(TubEstimator {
                backend: MatchingBackend::Exact,
            }),
        ];
        let names: Vec<String> = estimators.iter().map(|e| e.name().into_owned()).collect();
        assert_eq!(names, vec!["hm(4)", "jm(4)", "singla", "bbw", "sc", "tub"]);
        for e in &estimators {
            let v = e.estimate(&topo, &tm, &unlimited_ctx()).unwrap();
            assert!(v.is_finite() && v > 0.0, "{}: {v}", e.name());
        }
    }

    #[test]
    fn more_paths_do_not_hurt_hm_much() {
        // HM with more paths can go either way in theory, but on a small
        // expander its estimate stays positive and finite.
        let (topo, tm) = setup();
        for k in [1, 2, 4, 16] {
            let v = HoeflerMethod { k }
                .estimate(&topo, &tm, &unlimited_ctx())
                .unwrap();
            assert!(v > 0.0 && v.is_finite());
        }
    }

    #[test]
    fn jm_never_overcommits_capacity() {
        // Reconstruct JM's allocation and verify no directed edge exceeds
        // its capacity (feasibility is the method's key property).
        let (topo, tm) = setup();
        let ps = PathSet::k_shortest(&topo, &tm, 6, &dcn_guard::Budget::unlimited()).unwrap();
        let jm = JainMethod { k: 6 }
            .estimate(&topo, &tm, &unlimited_ctx())
            .unwrap();
        // jm * demand routed per commodity must fit: weaker sanity check —
        // the estimate cannot exceed min total capacity / total demand.
        let cap_total = 2.0 * ps.graph().total_capacity();
        let demand_total: f64 = tm.total();
        assert!(jm <= cap_total / demand_total + 1e-9);
    }
}
