//! Post-solve certificate validation.
//!
//! Every solver in the workspace produces an answer with a checkable
//! certificate: an LP solution must satisfy its constraints, an MCF flow
//! must respect capacities and serve `θ·T`, an FPTAS bracket must be
//! ordered, a hose matrix must respect per-switch rates. The checks here
//! are `O(solution size)` — far cheaper than the solve — but they are still
//! off the hot path by default in release builds.
//!
//! # Enabling
//!
//! Validation runs when [`validation_enabled`] returns true:
//!
//! * `DCN_VALIDATE=1` / `on` / `true` — always on;
//! * `DCN_VALIDATE=0` / `off` / `false` — always off;
//! * unset — on in debug builds (`debug_assertions`), off in release.
//!
//! Each failed check bumps the `guard.validate.failures` counter before
//! returning, so manifests record certificate trouble even when the caller
//! swallows the error.

use std::sync::OnceLock;

/// Default tolerance for feasibility residuals. Matches the simplex pivot
/// epsilon scale with headroom for accumulated rounding.
pub const DEFAULT_TOL: f64 = 1e-6;

static ENABLED: OnceLock<bool> = OnceLock::new();

/// True when certificate checks should run (see module docs for the
/// `DCN_VALIDATE` / debug-build policy). Read once per process.
pub fn validation_enabled() -> bool {
    *ENABLED.get_or_init(|| match crate::env::VALIDATE.get().as_deref() {
        Some("1") | Some("on") | Some("true") => true,
        Some("0") | Some("off") | Some("false") => false,
        _ => cfg!(debug_assertions),
    })
}

/// A failed post-solve certificate check.
#[derive(Debug, Clone, PartialEq)]
pub enum CertError {
    /// A value that must be finite is NaN or infinite.
    NotFinite {
        /// What the value was (e.g. `"lp objective"`).
        context: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A lower/upper bound pair is inverted beyond tolerance.
    BracketInverted {
        /// Reported lower bound.
        lb: f64,
        /// Reported upper bound.
        ub: f64,
    },
    /// A flow exceeds an edge capacity beyond tolerance.
    CapacityViolated {
        /// Directed edge index.
        edge: usize,
        /// Load placed on the edge.
        load: f64,
        /// Edge capacity.
        cap: f64,
    },
    /// A commodity is served less than the claimed `θ · demand`.
    DemandUnderServed {
        /// Commodity index.
        commodity: usize,
        /// Flow actually routed.
        served: f64,
        /// Flow the certificate claims (`θ · demand`).
        required: f64,
    },
    /// A hose-model rate cap is violated.
    HoseViolated {
        /// Switch index.
        node: usize,
        /// Aggregate send or receive rate.
        rate: f64,
        /// The switch's hose cap.
        cap: f64,
    },
    /// Primal and dual objective values disagree beyond tolerance.
    DualityGap {
        /// Primal objective.
        primal: f64,
        /// Dual objective.
        dual: f64,
    },
    /// An LP constraint is violated by the returned point.
    ConstraintViolated {
        /// Constraint row index.
        row: usize,
        /// Residual (positive = violation magnitude).
        residual: f64,
    },
    /// The recorded simplex basis is numerically singular — the tableau
    /// drifted far enough that the basis bookkeeping no longer describes
    /// an invertible system, so no trustworthy solution can be extracted.
    SingularBasis {
        /// The basis column that could not be pivoted to a unit vector.
        col: usize,
    },
}

impl std::fmt::Display for CertError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CertError::NotFinite { context, value } => {
                write!(f, "certificate: {context} is not finite ({value})")
            }
            CertError::BracketInverted { lb, ub } => {
                write!(f, "certificate: bracket inverted (lb {lb} > ub {ub})")
            }
            CertError::CapacityViolated { edge, load, cap } => write!(
                f,
                "certificate: edge {edge} overloaded (load {load} > cap {cap})"
            ),
            CertError::DemandUnderServed {
                commodity,
                served,
                required,
            } => write!(
                f,
                "certificate: commodity {commodity} under-served ({served} < {required})"
            ),
            CertError::HoseViolated { node, rate, cap } => write!(
                f,
                "certificate: hose cap violated at switch {node} (rate {rate} > cap {cap})"
            ),
            CertError::DualityGap { primal, dual } => write!(
                f,
                "certificate: duality gap (primal {primal} vs dual {dual})"
            ),
            CertError::ConstraintViolated { row, residual } => write!(
                f,
                "certificate: constraint {row} violated by {residual}"
            ),
            CertError::SingularBasis { col } => write!(
                f,
                "certificate: simplex basis is numerically singular at column {col}"
            ),
        }
    }
}

impl std::error::Error for CertError {}

fn fail(e: CertError) -> Result<(), CertError> {
    dcn_obs::counter!(dcn_obs::names::GUARD_VALIDATE_FAILURES).inc();
    Err(e)
}

/// Screens a slice for NaN/inf. `context` names the quantity in the error.
pub fn ensure_finite(context: &'static str, values: &[f64]) -> Result<(), CertError> {
    for &v in values {
        if !v.is_finite() {
            return fail(CertError::NotFinite { context, value: v });
        }
    }
    Ok(())
}

/// Screens a single scalar for NaN/inf.
pub fn ensure_finite_scalar(context: &'static str, value: f64) -> Result<(), CertError> {
    if !value.is_finite() {
        return fail(CertError::NotFinite { context, value });
    }
    Ok(())
}

/// Checks `lb <= ub` (within `tol`, relative to `ub`) and that both are
/// finite and non-negative — the invariant of every certified bracket.
pub fn check_bracket(lb: f64, ub: f64, tol: f64) -> Result<(), CertError> {
    ensure_finite("bracket lower bound", &[lb])?;
    if ub.is_nan() {
        return fail(CertError::NotFinite {
            context: "bracket upper bound",
            value: ub,
        });
    }
    if lb < -tol || lb > ub * (1.0 + tol) + tol {
        return fail(CertError::BracketInverted { lb, ub });
    }
    Ok(())
}

/// Checks `load[e] <= cap[e] * (1 + tol)` for every edge.
pub fn check_capacity(loads: &[f64], caps: &[f64], tol: f64) -> Result<(), CertError> {
    for (e, (&load, &cap)) in loads.iter().zip(caps.iter()).enumerate() {
        if !load.is_finite() {
            return fail(CertError::NotFinite {
                context: "edge load",
                value: load,
            });
        }
        if load > cap * (1.0 + tol) + tol {
            return fail(CertError::CapacityViolated { edge: e, load, cap });
        }
    }
    Ok(())
}

/// Checks that every commodity receives at least `theta * demand`
/// (within `tol`, relative).
pub fn check_demands_served(
    served: &[f64],
    demands: &[f64],
    theta: f64,
    tol: f64,
) -> Result<(), CertError> {
    for (j, (&s, &d)) in served.iter().zip(demands.iter()).enumerate() {
        let required = theta * d;
        if s < required * (1.0 - tol) - tol {
            return fail(CertError::DemandUnderServed {
                commodity: j,
                served: s,
                required,
            });
        }
    }
    Ok(())
}

/// Checks the hose model: per-node send (`tx`) and receive (`rx`) rates
/// must not exceed `caps` (within `tol`, relative).
pub fn check_hose(tx: &[f64], rx: &[f64], caps: &[f64], tol: f64) -> Result<(), CertError> {
    for (u, &cap) in caps.iter().enumerate() {
        let limit = cap * (1.0 + tol) + tol;
        if tx[u] > limit {
            return fail(CertError::HoseViolated {
                node: u,
                rate: tx[u],
                cap,
            });
        }
        if rx[u] > limit {
            return fail(CertError::HoseViolated {
                node: u,
                rate: rx[u],
                cap,
            });
        }
    }
    Ok(())
}

/// Checks primal/dual agreement: `|primal - dual| <= tol * max(1, |primal|)`.
/// At simplex optimality the duality gap is exactly zero in exact
/// arithmetic; anything beyond rounding noise means a wrong certificate.
pub fn check_duality_gap(primal: f64, dual: f64, tol: f64) -> Result<(), CertError> {
    ensure_finite("primal objective", &[primal])?;
    ensure_finite("dual objective", &[dual])?;
    if (primal - dual).abs() > tol * primal.abs().max(1.0) {
        return fail(CertError::DualityGap { primal, dual });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finite_screening() {
        assert!(ensure_finite("x", &[0.0, 1.5, -2.0]).is_ok());
        assert!(matches!(
            ensure_finite("x", &[0.0, f64::NAN]),
            Err(CertError::NotFinite { .. })
        ));
        assert!(ensure_finite_scalar("y", f64::INFINITY).is_err());
    }

    #[test]
    fn bracket_ordering() {
        assert!(check_bracket(0.5, 0.6, 1e-9).is_ok());
        assert!(check_bracket(0.5, 0.5, 1e-9).is_ok());
        // +inf upper bound is a valid (vacuous) certificate.
        assert!(check_bracket(0.5, f64::INFINITY, 1e-9).is_ok());
        assert!(matches!(
            check_bracket(0.7, 0.5, 1e-9),
            Err(CertError::BracketInverted { .. })
        ));
        assert!(check_bracket(f64::NAN, 1.0, 1e-9).is_err());
        assert!(check_bracket(0.1, f64::NAN, 1e-9).is_err());
        assert!(check_bracket(-1.0, 1.0, 1e-9).is_err());
    }

    #[test]
    fn capacity_residuals() {
        assert!(check_capacity(&[0.9, 1.0], &[1.0, 1.0], 1e-6).is_ok());
        assert!(matches!(
            check_capacity(&[1.1], &[1.0], 1e-6),
            Err(CertError::CapacityViolated { edge: 0, .. })
        ));
        assert!(check_capacity(&[f64::NAN], &[1.0], 1e-6).is_err());
    }

    #[test]
    fn demand_service() {
        assert!(check_demands_served(&[0.5], &[1.0], 0.5, 1e-6).is_ok());
        assert!(matches!(
            check_demands_served(&[0.4], &[1.0], 0.5, 1e-6),
            Err(CertError::DemandUnderServed { .. })
        ));
    }

    #[test]
    fn hose_caps() {
        let caps = [2.0, 2.0];
        assert!(check_hose(&[2.0, 1.0], &[1.0, 2.0], &caps, 1e-6).is_ok());
        assert!(matches!(
            check_hose(&[2.5, 0.0], &[0.0, 0.0], &caps, 1e-6),
            Err(CertError::HoseViolated { node: 0, .. })
        ));
    }

    #[test]
    fn duality() {
        assert!(check_duality_gap(10.0, 10.0 + 1e-9, 1e-6).is_ok());
        assert!(matches!(
            check_duality_gap(10.0, 11.0, 1e-6),
            Err(CertError::DualityGap { .. })
        ));
    }
}
