#![forbid(unsafe_code)]
//! `dcn-guard`: budgeted, panic-free solver execution.
//!
//! The iterative kernels of this workspace — the two-phase simplex, the
//! Garg–Könemann FPTAS, Yen's spur search, the Hungarian matcher, the FM
//! partitioner — can spin for a very long time on degenerate or adversarial
//! inputs. This crate provides the shared machinery that turns "might hang"
//! into "returns a typed error":
//!
//! * [`Budget`] — a wall-clock deadline, an iteration cap, and a
//!   cooperative cancellation flag, threaded by reference through every
//!   long-running kernel. Kernels obtain a [`BudgetMeter`] and call
//!   [`BudgetMeter::tick`] once per unit of work; when the budget is
//!   exhausted the kernel returns a [`BudgetError`] instead of spinning.
//! * [`validate`] — post-solve certificate checks (finiteness screening,
//!   bracket ordering, capacity residuals, demand service, hose
//!   feasibility, duality gap) behind a debug-on/opt-in flag
//!   ([`validate::validation_enabled`]).
//! * [`adversarial`] — a dependency-free generator of hostile inputs
//!   (NaN/negative demands, degenerate LPs, near-expired budgets) used by
//!   the workspace-level fault-injection harness.
//!
//! Budget exhaustion and certificate failures bump `guard.*` counters in
//! the `dcn-obs` registry, so every run manifest records whether a result
//! came from a clean solve, a degraded fallback, or a truncated attempt.
//!
//! ```
//! use dcn_guard::{Budget, BudgetError};
//! use std::time::Duration;
//!
//! let budget = Budget::unlimited().with_iter_cap(100);
//! let mut meter = budget.meter();
//! let mut spins = 0u64;
//! let err = loop {
//!     if let Err(e) = meter.tick() {
//!         break e;
//!     }
//!     spins += 1;
//! };
//! assert_eq!(spins, 100);
//! assert!(matches!(err, BudgetError::IterationsExceeded { cap: 100, .. }));
//! ```

#![warn(missing_docs)]

pub mod adversarial;
pub mod lease;
pub mod tol;
pub mod validate;

/// The workspace-wide `DCN_*` environment-variable registry.
///
/// Defined in `dcn-obs` (the bottom of the crate stack, so `obs` and
/// `trace` can read knobs without a dependency cycle) and re-exported
/// here under the name the rest of the workspace imports: every env
/// read outside tests goes through a `dcn_guard::env` constant, and
/// `dcn-lint`'s `env-registry` rule rejects raw `std::env::var` sites.
pub use dcn_obs::env;

pub use lease::Lease;
pub use validate::{validation_enabled, CertError};

/// Convenience re-exports for call sites of the budgeted solver API.
///
/// Every solver entry point in the workspace takes a `&Budget`; callers
/// that don't care about deadlines write `&unlimited()` at the call site:
///
/// ```
/// use dcn_guard::prelude::*;
///
/// fn run(budget: &Budget) -> Result<u64, BudgetError> {
///     let mut meter = budget.meter();
///     meter.tick()?;
///     Ok(meter.used())
/// }
///
/// assert!(run(&unlimited()).is_ok());
/// ```
pub mod prelude {
    pub use crate::{Budget, BudgetError, BudgetMeter, CancelFlag};

    /// Shorthand for [`Budget::unlimited`], for call sites without a
    /// deadline: `solve(&unlimited())`.
    pub fn unlimited() -> Budget {
        Budget::unlimited()
    }
}

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A cooperative cancellation flag, cheap to clone and share across
/// threads. Setting it makes every kernel metering a [`Budget`] that
/// carries the flag return [`BudgetError::Cancelled`] at its next tick.
#[derive(Debug, Clone, Default)]
pub struct CancelFlag(Arc<AtomicBool>);

impl CancelFlag {
    /// Creates a new, un-cancelled flag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// True once [`CancelFlag::cancel`] has been called.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// An execution budget: wall-clock deadline, iteration cap, and optional
/// cooperative cancellation.
///
/// A `Budget` is immutable configuration; kernels derive a [`BudgetMeter`]
/// from it (one per solve) and tick the meter once per unit of work. The
/// deadline is anchored when `with_wall` is called, so a budget passed
/// down a fallback chain (exact → FPTAS) naturally shares one deadline
/// across both attempts.
///
/// ```
/// use dcn_guard::{Budget, BudgetError};
/// use std::time::Duration;
///
/// // An iteration cap fires deterministically on the (cap + 1)-th tick.
/// let budget = Budget::unlimited().with_iter_cap(2);
/// let mut meter = budget.meter();
/// assert_eq!(meter.tick(), Ok(()));
/// assert_eq!(meter.tick(), Ok(()));
/// assert_eq!(meter.tick(), Err(BudgetError::IterationsExceeded { cap: 2 }));
///
/// // A wall limit anchors its deadline at the `with_wall` call.
/// let timed = Budget::unlimited().with_wall(Duration::from_secs(3600));
/// let left = timed.remaining_wall().expect("deadline is set");
/// assert!(left <= Duration::from_secs(3600));
/// assert!(Budget::unlimited().remaining_wall().is_none());
/// ```
#[derive(Debug, Clone, Default)]
pub struct Budget {
    deadline: Option<Instant>,
    wall: Option<Duration>,
    iter_cap: Option<u64>,
    cancel: Option<CancelFlag>,
}

impl Budget {
    /// A budget with no limits: every tick succeeds.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// A `&'static` unlimited budget, for contexts that must outlive any
    /// stack frame — notably `dcn_cache::SolveCtx` constructors such as
    /// `unlimited_ctx()`, which bundle this reference with a static
    /// disabled cache handle.
    pub fn unlimited_ref() -> &'static Budget {
        static UNLIMITED: Budget = Budget {
            deadline: None,
            wall: None,
            iter_cap: None,
            cancel: None,
        };
        &UNLIMITED
    }

    /// Adds a wall-clock limit of `wall` from *now*.
    pub fn with_wall(mut self, wall: Duration) -> Self {
        self.wall = Some(wall);
        self.deadline = Instant::now().checked_add(wall);
        self
    }

    /// Adds a cap on the total number of meter ticks.
    pub fn with_iter_cap(mut self, cap: u64) -> Self {
        self.iter_cap = Some(cap);
        self
    }

    /// Attaches a cooperative cancellation flag.
    pub fn with_cancel(mut self, flag: CancelFlag) -> Self {
        self.cancel = Some(flag);
        self
    }

    /// True when no deadline, cap, or cancellation flag is set.
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none() && self.iter_cap.is_none() && self.cancel.is_none()
    }

    /// Wall-clock time remaining, if a deadline is set. Zero once expired.
    pub fn remaining_wall(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// True once the attached flag (if any) has been cancelled.
    pub fn is_cancelled(&self) -> bool {
        self.cancel.as_ref().is_some_and(CancelFlag::is_cancelled)
    }

    /// Derives a fresh meter that checks the clock at every tick.
    ///
    /// Use this when each tick covers substantial work (a simplex pivot, an
    /// FPTAS augmentation, a spur-path BFS): the `Instant::now()` read is
    /// then negligible against the work it meters.
    pub fn meter(&self) -> BudgetMeter<'_> {
        self.meter_every(1)
    }

    /// Derives a meter that checks the deadline and cancellation flag only
    /// every `stride` ticks (the iteration cap is always exact). Use for
    /// very light tick sites such as DFS node expansions, where a clock
    /// read per tick would dominate.
    pub fn meter_every(&self, stride: u32) -> BudgetMeter<'_> {
        BudgetMeter {
            budget: self,
            used: 0,
            stride: stride.max(1) as u64,
        }
    }
}

/// Typed budget-exhaustion errors: the guaranteed alternative to a hang.
#[derive(Debug, Clone, PartialEq)]
pub enum BudgetError {
    /// The wall-clock deadline passed.
    DeadlineExceeded {
        /// The configured wall limit.
        limit: Duration,
        /// Meter ticks consumed before the deadline fired.
        used_iters: u64,
    },
    /// The iteration cap was consumed.
    IterationsExceeded {
        /// The configured cap.
        cap: u64,
    },
    /// The cooperative cancellation flag was set.
    Cancelled {
        /// Meter ticks consumed before cancellation was observed.
        used_iters: u64,
    },
}

impl std::fmt::Display for BudgetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BudgetError::DeadlineExceeded { limit, used_iters } => write!(
                f,
                "wall-clock budget of {limit:?} exceeded after {used_iters} iterations"
            ),
            BudgetError::IterationsExceeded { cap } => {
                write!(f, "iteration budget of {cap} exceeded")
            }
            BudgetError::Cancelled { used_iters } => {
                write!(f, "cancelled after {used_iters} iterations")
            }
        }
    }
}

impl std::error::Error for BudgetError {}

/// Per-solve metering state derived from a [`Budget`].
///
/// `tick()` is the only hot-path call: one increment, one compare against
/// the cap, and (every `stride` ticks) a clock read and a relaxed atomic
/// load. An unlimited budget reduces tick to the increment plus two
/// `None` checks.
#[derive(Debug)]
pub struct BudgetMeter<'a> {
    budget: &'a Budget,
    used: u64,
    stride: u64,
}

impl BudgetMeter<'_> {
    /// Accounts one unit of work. Returns an error once the budget is
    /// exhausted; the caller must propagate it (never ignore and keep
    /// looping — that reintroduces the hang this crate exists to prevent).
    #[inline]
    pub fn tick(&mut self) -> Result<(), BudgetError> {
        self.used += 1;
        if let Some(cap) = self.budget.iter_cap {
            if self.used > cap {
                dcn_obs::counter!(dcn_obs::names::GUARD_BUDGET_ITERATIONS_EXCEEDED).inc();
                return Err(BudgetError::IterationsExceeded { cap });
            }
        }
        if self.used.is_multiple_of(self.stride) {
            self.checkpoint()
        } else {
            Ok(())
        }
    }

    /// Forces a deadline + cancellation check regardless of stride. Useful
    /// right before starting an expensive indivisible step.
    pub fn checkpoint(&self) -> Result<(), BudgetError> {
        if let Some(deadline) = self.budget.deadline {
            if Instant::now() >= deadline {
                dcn_obs::counter!(dcn_obs::names::GUARD_BUDGET_DEADLINE_EXCEEDED).inc();
                return Err(BudgetError::DeadlineExceeded {
                    limit: self.budget.wall.unwrap_or_default(),
                    used_iters: self.used,
                });
            }
        }
        if self.budget.is_cancelled() {
            dcn_obs::counter!(dcn_obs::names::GUARD_BUDGET_CANCELLED).inc();
            return Err(BudgetError::Cancelled {
                used_iters: self.used,
            });
        }
        Ok(())
    }

    /// Ticks consumed so far.
    pub fn used(&self) -> u64 {
        self.used
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_errors() {
        let b = Budget::unlimited();
        assert!(b.is_unlimited());
        let mut m = b.meter();
        for _ in 0..10_000 {
            m.tick().unwrap();
        }
        assert_eq!(m.used(), 10_000);
    }

    #[test]
    fn iteration_cap_is_exact() {
        let b = Budget::unlimited().with_iter_cap(5);
        let mut m = b.meter_every(64); // stride must not delay the cap
        for _ in 0..5 {
            m.tick().unwrap();
        }
        assert_eq!(
            m.tick(),
            Err(BudgetError::IterationsExceeded { cap: 5 })
        );
    }

    #[test]
    fn expired_deadline_fires_on_first_tick() {
        let b = Budget::unlimited().with_wall(Duration::ZERO);
        let mut m = b.meter();
        assert!(matches!(
            m.tick(),
            Err(BudgetError::DeadlineExceeded { .. })
        ));
        assert_eq!(b.remaining_wall(), Some(Duration::ZERO));
    }

    #[test]
    fn cancellation_observed_at_tick() {
        let flag = CancelFlag::new();
        let b = Budget::unlimited().with_cancel(flag.clone());
        let mut m = b.meter();
        m.tick().unwrap();
        flag.cancel();
        assert!(b.is_cancelled());
        assert_eq!(m.tick(), Err(BudgetError::Cancelled { used_iters: 2 }));
    }

    #[test]
    fn stride_delays_clock_checks_but_not_cap() {
        let flag = CancelFlag::new();
        flag.cancel();
        let b = Budget::unlimited().with_cancel(flag);
        let mut m = b.meter_every(4);
        // Ticks 1..3 skip the slow check; tick 4 observes cancellation.
        m.tick().unwrap();
        m.tick().unwrap();
        m.tick().unwrap();
        assert!(matches!(m.tick(), Err(BudgetError::Cancelled { .. })));
    }

    #[test]
    fn errors_display_usefully() {
        let e = BudgetError::DeadlineExceeded {
            limit: Duration::from_millis(10),
            used_iters: 7,
        };
        assert!(e.to_string().contains("10ms"));
        assert!(BudgetError::IterationsExceeded { cap: 3 }
            .to_string()
            .contains('3'));
        assert!(BudgetError::Cancelled { used_iters: 1 }
            .to_string()
            .contains("cancelled"));
    }
}
