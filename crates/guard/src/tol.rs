//! Tolerance-aware float comparisons for solver code.
//!
//! The workspace's throughput numbers come out of iterative solvers (the
//! simplex, the Garg–Könemann FPTAS) whose results are only meaningful to
//! within a residual tolerance; the paper's own comparisons (the Theorem-2
//! gap, the Fig. 5 estimator columns) are tolerance comparisons, not
//! bit-equality. Exact `==`/`!=` against floats in solver code is therefore
//! almost always a bug, and `dcn-lint`'s `float-eq` rule forbids it. These
//! helpers are the sanctioned replacement: every comparison names its
//! tolerance, and the degenerate cases (NaN, infinities) are pinned down by
//! tests rather than left to IEEE ordering accidents.

/// Default absolute tolerance for solver-level float comparisons. Matches
/// the simplex's pivot epsilon; callers with calibrated residuals (e.g.
/// certificate checks) should pass their own.
pub const DEFAULT_ABS_TOL: f64 = 1e-9;

/// True when `a` and `b` differ by at most `tol` in absolute terms.
/// NaN compares unequal to everything (both operands NaN is still false),
/// and equal infinities compare equal.
#[inline]
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    if a == b {
        // Covers equal infinities, which would otherwise produce NaN below.
        return true;
    }
    (a - b).abs() <= tol
}

/// True when `v` is within `tol` of zero. NaN is never approximately zero.
#[inline]
pub fn approx_zero(v: f64, tol: f64) -> bool {
    v.abs() <= tol
}

/// True when `v` is within `tol` of one.
#[inline]
pub fn approx_one(v: f64, tol: f64) -> bool {
    approx_eq(v, 1.0, tol)
}

/// True when `a` exceeds `b` by more than `tol` — "greater, and the gap is
/// real at this tolerance". The strict counterpart to [`approx_eq`].
#[inline]
pub fn definitely_greater(a: f64, b: f64, tol: f64) -> bool {
    a - b > tol
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq_within_tolerance() {
        assert!(approx_eq(1.0, 1.0 + 1e-12, 1e-9));
        assert!(!approx_eq(1.0, 1.0 + 1e-6, 1e-9));
        assert!(approx_eq(0.0, -0.0, 0.0));
    }

    #[test]
    fn nan_never_equal() {
        assert!(!approx_eq(f64::NAN, f64::NAN, 1e-9));
        assert!(!approx_eq(f64::NAN, 0.0, 1e-9));
        assert!(!approx_zero(f64::NAN, 1e-9));
        assert!(!approx_one(f64::NAN, 1e-9));
    }

    #[test]
    fn infinities() {
        assert!(approx_eq(f64::INFINITY, f64::INFINITY, 1e-9));
        assert!(!approx_eq(f64::INFINITY, f64::NEG_INFINITY, 1e-9));
        assert!(!approx_zero(f64::INFINITY, 1e-9));
    }

    #[test]
    fn zero_and_one() {
        assert!(approx_zero(5e-10, DEFAULT_ABS_TOL));
        assert!(!approx_zero(5e-9, DEFAULT_ABS_TOL));
        assert!(approx_one(1.0 - 1e-10, DEFAULT_ABS_TOL));
        assert!(!approx_one(0.999, DEFAULT_ABS_TOL));
    }

    #[test]
    fn strict_gap() {
        assert!(definitely_greater(1.0, 0.5, 1e-9));
        assert!(!definitely_greater(1.0 + 1e-12, 1.0, 1e-9));
        assert!(!definitely_greater(f64::NAN, 0.0, 1e-9));
    }
}
