//! Adversarial-input generation for the fault-injection harness.
//!
//! This crate sits below the graph/model crates in the dependency order,
//! so it cannot construct topologies directly. Instead it provides:
//!
//! * [`hostile_floats`] — the scalar corpus every numeric entry point must
//!   survive (NaN, infinities, negatives, denormals, huge magnitudes);
//! * [`CaseSpec`] — an enumeration of the structural attack classes; the
//!   workspace-level harness (`tests/fault_injection.rs`) materializes
//!   each spec into concrete topologies, traffic matrices, and LPs;
//! * [`Xorshift`] — a tiny deterministic PRNG so fuzz-ish sweeps stay
//!   reproducible without pulling the `rand` crate into this layer.

/// The scalar corpus: every value a demand, capacity, eps, or objective
/// coefficient could be poisoned with.
pub fn hostile_floats() -> [f64; 10] {
    [
        f64::NAN,
        f64::INFINITY,
        f64::NEG_INFINITY,
        -1.0,
        -0.0,
        0.0,
        f64::MIN_POSITIVE,
        5e-324, // smallest subnormal
        1e300,
        -1e300,
    ]
}

/// Structural attack classes the fault-injection harness must cover.
/// Each variant names one way real deployments have corrupted solver
/// inputs; the harness asserts a typed error (never a panic or hang) for
/// every class on every public solver entry point it applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaseSpec {
    /// A demand entry with a NaN volume.
    NanDemand,
    /// A demand entry with a negative volume.
    NegativeDemand,
    /// A demand entry with zero volume.
    ZeroDemand,
    /// A demand whose source equals its destination.
    SelfLoopDemand,
    /// An edge with zero capacity on a path the solver must use.
    ZeroCapacityEdge,
    /// A self-loop edge in the topology graph.
    SelfLoopEdge,
    /// A disconnected graph with cross-component demands.
    DisconnectedGraph,
    /// An empty traffic matrix.
    EmptyTraffic,
    /// A degenerate LP (many redundant constraints through one vertex).
    DegenerateLp,
    /// An infeasible LP.
    InfeasibleLp,
    /// An unbounded LP.
    UnboundedLp,
    /// A budget that expires almost immediately.
    NearExpiredBudget,
    /// A budget with a tiny iteration cap.
    TinyIterationCap,
    /// A pre-cancelled budget.
    PreCancelled,
}

/// All attack classes, for exhaustive harness sweeps.
pub fn all_cases() -> &'static [CaseSpec] {
    &[
        CaseSpec::NanDemand,
        CaseSpec::NegativeDemand,
        CaseSpec::ZeroDemand,
        CaseSpec::SelfLoopDemand,
        CaseSpec::ZeroCapacityEdge,
        CaseSpec::SelfLoopEdge,
        CaseSpec::DisconnectedGraph,
        CaseSpec::EmptyTraffic,
        CaseSpec::DegenerateLp,
        CaseSpec::InfeasibleLp,
        CaseSpec::UnboundedLp,
        CaseSpec::NearExpiredBudget,
        CaseSpec::TinyIterationCap,
        CaseSpec::PreCancelled,
    ]
}

/// A tiny xorshift64* PRNG: deterministic, seedable, dependency-free.
/// Not for statistics — only for generating reproducible hostile inputs.
#[derive(Debug, Clone)]
pub struct Xorshift(u64);

impl Xorshift {
    /// Creates a generator from a non-zero seed (zero is mapped to a
    /// fixed constant, since xorshift has a zero fixed point).
    pub fn new(seed: u64) -> Self {
        Xorshift(if seed == 0 { 0x9e37_79b9_7f4a_7c15 } else { seed })
    }

    /// Next pseudo-random `u64`.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Next value in `0..bound` (`bound > 0`).
    pub fn next_below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound.max(1)
    }

    /// Next `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_covers_the_classics() {
        let c = hostile_floats();
        assert!(c.iter().any(|v| v.is_nan()));
        assert!(c.contains(&f64::INFINITY));
        assert!(c.contains(&f64::NEG_INFINITY));
        assert!(c.iter().any(|&v| v < 0.0));
        assert!(c.contains(&0.0));
    }

    #[test]
    fn all_cases_is_exhaustive_enough() {
        assert!(all_cases().len() >= 12);
    }

    #[test]
    fn xorshift_is_deterministic_and_in_range() {
        let mut a = Xorshift::new(42);
        let mut b = Xorshift::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        for _ in 0..100 {
            let f = a.next_f64();
            assert!((0.0..1.0).contains(&f));
            assert!(a.next_below(7) < 7);
        }
        // Zero seed does not get stuck.
        let mut z = Xorshift::new(0);
        assert_ne!(z.next_u64(), z.next_u64());
    }
}
