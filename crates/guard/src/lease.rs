//! Wall-clock leases for supervised work units.
//!
//! A [`Lease`] is the vocabulary a supervisor (see `dcn-fleet`) uses to
//! decide when a worker holding a claimed unit is wedged: the claim is
//! granted `duration()` of wall time, after which the supervisor may
//! kill the worker and retry the unit elsewhere. Leases are *derived
//! from budgets* — [`Lease::from_budget`] caps the default lease at the
//! run budget's remaining wall time, so no single unit can be granted
//! longer than the whole run has left.
//!
//! A `Lease` holds only a duration, never a start instant: the clock it
//! is measured against belongs to the *observer* (the supervisor's
//! first sighting of a claim), which keeps this type trivially testable
//! and free of cross-process clock assumptions.

use crate::Budget;
use std::time::Duration;

/// A wall-clock grant for holding one unit of supervised work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lease {
    duration: Duration,
}

impl Lease {
    /// A lease of exactly `duration`.
    pub fn new(duration: Duration) -> Lease {
        Lease { duration }
    }

    /// Derives a lease from a run budget: `default`, capped at the
    /// budget's remaining wall time (an unlimited budget grants the
    /// default unchanged). A supervisor granting per-unit leases this
    /// way can never promise a worker more time than its own deadline.
    pub fn from_budget(budget: &Budget, default: Duration) -> Lease {
        match budget.remaining_wall() {
            Some(remaining) => Lease::new(default.min(remaining)),
            None => Lease::new(default),
        }
    }

    /// The granted duration.
    pub fn duration(&self) -> Duration {
        self.duration
    }

    /// Has a holder that has held the lease for `held_for` exceeded it?
    pub fn is_expired(&self, held_for: Duration) -> bool {
        held_for >= self.duration
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_grants_the_default() {
        let lease = Lease::from_budget(&Budget::unlimited(), Duration::from_secs(600));
        assert_eq!(lease.duration(), Duration::from_secs(600));
    }

    #[test]
    fn tight_budget_caps_the_lease() {
        let budget = Budget::unlimited().with_wall(Duration::from_millis(50));
        let lease = Lease::from_budget(&budget, Duration::from_secs(600));
        assert!(lease.duration() <= Duration::from_millis(50));
    }

    #[test]
    fn expiry_is_inclusive_of_the_boundary() {
        let lease = Lease::new(Duration::from_millis(100));
        assert!(!lease.is_expired(Duration::from_millis(99)));
        assert!(lease.is_expired(Duration::from_millis(100)));
        assert!(lease.is_expired(Duration::from_millis(101)));
    }
}
