//! Shared harness support for the experiment binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md §3 for the index). They all follow the same shape:
//! sweep a parameter grid, print an aligned table to stdout, and write a
//! CSV into `results/` for plotting.

#![warn(missing_docs)]

use std::fmt::Display;
use std::fs;
use std::io::Write;
use std::path::PathBuf;
use std::time::Instant;

/// Locates (and creates) the `results/` directory at the workspace root.
pub fn results_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench; the workspace root is two up.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("workspace root")
        .to_path_buf();
    let dir = root.join("results");
    fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// A simple result table that renders aligned text and CSV.
pub struct Table {
    name: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a named table with the given column headers.
    pub fn new(name: &str, header: &[&str]) -> Self {
        Table {
            name: name.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header arity).
    pub fn row(&mut self, cells: &[&dyn Display]) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows
            .push(cells.iter().map(|c| format!("{c}")).collect());
    }

    /// Prints an aligned table to stdout.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.len());
            }
        }
        let line = |cells: &[String]| {
            let joined: Vec<String> = cells
                .iter()
                .zip(widths.iter())
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            println!("  {}", joined.join("  "));
        };
        println!("== {} ==", self.name);
        line(&self.header);
        for row in &self.rows {
            line(row);
        }
        println!();
    }

    /// Writes the table as `results/<name>.csv`.
    pub fn write_csv(&self) {
        let path = results_dir().join(format!("{}.csv", self.name));
        let mut f = fs::File::create(&path).expect("create csv");
        writeln!(f, "{}", self.header.join(",")).unwrap();
        for row in &self.rows {
            writeln!(f, "{}", row.join(",")).unwrap();
        }
        eprintln!("wrote {}", path.display());
    }

    /// Print + CSV in one call.
    pub fn finish(&self) {
        self.print();
        self.write_csv();
    }
}

/// Times a closure, returning `(result, seconds)`.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// True when `--quick` was passed (smaller sweeps for CI-style runs).
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// True when `--large` was passed (extended sweeps).
pub fn large_mode() -> bool {
    std::env::args().any(|a| a == "--large")
}

/// Formats a float with 3 decimals for table cells.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_round_trip() {
        let mut t = Table::new("unit_test_table", &["a", "b"]);
        t.row(&[&1, &f3(0.5)]);
        t.row(&[&22, &"x"]);
        t.print();
        t.write_csv();
        let path = results_dir().join("unit_test_table.csv");
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "a,b\n1,0.500\n22,x\n");
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn timing_positive() {
        let (v, s) = timed(|| 42);
        assert_eq!(v, 42);
        assert!(s >= 0.0);
    }
}
