#![forbid(unsafe_code)]
//! Shared harness support for the experiment binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md §3 for the index). They all follow the same shape:
//! sweep a parameter grid, print an aligned table to stdout, and write a
//! CSV into `results/` for plotting.
//!
//! # Observability
//!
//! The harness is wired into `dcn-obs`: every [`Table::finish`] writes a
//! `results/<name>.manifest.json` sidecar capturing the RNG seed (when the
//! binary reported one via [`set_run_seed`]), the CLI arguments, the wall
//! time since process start, and a full dump of the metrics registry. With
//! `DCN_OBS=summary` (or `trace`) the registry summary is also printed to
//! stderr; with the default `DCN_OBS=off`, stdout stays byte-identical to
//! the plain tables.
//!
//! With `DCN_TRACE_FILE=<path>` (or `DCN_OBS=trace`) the harness also
//! installs the `dcn-trace` per-event recorder at startup and flushes a
//! Chrome `trace_event` JSON file at manifest time — see DESIGN.md §12.
//! Passing `--baseline` to any experiment binary folds the run's summary
//! (wall seconds, cache hit rate, per-span totals) into the committed
//! `BENCH_BASELINE.json`, which `--bin perf_gate` and
//! `scripts/perf_gate.py` later compare fresh manifests against.

#![warn(missing_docs)]

pub mod fleet;
pub mod perf;

use std::fmt::Display;
use std::fs;
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Error from locating or creating the results directory.
#[derive(Debug)]
pub struct ResultsDirError {
    /// The directory that could not be created.
    pub path: PathBuf,
    /// The underlying IO error.
    pub source: std::io::Error,
}

impl Display for ResultsDirError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cannot create results dir {}: {}",
            self.path.display(),
            self.source
        )
    }
}

impl std::error::Error for ResultsDirError {}

/// Locates (and creates) the results directory.
///
/// Defaults to `results/` at the workspace root; the `DCN_RESULTS_DIR`
/// environment variable overrides the location (useful for CI and for
/// keeping scratch runs out of the tree).
pub fn results_dir() -> Result<PathBuf, ResultsDirError> {
    let dir = match dcn_guard::env::RESULTS_DIR.get_os() {
        Some(d) => PathBuf::from(d),
        None => {
            // CARGO_MANIFEST_DIR = crates/bench; the workspace root is two up.
            PathBuf::from(env!("CARGO_MANIFEST_DIR"))
                .parent()
                .and_then(|p| p.parent())
                .expect("workspace root")
                .join("results")
        }
    };
    fs::create_dir_all(&dir).map_err(|source| ResultsDirError {
        path: dir.clone(),
        source,
    })?;
    Ok(dir)
}

fn process_start() -> Instant {
    static START: OnceLock<Instant> = OnceLock::new();
    // dcn-lint: allow(nondeterminism) — wall-clock anchor for human-facing progress lines only; never feeds solver results
    *START.get_or_init(Instant::now)
}

static PANIC_FLUSH_NAME: OnceLock<std::sync::Mutex<String>> = OnceLock::new();

/// Installs (once per process) a panic hook that flushes the partial run
/// manifest and any buffered `dcn-trace` events before the process dies,
/// and records `name` as the run the hook reports under. Without this, a
/// panicking experiment binary — or a `dcn-fleet` worker killed by a
/// solver abort — drops its trace on the floor; with it, the post-mortem
/// lands in `results/<name>.panic.manifest.json` (and
/// `<name>.panic.trace.json` when tracing is active). The previous hook
/// (the default backtrace printer) still runs first.
pub fn install_panic_flush(name: &str) {
    let cell = PANIC_FLUSH_NAME.get_or_init(|| std::sync::Mutex::new(String::new()));
    *cell.lock().unwrap_or_else(|poisoned| poisoned.into_inner()) = name.to_string();
    static INSTALL: std::sync::Once = std::sync::Once::new();
    INSTALL.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            prev(info);
            panic_flush();
        }));
    });
}

/// The body of the panic hook. Must never panic itself: every fallible
/// step degrades to a stderr line or a silent skip.
fn panic_flush() {
    let Some(cell) = PANIC_FLUSH_NAME.get() else {
        return;
    };
    let name = cell
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
        .clone();
    if name.is_empty() {
        return;
    }
    dcn_cache::publish_hit_rate();
    let wall = process_start().elapsed().as_secs_f64();
    let manifest = dcn_obs::manifest::RunManifest::capture(
        &name,
        run_seed(),
        wall,
        dcn_exec::Pool::from_env().threads(),
    );
    let Ok(dir) = results_dir() else {
        return;
    };
    let mpath = dir.join(format!("{name}.panic.manifest.json"));
    match manifest.write_to(&mpath) {
        Ok(()) => eprintln!("{name}: panic: partial manifest flushed to {}", mpath.display()),
        Err(e) => eprintln!("{name}: panic: manifest flush failed: {e}"),
    }
    if dcn_trace::active() {
        let tpath = dir.join(format!("{name}.panic.trace.json"));
        match dcn_trace::flush_to_file(&tpath) {
            Ok(n) => {
                eprintln!("{name}: panic: flushed {n} trace events to {}", tpath.display());
            }
            Err(e) => eprintln!("{name}: panic: trace flush failed: {e}"),
        }
    }
}

static RUN_SEED: AtomicU64 = AtomicU64::new(u64::MAX);

/// Records the RNG seed this run is based on, for the manifest sidecar.
/// Call once near the top of `main`.
pub fn set_run_seed(seed: u64) {
    RUN_SEED.store(seed, Ordering::Relaxed);
}

/// The seed recorded by [`set_run_seed`], if any.
pub fn run_seed() -> Option<u64> {
    match RUN_SEED.load(Ordering::Relaxed) {
        u64::MAX => None,
        s => Some(s),
    }
}

/// Captures and writes the `results/<name>.manifest.json` sidecar for a
/// run, and prints the obs summary when observability is on. Called by
/// [`Table::finish`]; standalone binaries without a table can call it
/// directly.
pub fn write_manifest(name: &str) {
    // Fold cache hit/miss counters into the `cache.hit_rate` gauge so the
    // manifest's metrics dump records the run's hit rate.
    dcn_cache::publish_hit_rate();
    let wall = process_start().elapsed().as_secs_f64();
    let manifest = dcn_obs::manifest::RunManifest::capture(
        name,
        run_seed(),
        wall,
        dcn_exec::Pool::from_env().threads(),
    );
    match results_dir() {
        Ok(dir) => {
            let path = dir.join(format!("{name}.manifest.json"));
            match manifest.write_to(&path) {
                Ok(()) => dcn_obs::obs_log!("wrote {}", path.display()),
                Err(e) => eprintln!("manifest write failed for {name}: {e}"),
            }
        }
        Err(e) => eprintln!("{e}"),
    }
    flush_trace(name);
    if baseline_mode() {
        update_baseline(name, &manifest);
    }
    if dcn_obs::enabled() {
        eprint!("{}", dcn_obs::summary());
    }
}

/// Flushes the per-event trace (when active) to `DCN_TRACE_FILE`, or to
/// `results/<name>.trace.json` when only `DCN_OBS=trace` asked for
/// tracing. Flushing rewrites the file with all events so far, so in a
/// binary with several tables the last flush wins with the full trace.
fn flush_trace(name: &str) {
    if !dcn_trace::active() {
        return;
    }
    let path = match dcn_trace::trace_file_from_env() {
        Some(p) => p,
        None => match results_dir() {
            Ok(dir) => dir.join(format!("{name}.trace.json")),
            Err(e) => {
                eprintln!("{e}");
                return;
            }
        },
    };
    match dcn_trace::flush_to_file(&path) {
        Ok(n) => dcn_obs::obs_log!("wrote {} ({n} events)", path.display()),
        Err(e) => eprintln!("trace flush failed for {name}: {e}"),
    }
}

/// True when `--baseline` was passed: the run's perf summary is folded
/// into [`baseline_path`] at manifest time.
pub fn baseline_mode() -> bool {
    std::env::args().any(|a| a == "--baseline")
}

/// The perf baseline file: `DCN_BENCH_BASELINE` when set, else
/// `BENCH_BASELINE.json` at the workspace root.
pub fn baseline_path() -> PathBuf {
    match dcn_guard::env::BENCH_BASELINE.get_os() {
        Some(p) => PathBuf::from(p),
        None => PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(|p| p.parent())
            .expect("workspace root")
            .join("BENCH_BASELINE.json"),
    }
}

fn update_baseline(name: &str, manifest: &dcn_obs::manifest::RunManifest) {
    let path = baseline_path();
    let mut baseline = match perf::Baseline::load(&path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("baseline load failed ({e}); not updating {}", path.display());
            return;
        }
    };
    baseline.upsert(name, perf::entry_from_manifest(manifest));
    match baseline.save(&path) {
        Ok(()) => eprintln!("updated baseline entry '{name}' in {}", path.display()),
        Err(e) => eprintln!("baseline write failed for {name}: {e}"),
    }
}

/// A simple result table that renders aligned text and CSV.
pub struct Table {
    name: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a named table with the given column headers.
    pub fn new(name: &str, header: &[&str]) -> Self {
        // Pin the wall-clock origin as early as table creation in case the
        // binary never called into the harness before, install the
        // per-event trace recorder when the environment asks for one, and
        // arm the panic hook so a mid-sweep abort still flushes.
        process_start();
        dcn_trace::init_from_env();
        install_panic_flush(name);
        Table {
            name: name.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header arity).
    pub fn row(&mut self, cells: &[&dyn Display]) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows
            .push(cells.iter().map(|c| format!("{c}")).collect());
    }

    /// Prints an aligned table to stdout.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row.iter()) {
                *w = (*w).max(cell.len());
            }
        }
        let line = |cells: &[String]| {
            let joined: Vec<String> = cells
                .iter()
                .zip(widths.iter())
                .map(|(c, w)| format!("{c:>w$}"))
                .collect();
            println!("  {}", joined.join("  "));
        };
        println!("== {} ==", self.name);
        line(&self.header);
        for row in &self.rows {
            line(row);
        }
        println!();
    }

    /// Writes the table as `results/<name>.csv`.
    pub fn write_csv(&self) {
        let dir = match results_dir() {
            Ok(d) => d,
            Err(e) => {
                eprintln!("{e}");
                return;
            }
        };
        let path = dir.join(format!("{}.csv", self.name));
        let mut f = fs::File::create(&path).expect("create csv");
        writeln!(f, "{}", self.header.join(",")).unwrap();
        for row in &self.rows {
            writeln!(f, "{}", row.join(",")).unwrap();
        }
        dcn_obs::obs_log!("wrote {}", path.display());
    }

    /// Print + CSV + manifest sidecar in one call.
    pub fn finish(&self) {
        self.print();
        self.write_csv();
        write_manifest(&self.name);
    }
}

/// The process-wide solver cache shared by every call site in an
/// experiment binary, built once from the environment
/// (`DCN_CACHE_BYTES` / `DCN_CACHE_DIR`). Returning clones of one
/// handle — rather than calling [`dcn_cache::CacheHandle::from_env`]
/// per call site — is what lets a binary's repeated sub-sweeps share
/// the in-memory tier.
pub fn cache() -> dcn_cache::CacheHandle {
    static CACHE: OnceLock<dcn_cache::CacheHandle> = OnceLock::new();
    CACHE.get_or_init(dcn_cache::CacheHandle::from_env).clone()
}

/// Times a closure under an obs span, returning `(result, seconds)`.
/// Timing is measured regardless of mode; the span is recorded only when
/// observability is on.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    dcn_obs::time_scope(dcn_obs::names::BENCH_TIMED, f)
}

/// True when `--quick` was passed (smaller sweeps for CI-style runs).
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// True when `--large` was passed (extended sweeps).
pub fn large_mode() -> bool {
    std::env::args().any(|a| a == "--large")
}

/// Formats a float with 3 decimals for table cells.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Runs an experiment body that may fail, turning errors into a short
/// stderr diagnostic and a non-zero [`std::process::ExitCode`] instead of
/// a panic backtrace. Experiment binaries wrap their `main` logic in this
/// so that an infeasible configuration (or an exhausted budget) exits
/// cleanly and scripted sweeps can tell "experiment failed" from
/// "experiment crashed".
pub fn run_guarded(
    name: &str,
    body: impl FnOnce() -> Result<(), Box<dyn std::error::Error>>,
) -> std::process::ExitCode {
    // Anchor the wall clock, install the trace recorder, and arm the
    // panic-flush hook before any experiment work runs, so traces cover
    // the whole body and survive a panicking one.
    process_start();
    dcn_trace::init_from_env();
    install_panic_flush(name);
    match body() {
        Ok(()) => std::process::ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("{name}: error: {e}");
            let mut src = e.source();
            while let Some(s) = src {
                eprintln!("{name}:   caused by: {s}");
                src = s.source();
            }
            std::process::ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_round_trip() {
        let mut t = Table::new("unit_test_table", &["a", "b"]);
        t.row(&[&1, &f3(0.5)]);
        t.row(&[&22, &"x"]);
        t.print();
        t.write_csv();
        let path = results_dir().unwrap().join("unit_test_table.csv");
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "a,b\n1,0.500\n22,x\n");
        std::fs::remove_file(path).unwrap();
    }

    #[test]
    fn timing_positive() {
        let (v, s) = timed(|| 42);
        assert_eq!(v, 42);
        assert!(s >= 0.0);
    }

    #[test]
    fn finish_writes_manifest_sidecar() {
        let mut t = Table::new("unit_test_manifest", &["x"]);
        t.row(&[&1]);
        t.finish();
        let dir = results_dir().unwrap();
        let mpath = dir.join("unit_test_manifest.manifest.json");
        let text = std::fs::read_to_string(&mpath).unwrap();
        let m = dcn_obs::manifest::RunManifest::from_json(&text).unwrap();
        assert_eq!(m.name, "unit_test_manifest");
        assert!(m.wall_seconds >= 0.0);
        std::fs::remove_file(mpath).unwrap();
        let _ = std::fs::remove_file(dir.join("unit_test_manifest.csv"));
    }

    #[test]
    fn run_seed_round_trips() {
        assert_eq!(run_seed(), None);
        set_run_seed(42);
        assert_eq!(run_seed(), Some(42));
    }
}
