//! Sharded sweep execution for experiment binaries.
//!
//! With `DCN_FLEET_WORKERS >= 2`, [`frontier_sweep_sharded`] routes a
//! frontier sweep through `dcn-fleet` instead of the in-process
//! [`frontier_sweep`]: each cell becomes a work unit (id = the cell's
//! [`FrontierConfig::work_key`] content hash), child processes re-invoke
//! this same binary with `--worker <queue-root>` to claim and solve
//! cells against the shared `DCN_CACHE_DIR`, and the supervisor merges
//! the results back in input order. The merged `Vec<Option<u64>>` is
//! identical to the single-process path at any worker count, so the
//! table, CSV, and manifest identity fields downstream are byte-stable.
//!
//! With fewer than 2 workers the call is a plain passthrough — the
//! spill-to-disk queue would only add process-spawn overhead.

use dcn_cache::SolveCtx;
use dcn_core::frontier::{frontier_max_servers, frontier_sweep, FrontierConfig};
use dcn_fleet::{run_fleet, worker_main, FleetConfig, UnitOutcome, WorkUnit};
use dcn_obs::json::Json;
use std::path::{Path, PathBuf};

pub use dcn_fleet::worker_root_from_args;

/// Default queue root for a named sweep when `DCN_FLEET_DIR` is unset:
/// under the shared cache directory when one is configured (so queue and
/// cache recovery state live side by side), else under the results dir.
fn default_fleet_root(name: &str) -> PathBuf {
    if let Some(dir) = dcn_guard::env::CACHE_DIR.get_os() {
        return PathBuf::from(dir).join("fleet").join(name);
    }
    match crate::results_dir() {
        Ok(d) => d.join(".fleet").join(name),
        Err(_) => std::env::temp_dir().join("dcn-fleet").join(name),
    }
}

/// The `--worker <root>` entrypoint for frontier sweeps: claims cells
/// from the queue at `root`, solves them with [`frontier_max_servers`]
/// against the process-global [`crate::cache`] handle, and publishes
/// `{"max_servers": n | null}` results until the queue drains.
///
/// Runs under [`crate::run_guarded`], so a panicking solve still
/// flushes its trace and partial manifest (the supervisor then retries
/// the cell in a fresh worker).
pub fn run_frontier_worker(root: &Path) -> std::process::ExitCode {
    let root = root.to_path_buf();
    crate::run_guarded("fleet_worker", move || {
        let cache = crate::cache();
        let sctx = SolveCtx::unlimited(&cache);
        let published = worker_main(&root, |unit, _attempt| {
            let config = FrontierConfig::from_json(&unit.payload)?;
            let servers = frontier_max_servers(
                config.family,
                config.radix,
                config.h,
                config.criterion,
                config.max_switches,
                config.seed,
                &sctx,
            )
            .map_err(|e| e.to_string())?;
            let value = match servers {
                Some(n) => Json::Num(n as f64),
                None => Json::Null,
            };
            Ok(Json::obj([("max_servers", value)]))
        })?;
        dcn_obs::obs_log!("fleet worker published {published} results");
        Ok(())
    })
}

/// [`frontier_sweep`], sharded across `DCN_FLEET_WORKERS` processes when
/// at least 2 are requested (in-process passthrough otherwise).
///
/// Error semantics match the serial path: the lowest-input-index failed
/// cell becomes the returned error. A *quarantined* cell (one that
/// repeatedly crashed its workers) degrades to `None` with a stderr
/// warning instead of failing the sweep — the robustness contract is
/// that one poison cell cannot take down the whole campaign.
pub fn frontier_sweep_sharded(
    name: &str,
    configs: &[FrontierConfig],
    ctx: &SolveCtx<'_>,
) -> Result<Vec<Option<u64>>, Box<dyn std::error::Error>> {
    if dcn_fleet::workers_from_env() < 2 {
        return Ok(frontier_sweep(configs, ctx)?);
    }
    let units: Vec<WorkUnit> = configs
        .iter()
        .map(|c| WorkUnit {
            id: c.work_key().to_hex(),
            payload: c.to_json(),
        })
        .collect();
    let cfg = FleetConfig::from_env(&default_fleet_root(name));
    let exe = std::env::current_exe()?;
    let root = cfg.root.clone();
    let report = run_fleet(&cfg, &units, ctx.budget, &|| {
        dcn_fleet::worker_command(&exe, &root)
    })?;
    if report.recovered > 0 || report.retries > 0 || report.crashes > 0 || report.quarantined > 0 {
        eprintln!(
            "{name}: fleet: {} recovered, {} retries, {} crashes ({} lease kills), {} quarantined",
            report.recovered, report.retries, report.crashes, report.lease_kills, report.quarantined
        );
    }
    let mut out = Vec::with_capacity(configs.len());
    for (i, outcome) in report.outcomes.iter().enumerate() {
        match outcome {
            UnitOutcome::Ok(json) => {
                let servers = match json.get("max_servers") {
                    Some(Json::Null) => None,
                    Some(v) => Some(v.as_u64().ok_or_else(|| {
                        format!("{name}: cell {i}: malformed max_servers in fleet result")
                    })?),
                    None => {
                        return Err(
                            format!("{name}: cell {i}: fleet result missing max_servers").into()
                        )
                    }
                };
                out.push(servers);
            }
            UnitOutcome::Err(e) => {
                return Err(format!("{name}: frontier cell {i} failed: {e}").into());
            }
            UnitOutcome::Quarantined(reason) => {
                eprintln!("{name}: WARNING: cell {i} quarantined ({reason}); reporting '-'");
                out.push(None);
            }
        }
    }
    Ok(out)
}
