//! Perf-regression gate: compares fresh run manifests against a committed
//! baseline of per-figure wall-clock, span-total, and cache-hit-rate
//! summaries (`BENCH_BASELINE.json` at the workspace root).
//!
//! The baseline is written by running an experiment binary with
//! `--baseline` (see [`crate::baseline_mode`]): the harness folds the
//! run's manifest into the baseline file. The gate
//! (`cargo run -p dcn-bench --bin perf_gate`, or `scripts/perf_gate.py`
//! for CI without a cargo cache) then compares later manifests against it
//! and fails when any tracked quantity regresses beyond tolerance.
//!
//! Only quantities large enough to be meaningfully measurable are gated:
//! spans (and walls) below [`GateConfig::min_seconds`] in the *baseline*
//! are skipped, since micro-timings jitter far beyond any useful
//! tolerance. Spans absent from the current manifest (e.g. a run under
//! `DCN_OBS=off` records no spans at all) are skipped rather than treated
//! as zero — the gate flags measured slowdowns, not missing measurements.

use dcn_obs::json::Json;
use dcn_obs::manifest::RunManifest;
use std::path::Path;

/// Default relative tolerance: a tracked quantity may grow by up to 25%
/// before the gate fails.
pub const DEFAULT_TOLERANCE: f64 = 0.25;

/// Default floor (seconds) under which baseline timings are not gated.
pub const DEFAULT_MIN_SECONDS: f64 = 0.05;

/// Default absolute cache-hit-rate drop that fails the gate.
pub const DEFAULT_HIT_RATE_DROP: f64 = 0.25;

/// The per-run summary tracked by the baseline: wall clock, cache hit
/// rate (when the run recorded one), and total seconds per span path.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BaselineEntry {
    /// Wall-clock seconds of the run.
    pub wall_seconds: f64,
    /// `cache.hit_rate` gauge at manifest time, when recorded.
    pub cache_hit_rate: Option<f64>,
    /// `(span path, total_secs)` pairs, in manifest order.
    pub spans: Vec<(String, f64)>,
}

/// The committed baseline: one [`BaselineEntry`] per run name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Baseline {
    /// `(run name, entry)` pairs, kept sorted by name for diffable JSON.
    pub entries: Vec<(String, BaselineEntry)>,
}

/// Extracts the gated summary from a full run manifest.
pub fn entry_from_manifest(m: &RunManifest) -> BaselineEntry {
    let mut spans = Vec::new();
    for metric in &m.metrics {
        if metric.kind != "span" {
            continue;
        }
        let Some(path) = metric.name.strip_prefix("span:") else {
            continue;
        };
        if let Some((_, total)) = metric.fields.iter().find(|(k, _)| k == "total_secs") {
            spans.push((path.to_string(), *total));
        }
    }
    BaselineEntry {
        wall_seconds: m.wall_seconds,
        cache_hit_rate: m.metric_field(dcn_obs::names::CACHE_HIT_RATE, "value"),
        spans,
    }
}

impl BaselineEntry {
    fn to_json(&self) -> Json {
        let mut fields = vec![("wall_seconds".to_string(), Json::Num(self.wall_seconds))];
        if let Some(rate) = self.cache_hit_rate {
            fields.push(("cache_hit_rate".to_string(), Json::Num(rate)));
        }
        fields.push((
            "spans".to_string(),
            Json::Obj(
                self.spans
                    .iter()
                    .map(|(p, t)| (p.clone(), Json::Num(*t)))
                    .collect(),
            ),
        ));
        Json::Obj(fields)
    }

    fn from_json(v: &Json) -> Result<BaselineEntry, String> {
        let wall_seconds = v
            .get("wall_seconds")
            .and_then(Json::as_f64)
            .ok_or("entry missing wall_seconds")?;
        let cache_hit_rate = v.get("cache_hit_rate").and_then(Json::as_f64);
        let mut spans = Vec::new();
        if let Some(Json::Obj(pairs)) = v.get("spans") {
            for (path, total) in pairs {
                spans.push((
                    path.clone(),
                    total.as_f64().ok_or("span total not numeric")?,
                ));
            }
        }
        Ok(BaselineEntry {
            wall_seconds,
            cache_hit_rate,
            spans,
        })
    }

    /// The recorded total for a span path, if present.
    pub fn span_total(&self, path: &str) -> Option<f64> {
        self.spans
            .iter()
            .find(|(p, _)| p == path)
            .map(|(_, t)| *t)
    }
}

impl Baseline {
    /// The entry for a run name, if present.
    pub fn entry(&self, name: &str) -> Option<&BaselineEntry> {
        self.entries
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, e)| e)
    }

    /// Inserts or replaces the entry for a run name (kept sorted).
    pub fn upsert(&mut self, name: &str, entry: BaselineEntry) {
        match self.entries.iter_mut().find(|(n, _)| n == name) {
            Some((_, e)) => *e = entry,
            None => {
                self.entries.push((name.to_string(), entry));
                self.entries.sort_by(|(a, _), (b, _)| a.cmp(b));
            }
        }
    }

    /// Serialises to pretty JSON (stable key order: entries sorted).
    pub fn to_json(&self) -> String {
        let entries = Json::Obj(
            self.entries
                .iter()
                .map(|(n, e)| (n.clone(), e.to_json()))
                .collect(),
        );
        Json::obj([("entries", entries)]).to_string_pretty()
    }

    /// Parses a baseline back from JSON.
    pub fn from_json(text: &str) -> Result<Baseline, String> {
        let v = Json::parse(text).map_err(|e| e.to_string())?;
        let mut entries = Vec::new();
        if let Some(Json::Obj(pairs)) = v.get("entries") {
            for (name, ev) in pairs {
                entries.push((name.clone(), BaselineEntry::from_json(ev)?));
            }
        }
        entries.sort_by(|(a, _), (b, _)| a.cmp(b));
        Ok(Baseline { entries })
    }

    /// Loads a baseline file; a missing file is an empty baseline, a
    /// malformed one is an error.
    pub fn load(path: &Path) -> Result<Baseline, String> {
        match std::fs::read_to_string(path) {
            Ok(text) => Baseline::from_json(&text),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Baseline::default()),
            Err(e) => Err(format!("cannot read {}: {e}", path.display())),
        }
    }

    /// Writes the baseline file (pretty JSON with trailing newline).
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json() + "\n")
    }
}

/// Gate thresholds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateConfig {
    /// Relative growth allowed before a wall/span regression is flagged.
    pub tolerance: f64,
    /// Baseline timings below this many seconds are not gated (jitter).
    pub min_seconds: f64,
    /// Absolute cache-hit-rate drop that fails the gate.
    pub hit_rate_drop: f64,
}

impl Default for GateConfig {
    fn default() -> Self {
        GateConfig {
            tolerance: DEFAULT_TOLERANCE,
            min_seconds: DEFAULT_MIN_SECONDS,
            hit_rate_drop: DEFAULT_HIT_RATE_DROP,
        }
    }
}

/// One detected regression.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Run name the regression was found in.
    pub run: String,
    /// What regressed: `wall_seconds`, `span:<path>`, or `cache.hit_rate`.
    pub what: String,
    /// Baseline value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
}

impl std::fmt::Display for Regression {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} regressed: baseline {:.4} -> current {:.4} ({:+.1}%)",
            self.run,
            self.what,
            self.baseline,
            self.current,
            (self.current / self.baseline - 1.0) * 100.0
        )
    }
}

/// Compares a current run summary against its baseline entry; an empty
/// result means the gate passes for this run.
pub fn compare(
    run: &str,
    baseline: &BaselineEntry,
    current: &BaselineEntry,
    cfg: &GateConfig,
) -> Vec<Regression> {
    let mut out = Vec::new();
    let slow = |base: f64, cur: f64| base >= cfg.min_seconds && cur > base * (1.0 + cfg.tolerance);
    if slow(baseline.wall_seconds, current.wall_seconds) {
        out.push(Regression {
            run: run.to_string(),
            what: "wall_seconds".to_string(),
            baseline: baseline.wall_seconds,
            current: current.wall_seconds,
        });
    }
    for (path, base_total) in &baseline.spans {
        // Skip spans the current run did not measure (e.g. DCN_OBS=off):
        // the gate flags measured slowdowns, not missing measurements.
        let Some(cur_total) = current.span_total(path) else {
            continue;
        };
        if slow(*base_total, cur_total) {
            out.push(Regression {
                run: run.to_string(),
                what: format!("span:{path}"),
                baseline: *base_total,
                current: cur_total,
            });
        }
    }
    if let (Some(base_rate), Some(cur_rate)) = (baseline.cache_hit_rate, current.cache_hit_rate) {
        if base_rate - cur_rate > cfg.hit_rate_drop {
            out.push(Regression {
                run: run.to_string(),
                what: "cache.hit_rate".to_string(),
                baseline: base_rate,
                current: cur_rate,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(wall: f64, rate: Option<f64>, spans: &[(&str, f64)]) -> BaselineEntry {
        BaselineEntry {
            wall_seconds: wall,
            cache_hit_rate: rate,
            spans: spans.iter().map(|(p, t)| (p.to_string(), *t)).collect(),
        }
    }

    #[test]
    fn baseline_json_round_trips() {
        let mut b = Baseline::default();
        b.upsert("fig8_frontier", entry(1.5, Some(0.9), &[("core.tub", 0.8)]));
        b.upsert("fig3_gap", entry(0.4, None, &[]));
        let back = Baseline::from_json(&b.to_json()).expect("parse");
        assert_eq!(back, b);
        // Entries sorted by name for diffable output.
        assert_eq!(back.entries[0].0, "fig3_gap");
    }

    #[test]
    fn identical_run_passes() {
        let e = entry(1.0, Some(0.9), &[("core.tub", 0.6), ("core.frontier", 0.9)]);
        assert!(compare("r", &e, &e, &GateConfig::default()).is_empty());
    }

    #[test]
    fn synthetic_2x_slowdown_fails() {
        let base = entry(1.0, Some(0.9), &[("core.tub", 0.6)]);
        let slow = entry(2.0, Some(0.9), &[("core.tub", 1.2)]);
        let regressions = compare("r", &base, &slow, &GateConfig::default());
        let what: Vec<&str> = regressions.iter().map(|r| r.what.as_str()).collect();
        assert_eq!(what, vec!["wall_seconds", "span:core.tub"]);
    }

    #[test]
    fn within_tolerance_passes() {
        let base = entry(1.0, None, &[("core.tub", 0.6)]);
        let ok = entry(1.2, None, &[("core.tub", 0.7)]);
        assert!(compare("r", &base, &ok, &GateConfig::default()).is_empty());
    }

    #[test]
    fn tiny_baseline_spans_are_not_gated() {
        // 1ms baseline doubling is jitter, not a regression.
        let base = entry(0.001, None, &[("obs.tiny", 0.002)]);
        let slow = entry(0.004, None, &[("obs.tiny", 0.009)]);
        assert!(compare("r", &base, &slow, &GateConfig::default()).is_empty());
    }

    #[test]
    fn missing_current_span_is_skipped() {
        let base = entry(1.0, None, &[("core.tub", 0.6)]);
        let off = entry(1.0, None, &[]);
        assert!(compare("r", &base, &off, &GateConfig::default()).is_empty());
    }

    #[test]
    fn hit_rate_drop_fails() {
        let base = entry(1.0, Some(0.95), &[]);
        let cold = entry(1.0, Some(0.2), &[]);
        let regressions = compare("r", &base, &cold, &GateConfig::default());
        assert_eq!(regressions.len(), 1);
        assert_eq!(regressions[0].what, "cache.hit_rate");
    }

    #[test]
    fn entry_from_manifest_extracts_spans_and_rate() {
        use dcn_obs::manifest::{ManifestMetric, RunManifest};
        let m = RunManifest {
            name: "t".into(),
            seed: None,
            args: vec![],
            wall_seconds: 2.5,
            mode: "summary".into(),
            threads: 4,
            metrics: vec![
                ManifestMetric {
                    name: "span:core.tub".into(),
                    kind: "span".into(),
                    fields: vec![
                        ("count".into(), 3.0),
                        ("total_secs".into(), 1.5),
                        ("self_secs".into(), 1.0),
                    ],
                },
                ManifestMetric {
                    name: "cache.hit_rate".into(),
                    kind: "gauge".into(),
                    fields: vec![("value".into(), 0.75)],
                },
                ManifestMetric {
                    name: "mcf.fptas.phases".into(),
                    kind: "counter".into(),
                    fields: vec![("value".into(), 17.0)],
                },
            ],
        };
        let e = entry_from_manifest(&m);
        assert_eq!(e.wall_seconds, 2.5);
        assert_eq!(e.cache_hit_rate, Some(0.75));
        assert_eq!(e.spans, vec![("core.tub".to_string(), 1.5)]);
    }
}
