//! Figure 5: tub vs prior estimators — accuracy and efficiency.
//!
//! (a/b) Small-to-medium Jellyfish: per-estimator throughput gap against
//!       the KSP-MCF reference, and wall time.
//! (c/d) `--large`: bigger instances where MCF is off the table; absolute
//!       estimates and wall time for the scalable estimators only
//!       (tub / bbw / singla), matching the paper's large-scale panel.
//!
//! Paper setup: Jellyfish H=8, R=32, N to 25K (small) / 300K (large).
//! Scaled: H=4, R=12, switches to 240 (small) / 4K (large).
//!
//! Expected shape (paper): tub has the smallest gap; HM/JM are loose and
//! slow; bbw and singla are fast but considerably off; sc sits between.

use dcn_bench::{f3, large_mode, quick_mode, run_guarded, timed, Table};
use std::process::ExitCode;
use dcn_core::frontier::Family;
use dcn_core::MatchingBackend;
use dcn_estimators::{
    BbwProxy, HoeflerMethod, JainMethod, SinglaBound, SparsestCut, ThroughputEstimator,
    TubEstimator,
};
use dcn_mcf::{ksp_mcf_throughput, Engine};
use dcn_cache::SolveCtx;

fn estimators(k: usize) -> Vec<Box<dyn ThroughputEstimator>> {
    vec![
        Box::new(TubEstimator {
            backend: MatchingBackend::Auto { exact_below: 500 },
        }),
        Box::new(BbwProxy { tries: 4, seed: 9 }),
        Box::new(SparsestCut { power_iters: 200 }),
        Box::new(SinglaBound),
        Box::new(HoeflerMethod { k }),
        Box::new(JainMethod { k }),
    ]
}

fn main() -> ExitCode {
    run_guarded("fig5_compare", || {
        dcn_bench::set_run_seed(9);
        let radix = 12u32;
        let h = 4u32;
        let family = Family::Jellyfish;
        if large_mode() {
            run_large(family, radix, h)
        } else {
            run_small(family, radix, h)
        }
    })
}

fn run_small(family: Family, radix: u32, h: u32) -> Result<(), Box<dyn std::error::Error>> {
    let cache = dcn_bench::cache();
    let sctx = SolveCtx::unlimited(&cache);
    let sizes: &[usize] = if quick_mode() {
        &[24, 64]
    } else {
        &[24, 48, 96, 160, 240]
    };
    let mut table = Table::new(
        "fig5ab_compare",
        &["switches", "estimator", "estimate", "reference", "gap", "seconds"],
    );
    for &n_sw in sizes {
        let topo = family.build(n_sw, radix, h, 11)?;
        let t = dcn_core::tub(&topo, MatchingBackend::Exact, &sctx)?;
        let tm = t.traffic_matrix(&topo)?;
        // Reference: KSP-MCF feasible throughput at the maximal permutation.
        let reference = ksp_mcf_throughput(&topo, &tm, 32, Engine::Fptas { eps: 0.03 }, &sctx)?
            .theta_lb
            .min(1.0);
        for est in estimators(32) {
            let (value, secs) = timed(|| est.estimate(&topo, &tm, &sctx));
            let value = value?;
            let gap = (value.min(1.0) - reference).abs();
            table.row(&[
                &topo.n_switches(),
                &est.name(),
                &f3(value),
                &f3(reference),
                &f3(gap),
                &format!("{secs:.3}"),
            ]);
        }
    }
    table.finish();
    Ok(())
}

fn run_large(family: Family, radix: u32, h: u32) -> Result<(), Box<dyn std::error::Error>> {
    let cache = dcn_bench::cache();
    let sctx = SolveCtx::unlimited(&cache);
    let sizes: &[usize] = if quick_mode() {
        &[512, 1024]
    } else {
        &[512, 1024, 2048, 4096]
    };
    let mut table = Table::new(
        "fig5cd_large",
        &["switches", "servers", "estimator", "estimate", "seconds"],
    );
    for &n_sw in sizes {
        let topo = family.build(n_sw, radix, h, 13)?;
        let scalable: Vec<Box<dyn ThroughputEstimator>> = vec![
            Box::new(TubEstimator {
                backend: MatchingBackend::Greedy {
                    improvement_passes: 2,
                },
            }),
            Box::new(BbwProxy { tries: 2, seed: 9 }),
            Box::new(SinglaBound),
        ];
        // Dummy TM (ignored by all three scalable estimators).
        let t = dcn_core::tub(
            &topo,
            MatchingBackend::Greedy {
                improvement_passes: 0,
            },
            &sctx,
        )?;
        let tm = t.traffic_matrix(&topo)?;
        for est in scalable {
            let (value, secs) = timed(|| est.estimate(&topo, &tm, &sctx));
            let value = value?;
            table.row(&[
                &topo.n_switches(),
                &topo.n_servers(),
                &est.name(),
                &f3(value),
                &format!("{secs:.3}"),
            ]);
        }
    }
    table.finish();
    Ok(())
}
