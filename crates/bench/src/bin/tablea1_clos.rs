//! Table A.1: tub is tight (= 1.00) on bi-regular Clos topologies.
//!
//! The paper's instances (radix 32) have 8192 / 32768 / 131072 servers;
//! building the two big ones is beyond this container, so the table is
//! reproduced in two parts:
//!
//! * analytic switch/server counts at the paper's exact parameters, which
//!   must match the paper's Table A.1 numbers, and
//! * constructed scaled instances (radix 8 and 16) whose tub is computed
//!   and must equal 1.00.

use dcn_bench::{f3, quick_mode, run_guarded, Table};
use dcn_core::{tub, MatchingBackend};
use dcn_topo::{folded_clos, ClosParams};
use std::process::ExitCode;
use dcn_cache::SolveCtx;

fn main() -> ExitCode {
    run_guarded("tablea1_clos", run)
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let cache = dcn_bench::cache();
    let sctx = SolveCtx::unlimited(&cache);
    // Part 1: the paper's rows, analytically.
    let mut ta = Table::new(
        "tablea1_paper_counts",
        &["n_servers", "layers", "switches", "matches_paper"],
    );
    let rows = [
        (ClosParams::full(32, 3), 8192u64, 1280u64),
        (
            ClosParams {
                radix: 32,
                layers: 4,
                top_pods: 8,
                spine_uplink_fraction: 1.0,
                leaf_servers: 0,
            },
            32768,
            7168,
        ),
        (ClosParams::full(32, 4), 131072, 28672),
    ];
    for (p, servers, switches) in rows {
        let ok = p.n_servers() == servers && p.n_switches() == switches;
        ta.row(&[&p.n_servers(), &p.layers, &p.n_switches(), &ok]);
    }
    ta.finish();

    // Part 2: constructed scaled instances, tub must be 1.00.
    let mut tb = Table::new(
        "tablea1_tub_scaled",
        &["radix", "layers", "top_pods", "n_servers", "switches", "tub"],
    );
    let mut instances = vec![
        ClosParams::full(8, 2),
        ClosParams::full(8, 3),
        ClosParams {
            radix: 8,
            layers: 3,
            top_pods: 4,
            spine_uplink_fraction: 1.0,
            leaf_servers: 0,
        },
        ClosParams::full(12, 3),
    ];
    if !quick_mode() {
        instances.push(ClosParams {
            radix: 16,
            layers: 3,
            top_pods: 8,
            spine_uplink_fraction: 1.0,
            leaf_servers: 0,
        });
        instances.push(ClosParams {
            radix: 8,
            layers: 4,
            top_pods: 4,
            spine_uplink_fraction: 1.0,
            leaf_servers: 0,
        });
    }
    for p in instances {
        let topo = folded_clos(p)?;
        let t = tub(&topo, MatchingBackend::Auto { exact_below: 700 }, &sctx)?;
        tb.row(&[
            &p.radix,
            &p.layers,
            &p.top_pods,
            &topo.n_servers(),
            &topo.n_switches(),
            &f3(t.bound),
        ]);
    }
    tb.finish();
    Ok(())
}
