//! Flow-completion times under link failures — the application-visible
//! face of Figure 10.
//!
//! For a Jellyfish at increasing failure fractions, runs the flow-level
//! simulator on the worst-case permutation with ECMP hashing and KSP
//! striping and reports mean/p99 slowdown. The tub-based resilience curve
//! (Figure 10) says capacity degrades less than gracefully; this shows
//! what that costs in completion times.

use dcn_bench::{quick_mode, run_guarded, Table};
use dcn_core::frontier::Family;
use dcn_core::{tub, MatchingBackend};
use dcn_sim::{flows_from_tm, run_to_completion, PathPolicy, SizedFlow};
use dcn_topo::fail_random_links;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::process::ExitCode;
use dcn_cache::SolveCtx;

fn main() -> ExitCode {
    run_guarded("fct_failures", run)
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let cache = dcn_bench::cache();
    let sctx = SolveCtx::unlimited(&cache);
    dcn_bench::set_run_seed(7);
    let n_sw = if quick_mode() { 48 } else { 96 };
    let fractions: &[f64] = if quick_mode() {
        &[0.0, 0.2]
    } else {
        &[0.0, 0.1, 0.2, 0.3]
    };
    let topo = Family::Jellyfish.build(n_sw, 12, 4, 3)?;
    let bound = tub(&topo, MatchingBackend::Exact, &sctx)?;
    let tm = bound.traffic_matrix(&topo)?;
    let mut rng = StdRng::seed_from_u64(7);
    let mut table = Table::new(
        "fct_failures",
        &["fraction", "policy", "mean_slowdown", "p99_slowdown", "makespan"],
    );
    for &f in fractions {
        let degraded = match fail_random_links(&topo, f, &mut rng) {
            Ok(d) => d,
            Err(e) => {
                dcn_obs::obs_log!("skip f={f}: {e}");
                continue;
            }
        };
        for (name, policy) in [
            ("ecmp-hash", PathPolicy::EcmpHash),
            ("ksp-stripe8", PathPolicy::KspStripe { k: 8 }),
        ] {
            let flows = flows_from_tm(&tm);
            let routed = match policy.route_all(&degraded, &flows, 11) {
                Ok(r) => r,
                Err(e) => {
                    dcn_obs::obs_log!("skip {name} at f={f}: {e}");
                    continue;
                }
            };
            let sized: Vec<SizedFlow> = routed
                .into_iter()
                .map(|routed| SizedFlow { routed, size: 1.0 })
                .collect();
            let report = run_to_completion(&degraded, &sized);
            table.row(&[
                &format!("{f:.2}"),
                &name,
                &format!("{:.2}", report.mean_slowdown()),
                &format!("{:.2}", report.percentile_slowdown(99.0)),
                &format!("{:.2}", report.makespan),
            ]);
        }
    }
    table.finish();
    Ok(())
}
