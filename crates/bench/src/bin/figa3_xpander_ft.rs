//! Figure A.3: switches Xpander needs to host the same servers as a
//! fat-tree at full throughput, as a percentage, across sizes.
//!
//! Paper finding: at the CoNEXT'16 paper's scales (<4K servers) Xpander
//! needs >95% of the fat-tree's switches once full *throughput* (not BBW)
//! is required; the advantage only re-appears at much larger scale.
//! Scaled: fat-trees of radix 8..14.

use dcn_bench::{quick_mode, Table};
use dcn_core::cost::min_uniregular_switches;
use dcn_core::frontier::{Criterion, Family};
use dcn_core::MatchingBackend;
use dcn_topo::ClosParams;

fn main() {
    let cache = dcn_bench::cache();
    let sctx = dcn_cache::SolveCtx::unlimited(&cache);
    let radices: &[u32] = if quick_mode() { &[8, 10] } else { &[8, 10, 12, 14] };
    let mut table = Table::new(
        "figa3_xpander_ft",
        &["radix", "n_servers", "ft_switches", "xp_switches", "xp_pct"],
    );
    for &r in radices {
        let p = ClosParams::full(r as usize, 3);
        let n = p.n_servers();
        let ft_switches = p.n_switches();
        let xp = min_uniregular_switches(
            Family::Xpander,
            n,
            r,
            Criterion::FullThroughput {
                backend: MatchingBackend::Auto { exact_below: 600 },
            },
            53,
            &sctx,
        )
        .ok()
        .flatten();
        match xp {
            Some(c) => {
                let pct = c.switches as f64 / ft_switches as f64 * 100.0;
                table.row(&[&r, &n, &ft_switches, &c.switches, &format!("{pct:.1}%")]);
            }
            None => table.row(&[&r, &n, &ft_switches, &"-", &"-"]),
        }
    }
    table.finish();
}
