//! Ablation: switch-level vs server-level maximal-permutation matching
//! (§2.2 of the paper).
//!
//! The paper argues the switch-level formulation gives the *same* bound as
//! matching individual servers while shrinking the matching problem by a
//! factor of H. This binary verifies the equality on concrete instances
//! and measures the speedup.

use dcn_bench::{f3, quick_mode, run_guarded, timed, Table};
use dcn_core::frontier::Family;
use dcn_core::{tub, MatchingBackend};
use dcn_graph::DistMatrix;
use dcn_match::hungarian_max;
use std::process::ExitCode;
use dcn_guard::prelude::*;
use dcn_cache::SolveCtx;

fn main() -> ExitCode {
    run_guarded("ablation_switch_level", run)
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let cache = dcn_bench::cache();
    let sctx = SolveCtx::unlimited(&cache);
    let radix = 12u32;
    let h = 4u32;
    let sizes: &[usize] = if quick_mode() { &[16, 32] } else { &[16, 32, 64] };
    let mut table = Table::new(
        "ablation_switch_level",
        &["switches", "servers", "tub_switch", "tub_server", "t_switch", "t_server"],
    );
    for &n_sw in sizes {
        let topo = Family::Jellyfish.build(n_sw, radix, h, 91)?;
        let (sw_level, ts) = timed(|| tub(&topo, MatchingBackend::Exact, &sctx));
        let sw_level = sw_level?;

        // Server-level: expand each switch into H virtual servers; the
        // distance between two servers is the distance between their
        // switches (server-to-switch links never constrain throughput).
        let k = topo.switches_with_servers();
        let dist = DistMatrix::from_sources(topo.graph(), &k)?;
        let mut owner = Vec::new();
        for &u in &k {
            for _ in 0..topo.servers_at(u) {
                owner.push(u);
            }
        }
        let n_servers = owner.len();
        let (matching, t_server_total) = timed(|| {
            hungarian_max(n_servers, |i, j| {
                if owner[i] == owner[j] {
                    0
                } else {
                    dist.dist(owner[i], owner[j]) as i64
                }
            }, &unlimited())
            .expect("unbudgeted matching")
        });
        let total_len: i64 = matching
            .assignment
            .iter()
            .enumerate()
            .map(|(i, &j)| {
                if owner[i] == owner[j] {
                    0
                } else {
                    dist.dist(owner[i], owner[j]) as i64
                }
            })
            .sum();
        let server_bound = 2.0 * topo.graph().total_capacity() / total_len as f64;
        table.row(&[
            &topo.n_switches(),
            &n_servers,
            &f3(sw_level.bound),
            &f3(server_bound),
            &format!("{ts:.3}"),
            &format!("{t_server_total:.3}"),
        ]);
        let rel = (sw_level.bound - server_bound).abs() / sw_level.bound;
        if rel >= 1e-9 {
            return Err(format!(
                "switch-level and server-level bounds must agree: {} vs {}",
                sw_level.bound, server_bound
            )
            .into());
        }
    }
    table.finish();
    println!("(asserted: switch-level bound == server-level bound on every row)");
    Ok(())
}
