//! Figure 10: throughput of uni-regular topologies under random link
//! failures — nominal `(1-f)θ` vs actual tub, and the RMS deviation as a
//! function of size.
//!
//! Paper setup: Jellyfish H=8, N ∈ {32K, 131K}, f to 30%. Scaled:
//! H=4, R=12, switches ∈ {96, 320}, f to 30%, 3 trials per point.
//!
//! Expected shape (paper): the smaller instance degrades gracefully
//! (actual ≈ nominal); the larger one — whose maximal-permutation pairs
//! have fewer shortest paths — deviates below nominal as failures mount,
//! and the deviation grows with size.

use dcn_bench::{f3, quick_mode, run_guarded, Table};
use dcn_core::frontier::Family;
use dcn_core::resilience::{failure_sweep, rms_deviation};
use dcn_core::MatchingBackend;
use std::process::ExitCode;
use dcn_cache::SolveCtx;

fn main() -> ExitCode {
    run_guarded("fig10_failures", run)
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let cache = dcn_bench::cache();
    let sctx = SolveCtx::unlimited(&cache);
    let radix = 12u32;
    let h = 4u32;
    let backend = MatchingBackend::Auto { exact_below: 500 };
    let fractions: &[f64] = if quick_mode() {
        &[0.0, 0.1, 0.2]
    } else {
        &[0.0, 0.05, 0.1, 0.15, 0.2, 0.25, 0.3]
    };
    let sizes: &[usize] = if quick_mode() { &[96] } else { &[96, 320] };
    let trials = if quick_mode() { 1 } else { 3 };

    let mut ta = Table::new(
        "fig10ab_failures",
        &["switches", "fraction", "nominal", "actual", "trials"],
    );
    let mut tb = Table::new("fig10c_deviation", &["switches", "servers", "rms_deviation"]);
    for &n_sw in sizes {
        let topo = Family::Jellyfish.build(n_sw, radix, h, 31)?;
        let pts = failure_sweep(&topo, fractions, trials, backend, 37, &sctx)?;
        for p in &pts {
            // Empty points (every sample disconnected) print as "-" rather
            // than a fabricated zero.
            let actual = p.actual.map(f3).unwrap_or_else(|| "-".to_string());
            ta.row(&[
                &topo.n_switches(),
                &f3(p.fraction),
                &f3(p.nominal),
                &actual,
                &p.trials,
            ]);
        }
        tb.row(&[
            &topo.n_switches(),
            &topo.n_servers(),
            &f3(rms_deviation(&pts)),
        ]);
    }
    ta.finish();
    tb.finish();
    Ok(())
}
