//! Table 3: the maximum servers any uni-regular topology can support at
//! full throughput (Equation 3), vs the sizes at which the concrete
//! families retain full bisection bandwidth.
//!
//! The Equation 3 column is analytic and runs at the paper's actual
//! parameters (R=32, H ∈ {6,7,8}) — expected ballpark: 3.97M / 256K / 111K.
//! The BBW columns, which the paper pushed past 20M servers with METIS,
//! are evaluated here at a scaled radix via the frontier search.

use dcn_bench::{quick_mode, Table};
use dcn_core::frontier::{frontier_max_servers, Criterion, Family};
use dcn_core::universal::max_full_throughput_servers;

fn main() {
    let cache = dcn_bench::cache();
    let sctx = dcn_cache::SolveCtx::unlimited(&cache);
    // Analytic Equation-3 limits at the paper's parameters.
    let mut ta = Table::new("table3_eq3_limits", &["radix", "h", "max_servers_eq3"]);
    for h in [6u32, 7, 8] {
        let cap = 1u64 << 24; // 16M search cap
        let n = max_full_throughput_servers(32, h, cap)
            .map(|v| v.to_string())
            .unwrap_or_else(|| "-".into());
        ta.row(&[&32, &h, &n]);
    }
    ta.finish();

    // Scaled full-BBW frontiers for the three families (paper: ">20M").
    if quick_mode() {
        println!("(skipping BBW frontier sweep in --quick mode)");
        return;
    }
    let radix = 14u32;
    let mut tb = Table::new(
        "table3_bbw_frontier_scaled",
        &["family", "radix", "h", "max_servers_full_bbw"],
    );
    for family in [Family::Jellyfish, Family::Xpander, Family::FatClique] {
        for h in [3u32, 4] {
            let fb = frontier_max_servers(
                family,
                radix,
                h,
                Criterion::FullBisection { tries: 3 },
                1024,
                5,
                &sctx,
            )
            .ok()
            .flatten();
            let show = fb.map(|v| v.to_string()).unwrap_or_else(|| "-".into());
            tb.row(&[&family.name(), &radix, &h, &show]);
        }
    }
    tb.finish();
}
