//! Figure A.5: the tub-vs-KSP-MCF gap as a function of K, the number of
//! shortest paths available to routing.
//!
//! Paper setup: K ∈ {20, 60, 100, 200} at R=32. Scaled: K ∈ {4, 8, 16,
//! 32} at R=12. Expected shape: too-small K leaves a persistent gap even
//! at large sizes; beyond a sufficient K the curves coincide.

use dcn_bench::{f3, quick_mode, run_guarded, Table};
use dcn_core::frontier::Family;
use dcn_core::{tub, MatchingBackend};
use dcn_mcf::{ksp_mcf_throughput, Engine};
use std::process::ExitCode;
use dcn_cache::SolveCtx;

fn main() -> ExitCode {
    run_guarded("figa5_gap_k", run)
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let cache = dcn_bench::cache();
    let sctx = SolveCtx::unlimited(&cache);
    let radix = 12u32;
    let h = 4u32;
    let ks: &[usize] = if quick_mode() { &[4, 16] } else { &[4, 8, 16, 32] };
    let sizes: &[usize] = if quick_mode() {
        &[24, 96]
    } else {
        &[24, 48, 96, 160, 240]
    };
    let mut table = Table::new(
        "figa5_gap_k",
        &["k", "switches", "servers", "tub", "mcf_lb", "gap"],
    );
    for &k in ks {
        for &n_sw in sizes {
            let topo = Family::Jellyfish.build(n_sw, radix, h, 71)?;
            let ub = tub(&topo, MatchingBackend::Auto { exact_below: 400 }, &sctx)?;
            let tm = ub.traffic_matrix(&topo)?;
            let mcf = ksp_mcf_throughput(&topo, &tm, k, Engine::Fptas { eps: 0.05 }, &sctx)?;
            let gap = (ub.bound.min(1.0) - mcf.theta_lb.min(1.0)).max(0.0);
            table.row(&[
                &k,
                &topo.n_switches(),
                &topo.n_servers(),
                &f3(ub.bound),
                &f3(mcf.theta_lb),
                &f3(gap),
            ]);
        }
    }
    table.finish();
    Ok(())
}
