//! Perf-regression gate: compares run manifests against the committed
//! `BENCH_BASELINE.json` and exits non-zero when any tracked quantity
//! (wall seconds, per-span totals, cache hit rate) regressed beyond
//! tolerance. Native twin of `scripts/perf_gate.py` (same thresholds,
//! same exit codes) for environments with a warm cargo cache.
//!
//! ```text
//! cargo run -p dcn-bench --bin perf_gate -- [options] [manifest.json ...]
//!   --baseline <path>    baseline file (default: BENCH_BASELINE.json at
//!                        the workspace root, or $DCN_BENCH_BASELINE)
//!   --tolerance <T>      relative growth allowed, default 0.25
//!   --min-seconds <S>    skip baseline timings below S, default 0.05
//!   --hit-rate-drop <D>  absolute hit-rate drop that fails, default 0.25
//! ```
//!
//! With no manifest arguments, every `results/*.manifest.json` whose run
//! name has a baseline entry is checked. Manifests without a baseline
//! entry are reported and skipped (they cannot regress against nothing).
//!
//! Exit codes: `0` gate passes, `1` regressions found, `2` usage or IO
//! error.

use dcn_bench::perf::{compare, entry_from_manifest, Baseline, GateConfig};
use dcn_obs::manifest::RunManifest;
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    baseline: PathBuf,
    config: GateConfig,
    manifests: Vec<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        baseline: dcn_bench::baseline_path(),
        config: GateConfig::default(),
        manifests: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |flag: &str| it.next().ok_or(format!("{flag} needs a value"));
        match a.as_str() {
            "--baseline" => args.baseline = PathBuf::from(value("--baseline")?),
            "--tolerance" => {
                args.config.tolerance = value("--tolerance")?
                    .parse()
                    .map_err(|e| format!("--tolerance: {e}"))?;
            }
            "--min-seconds" => {
                args.config.min_seconds = value("--min-seconds")?
                    .parse()
                    .map_err(|e| format!("--min-seconds: {e}"))?;
            }
            "--hit-rate-drop" => {
                args.config.hit_rate_drop = value("--hit-rate-drop")?
                    .parse()
                    .map_err(|e| format!("--hit-rate-drop: {e}"))?;
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag}")),
            path => args.manifests.push(PathBuf::from(path)),
        }
    }
    Ok(args)
}

/// All `results/*.manifest.json` files, sorted for stable output.
fn default_manifests() -> Result<Vec<PathBuf>, String> {
    let dir = dcn_bench::results_dir().map_err(|e| e.to_string())?;
    let mut out = Vec::new();
    let entries = std::fs::read_dir(&dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for entry in entries {
        let path = entry.map_err(|e| e.to_string())?.path();
        if path
            .file_name()
            .and_then(|n| n.to_str())
            .is_some_and(|n| n.ends_with(".manifest.json"))
        {
            out.push(path);
        }
    }
    out.sort();
    Ok(out)
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    let baseline = Baseline::load(&args.baseline)?;
    if baseline.entries.is_empty() {
        return Err(format!(
            "baseline {} is empty or missing; record one with `--baseline` on an experiment run",
            args.baseline.display()
        ));
    }
    let manifests = if args.manifests.is_empty() {
        default_manifests()?
    } else {
        args.manifests
    };
    let mut checked = 0usize;
    let mut regressions = Vec::new();
    for path in &manifests {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let manifest =
            RunManifest::from_json(&text).map_err(|e| format!("{}: {e}", path.display()))?;
        let Some(base) = baseline.entry(&manifest.name) else {
            println!("perf_gate: {}: no baseline entry, skipped", manifest.name);
            continue;
        };
        checked += 1;
        let current = entry_from_manifest(&manifest);
        let found = compare(&manifest.name, base, &current, &args.config);
        if found.is_empty() {
            println!(
                "perf_gate: {}: ok (wall {:.3}s vs baseline {:.3}s)",
                manifest.name, current.wall_seconds, base.wall_seconds
            );
        }
        regressions.extend(found);
    }
    if checked == 0 {
        return Err("no manifest matched a baseline entry; nothing was gated".to_string());
    }
    for r in &regressions {
        println!("perf_gate: REGRESSION {r}");
    }
    Ok(regressions.is_empty())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(e) => {
            eprintln!("perf_gate: error: {e}");
            ExitCode::from(2)
        }
    }
}
