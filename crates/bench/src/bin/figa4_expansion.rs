//! Figure A.4: throughput under random-rewiring expansion, normalized by
//! the initial throughput, while servers per switch stay constant.
//!
//! Paper setup: Jellyfish/Xpander, initial N ∈ {10K, 32K}, H ∈ {6,7,8},
//! 20% steps to 2.6x. Scaled: initial switches ∈ {48, 160}, H ∈ {3,4,5},
//! radix 12.
//!
//! Expected shape (paper): small initial sizes with high H lose >20%
//! throughput under modest expansion; larger/lower-H starts barely move.

use dcn_bench::{f3, quick_mode, run_guarded, Table};
use dcn_core::expansion_eval::expansion_curve;
use dcn_core::frontier::Family;
use dcn_core::MatchingBackend;
use std::process::ExitCode;
use dcn_cache::SolveCtx;

fn main() -> ExitCode {
    run_guarded("figa4_expansion", run)
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let cache = dcn_bench::cache();
    let sctx = SolveCtx::unlimited(&cache);
    let radix = 12u32;
    let steps = if quick_mode() { 3 } else { 8 };
    let initials: &[usize] = if quick_mode() { &[48] } else { &[48, 160] };
    let hs: &[u32] = if quick_mode() { &[4] } else { &[3, 4, 5] };
    let mut table = Table::new(
        "figa4_expansion",
        &["family", "init_switches", "h", "ratio", "tub", "normalized"],
    );
    for family in [Family::Jellyfish, Family::Xpander] {
        for &n0 in initials {
            for &h in hs {
                let topo = match family.build(n0, radix, h, 61) {
                    Ok(t) => t,
                    Err(e) => {
                        dcn_obs::obs_log!("skip {} n={n0} h={h}: {e}", family.name());
                        continue;
                    }
                };
                let curve = expansion_curve(
                    &topo,
                    h,
                    steps,
                    0.2,
                    MatchingBackend::Auto { exact_below: 500 },
                    67,
                    &sctx,
                )?;
                for p in &curve {
                    table.row(&[
                        &family.name(),
                        &topo.n_switches(),
                        &h,
                        &f3(p.ratio),
                        &f3(p.tub),
                        &f3(p.normalized),
                    ]);
                }
            }
        }
    }
    table.finish();
    Ok(())
}
