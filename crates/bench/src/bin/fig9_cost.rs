//! Figure 9: topology cost — switches needed for full throughput vs full
//! bisection bandwidth, per family, against Clos.
//!
//! Paper setup: N ∈ {32K, 131K}, R=32; plus a radix sweep normalized to a
//! 1/8th 4-layer Clos. Scaled: N ∈ {1K, 4K}, R ∈ {8..16} for the sweep.
//!
//! Expected shape (paper): full-throughput uni-regular instances need more
//! switches than full-BBW ones (they must drop H), shrinking the claimed
//! cost advantage over Clos from ~50% to ~25%; the effect worsens with
//! switch radix.

use dcn_bench::{f3, quick_mode, Table};
use dcn_core::cost::{min_clos_switches, min_uniregular_switches};
use dcn_core::frontier::{Criterion, Family};
use dcn_core::MatchingBackend;
use dcn_cache::SolveCtx;

fn main() {
    let cache = dcn_bench::cache();
    let sctx = SolveCtx::unlimited(&cache);
    let backend = MatchingBackend::Auto { exact_below: 600 };

    // Panel (a)/(b): switches per family at fixed N.
    let populations: &[u64] = if quick_mode() { &[512] } else { &[1024, 4096] };
    let radix = 14u32;
    let mut ta = Table::new(
        "fig9ab_cost",
        &["n_servers", "family", "criterion", "h", "switches", "vs_clos"],
    );
    for &n in populations {
        let clos = min_clos_switches(n, radix);
        let clos_sw = clos.map(|(_, s)| s);
        if let Some(sw) = clos_sw {
            ta.row(&[&n, &"clos", &"both", &(radix / 2), &sw, &f3(1.0)]);
        }
        for family in [Family::Jellyfish, Family::Xpander, Family::FatClique] {
            for (crit_name, crit) in [
                ("full-bbw", Criterion::FullBisection { tries: 3 }),
                ("full-tub", Criterion::FullThroughput { backend }),
            ] {
                match min_uniregular_switches(family, n, radix, crit, 3, &sctx) {
                    Ok(Some(c)) => {
                        let ratio = clos_sw
                            .map(|cs| c.switches as f64 / cs as f64)
                            .unwrap_or(f64::NAN);
                        ta.row(&[
                            &n,
                            &family.name(),
                            &crit_name,
                            &c.h,
                            &c.switches,
                            &f3(ratio),
                        ]);
                    }
                    _ => {
                        ta.row(&[&n, &family.name(), &crit_name, &"-", &"-", &"-"]);
                    }
                }
            }
        }
    }
    ta.finish();

    // Panel (c): Jellyfish full-tub vs full-bbw switch overhead across
    // radices, with N sized to a 1/8th 3-layer Clos of that radix.
    let radices: &[u32] = if quick_mode() { &[8, 12] } else { &[8, 10, 12, 16] };
    let mut tc = Table::new(
        "fig9c_radix_sweep",
        &["radix", "n_servers", "sw_full_bbw", "sw_full_tub", "extra_pct"],
    );
    for &r in radices {
        // 1/8th of a full 3-layer Clos for this radix (min 2 pods).
        let half = (r as u64) / 2;
        let pods = (r as u64 / 8).max(2);
        let n = pods * half * half;
        let bbw = min_uniregular_switches(
            Family::Jellyfish,
            n,
            r,
            Criterion::FullBisection { tries: 3 },
            7,
            &sctx,
        )
        .ok()
        .flatten();
        let tubc = min_uniregular_switches(
            Family::Jellyfish,
            n,
            r,
            Criterion::FullThroughput { backend },
            7,
            &sctx,
        )
        .ok()
        .flatten();
        match (bbw, tubc) {
            (Some(b), Some(t)) => {
                let extra = (t.switches as f64 / b.switches as f64 - 1.0) * 100.0;
                tc.row(&[&r, &n, &b.switches, &t.switches, &format!("{extra:.1}%")]);
            }
            _ => tc.row(&[&r, &n, &"-", &"-", &"-"]),
        }
    }
    tc.finish();
}
