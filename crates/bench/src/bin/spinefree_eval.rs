//! Spine-free fabrics through the tub lens (§6 of the paper).
//!
//! The paper points out that once the spine layer is removed, the
//! inter-pod fabric is effectively uni-regular and tub applies directly.
//! This experiment sweeps pod-level designs at fixed equipment (total
//! trunk capacity): full-mesh vs random pod graphs of varying degree, plus
//! the spine-ful Clos baseline, and reports tub and the worst-case
//! KSP-MCF throughput of the pod fabric.

use dcn_bench::{f3, quick_mode, run_guarded, Table};
use dcn_core::{tub, MatchingBackend};
use dcn_mcf::{ksp_mcf_throughput, Engine};
use dcn_topo::{spinefree, SpineFreeParams};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::process::ExitCode;
use dcn_cache::SolveCtx;

fn main() -> ExitCode {
    run_guarded("spinefree_eval", run)
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let cache = dcn_bench::cache();
    let sctx = SolveCtx::unlimited(&cache);
    dcn_bench::set_run_seed(91);
    let pods = if quick_mode() { 16 } else { 32 };
    let servers_per_pod = 64u32;
    // Equipment budget: total inter-pod capacity equals what a full
    // bisection fabric would need: pods * servers_per_pod / 2 per cut.
    let budget = pods as f64 * servers_per_pod as f64; // total trunk capacity * 2
    let mut table = Table::new(
        "spinefree_eval",
        &["design", "pods", "degree", "trunk", "tub", "mcf_lb"],
    );
    let mut rng = StdRng::seed_from_u64(91);
    let mut degrees: Vec<usize> = vec![pods - 1];
    for d in [4usize, 6, 8, 12] {
        if d < pods - 1 {
            degrees.push(d);
        }
    }
    for degree in degrees {
        // Same total capacity regardless of degree.
        let trunk = budget / (pods as f64 * degree as f64);
        let p = SpineFreeParams {
            pods,
            servers_per_pod,
            trunk,
            degree,
        };
        let topo = match spinefree(p, &mut rng) {
            Ok(t) => t,
            Err(e) => {
                dcn_obs::obs_log!("skip degree {degree}: {e}");
                continue;
            }
        };
        let b = tub(&topo, MatchingBackend::Exact, &sctx)?;
        let tm = b.traffic_matrix(&topo)?;
        // Path budget scales with pods: a full mesh needs all `pods - 1`
        // two-hop detours to realize its capacity.
        let k_paths = pods.min(48);
        let mcf =
            ksp_mcf_throughput(&topo, &tm, k_paths, Engine::Fptas { eps: 0.05 }, &sctx)?.theta_lb;
        let design = if degree == pods - 1 { "full-mesh" } else { "random" };
        table.row(&[
            &design,
            &pods,
            &degree,
            &format!("{trunk:.2}"),
            &f3(b.bound),
            &f3(mcf),
        ]);
    }
    table.finish();
    println!(
        "(equal total trunk capacity per row. Note tub's looseness on diameter-1 \
         fabrics: with every pair one hop apart, Equation 1 counts no transit, \
         yet the direct trunk cannot carry a full pod's demand and routing must \
         burn 2-hop detours — the Figure 7 phenomenon at pod scale. The mcf_lb \
         column is the trustworthy ranking; tub still soundly upper-bounds it.)"
    );
    Ok(())
}
