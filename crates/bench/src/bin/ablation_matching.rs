//! Ablation: exact Hungarian vs the paper's Algorithm-1 greedy (with and
//! without 2-swap improvement) as the tub matching backend.
//!
//! Quantifies DESIGN.md's claim that the greedy backend trades a slightly
//! looser (but still sound) bound for large speedups.

use dcn_bench::{f3, quick_mode, run_guarded, timed, Table};
use dcn_core::frontier::Family;
use dcn_core::{tub, MatchingBackend};
use std::process::ExitCode;
use dcn_cache::SolveCtx;

fn main() -> ExitCode {
    run_guarded("ablation_matching", run)
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let cache = dcn_bench::cache();
    let sctx = SolveCtx::unlimited(&cache);
    let radix = 12u32;
    let h = 4u32;
    let sizes: &[usize] = if quick_mode() {
        &[48, 96]
    } else {
        &[48, 96, 240, 512]
    };
    let mut table = Table::new(
        "ablation_matching",
        &["switches", "backend", "bound", "loosening_pct", "seconds"],
    );
    for &n_sw in sizes {
        let topo = Family::Jellyfish.build(n_sw, radix, h, 81)?;
        let (exact, te) = timed(|| tub(&topo, MatchingBackend::Exact, &sctx));
        let exact = exact?;
        let backends = [
            (
                "greedy(0)",
                MatchingBackend::Greedy {
                    improvement_passes: 0,
                },
            ),
            (
                "greedy(3)",
                MatchingBackend::Greedy {
                    improvement_passes: 3,
                },
            ),
        ];
        table.row(&[
            &topo.n_switches(),
            &"hungarian",
            &f3(exact.bound),
            &f3(0.0),
            &format!("{te:.3}"),
        ]);
        for (name, b) in backends {
            let (g, tg) = timed(|| tub(&topo, b, &sctx));
            let g = g?;
            let loosen = (g.bound / exact.bound - 1.0) * 100.0;
            table.row(&[
                &topo.n_switches(),
                &name,
                &f3(g.bound),
                &f3(loosen),
                &format!("{tg:.3}"),
            ]);
        }
    }
    table.finish();
    Ok(())
}
