//! Figure A.1: the theoretical throughput gap — tub minus the Theorem 8.4
//! lower bound at additive slack M=1 — shrinking with scale (Corollary 2).
//!
//! Paper setup: Jellyfish H=8, R=32, N from ~5K to 300K. Scaled: H=4,
//! R=12, switches 24..512.

use dcn_bench::{f3, quick_mode, run_guarded, Table};
use dcn_core::frontier::Family;
use dcn_core::lower::theoretical_gap;
use dcn_core::MatchingBackend;
use std::process::ExitCode;
use dcn_cache::SolveCtx;

fn main() -> ExitCode {
    run_guarded("figa1_theory_gap", run)
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let cache = dcn_bench::cache();
    let sctx = SolveCtx::unlimited(&cache);
    let radix = 12u32;
    let h = 4u32;
    let sizes: &[usize] = if quick_mode() {
        &[24, 96]
    } else {
        &[24, 48, 96, 160, 240, 320, 512]
    };
    let mut table = Table::new(
        "figa1_theory_gap",
        &["switches", "servers", "tub", "lower_m1", "gap"],
    );
    for &n_sw in sizes {
        let topo = Family::Jellyfish.build(n_sw, radix, h, 41)?;
        let (ub, lb, gap) =
            theoretical_gap(&topo, 1, MatchingBackend::Auto { exact_below: 500 }, &sctx)?;
        table.row(&[
            &topo.n_switches(),
            &topo.n_servers(),
            &f3(ub.bound),
            &f3(lb),
            &f3(gap),
        ]);
    }
    table.finish();
    Ok(())
}
