//! Figure A.2: servers supported at full throughput by Jellyfish vs a
//! fat-tree built from the *same equipment* (same switch count, same
//! radix), across radices.
//!
//! Paper setup: radices 14..98, tub-estimated full throughput; finding:
//! the Jellyfish advantage is ~8% at the smallest scale and does *not*
//! monotonically improve with radix. Scaled: radices 8..14.

use dcn_bench::{quick_mode, run_guarded, Table};
use dcn_core::frontier::Family;
use dcn_core::{tub, MatchingBackend};
use std::process::ExitCode;
use dcn_cache::SolveCtx;

fn main() -> ExitCode {
    run_guarded("figa2_jellyfish_ft", run)
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let cache = dcn_bench::cache();
    let sctx = SolveCtx::unlimited(&cache);
    let radices: &[u32] = if quick_mode() { &[8, 10] } else { &[8, 10, 12, 14] };
    let mut table = Table::new(
        "figa2_jellyfish_ft",
        &["radix", "switches", "ft_servers", "jf_servers_full_tub", "advantage_pct"],
    );
    for &r in radices {
        // Fat-tree equipment: 5(r/2)^2 switches, (r/2)^2 * r servers... the
        // classic counts: switches 5r^2/4, servers r^3/4.
        let ft_switches = 5 * (r as u64) * (r as u64) / 4;
        let ft_servers = (r as u64).pow(3) / 4;
        // Jellyfish on the same switches: largest H with tub >= 1.
        let mut best: Option<(u32, u64)> = None;
        for h in (1..=r - 3).rev() {
            let topo = match Family::Jellyfish.build(ft_switches as usize, r, h, 51) {
                Ok(t) => t,
                Err(_) => continue,
            };
            let t = tub(&topo, MatchingBackend::Auto { exact_below: 600 }, &sctx)?;
            if t.bound >= 1.0 - 1e-9 {
                best = Some((h, topo.n_servers()));
                break;
            }
        }
        match best {
            Some((_h, n)) => {
                let adv = (n as f64 / ft_servers as f64 - 1.0) * 100.0;
                table.row(&[
                    &r,
                    &ft_switches,
                    &ft_servers,
                    &n,
                    &format!("{adv:.1}%"),
                ]);
            }
            None => table.row(&[&r, &ft_switches, &ft_servers, &"-", &"-"]),
        }
    }
    table.finish();
    Ok(())
}
