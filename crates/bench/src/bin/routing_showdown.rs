//! Routing showdown (§6 of the paper: "benchmarking routing designs").
//!
//! For the worst-case (maximal permutation) traffic on each topology
//! family, compares what fraction of tub each routing scheme actually
//! delivers:
//!
//! * fluid ECMP (per-hop equal splitting) and fluid VLB — analytic;
//! * flow-level ECMP hashing, KSP striping, and VLB — via the max-min
//!   fairness simulator (one flow per server);
//! * the ideal KSP-MCF fractional routing (FPTAS lower end).
//!
//! Expected shape: on Clos, ECMP ≈ MCF ≈ tub; on expanders, shortest-path
//! ECMP loses badly at the worst case while KSP striping recovers most of
//! the LP value — the open question the paper highlights.

use dcn_bench::{f3, quick_mode, run_guarded, Table};
use dcn_core::frontier::Family;
use dcn_core::{tub, MatchingBackend};
use dcn_mcf::{ecmp_throughput, ksp_mcf_throughput, vlb_throughput, Engine};
use dcn_sim::{flows_from_tm, simulate, PathPolicy};
use dcn_topo::fat_tree;
use std::process::ExitCode;
use dcn_cache::SolveCtx;

fn main() -> ExitCode {
    run_guarded("routing_showdown", run)
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let cache = dcn_bench::cache();
    let sctx = SolveCtx::unlimited(&cache);
    let radix = 12u32;
    let h = 4u32;
    let n_sw = if quick_mode() { 48 } else { 96 };
    let mut table = Table::new(
        "routing_showdown",
        &["topology", "scheme", "theta", "vs_tub"],
    );
    let mut topos = vec![fat_tree(8)?];
    for family in [Family::Jellyfish, Family::Xpander, Family::FatClique] {
        match family.build(n_sw, radix, h, 17) {
            Ok(t) => topos.push(t),
            Err(e) => dcn_obs::obs_log!("skip {}: {e}", family.name()),
        }
    }
    for topo in &topos {
        let bound = tub(topo, MatchingBackend::Auto { exact_below: 500 }, &sctx)?;
        let tm = bound.traffic_matrix(topo)?;
        let tub_v = bound.bound.min(1.0);
        let mut emit = |scheme: &str, theta: f64| {
            table.row(&[
                &topo.name(),
                &scheme,
                &f3(theta),
                &f3(theta / tub_v),
            ]);
        };
        emit("tub(bound)", tub_v);
        let mcf = ksp_mcf_throughput(topo, &tm, 16, Engine::Fptas { eps: 0.05 }, &sctx)?.theta_lb;
        emit("ksp-mcf(ideal)", mcf);
        emit("ecmp(fluid)", ecmp_throughput(topo, &tm)?);
        emit("vlb(fluid)", vlb_throughput(topo, &tm)?);
        // Flow-level simulation: worst service across server flows.
        for (name, policy) in [
            ("ecmp(flows)", PathPolicy::EcmpHash),
            ("ksp8(flows)", PathPolicy::KspStripe { k: 8 }),
            ("vlb(flows)", PathPolicy::Vlb),
        ] {
            let alloc = simulate(topo, &tm, policy, 23)?;
            let flows = flows_from_tm(&tm);
            let routed = policy.route_all(topo, &flows, 23)?;
            emit(name, alloc.worst_service(&routed));
        }
    }
    table.finish();
    Ok(())
}
