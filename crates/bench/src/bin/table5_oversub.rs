//! Table 5: throughput-based vs bisection-based over-subscription ratios.
//!
//! Paper setup: 32K servers, H ≈ 10 for Jellyfish/Xpander, 8.6 for
//! FatClique, radix 32; plus an oversubscribed Clos. Scaled: ~1.2K
//! servers at radix 12 with comparable H/degree ratios.
//!
//! Expected shape (paper): for every uni-regular family the
//! throughput-based ratio (tub) is *lower* (more conservative) than the
//! BBW-based one; for Clos the two coincide.

use dcn_bench::{f3, run_guarded, Table};
use dcn_core::frontier::Family;
use dcn_core::oversub::{oversubscription, Oversubscription};
use dcn_core::MatchingBackend;
use dcn_topo::{folded_clos, ClosParams};
use std::process::ExitCode;
use dcn_cache::SolveCtx;

fn main() -> ExitCode {
    run_guarded("table5_oversub", run)
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let cache = dcn_bench::cache();
    let sctx = SolveCtx::unlimited(&cache);
    let mut table = Table::new(
        "table5_oversub",
        &["topology", "n_servers", "h", "bbw_ratio", "tub_ratio", "bbw_frac", "tub_frac"],
    );
    let backend = MatchingBackend::Auto { exact_below: 600 };

    // Uni-regular families: pick H high enough to be oversubscribed at
    // this scale (degree/H ≈ 2.4, mirroring the paper's 22/10).
    for family in [Family::Jellyfish, Family::Xpander, Family::FatClique] {
        let h = 5u32;
        let radix = 12u32;
        let topo = match family.build(240, radix, h, 21) {
            Ok(t) => t,
            Err(e) => {
                dcn_obs::obs_log!("skip {}: {e}", family.name());
                continue;
            }
        };
        let o = oversubscription(&topo, backend, 4, 17, &sctx)?;
        table.row(&[
            &family.name(),
            &topo.n_servers(),
            &h,
            &Oversubscription::ratio_string(o.bbw_fraction),
            &Oversubscription::ratio_string(o.tub_fraction),
            &f3(o.bbw_fraction),
            &f3(o.tub_fraction),
        ]);
    }

    // Clos with 1:2 oversubscription at the leaf stage (8 servers vs 4
    // uplinks per radix-12 leaf) — the deployed form of oversubscription,
    // where BBW- and throughput-based ratios coincide (paper's Clos row).
    let clos = folded_clos(ClosParams {
        radix: 12,
        layers: 3,
        top_pods: 12,
        spine_uplink_fraction: 1.0,
        leaf_servers: 8,
    })?;
    let o = oversubscription(&clos, backend, 4, 17, &sctx)?;
    table.row(&[
        &"clos(1:2)",
        &clos.n_servers(),
        &8,
        &Oversubscription::ratio_string(o.bbw_fraction),
        &Oversubscription::ratio_string(o.tub_fraction),
        &f3(o.bbw_fraction),
        &f3(o.tub_fraction),
    ]);
    table.finish();
    Ok(())
}
