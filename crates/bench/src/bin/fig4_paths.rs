//! Figure 4: why the tub gap opens and closes with scale (Jellyfish).
//!
//! (a) The fraction of routed flow on shortest vs non-shortest paths at
//!     the maximal permutation — the gap appears exactly where routing has
//!     to leave shortest paths.
//! (b) The number of pairwise shortest paths between the endpoints of the
//!     maximal permutation, which rises and falls with size as the Moore
//!     diameter regime shifts.
//!
//! Paper setup: H=8, R=32, N to 300K. Scaled: H=4, R=12, switches to 512.

use dcn_bench::{f3, quick_mode, run_guarded, Table};
use dcn_core::frontier::Family;
use dcn_core::{tub, MatchingBackend};
use dcn_mcf::{ksp_mcf_throughput, Engine};
use std::process::ExitCode;
use dcn_cache::SolveCtx;

fn main() -> ExitCode {
    run_guarded("fig4_paths", run)
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let cache = dcn_bench::cache();
    let sctx = SolveCtx::unlimited(&cache);
    let radix = 12u32;
    let h = 4u32;
    let family = Family::Jellyfish;

    // (a) Flow split at the maximal permutation.
    let sizes_a: &[usize] = if quick_mode() {
        &[24, 64]
    } else {
        &[24, 48, 96, 160, 240]
    };
    let mut ta = Table::new(
        "fig4a_flow_split",
        &["switches", "servers", "sp_fraction", "nsp_fraction"],
    );
    for &n_sw in sizes_a {
        let topo = family.build(n_sw, radix, h, 7)?;
        let ub = tub(&topo, MatchingBackend::Auto { exact_below: 400 }, &sctx)?;
        let tm = ub.traffic_matrix(&topo)?;
        let mcf = ksp_mcf_throughput(&topo, &tm, 32, Engine::Fptas { eps: 0.05 }, &sctx)?;
        ta.row(&[
            &topo.n_switches(),
            &topo.n_servers(),
            &f3(mcf.shortest_path_fraction),
            &f3(1.0 - mcf.shortest_path_fraction),
        ]);
    }
    ta.finish();

    // (b) Pairwise shortest-path counts in the maximal permutation.
    let sizes_b: &[usize] = if quick_mode() {
        &[24, 96]
    } else {
        &[24, 48, 96, 160, 240, 320, 400, 512]
    };
    let mut tb = Table::new(
        "fig4b_sp_counts",
        &["switches", "servers", "mean_sp_len", "mean_num_sp", "min_num_sp"],
    );
    for &n_sw in sizes_b {
        let topo = family.build(n_sw, radix, h, 7)?;
        let ub = tub(&topo, MatchingBackend::Auto { exact_below: 400 }, &sctx)?;
        let g = topo.graph();
        let mut total_len = 0u64;
        let mut total_cnt = 0.0f64;
        let mut min_cnt = u64::MAX;
        // Count shortest paths per matched pair (BFS DAG counting).
        for &(u, v) in &ub.pairs {
            let dist = g.bfs_distances(u);
            let counts = g.count_shortest_paths(u);
            total_len += dist[v as usize] as u64;
            let c = counts[v as usize];
            total_cnt += c as f64;
            min_cnt = min_cnt.min(c);
        }
        let n_pairs = ub.pairs.len() as f64;
        tb.row(&[
            &topo.n_switches(),
            &topo.n_servers(),
            &f3(total_len as f64 / n_pairs),
            &f3(total_cnt / n_pairs),
            &min_cnt,
        ]);
    }
    tb.finish();
    Ok(())
}
