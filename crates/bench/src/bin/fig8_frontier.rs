//! Figure 8: the full-throughput frontier vs the full-bisection-bandwidth
//! frontier, per family and servers-per-switch.
//!
//! Paper setup: R=32, H ∈ {6..9}, frontiers up to 25K servers. Scaled:
//! R=14, H ∈ {3..6}, switch cap 1.5K (2K with `--large`).
//!
//! Expected shape (paper): both frontiers fall steeply as H grows; for the
//! higher H values the throughput frontier sits far below the BBW frontier
//! (many sizes have full BBW but not full throughput).
//!
//! This binary doubles as the cache demonstration: the sweep runs twice
//! against one shared [`dcn_bench::cache`] handle — a cold pass that
//! populates the cache and a warm pass that replays it. The warm pass must
//! reproduce the cold frontiers exactly (the cache serves byte-identical
//! results); pass timings go to **stderr** so stdout and the CSV stay
//! byte-identical whether or not the cache is enabled.

use dcn_bench::fleet::{frontier_sweep_sharded, run_frontier_worker, worker_root_from_args};
use dcn_bench::{large_mode, quick_mode, timed, Table};
use dcn_core::frontier::{Criterion, Family, FrontierConfig};
use dcn_core::MatchingBackend;
use dcn_cache::SolveCtx;

fn main() -> std::process::ExitCode {
    // Fleet workers re-invoke this binary with `--worker <queue-root>`:
    // claim cells, solve, publish, exit — no table, no supervision.
    if let Some(root) = worker_root_from_args() {
        return run_frontier_worker(&root);
    }
    let radix = 14u32;
    let max_switches = if large_mode() {
        2048
    } else if quick_mode() {
        384
    } else {
        1536
    };
    let hs: &[u32] = if quick_mode() { &[4, 5] } else { &[3, 4, 5, 6] };
    let mut table = Table::new(
        "fig8_frontier",
        &["family", "h", "max_servers_tub", "max_servers_bbw"],
    );
    // Both criteria for every (family, H) cell, fanned out in one sweep.
    let mut configs = Vec::new();
    for family in [Family::Jellyfish, Family::Xpander, Family::FatClique] {
        for &h in hs {
            for criterion in [
                Criterion::FullThroughput {
                    backend: MatchingBackend::Auto { exact_below: 600 },
                },
                Criterion::FullBisection { tries: 3 },
            ] {
                configs.push(FrontierConfig {
                    family,
                    radix,
                    h,
                    criterion,
                    max_switches,
                    seed: 5,
                });
            }
        }
    }
    let cache = dcn_bench::cache();
    let sctx = SolveCtx::unlimited(&cache);
    // With DCN_FLEET_WORKERS >= 2 the sweep shards across crash-tolerant
    // worker processes; the merged frontiers are identical either way.
    let sweep = |label: &str| {
        frontier_sweep_sharded(label, &configs, &sctx).unwrap_or_else(|e| {
            eprintln!("fig8_frontier: sweep failed: {e}");
            Vec::new()
        })
    };
    let (frontiers, cold_secs) = timed(|| sweep("fig8_frontier"));
    let (warm, warm_secs) = timed(|| sweep("fig8_frontier"));
    if warm != frontiers {
        eprintln!("fig8_frontier: WARNING: warm pass diverged from cold pass");
    }
    if cache.is_enabled() {
        eprintln!(
            "fig8_frontier: cold pass {cold_secs:.2}s, warm pass {warm_secs:.2}s ({:.1}x)",
            cold_secs / warm_secs.max(1e-9)
        );
    }
    let show = |v: Option<&Option<u64>>| match v.copied().flatten() {
        Some(x) => x.to_string(),
        None => "-".to_string(),
    };
    for (pair, config) in frontiers.chunks(2).zip(configs.chunks(2)) {
        table.row(&[
            &config[0].family.name(),
            &config[0].h,
            &show(pair.first()),
            &show(pair.get(1)),
        ]);
    }
    table.finish();
    println!(
        "(search capped at {max_switches} switches; a frontier equal to the cap's server count means 'beyond cap')"
    );
    std::process::ExitCode::SUCCESS
}
