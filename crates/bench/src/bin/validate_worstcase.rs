//! Validation of the worst-case methodology (§3.1 of the paper): the
//! maximal permutation matrix achieves lower throughput than random
//! permutations, and the gap between the two grows with scale.
//!
//! Paper setup: exhaustive comparison on small topologies; 20 random
//! permutations on large ones. Scaled: FPTAS throughput vs 8 random
//! permutations per size.

use dcn_bench::{f3, quick_mode, run_guarded, Table};
use dcn_core::frontier::Family;
use dcn_core::{tub, MatchingBackend};
use dcn_mcf::{ksp_mcf_throughput, Engine};
use dcn_model::TrafficMatrix;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::process::ExitCode;
use dcn_cache::SolveCtx;

fn main() -> ExitCode {
    run_guarded("validate_worstcase", run)
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let cache = dcn_bench::cache();
    let sctx = SolveCtx::unlimited(&cache);
    dcn_bench::set_run_seed(11);
    let radix = 12u32;
    let h = 4u32;
    let sizes: &[usize] = if quick_mode() { &[24, 64] } else { &[24, 64, 128, 240] };
    let trials = if quick_mode() { 3 } else { 8 };
    let mut table = Table::new(
        "validate_worstcase",
        &["switches", "theta_maximal", "theta_random_min", "theta_random_mean", "separation"],
    );
    for &n_sw in sizes {
        let topo = Family::Jellyfish.build(n_sw, radix, h, 5)?;
        let bound = tub(&topo, MatchingBackend::Auto { exact_below: 400 }, &sctx)?;
        let worst_tm = bound.traffic_matrix(&topo)?;
        let theta_worst =
            ksp_mcf_throughput(&topo, &worst_tm, 16, Engine::Fptas { eps: 0.05 }, &sctx)?.theta_lb;
        let mut rng = StdRng::seed_from_u64(11);
        let mut rand_thetas = Vec::new();
        for _ in 0..trials {
            let tm = TrafficMatrix::random_permutation(&topo, &mut rng)?;
            let th =
                ksp_mcf_throughput(&topo, &tm, 16, Engine::Fptas { eps: 0.05 }, &sctx)?.theta_lb;
            rand_thetas.push(th);
        }
        let min = rand_thetas.iter().cloned().fold(f64::INFINITY, f64::min);
        let mean = rand_thetas.iter().sum::<f64>() / rand_thetas.len() as f64;
        table.row(&[
            &topo.n_switches(),
            &f3(theta_worst),
            &f3(min),
            &f3(mean),
            &f3(mean - theta_worst),
        ]);
        if theta_worst > min + 0.02 {
            dcn_obs::obs_log!(
                "warning: a random permutation beat the maximal one at {n_sw} switches \
                 ({min:.3} < {theta_worst:.3}); FPTAS noise or loose matching"
            );
        }
    }
    table.finish();
    Ok(())
}
