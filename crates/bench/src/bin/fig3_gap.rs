//! Figure 3: throughput gap between tub and KSP-MCF at the maximal
//! permutation, for Jellyfish, Xpander, and FatClique across sizes and
//! servers-per-switch.
//!
//! Paper setup: R=32, H ∈ {6,7,8}, N up to 25K, K=100 paths, Gurobi.
//! Scaled setup: R=12, H ∈ {4,5,6}, N up to ~1.4K, K=32 paths, FPTAS
//! (certified bracket; the reported gap uses the *feasible* lower end, so
//! gap >= 0 by construction and gap -> 0 matches the paper's shape).
//!
//! Expected shape (paper): the gap is non-zero at small-to-medium sizes
//! where shortest-path diversity is thin, then approaches zero.

use dcn_bench::{f3, quick_mode, run_guarded, Table};
use dcn_core::frontier::Family;
use dcn_core::{tub, MatchingBackend};
use dcn_mcf::{ksp_mcf_throughput, Engine};
use std::process::ExitCode;
use dcn_cache::SolveCtx;

fn main() -> ExitCode {
    run_guarded("fig3_gap", run)
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let cache = dcn_bench::cache();
    let sctx = SolveCtx::unlimited(&cache);
    let seed = 42u64;
    dcn_bench::set_run_seed(seed);
    let radix = 12u32;
    let k_paths = 32usize;
    let eps = 0.05;
    let switch_counts: &[usize] = if quick_mode() {
        &[24, 48, 96]
    } else {
        &[24, 48, 96, 160, 240, 320]
    };
    let mut table = Table::new(
        "fig3_gap",
        &["family", "h", "switches", "servers", "tub", "mcf_lb", "mcf_ub", "gap"],
    );
    for family in [Family::Jellyfish, Family::Xpander, Family::FatClique] {
        for h in [4u32, 5, 6] {
            for &n_sw in switch_counts {
                let topo = match family.build(n_sw, radix, h, seed) {
                    Ok(t) => t,
                    Err(e) => {
                        dcn_obs::obs_log!("skip {} h={h} n={n_sw}: {e}", family.name());
                        continue;
                    }
                };
                let ub = tub(&topo, MatchingBackend::Auto { exact_below: 400 }, &sctx)?;
                let tm = ub.traffic_matrix(&topo)?;
                let mcf =
                    ksp_mcf_throughput(&topo, &tm, k_paths, Engine::Fptas { eps }, &sctx)?;
                // Obs-mode diagnostic on the smallest instance of each
                // family: cross-check the FPTAS bracket against the exact
                // simplex, and record the bisection-bandwidth proxy, so
                // the run manifest captures lp/partition solver behavior
                // alongside the mcf/graph counters. Skipped entirely when
                // observability is off (no stdout either way).
                if dcn_obs::enabled() && h == 4 && n_sw == switch_counts[0] {
                    let exact = ksp_mcf_throughput(&topo, &tm, k_paths, Engine::Exact, &sctx)?;
                    dcn_obs::gauge!(dcn_obs::names::BENCH_FIG3_EXACT_THETA).set(exact.theta_lb);
                    let bbw = dcn_partition::bisection_bandwidth(&topo, 2, seed, &sctx)?;
                    dcn_obs::gauge!(dcn_obs::names::BENCH_FIG3_BBW_PROXY).set(bbw);
                    dcn_obs::obs_log!(
                        "cross-check {}: fptas [{:.4},{:.4}] exact {:.4} bbw {:.4}",
                        family.name(),
                        mcf.theta_lb,
                        mcf.theta_ub,
                        exact.theta_lb,
                        bbw
                    );
                }
                // The paper reports gap between the (clamped) bound and the
                // routed throughput.
                let bound = ub.bound.min(1.0);
                let gap = (bound - mcf.theta_lb.min(1.0)).max(0.0);
                table.row(&[
                    &family.name(),
                    &h,
                    &topo.n_switches(),
                    &topo.n_servers(),
                    &f3(ub.bound),
                    &f3(mcf.theta_lb),
                    &f3(mcf.theta_ub),
                    &f3(gap),
                ]);
            }
        }
    }
    table.finish();
    Ok(())
}
