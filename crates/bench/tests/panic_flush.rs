//! A panicking experiment body must still flush its partial manifest and
//! buffered trace events — the post-mortem a `dcn-fleet` supervisor (or
//! a human) reads after a worker dies mid-cell.
//!
//! The panic happens in a child process (this test binary re-invoked
//! with an env gate), because a panic hook is process-global state and
//! the child's job is to die.

use std::path::PathBuf;
use std::process::Command;

const WORKER_ENV: &str = "DCN_BENCH_TEST_PANIC_DIR";

/// Child-process entrypoint (gated on [`WORKER_ENV`]); a no-op in the
/// normal suite. Panics mid-"sweep" under `run_guarded`.
#[test]
fn panicking_body_entry() {
    if std::env::var(WORKER_ENV).is_err() {
        return;
    }
    let _ = dcn_bench::run_guarded("panic_probe", || {
        dcn_obs::counter!(dcn_obs::names::CACHE_MISS).inc();
        panic!("deliberate mid-sweep abort");
    });
    unreachable!("run_guarded body must have panicked");
}

#[test]
fn panic_flushes_manifest_and_trace() {
    let dir = std::env::temp_dir().join(format!("dcn-bench-panic-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create results dir");

    let out = Command::new(std::env::current_exe().expect("current_exe"))
        .args(["panicking_body_entry", "--exact", "--nocapture"])
        .env(WORKER_ENV, "1")
        .env("DCN_RESULTS_DIR", &dir)
        .env("DCN_TRACE_FILE", dir.join("panic_probe.trace.json"))
        .output()
        .expect("spawn panicking child");
    assert!(
        !out.status.success(),
        "the child is supposed to die panicking"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("deliberate mid-sweep abort"),
        "default panic reporting must still run first: {stderr}"
    );

    // The hook flushed a partial manifest …
    let mpath: PathBuf = dir.join("panic_probe.panic.manifest.json");
    let manifest = std::fs::read_to_string(&mpath).expect("panic manifest written");
    let json = dcn_obs::json::Json::parse(&manifest).expect("panic manifest parses");
    assert_eq!(
        json.get("name").and_then(dcn_obs::json::Json::as_str),
        Some("panic_probe")
    );
    // … including metrics counted before the abort.
    assert!(
        manifest.contains("cache.miss"),
        "pre-panic metrics missing from flushed manifest: {manifest}"
    );

    // Tracing was active (DCN_TRACE_FILE), so the buffered events were
    // flushed too.
    let tpath = dir.join("panic_probe.panic.trace.json");
    let trace = std::fs::read_to_string(&tpath).expect("panic trace written");
    dcn_obs::json::Json::parse(&trace).expect("panic trace parses");
    assert!(stderr.contains("panic: partial manifest flushed"), "{stderr}");

    let _ = std::fs::remove_dir_all(&dir);
}
