//! End-to-end sharded frontier sweep: real [`FrontierConfig`] cells,
//! real worker processes, and a pin that the merged result — and the CSV
//! rendered from it — is byte-identical to the serial sweep at 1, 2, and
//! 4 workers.
//!
//! This is the bench-level leg of the fleet determinism contract. The
//! worker child is this test binary re-invoked against a gated entry
//! test (experiment binaries use their own `--worker` flag instead, but
//! a libtest harness cannot accept unknown flags).

use dcn_cache::prelude::*;
use dcn_core::frontier::{
    frontier_max_servers, frontier_sweep, Criterion, Family, FrontierConfig,
};
use dcn_core::MatchingBackend;
use dcn_fleet::{run_fleet, worker_main, FleetConfig, UnitOutcome, WorkUnit};
use dcn_guard::Budget;
use dcn_obs::json::Json;
use std::path::Path;
use std::time::Duration;

const WORKER_ENV: &str = "DCN_BENCH_TEST_FRONTIER_WORKER";

/// Four cheap real cells: two families, both frontier criteria.
fn tiny_configs() -> Vec<FrontierConfig> {
    let mut configs = Vec::new();
    for family in [Family::Jellyfish, Family::Xpander] {
        for criterion in [
            Criterion::FullThroughput {
                backend: MatchingBackend::Auto { exact_below: 600 },
            },
            Criterion::FullBisection { tries: 2 },
        ] {
            configs.push(FrontierConfig {
                family,
                radix: 8,
                h: 3,
                criterion,
                max_switches: 64,
                seed: 5,
            });
        }
    }
    configs
}

/// Gated worker entrypoint: solves real frontier cells from the queue.
#[test]
fn frontier_worker_entry() {
    let Ok(root) = std::env::var(WORKER_ENV) else {
        return;
    };
    let sctx = unlimited_ctx();
    worker_main(Path::new(&root), |unit, _attempt| {
        let config = FrontierConfig::from_json(&unit.payload)?;
        let servers = frontier_max_servers(
            config.family,
            config.radix,
            config.h,
            config.criterion,
            config.max_switches,
            config.seed,
            &sctx,
        )
        .map_err(|e| e.to_string())?;
        let value = match servers {
            Some(n) => Json::Num(n as f64),
            None => Json::Null,
        };
        Ok(Json::obj([("max_servers", value)]))
    })
    .expect("frontier worker loop");
}

fn worker_cmd(root: &Path) -> std::process::Command {
    let mut c = std::process::Command::new(std::env::current_exe().expect("current_exe"));
    c.args(["frontier_worker_entry", "--exact", "--nocapture"]);
    c.env(WORKER_ENV, root);
    c
}

fn csv_bytes(name: &str, frontiers: &[Option<u64>]) -> String {
    let mut table = dcn_bench::Table::new(name, &["cell", "max_servers"]);
    for (i, f) in frontiers.iter().enumerate() {
        let shown = match f {
            Some(n) => n.to_string(),
            None => "-".to_string(),
        };
        table.row(&[&i, &shown]);
    }
    table.write_csv();
    let path = dcn_bench::results_dir()
        .expect("results dir")
        .join(format!("{name}.csv"));
    let bytes = std::fs::read_to_string(&path).expect("csv written");
    let _ = std::fs::remove_file(&path);
    bytes
}

#[test]
fn sharded_real_sweep_is_byte_identical_to_serial() {
    let configs = tiny_configs();
    let serial = frontier_sweep(&configs, &unlimited_ctx()).expect("serial sweep");
    let serial_csv = csv_bytes("fleet_frontier_serial_test", &serial);
    let units: Vec<WorkUnit> = configs
        .iter()
        .map(|c| WorkUnit {
            id: c.work_key().to_hex(),
            payload: c.to_json(),
        })
        .collect();
    for workers in [1usize, 2, 4] {
        let root = std::env::temp_dir().join(format!(
            "dcn-bench-fleet-frontier-{workers}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&root);
        let cfg = FleetConfig {
            workers,
            root: root.clone(),
            lease: Duration::from_secs(120),
            max_retries: 2,
            backoff_base: Duration::from_millis(10),
            poll: Duration::from_millis(10),
            inject_kill_after: None,
        };
        let report = run_fleet(&cfg, &units, &Budget::unlimited(), &|| worker_cmd(&root))
            .expect("sharded sweep");
        let merged: Vec<Option<u64>> = report
            .outcomes
            .iter()
            .map(|o| match o {
                UnitOutcome::Ok(json) => match json.get("max_servers") {
                    Some(Json::Null) | None => None,
                    Some(v) => v.as_u64(),
                },
                other => panic!("undisturbed sweep must not fail: {other:?}"),
            })
            .collect();
        assert_eq!(merged, serial, "{workers} workers diverged from serial");
        let csv = csv_bytes(&format!("fleet_frontier_w{workers}_test"), &merged);
        assert_eq!(
            csv, serial_csv,
            "{workers}-worker CSV bytes diverged from serial"
        );
        let _ = std::fs::remove_dir_all(&root);
    }
}
