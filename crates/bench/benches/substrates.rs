//! Criterion benches for the substrate layers: graph algorithms, matching,
//! partitioning, and topology generation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcn_core::frontier::Family;
use dcn_graph::{ksp, DistMatrix};
use dcn_match::{greedy_max, hungarian_max};
use dcn_partition::{bisection_bandwidth, sparsest_cut_sweep};
use dcn_topo::{fat_tree, jellyfish, xpander, fatclique, FatCliqueParams};
use rand::rngs::StdRng;
use rand::SeedableRng;
use dcn_guard::prelude::*;

fn bench_apsp(c: &mut Criterion) {
    let mut g = c.benchmark_group("apsp");
    g.sample_size(10);
    for n_sw in [128usize, 512] {
        let topo = Family::Jellyfish.build(n_sw, 12, 4, 1).unwrap();
        g.bench_with_input(BenchmarkId::from_parameter(n_sw), &topo, |b, t| {
            b.iter(|| DistMatrix::all_pairs(t.graph()).unwrap().rows())
        });
    }
    g.finish();
}

fn bench_ksp(c: &mut Criterion) {
    let mut g = c.benchmark_group("ksp");
    g.sample_size(10);
    let topo = Family::Jellyfish.build(128, 12, 4, 2).unwrap();
    let graph = topo.graph().coalesced();
    g.bench_function("yen_k16", |b| {
        b.iter(|| ksp::yen(&graph, 0, 64, 16, &unlimited()).unwrap().len())
    });
    g.bench_function("slack_k16", |b| {
        b.iter(|| {
            ksp::k_shortest_by_slack(&graph, 0, 64, 16, u16::MAX, &unlimited())
                .unwrap()
                .len()
        })
    });
    g.finish();
}

fn bench_matching(c: &mut Criterion) {
    let mut g = c.benchmark_group("matching");
    g.sample_size(10);
    for n in [64usize, 256] {
        // Pseudo-distance weights.
        let w = move |i: usize, j: usize| ((i * 31 + j * 17) % 7) as i64;
        g.bench_with_input(BenchmarkId::new("hungarian", n), &n, |b, &n| {
            b.iter(|| hungarian_max(n, w, &unlimited()).unwrap().total_weight)
        });
        g.bench_with_input(BenchmarkId::new("greedy", n), &n, |b, &n| {
            b.iter(|| greedy_max(n, w).total_weight)
        });
    }
    g.finish();
}

fn bench_partition(c: &mut Criterion) {
    let mut g = c.benchmark_group("partition");
    g.sample_size(10);
    let topo = Family::Jellyfish.build(256, 12, 4, 3).unwrap();
    g.bench_function("bisection_t2", |b| {
        b.iter(|| bisection_bandwidth(&topo, 2, 7, &dcn_cache::prelude::unlimited_ctx()).unwrap())
    });
    g.bench_function("spectral_sweep", |b| {
        b.iter(|| sparsest_cut_sweep(&topo, 200).cut)
    });
    g.finish();
}

fn bench_generators(c: &mut Criterion) {
    let mut g = c.benchmark_group("topo_gen");
    g.sample_size(10);
    g.bench_function("jellyfish_512", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(5);
            jellyfish(512, 8, 4, &mut rng).unwrap().n_switches()
        })
    });
    g.bench_function("xpander_512", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(5);
            xpander(57, 8, 4, &mut rng).unwrap().n_switches()
        })
    });
    g.bench_function("fatclique_512", |b| {
        let p = FatCliqueParams::search(2048, 4, 12).unwrap();
        b.iter(|| fatclique(p).unwrap().n_switches())
    });
    g.bench_function("fat_tree_k16", |b| {
        b.iter(|| fat_tree(16).unwrap().n_switches())
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_apsp,
    bench_ksp,
    bench_matching,
    bench_partition,
    bench_generators
);

// -- appended: benches for the systems added after the first bench pass --

fn bench_maxflow(c: &mut Criterion) {
    use dcn_graph::{edge_connectivity, max_flow_value};
    let mut g = c.benchmark_group("maxflow");
    g.sample_size(10);
    let topo = Family::Jellyfish.build(128, 12, 4, 9).unwrap();
    let graph = topo.graph().coalesced();
    g.bench_function("st_flow_128", |b| {
        b.iter(|| max_flow_value(&graph, 0, 64, &unlimited()).unwrap())
    });
    let small = Family::Jellyfish.build(32, 10, 4, 9).unwrap();
    g.bench_function("edge_connectivity_32", |b| {
        b.iter(|| edge_connectivity(small.graph(), &unlimited()).unwrap())
    });
    g.finish();
}

fn bench_spectral(c: &mut Criterion) {
    use dcn_graph::adjacency_lambda2;
    let mut g = c.benchmark_group("spectral");
    g.sample_size(10);
    let topo = Family::Jellyfish.build(256, 12, 4, 9).unwrap();
    g.bench_function("lambda2_256", |b| {
        b.iter(|| adjacency_lambda2(topo.graph(), 200))
    });
    g.finish();
}

criterion_group!(late_benches, bench_maxflow, bench_spectral);
criterion_main!(benches, late_benches);
