//! Criterion benches for the end-to-end pipelines: the tub computation
//! (the paper's efficiency axis in Figure 5(b)/(d)) and the throughput
//! estimators it is compared against.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dcn_core::frontier::Family;
use dcn_core::MatchingBackend;
use dcn_estimators::{
    BbwProxy, HoeflerMethod, JainMethod, SinglaBound, SparsestCut, ThroughputEstimator,
    TubEstimator,
};
use dcn_mcf::{ksp_mcf_throughput, Engine};
use dcn_model::{Topology, TrafficMatrix};

fn jellyfish_with_tm(n_sw: usize) -> (Topology, TrafficMatrix) {
    let topo = Family::Jellyfish.build(n_sw, 12, 4, 101).expect("jellyfish");
    let t = dcn_core::tub(&topo, MatchingBackend::Auto { exact_below: 500 }, &dcn_cache::prelude::unlimited_ctx()).expect("tub");
    let tm = t.traffic_matrix(&topo).expect("tm");
    (topo, tm)
}

fn bench_tub_backends(c: &mut Criterion) {
    let mut g = c.benchmark_group("tub");
    g.sample_size(10);
    for n_sw in [48usize, 128, 256] {
        let (topo, _) = jellyfish_with_tm(n_sw);
        g.bench_with_input(BenchmarkId::new("hungarian", n_sw), &topo, |b, t| {
            b.iter(|| dcn_core::tub(t, MatchingBackend::Exact, &dcn_cache::prelude::unlimited_ctx()).unwrap().bound)
        });
        g.bench_with_input(BenchmarkId::new("greedy", n_sw), &topo, |b, t| {
            b.iter(|| {
                dcn_core::tub(
                    t,
                    MatchingBackend::Greedy {
                        improvement_passes: 2,
                    },
                    &dcn_cache::prelude::unlimited_ctx(),
                )
                .unwrap()
                .bound
            })
        });
    }
    g.finish();
}

fn bench_estimators(c: &mut Criterion) {
    let mut g = c.benchmark_group("estimators");
    g.sample_size(10);
    let (topo, tm) = jellyfish_with_tm(96);
    let estimators: Vec<Box<dyn ThroughputEstimator>> = vec![
        Box::new(TubEstimator {
            backend: MatchingBackend::Exact,
        }),
        Box::new(BbwProxy { tries: 2, seed: 3 }),
        Box::new(SparsestCut { power_iters: 200 }),
        Box::new(SinglaBound),
        Box::new(HoeflerMethod { k: 16 }),
        Box::new(JainMethod { k: 16 }),
    ];
    for est in estimators {
        g.bench_function(est.name().as_ref(), |b| {
            b.iter(|| est.estimate(&topo, &tm, &dcn_cache::prelude::unlimited_ctx()).unwrap())
        });
    }
    g.finish();
}

fn bench_mcf_engines(c: &mut Criterion) {
    let mut g = c.benchmark_group("ksp_mcf");
    g.sample_size(10);
    let (topo, tm) = jellyfish_with_tm(32);
    g.bench_function("exact_simplex", |b| {
        b.iter(|| {
            ksp_mcf_throughput(&topo, &tm, 16, Engine::Exact, &dcn_cache::prelude::unlimited_ctx())
                .unwrap()
                .theta_lb
        })
    });
    for eps in [0.1, 0.05, 0.02] {
        g.bench_function(format!("fptas_eps{eps}"), |b| {
            b.iter(|| {
                ksp_mcf_throughput(&topo, &tm, 16, Engine::Fptas { eps }, &dcn_cache::prelude::unlimited_ctx())
                    .unwrap()
                    .theta_lb
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_tub_backends,
    bench_estimators,
    bench_mcf_engines,
    bench_sim
);
criterion_main!(benches);

// -- appended: simulator and routing-model benches --

fn bench_sim(c: &mut Criterion) {
    use dcn_mcf::{ecmp_throughput, vlb_throughput};
    use dcn_sim::{flows_from_tm, max_min_rates, PathPolicy};
    let mut g = c.benchmark_group("sim");
    g.sample_size(10);
    let (topo, tm) = jellyfish_with_tm(64);
    g.bench_function("ecmp_fluid", |b| {
        b.iter(|| ecmp_throughput(&topo, &tm).unwrap())
    });
    g.bench_function("vlb_fluid", |b| {
        b.iter(|| vlb_throughput(&topo, &tm).unwrap())
    });
    let flows = flows_from_tm(&tm);
    let routed = PathPolicy::EcmpHash.route_all(&topo, &flows, 5).unwrap();
    g.bench_function("max_min_rates", |b| {
        b.iter(|| max_min_rates(&topo, &routed).rates.len())
    });
    g.bench_function("route_ksp8", |b| {
        b.iter(|| {
            PathPolicy::KspStripe { k: 8 }
                .route_all(&topo, &flows, 5)
                .unwrap()
                .len()
        })
    });
    g.finish();
}
