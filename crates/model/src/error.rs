//! Error type for topology/traffic model construction.
//!
//! Every fallible model operation returns [`ModelError`] instead of
//! panicking — the workspace-wide panic-freedom rule (enforced by
//! `dcn-lint`) starts here, at the lowest layer that user parameters can
//! reach. Variants separate *caller* mistakes (infeasible parameters,
//! mismatched server lists) from *structural* failures bubbled up from
//! graph construction, so experiment drivers can decide whether to skip
//! a configuration or abort a sweep.

use dcn_graph::GraphError;

/// Errors produced while building topologies or traffic matrices.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// Underlying graph construction failed.
    Graph(GraphError),
    /// `servers.len()` does not match the number of switches.
    ServerCountMismatch {
        /// Switches in the graph.
        switches: usize,
        /// Entries in the server vector.
        entries: usize,
    },
    /// No switch has any servers, so there is no traffic to carry.
    NoServers,
    /// A demand references a switch with no attached servers.
    DemandOnServerlessSwitch {
        /// The offending switch id.
        switch: u32,
    },
    /// A demand references a switch id out of range.
    SwitchOutOfRange {
        /// The offending switch id.
        switch: u32,
        /// Number of switches in the topology.
        n: usize,
    },
    /// A demand is negative or not finite.
    InvalidDemand {
        /// The offending demand value.
        value: f64,
    },
    /// A demand matrix violates the hose-model row/column constraints.
    HoseViolation {
        /// The overloaded switch.
        switch: u32,
        /// Its aggregate send or receive rate.
        rate: f64,
        /// Its hose cap (attached servers).
        cap: f64,
    },
    /// Topology parameters are infeasible (e.g. more servers than ports).
    InfeasibleParams(String),
}

impl From<GraphError> for ModelError {
    fn from(e: GraphError) -> Self {
        ModelError::Graph(e)
    }
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::Graph(e) => write!(f, "graph error: {e}"),
            ModelError::ServerCountMismatch { switches, entries } => write!(
                f,
                "server vector has {entries} entries for {switches} switches"
            ),
            ModelError::NoServers => write!(f, "topology has no servers"),
            ModelError::DemandOnServerlessSwitch { switch } => {
                write!(f, "demand on switch {switch} which has no servers")
            }
            ModelError::SwitchOutOfRange { switch, n } => {
                write!(f, "switch {switch} out of range ({n} switches)")
            }
            ModelError::InvalidDemand { value } => write!(f, "invalid demand value {value}"),
            ModelError::HoseViolation { switch, rate, cap } => write!(
                f,
                "hose violation at switch {switch}: rate {rate} exceeds cap {cap}"
            ),
            ModelError::InfeasibleParams(s) => write!(f, "infeasible parameters: {s}"),
        }
    }
}

impl std::error::Error for ModelError {}
