#![forbid(unsafe_code)]
//! Switch-level topology and traffic model, following §2 of the paper.
//!
//! A [`Topology`] is a switch-level graph plus the number of servers
//! attached to each switch. The paper's two practical topology classes are
//! captured by [`TopoClass`]:
//!
//! * **uni-regular** — every switch has `H > 0` servers (Jellyfish,
//!   Xpander, FatClique; FatClique is *near*-uni-regular: `H` may differ
//!   by 1 across switches, which [`TopoClass::NearUniRegular`] records).
//! * **bi-regular** — a switch either has `H` servers or none (Clos,
//!   fat-tree, VL2).
//!
//! A [`TrafficMatrix`] is a sparse switch-level demand matrix. The crate
//! provides the hose-model feasibility checks of §2.1 and the standard
//! workloads used by the paper's evaluation: switch-level permutations
//! (entries `min(H_u, H_v)`, which reduces to `H` for uni-regular
//! topologies), random permutations, and all-to-all.

#![warn(missing_docs)]

pub mod error;
pub mod io;
pub mod topology;
pub mod traffic;
pub mod workload;

pub use error::ModelError;
pub use io::TopologySpec;
pub use topology::{TopoClass, Topology};
pub use traffic::{Demand, TrafficMatrix};
