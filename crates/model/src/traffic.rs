//! Sparse switch-level traffic matrices and the hose model of §2.1.
//!
//! A [`TrafficMatrix`] lists demands between *switches*, in server
//! line-rate units; per-server demands are aggregated onto the switch
//! hosting them, exactly as the paper's Equation 1 works at the switch
//! level. [`TrafficMatrix::check_hose`] checks the §2.1 hose constraint
//! (no switch sources or sinks more than its attached server capacity)
//! and [`TrafficMatrix::random_permutation`] builds the near-worst-case
//! matrices the evaluation uses (§3): a random server-level permutation
//! saturating every server's hose envelope.
//!
//! # Determinism
//!
//! Generators here take a caller-seeded `&mut impl Rng` and never read
//! clocks or global state, so a fixed seed reproduces the same matrix
//! byte-for-byte on every thread count — the contract the workspace-wide
//! determinism tests (`crates/core/tests/determinism.rs`) pin. Matrix
//! construction is cheap and unbudgeted; solver budgets (`dcn_guard::Budget`)
//! start where the matrices are consumed, in the solver crates.

use crate::{ModelError, Topology};
use dcn_graph::NodeId;
use rand::seq::SliceRandom;
use rand::Rng;

/// One demand entry: `amount` units of traffic from switch `src` to `dst`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Demand {
    /// Source switch.
    pub src: NodeId,
    /// Destination switch.
    pub dst: NodeId,
    /// Demand volume (server line-rate units).
    pub amount: f64,
}

/// A sparse switch-level traffic matrix.
///
/// Entries with `src == dst` are disallowed (traffic to a switch's own
/// servers never crosses the fabric); zero or negative entries are
/// disallowed to keep the representation canonical.
#[derive(Debug, Clone, PartialEq)]
pub struct TrafficMatrix {
    demands: Vec<Demand>,
}

impl TrafficMatrix {
    /// Builds a traffic matrix, validating every demand against `topo`:
    /// endpoints must be distinct switches that host servers, and amounts
    /// must be positive and finite.
    pub fn new(topo: &Topology, demands: Vec<Demand>) -> Result<Self, ModelError> {
        let n = topo.n_switches();
        for d in &demands {
            for sw in [d.src, d.dst] {
                if sw as usize >= n {
                    return Err(ModelError::SwitchOutOfRange { switch: sw, n });
                }
                if topo.servers_at(sw) == 0 {
                    return Err(ModelError::DemandOnServerlessSwitch { switch: sw });
                }
            }
            if !(d.amount.is_finite() && d.amount > 0.0) || d.src == d.dst {
                return Err(ModelError::InvalidDemand { value: d.amount });
            }
        }
        Ok(TrafficMatrix { demands })
    }

    /// The demand entries.
    pub fn demands(&self) -> &[Demand] {
        &self.demands
    }

    /// Number of non-zero entries.
    pub fn len(&self) -> usize {
        self.demands.len()
    }

    /// True if the matrix has no entries.
    pub fn is_empty(&self) -> bool {
        self.demands.is_empty()
    }

    /// Total demand volume.
    pub fn total(&self) -> f64 {
        self.demands.iter().map(|d| d.amount).sum()
    }

    /// Scales every demand by `f > 0`.
    pub fn scaled(&self, f: f64) -> TrafficMatrix {
        TrafficMatrix {
            demands: self
                .demands
                .iter()
                .map(|d| Demand {
                    amount: d.amount * f,
                    ..*d
                })
                .collect(),
        }
    }

    /// True if this matrix is a (partial) permutation: at most one non-zero
    /// entry per row and per column.
    pub fn is_permutation(&self, topo: &Topology) -> bool {
        let n = topo.n_switches();
        let mut out = vec![false; n];
        let mut inc = vec![false; n];
        for d in &self.demands {
            if out[d.src as usize] || inc[d.dst as usize] {
                return false;
            }
            out[d.src as usize] = true;
            inc[d.dst as usize] = true;
        }
        true
    }

    /// Checks hose-model feasibility: every switch sends and receives at
    /// most `H_u` total (§2.1). Returns the first violation if any.
    pub fn check_hose(&self, topo: &Topology) -> Result<(), ModelError> {
        let n = topo.n_switches();
        let mut tx = vec![0.0f64; n];
        let mut rx = vec![0.0f64; n];
        for d in &self.demands {
            tx[d.src as usize] += d.amount;
            rx[d.dst as usize] += d.amount;
        }
        const EPS: f64 = 1e-9;
        for u in 0..n {
            let cap = topo.servers_at(u as NodeId) as f64;
            if tx[u] > cap * (1.0 + EPS) + EPS {
                return Err(ModelError::HoseViolation {
                    switch: u as NodeId,
                    rate: tx[u],
                    cap,
                });
            }
            if rx[u] > cap * (1.0 + EPS) + EPS {
                return Err(ModelError::HoseViolation {
                    switch: u as NodeId,
                    rate: rx[u],
                    cap,
                });
            }
        }
        Ok(())
    }

    /// Switch-level permutation traffic from an explicit pairing.
    /// Each pair `(u, v)` contributes `min(H_u, H_v)` — Equation 18's
    /// weighting, which reduces to `H` when all switches host `H` servers.
    pub fn permutation(topo: &Topology, pairs: &[(NodeId, NodeId)]) -> Result<Self, ModelError> {
        let demands: Vec<Demand> = pairs
            .iter()
            .map(|&(u, v)| Demand {
                src: u,
                dst: v,
                amount: topo.servers_at(u).min(topo.servers_at(v)) as f64,
            })
            .collect();
        let tm = TrafficMatrix::new(topo, demands)?;
        if !tm.is_permutation(topo) {
            return Err(ModelError::InvalidDemand { value: f64::NAN });
        }
        Ok(tm)
    }

    /// A uniformly random switch-level permutation (derangement) over the
    /// switches with servers: every such switch sends to exactly one other
    /// and receives from exactly one other.
    pub fn random_permutation<R: Rng>(topo: &Topology, rng: &mut R) -> Result<Self, ModelError> {
        let k = topo.switches_with_servers();
        if k.len() < 2 {
            return Err(ModelError::InfeasibleParams(
                "random permutation needs >= 2 switches with servers".into(),
            ));
        }
        // Sattolo's algorithm: a uniformly random single-cycle permutation,
        // which is automatically fixed-point free.
        let mut perm: Vec<usize> = (0..k.len()).collect();
        for i in (1..perm.len()).rev() {
            let j = rng.gen_range(0..i);
            perm.swap(i, j);
        }
        let pairs: Vec<(NodeId, NodeId)> =
            (0..k.len()).map(|i| (k[i], k[perm[i]])).collect();
        TrafficMatrix::permutation(topo, &pairs)
    }

    /// All-to-all traffic: every server-hosting switch spreads its hose rate
    /// `H_u` equally across all other server-hosting switches.
    pub fn all_to_all(topo: &Topology) -> Result<Self, ModelError> {
        let k = topo.switches_with_servers();
        if k.len() < 2 {
            return Err(ModelError::InfeasibleParams(
                "all-to-all needs >= 2 switches with servers".into(),
            ));
        }
        let mut demands = Vec::with_capacity(k.len() * (k.len() - 1));
        for &u in &k {
            let share = topo.servers_at(u) as f64 / (k.len() - 1) as f64;
            for &v in &k {
                if u != v {
                    demands.push(Demand {
                        src: u,
                        dst: v,
                        amount: share,
                    });
                }
            }
        }
        TrafficMatrix::new(topo, demands)
    }

    /// A random hose-feasible dense traffic matrix: starts from a convex
    /// combination of `cycles` random permutations. Used for stress tests
    /// (any convex combination of permutations is hose-saturated).
    pub fn random_hose<R: Rng>(
        topo: &Topology,
        cycles: usize,
        rng: &mut R,
    ) -> Result<Self, ModelError> {
        let mut weights: Vec<f64> = (0..cycles).map(|_| rng.gen_range(0.1..1.0)).collect();
        let s: f64 = weights.iter().sum();
        for w in &mut weights {
            *w /= s;
        }
        let mut acc: std::collections::HashMap<(NodeId, NodeId), f64> =
            std::collections::HashMap::new();
        for &w in &weights {
            let p = TrafficMatrix::random_permutation(topo, rng)?;
            for d in p.demands() {
                *acc.entry((d.src, d.dst)).or_insert(0.0) += w * d.amount;
            }
        }
        let mut demands: Vec<Demand> = acc
            .into_iter()
            .map(|((src, dst), amount)| Demand { src, dst, amount })
            .collect();
        demands.sort_by_key(|d| (d.src, d.dst));
        TrafficMatrix::new(topo, demands)
    }

    /// Random subset shuffle helper exposed for tests and workloads: picks
    /// `m` distinct switches with servers.
    pub fn sample_switches<R: Rng>(topo: &Topology, m: usize, rng: &mut R) -> Vec<NodeId> {
        let mut k = topo.switches_with_servers();
        k.shuffle(rng);
        k.truncate(m);
        k
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_graph::Graph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ring(n: usize, h: u32) -> Topology {
        let edges: Vec<(u32, u32)> = (0..n as u32).map(|i| (i, (i + 1) % n as u32)).collect();
        let g = Graph::from_edges(n, &edges).unwrap();
        Topology::new(g, vec![h; n], "ring").unwrap()
    }

    #[test]
    fn permutation_entries_use_min_h() {
        let t = ring(4, 3);
        let tm = TrafficMatrix::permutation(&t, &[(0, 2), (2, 0)]).unwrap();
        assert_eq!(tm.len(), 2);
        assert!(tm.demands().iter().all(|d| (d.amount - 3.0).abs() < 1e-12));
        assert!(tm.is_permutation(&t));
        tm.check_hose(&t).unwrap();
    }

    #[test]
    fn non_permutation_detected() {
        let t = ring(4, 3);
        let tm = TrafficMatrix::new(
            &t,
            vec![
                Demand { src: 0, dst: 1, amount: 1.0 },
                Demand { src: 0, dst: 2, amount: 1.0 },
            ],
        )
        .unwrap();
        assert!(!tm.is_permutation(&t));
    }

    #[test]
    fn hose_violation_detected() {
        let t = ring(4, 2);
        let tm = TrafficMatrix::new(
            &t,
            vec![Demand { src: 0, dst: 1, amount: 5.0 }],
        )
        .unwrap();
        assert!(matches!(
            tm.check_hose(&t),
            Err(ModelError::HoseViolation { switch: 0, .. })
        ));
    }

    #[test]
    fn random_permutation_is_hose_saturated_derangement() {
        let t = ring(16, 4);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..5 {
            let tm = TrafficMatrix::random_permutation(&t, &mut rng).unwrap();
            assert_eq!(tm.len(), 16);
            assert!(tm.is_permutation(&t));
            assert!(tm.demands().iter().all(|d| d.src != d.dst));
            tm.check_hose(&t).unwrap();
            // Saturated: every switch sends exactly H.
            assert!((tm.total() - 64.0).abs() < 1e-9);
        }
    }

    #[test]
    fn all_to_all_is_hose_saturated() {
        let t = ring(8, 4);
        let tm = TrafficMatrix::all_to_all(&t).unwrap();
        assert_eq!(tm.len(), 8 * 7);
        tm.check_hose(&t).unwrap();
        assert!((tm.total() - 32.0).abs() < 1e-9);
    }

    #[test]
    fn random_hose_is_feasible() {
        let t = ring(12, 4);
        let mut rng = StdRng::seed_from_u64(99);
        let tm = TrafficMatrix::random_hose(&t, 3, &mut rng).unwrap();
        tm.check_hose(&t).unwrap();
        assert!(tm.total() > 0.0);
    }

    #[test]
    fn rejects_demand_on_serverless_switch() {
        let edges: Vec<(u32, u32)> = (0..4u32).map(|i| (i, (i + 1) % 4)).collect();
        let g = Graph::from_edges(4, &edges).unwrap();
        let t = Topology::new(g, vec![2, 0, 2, 0], "ring").unwrap();
        let err = TrafficMatrix::new(
            &t,
            vec![Demand { src: 0, dst: 1, amount: 1.0 }],
        )
        .unwrap_err();
        assert_eq!(err, ModelError::DemandOnServerlessSwitch { switch: 1 });
    }

    #[test]
    fn rejects_self_demand_and_nonpositive() {
        let t = ring(4, 2);
        assert!(TrafficMatrix::new(
            &t,
            vec![Demand { src: 1, dst: 1, amount: 1.0 }]
        )
        .is_err());
        assert!(TrafficMatrix::new(
            &t,
            vec![Demand { src: 0, dst: 1, amount: 0.0 }]
        )
        .is_err());
        assert!(TrafficMatrix::new(
            &t,
            vec![Demand { src: 0, dst: 1, amount: -2.0 }]
        )
        .is_err());
    }

    #[test]
    fn scaled_multiplies_amounts() {
        let t = ring(4, 2);
        let tm = TrafficMatrix::permutation(&t, &[(0, 2)]).unwrap();
        let s = tm.scaled(0.5);
        assert_eq!(s.demands()[0].amount, 1.0);
    }
}
