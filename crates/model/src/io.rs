//! Topology serialization: a stable JSON interchange format and Graphviz
//! DOT export.
//!
//! The JSON format is deliberately plain — name, per-switch server counts,
//! and a weighted edge list — so topologies generated here can be consumed
//! by external plotting/analysis scripts, and topologies from other tools
//! (e.g. TopoBench-style edge lists) can be imported.
//!
//! Round-tripping is lossless and canonical: edges serialize in the
//! graph's insertion order and deserialize back to a structurally equal
//! [`Topology`], so an exported-then-imported fabric produces the same
//! solver results — and the same `dcn-cache` content keys — as the
//! original. Import re-validates through [`Topology::new`]; malformed
//! input surfaces as [`ModelError`], never a panic.

use crate::{ModelError, Topology};
use dcn_graph::Graph;
use dcn_obs::json::Json;

/// The serializable form of a [`Topology`].
#[derive(Debug, Clone, PartialEq)]
pub struct TopologySpec {
    /// Human-readable name.
    pub name: String,
    /// Servers attached to each switch (length = number of switches).
    pub servers: Vec<u32>,
    /// Undirected switch-to-switch links `(u, v, capacity)`.
    pub links: Vec<(u32, u32, f64)>,
}

impl TopologySpec {
    /// Captures a topology.
    pub fn from_topology(topo: &Topology) -> Self {
        let g = topo.graph();
        let links = g
            .edges()
            .iter()
            .enumerate()
            .map(|(e, &(u, v))| (u, v, g.capacity(e as u32)))
            .collect();
        TopologySpec {
            name: topo.name().to_string(),
            servers: topo.servers().to_vec(),
            links,
        }
    }

    /// Reconstructs the topology (validating the graph and server vector).
    pub fn into_topology(self) -> Result<Topology, ModelError> {
        let n = self.servers.len();
        let g = Graph::from_weighted_edges(n, &self.links)?;
        Topology::new(g, self.servers, self.name)
    }

    /// Renders the spec as pretty JSON.
    pub fn to_json(&self) -> String {
        Json::obj([
            ("name", Json::from(self.name.as_str())),
            (
                "servers",
                Json::Arr(self.servers.iter().map(|&h| Json::from(h)).collect()),
            ),
            (
                "links",
                Json::Arr(
                    self.links
                        .iter()
                        .map(|&(u, v, c)| {
                            Json::Arr(vec![Json::from(u), Json::from(v), Json::Num(c)])
                        })
                        .collect(),
                ),
            ),
        ])
        .to_string_pretty()
    }

    /// Parses a spec from the JSON interchange format.
    pub fn parse_json(json: &str) -> Result<TopologySpec, ModelError> {
        let bad = |msg: &str| ModelError::InfeasibleParams(format!("invalid topology json: {msg}"));
        let v = Json::parse(json).map_err(|e| bad(&e.to_string()))?;
        let name = v
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("missing string field 'name'"))?
            .to_string();
        let servers = v
            .get("servers")
            .and_then(Json::as_array)
            .ok_or_else(|| bad("missing array field 'servers'"))?
            .iter()
            .map(|h| {
                h.as_u64()
                    .and_then(|h| u32::try_from(h).ok())
                    .ok_or_else(|| bad("server count not a u32"))
            })
            .collect::<Result<Vec<u32>, _>>()?;
        let mut links = Vec::new();
        for link in v
            .get("links")
            .and_then(Json::as_array)
            .ok_or_else(|| bad("missing array field 'links'"))?
        {
            let parts = link
                .as_array()
                .filter(|p| p.len() == 3)
                .ok_or_else(|| bad("link is not a [u, v, capacity] triple"))?;
            let end = |j: &Json| {
                j.as_u64()
                    .and_then(|x| u32::try_from(x).ok())
                    .ok_or_else(|| bad("link endpoint not a u32"))
            };
            let cap = parts[2]
                .as_f64()
                .ok_or_else(|| bad("link capacity not a number"))?;
            links.push((end(&parts[0])?, end(&parts[1])?, cap));
        }
        Ok(TopologySpec {
            name,
            servers,
            links,
        })
    }
}

impl Topology {
    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        TopologySpec::from_topology(self).to_json()
    }

    /// Parses a topology from the JSON interchange format.
    pub fn from_json(json: &str) -> Result<Topology, ModelError> {
        TopologySpec::parse_json(json)?.into_topology()
    }

    /// Graphviz DOT rendering: switches as nodes (labeled with server
    /// counts), trunked links with weight labels.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        writeln!(out, "graph \"{}\" {{", self.name()).unwrap();
        writeln!(out, "  node [shape=box];").unwrap();
        for u in 0..self.n_switches() as u32 {
            let h = self.servers_at(u);
            if h > 0 {
                writeln!(out, "  s{u} [label=\"s{u}\\nH={h}\"];").unwrap();
            } else {
                writeln!(out, "  s{u} [label=\"s{u}\", style=dashed];").unwrap();
            }
        }
        let g = self.graph();
        for (e, &(u, v)) in g.edges().iter().enumerate() {
            let c = g.capacity(e as u32);
            if (c - 1.0).abs() < 1e-12 {
                writeln!(out, "  s{u} -- s{v};").unwrap();
            } else {
                writeln!(out, "  s{u} -- s{v} [label=\"{c}\"];").unwrap();
            }
        }
        writeln!(out, "}}").unwrap();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_graph::Graph;

    fn sample() -> Topology {
        let g =
            Graph::from_weighted_edges(3, &[(0, 1, 1.0), (1, 2, 2.0), (2, 0, 1.0)]).unwrap();
        Topology::new(g, vec![2, 0, 4], "sample").unwrap()
    }

    #[test]
    fn json_round_trip() {
        let t = sample();
        let json = t.to_json();
        let back = Topology::from_json(&json).unwrap();
        assert_eq!(back.name(), "sample");
        assert_eq!(back.servers(), t.servers());
        assert_eq!(back.graph().edges(), t.graph().edges());
        assert_eq!(back.graph().capacity(1), 2.0);
    }

    #[test]
    fn spec_round_trip() {
        let t = sample();
        let spec = TopologySpec::from_topology(&t);
        assert_eq!(spec.servers, vec![2, 0, 4]);
        assert_eq!(spec.links.len(), 3);
        let back = spec.clone().into_topology().unwrap();
        assert_eq!(TopologySpec::from_topology(&back), spec);
    }

    #[test]
    fn invalid_json_rejected() {
        assert!(Topology::from_json("{not json").is_err());
        // Valid JSON, invalid topology (edge out of range).
        let bad = r#"{"name":"x","servers":[1,1],"links":[[0,9,1.0]]}"#;
        assert!(Topology::from_json(bad).is_err());
    }

    #[test]
    fn dot_contains_all_elements() {
        let dot = sample().to_dot();
        assert!(dot.contains("graph \"sample\""));
        assert!(dot.contains("s0 [label=\"s0\\nH=2\"]"));
        assert!(dot.contains("style=dashed"), "serverless switch styled");
        assert!(dot.contains("s1 -- s2 [label=\"2\"]"));
        assert!(dot.contains("s0 -- s1;"));
    }
}
