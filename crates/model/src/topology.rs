//! The [`Topology`] type: a switch-level graph with attached servers.
//!
//! This is the paper's §2 object of study: a capacity-weighted switch
//! graph plus a per-switch server count, classified by [`TopoClass`]
//! into the uni-regular / near-uni-regular / bi-regular taxonomy of
//! Figure 1 (which decides whether Theorem 2.2's throughput upper bound
//! applies directly, via Equation 18, or not at all). Construction
//! checks the shape invariants downstream solvers assume (server counts
//! match the switch count; at least one server exists) so solvers can
//! skip re-checking them inside budgeted hot loops; connectivity is the
//! generators' contract (`dcn-topo` returns only connected fabrics). A
//! `Topology` is immutable after construction, and its content (edges,
//! capacities, server counts) is exactly what `dcn-cache` hashes into
//! solver cache keys — two structurally identical topologies hit the
//! same cache line regardless of how they were generated.

use crate::ModelError;
use dcn_graph::{Graph, NodeId};

/// Classification of a topology per the paper's taxonomy (Figure 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopoClass {
    /// Every switch has the same `H > 0` servers.
    UniRegular {
        /// Servers per switch.
        h: u32,
    },
    /// Server counts differ by exactly 1 across switches (FatClique's
    /// relaxation, handled by Equation 18 of the paper).
    NearUniRegular {
        /// Smallest per-switch server count.
        h_min: u32,
        /// Largest per-switch server count (`h_min + 1`).
        h_max: u32,
    },
    /// Every switch has either `H` servers or none (Clos family).
    BiRegular {
        /// Servers per server-hosting switch.
        h: u32,
    },
    /// Anything else (still analyzable by the per-switch-H machinery).
    Irregular,
}

/// A datacenter topology at the switch level.
///
/// Servers are not graph nodes: following §2.2 of the paper, each server
/// connects to exactly one switch, so it suffices to record how many servers
/// each switch hosts. Links have unit (or integer, for aggregated Clos
/// trunks) capacity per direction.
#[derive(Debug, Clone)]
pub struct Topology {
    graph: Graph,
    servers: Vec<u32>,
    name: String,
}

impl Topology {
    /// Wraps a switch graph and per-switch server counts.
    pub fn new(
        graph: Graph,
        servers: Vec<u32>,
        name: impl Into<String>,
    ) -> Result<Self, ModelError> {
        if servers.len() != graph.n() {
            return Err(ModelError::ServerCountMismatch {
                switches: graph.n(),
                entries: servers.len(),
            });
        }
        if servers.iter().all(|&s| s == 0) {
            return Err(ModelError::NoServers);
        }
        Ok(Topology {
            graph,
            servers,
            name: name.into(),
        })
    }

    /// The switch-level graph.
    #[inline]
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Human-readable topology name (e.g. `jellyfish-n1024-h8`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of switches (`|S|`).
    #[inline]
    pub fn n_switches(&self) -> usize {
        self.graph.n()
    }

    /// Total number of servers (`N`).
    pub fn n_servers(&self) -> u64 {
        self.servers.iter().map(|&s| s as u64).sum()
    }

    /// Number of switch-to-switch links (`E`), counting parallel trunks by
    /// their capacity.
    pub fn e_links(&self) -> f64 {
        self.graph.total_capacity()
    }

    /// Servers attached to switch `u` (`H_u`).
    #[inline]
    pub fn servers_at(&self, u: NodeId) -> u32 {
        self.servers[u as usize]
    }

    /// Per-switch server counts.
    pub fn servers(&self) -> &[u32] {
        &self.servers
    }

    /// The set `K`: switches with at least one attached server.
    pub fn switches_with_servers(&self) -> Vec<NodeId> {
        (0..self.n_switches() as NodeId)
            .filter(|&u| self.servers[u as usize] > 0)
            .collect()
    }

    /// Used ports at switch `u`: network links (counting trunk capacity)
    /// plus attached servers. This is `R_u` in the paper.
    pub fn used_ports(&self, u: NodeId) -> f64 {
        let net: f64 = self
            .graph
            .neighbors(u)
            .map(|(_, e)| self.graph.capacity(e))
            .sum();
        net + self.servers[u as usize] as f64
    }

    /// Classifies the topology (Figure 1 of the paper).
    pub fn class(&self) -> TopoClass {
        let with: Vec<u32> = self
            .servers
            .iter()
            .copied()
            .filter(|&s| s > 0)
            .collect();
        let any_zero = self.servers.contains(&0);
        let min = *with.iter().min().expect("validated: at least one server");
        let max = *with.iter().max().expect("validated: at least one server");
        if !any_zero {
            if min == max {
                TopoClass::UniRegular { h: min }
            } else if max - min == 1 {
                TopoClass::NearUniRegular {
                    h_min: min,
                    h_max: max,
                }
            } else {
                TopoClass::Irregular
            }
        } else if min == max {
            TopoClass::BiRegular { h: min }
        } else {
            TopoClass::Irregular
        }
    }

    /// `H` for (near-)uni-regular and bi-regular topologies: the maximum
    /// per-switch server count. This is the hose-model rate cap.
    pub fn h_max(&self) -> u32 {
        *self.servers.iter().max().expect("non-empty")
    }

    /// Mean servers per server-hosting switch.
    pub fn h_mean(&self) -> f64 {
        let k = self.switches_with_servers().len();
        self.n_servers() as f64 / k as f64
    }

    /// Returns a renamed copy (handy after failure injection / expansion).
    pub fn renamed(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Replaces the graph, keeping server placement (used by failure
    /// injection, which removes links but not servers).
    pub fn with_graph(&self, graph: Graph) -> Result<Self, ModelError> {
        Topology::new(graph, self.servers.clone(), self.name.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring_topo(servers: Vec<u32>) -> Result<Topology, ModelError> {
        let n = servers.len();
        let edges: Vec<(u32, u32)> = (0..n as u32).map(|i| (i, (i + 1) % n as u32)).collect();
        let g = Graph::from_edges(n, &edges).unwrap();
        Topology::new(g, servers, "ring")
    }

    #[test]
    fn uni_regular_classification() {
        let t = ring_topo(vec![4, 4, 4, 4]).unwrap();
        assert_eq!(t.class(), TopoClass::UniRegular { h: 4 });
        assert_eq!(t.n_servers(), 16);
        assert_eq!(t.h_max(), 4);
        assert_eq!(t.switches_with_servers(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn bi_regular_classification() {
        let t = ring_topo(vec![4, 0, 4, 0]).unwrap();
        assert_eq!(t.class(), TopoClass::BiRegular { h: 4 });
        assert_eq!(t.switches_with_servers(), vec![0, 2]);
    }

    #[test]
    fn near_uni_regular_classification() {
        let t = ring_topo(vec![4, 5, 4, 5]).unwrap();
        assert_eq!(
            t.class(),
            TopoClass::NearUniRegular { h_min: 4, h_max: 5 }
        );
    }

    #[test]
    fn irregular_classification() {
        let t = ring_topo(vec![1, 7, 1, 1]).unwrap();
        assert_eq!(t.class(), TopoClass::Irregular);
        let t = ring_topo(vec![0, 7, 5, 5]).unwrap();
        assert_eq!(t.class(), TopoClass::Irregular);
    }

    #[test]
    fn rejects_no_servers() {
        assert_eq!(ring_topo(vec![0, 0, 0, 0]).unwrap_err(), ModelError::NoServers);
    }

    #[test]
    fn rejects_mismatched_lengths() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]).unwrap();
        let err = Topology::new(g, vec![1, 1], "bad").unwrap_err();
        assert!(matches!(err, ModelError::ServerCountMismatch { .. }));
    }

    #[test]
    fn used_ports_counts_links_and_servers() {
        let t = ring_topo(vec![4, 4, 4, 4]).unwrap();
        // Each ring switch: 2 links + 4 servers.
        assert_eq!(t.used_ports(0), 6.0);
    }

    #[test]
    fn h_mean_ignores_serverless() {
        let t = ring_topo(vec![4, 0, 2, 0]).unwrap();
        assert_eq!(t.h_mean(), 3.0);
    }
}
