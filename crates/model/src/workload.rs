//! Workload generators beyond the worst case.
//!
//! The paper evaluates worst-case (maximal-permutation) traffic; real
//! fabrics also see structured loads. These generators produce
//! hose-feasible switch-level matrices for the workloads datacenter
//! papers commonly exercise:
//!
//! * [`stride_permutation`] — switch `i` sends to switch `i + s`
//!   (classic HPC stride; stresses structured topologies).
//! * [`hotspot`] — a fraction of every switch's rate converges on a few
//!   hot destinations, the rest spread all-to-all.
//! * [`locality_mix`] — a tunable blend of near (graph-neighbor) and far
//!   (random-permutation) traffic, the knob used in rack-locality studies.
//! * [`elephant_mice`] — a few switch pairs at (near) full rate, the rest
//!   a low-rate all-to-all background.
//!
//! All generators saturate at most the hose rate `H_u` per switch and
//! validate through [`TrafficMatrix::new`], so every output is admissible
//! by construction (§2.1's hose model). Randomized generators take a
//! caller-seeded `&mut impl Rng` — same seed, same matrix, on any thread
//! count — so sweeps over workloads stay reproducible and cacheable.

use crate::{Demand, ModelError, TopoClass, Topology, TrafficMatrix};
use rand::seq::SliceRandom;
use rand::Rng;

/// Stride permutation: the switch with index `i` (within the server-
/// hosting set, sorted by id) sends its full hose rate to index
/// `(i + stride) mod |K|`. `stride` must not be a multiple of `|K|`.
pub fn stride_permutation(topo: &Topology, stride: usize) -> Result<TrafficMatrix, ModelError> {
    let k = topo.switches_with_servers();
    if k.len() < 2 || stride.is_multiple_of(k.len()) {
        return Err(ModelError::InfeasibleParams(format!(
            "stride {stride} degenerate for {} switches",
            k.len()
        )));
    }
    let pairs: Vec<(u32, u32)> = (0..k.len())
        .map(|i| (k[i], k[(i + stride) % k.len()]))
        .collect();
    TrafficMatrix::permutation(topo, &pairs)
}

/// Hotspot: every switch sends `hot_fraction` of its rate, split equally,
/// to `n_hot` randomly chosen hot switches (excluding itself), and the
/// remainder all-to-all. Receivers' hose constraints are respected by
/// scaling the hot component so no hot switch is overrun.
pub fn hotspot<R: Rng>(
    topo: &Topology,
    n_hot: usize,
    hot_fraction: f64,
    rng: &mut R,
) -> Result<TrafficMatrix, ModelError> {
    let k = topo.switches_with_servers();
    if n_hot == 0 || n_hot >= k.len() || !(0.0..=1.0).contains(&hot_fraction) {
        return Err(ModelError::InfeasibleParams(format!(
            "hotspot needs 0 < n_hot < |K| and fraction in [0,1] (n_hot={n_hot})"
        )));
    }
    let mut hot = k.clone();
    hot.shuffle(rng);
    hot.truncate(n_hot);
    let hot_set: std::collections::HashSet<u32> = hot.iter().copied().collect();
    // Cap the hot component so each hot switch receives at most its H:
    // total hot volume = hot_fraction * (N - overlap...) <= n_hot * H_min.
    let total_rate: f64 = k.iter().map(|&u| topo.servers_at(u) as f64).sum();
    let hot_rx_cap: f64 = hot.iter().map(|&u| topo.servers_at(u) as f64).sum();
    let hot_scale = (hot_rx_cap / (hot_fraction * total_rate)).min(1.0);
    let mut demands = Vec::new();
    for &u in &k {
        let rate = topo.servers_at(u) as f64;
        let hot_targets: Vec<u32> = hot.iter().copied().filter(|&v| v != u).collect();
        let hot_amt = rate * hot_fraction * hot_scale;
        if !hot_targets.is_empty() && hot_amt > 0.0 {
            let each = hot_amt / hot_targets.len() as f64;
            for &v in &hot_targets {
                demands.push(Demand {
                    src: u,
                    dst: v,
                    amount: each,
                });
            }
        }
        // Background all-to-all over non-hot switches.
        let cold: Vec<u32> = k
            .iter()
            .copied()
            .filter(|&v| v != u && !hot_set.contains(&v))
            .collect();
        let cold_amt = rate * (1.0 - hot_fraction);
        if !cold.is_empty() && cold_amt > 0.0 {
            let each = cold_amt / cold.len() as f64;
            for &v in &cold {
                demands.push(Demand {
                    src: u,
                    dst: v,
                    amount: each,
                });
            }
        }
    }
    // Merge duplicates (a switch can be both hot target and background
    // source endpoint across iterations — dedupe defensively).
    let tm = TrafficMatrix::new(topo, merge(demands))?;
    tm.check_hose(topo)?;
    Ok(tm)
}

/// Locality mix: fraction `near` of each switch's rate goes to a random
/// graph neighbor, the rest follows a random far permutation.
pub fn locality_mix<R: Rng>(
    topo: &Topology,
    near: f64,
    rng: &mut R,
) -> Result<TrafficMatrix, ModelError> {
    if !(0.0..=1.0).contains(&near) {
        return Err(ModelError::InfeasibleParams(format!(
            "near fraction {near} outside [0,1]"
        )));
    }
    let far = TrafficMatrix::random_permutation(topo, rng)?;
    let mut demands: Vec<Demand> = far
        .demands()
        .iter()
        .map(|d| Demand {
            amount: d.amount * (1.0 - near),
            ..*d
        })
        .filter(|d| d.amount > 0.0)
        .collect();
    if near > 0.0 {
        for &u in &topo.switches_with_servers() {
            let nbrs: Vec<u32> = topo
                .graph()
                .neighbors(u)
                .map(|(v, _)| v)
                .filter(|&v| topo.servers_at(v) > 0)
                .collect();
            if let Some(&v) = nbrs.as_slice().choose(rng) {
                demands.push(Demand {
                    src: u,
                    dst: v,
                    amount: topo.servers_at(u) as f64 * near,
                });
            }
        }
    }
    // Neighbor choices may collide on receivers; scale down to hose
    // feasibility rather than reject.
    let mut tm = TrafficMatrix::new(topo, merge(demands))?;
    if tm.check_hose(topo).is_err() {
        // Worst possible rx overload factor: every in-neighbor picked us.
        let max_deg = (0..topo.n_switches() as u32)
            .map(|u| topo.graph().degree(u))
            .max()
            .unwrap_or(1) as f64;
        tm = tm.scaled(1.0 / max_deg);
        tm.check_hose(topo)?;
    }
    Ok(tm)
}

/// Elephants and mice: `n_elephants` random disjoint pairs exchange
/// `elephant_fraction` of their hose rate; every switch also spreads a
/// thin all-to-all background with the remainder.
pub fn elephant_mice<R: Rng>(
    topo: &Topology,
    n_elephants: usize,
    elephant_fraction: f64,
    rng: &mut R,
) -> Result<TrafficMatrix, ModelError> {
    let k = topo.switches_with_servers();
    if n_elephants * 2 > k.len() || !(0.0..=1.0).contains(&elephant_fraction) {
        return Err(ModelError::InfeasibleParams(format!(
            "{n_elephants} elephant pairs need {} switches",
            n_elephants * 2
        )));
    }
    let mut pool = k.clone();
    pool.shuffle(rng);
    let mut demands = Vec::new();
    for i in 0..n_elephants {
        let (u, v) = (pool[2 * i], pool[2 * i + 1]);
        let amt = topo.servers_at(u).min(topo.servers_at(v)) as f64 * elephant_fraction;
        demands.push(Demand { src: u, dst: v, amount: amt });
        demands.push(Demand { src: v, dst: u, amount: amt });
    }
    for &u in &k {
        let others: Vec<u32> = k.iter().copied().filter(|&v| v != u).collect();
        let amt = topo.servers_at(u) as f64 * (1.0 - elephant_fraction);
        let each = amt / others.len() as f64;
        if each > 0.0 {
            for &v in &others {
                demands.push(Demand { src: u, dst: v, amount: each });
            }
        }
    }
    let tm = TrafficMatrix::new(topo, merge(demands))?;
    tm.check_hose(topo)?;
    Ok(tm)
}

/// Merges duplicate (src, dst) entries by summing amounts, dropping zeros.
fn merge(demands: Vec<Demand>) -> Vec<Demand> {
    let mut acc: std::collections::HashMap<(u32, u32), f64> = std::collections::HashMap::new();
    for d in demands {
        *acc.entry((d.src, d.dst)).or_insert(0.0) += d.amount;
    }
    let mut out: Vec<Demand> = acc
        .into_iter()
        .filter(|&(_, a)| a > 0.0)
        .map(|((src, dst), amount)| Demand { src, dst, amount })
        .collect();
    out.sort_by_key(|d| (d.src, d.dst));
    out
}

/// Convenience: is this topology's workload regime uniform-H? Some
/// workloads only make sense there.
pub fn is_uniform_h(topo: &Topology) -> bool {
    matches!(topo.class(), TopoClass::UniRegular { .. } | TopoClass::BiRegular { .. })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_graph::Graph;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ring(n: usize, h: u32) -> Topology {
        let edges: Vec<(u32, u32)> = (0..n as u32).map(|i| (i, (i + 1) % n as u32)).collect();
        let g = Graph::from_edges(n, &edges).unwrap();
        Topology::new(g, vec![h; n], "ring").unwrap()
    }

    #[test]
    fn stride_is_saturated_permutation() {
        let t = ring(8, 3);
        let tm = stride_permutation(&t, 3).unwrap();
        assert!(tm.is_permutation(&t));
        assert_eq!(tm.len(), 8);
        assert!((tm.total() - 24.0).abs() < 1e-9);
        tm.check_hose(&t).unwrap();
    }

    #[test]
    fn stride_zero_rejected() {
        let t = ring(8, 3);
        assert!(stride_permutation(&t, 0).is_err());
        assert!(stride_permutation(&t, 8).is_err());
        assert!(stride_permutation(&t, 16).is_err());
    }

    #[test]
    fn hotspot_is_hose_feasible_and_skewed() {
        let t = ring(12, 4);
        let mut rng = StdRng::seed_from_u64(1);
        let tm = hotspot(&t, 2, 0.7, &mut rng).unwrap();
        tm.check_hose(&t).unwrap();
        // Receive volume at hot switches must dominate a cold switch's.
        let mut rx = [0.0f64; 12];
        for d in tm.demands() {
            rx[d.dst as usize] += d.amount;
        }
        let max_rx = rx.iter().cloned().fold(0.0, f64::max);
        let min_rx = rx.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(max_rx > 1.5 * min_rx, "not skewed: {max_rx} vs {min_rx}");
    }

    #[test]
    fn hotspot_rejects_degenerate() {
        let t = ring(6, 2);
        let mut rng = StdRng::seed_from_u64(2);
        assert!(hotspot(&t, 0, 0.5, &mut rng).is_err());
        assert!(hotspot(&t, 6, 0.5, &mut rng).is_err());
        assert!(hotspot(&t, 2, 1.5, &mut rng).is_err());
    }

    #[test]
    fn locality_mix_extremes() {
        let t = ring(10, 2);
        let mut rng = StdRng::seed_from_u64(3);
        // Pure far: just a permutation.
        let far = locality_mix(&t, 0.0, &mut rng).unwrap();
        assert!(far.is_permutation(&t));
        // Pure near: all demands to graph neighbors.
        let near = locality_mix(&t, 1.0, &mut rng).unwrap();
        near.check_hose(&t).unwrap();
        for d in near.demands() {
            assert!(
                t.graph().neighbors(d.src).any(|(v, _)| v == d.dst),
                "non-neighbor demand {d:?}"
            );
        }
    }

    #[test]
    fn elephant_mice_structure() {
        let t = ring(12, 4);
        let mut rng = StdRng::seed_from_u64(4);
        let tm = elephant_mice(&t, 3, 0.8, &mut rng).unwrap();
        tm.check_hose(&t).unwrap();
        // Largest demand: an elephant at 0.8 * H = 3.2 plus its share of
        // the background (0.2 * 4 / 11) merged into the same entry.
        let max = tm.demands().iter().map(|d| d.amount).fold(0.0, f64::max);
        assert!((max - (3.2 + 0.8 / 11.0)).abs() < 1e-9, "max demand {max}");
        assert!(tm.len() > 6, "mice background missing");
    }

    #[test]
    fn elephant_mice_rejects_too_many_pairs() {
        let t = ring(6, 2);
        let mut rng = StdRng::seed_from_u64(5);
        assert!(elephant_mice(&t, 4, 0.5, &mut rng).is_err());
    }

    #[test]
    fn uniform_h_detection() {
        assert!(is_uniform_h(&ring(4, 2)));
    }
}
