//! Incremental expansion by random rewiring, as used by Jellyfish and
//! Xpander (§5.1 and Figure A.4 of the paper).
//!
//! To add a switch with `r` network ports: pick `r/2` random existing
//! links `(x, y)` whose endpoints are not yet adjacent to the new switch,
//! remove each, and connect both freed ports to the new switch. Each
//! rewire preserves the degree of all existing switches and gives the new
//! switch `r` (or `r - 1`, when `r` is odd) links.
//!
//! Expansion steps are driven by the caller's RNG, so a growth trajectory
//! is a pure function of (initial topology, seed): the expansion-ensemble
//! experiments in `dcn-core` replay trajectories deterministically under
//! any pool width, and each intermediate fabric's throughput solve is
//! individually cacheable by content. Link selection retries are bounded;
//! infeasible expansion parameters return an error instead of looping.

use dcn_graph::Graph;
use dcn_model::{ModelError, Topology};
use rand::Rng;
use std::collections::HashSet;

/// Expands `topo` by `added_switches`, each wired by random rewiring and
/// hosting `h` servers. Returns the expanded topology; the original switch
/// ids are preserved and new switches get ids `n, n+1, ...`.
pub fn expand_by_rewiring<R: Rng>(
    topo: &Topology,
    added_switches: usize,
    h: u32,
    rng: &mut R,
) -> Result<Topology, ModelError> {
    let mut edges: Vec<(u32, u32)> = topo.graph().edges().to_vec();
    let mut servers = topo.servers().to_vec();
    let n0 = topo.n_switches();
    // Network degree of the new switches mirrors the existing ones: use the
    // maximum degree in the current graph (uniform for uni-regular designs).
    let r = (0..n0 as u32)
        .map(|u| topo.graph().degree(u))
        .max()
        .ok_or_else(|| ModelError::InfeasibleParams("empty topology".into()))?;
    if r < 2 {
        return Err(ModelError::InfeasibleParams(
            "expansion needs network degree >= 2".into(),
        ));
    }
    let mut adj: Vec<HashSet<u32>> = vec![HashSet::new(); n0 + added_switches];
    for &(u, v) in &edges {
        adj[u as usize].insert(v);
        adj[v as usize].insert(u);
    }
    for k in 0..added_switches {
        let w = (n0 + k) as u32;
        let rewires = r / 2;
        let mut done = 0;
        let mut attempts = 0;
        while done < rewires {
            attempts += 1;
            if attempts > 10_000 {
                return Err(ModelError::InfeasibleParams(format!(
                    "random rewiring failed to attach switch {w}"
                )));
            }
            let idx = rng.gen_range(0..edges.len());
            let (x, y) = edges[idx];
            if x == w
                || y == w
                || adj[w as usize].contains(&x)
                || adj[w as usize].contains(&y)
            {
                continue;
            }
            // Remove (x, y); add (w, x) and (w, y).
            edges.swap_remove(idx);
            adj[x as usize].remove(&y);
            adj[y as usize].remove(&x);
            edges.push((w, x));
            edges.push((w, y));
            adj[w as usize].insert(x);
            adj[w as usize].insert(y);
            adj[x as usize].insert(w);
            adj[y as usize].insert(w);
            done += 1;
        }
        servers.push(h);
    }
    let g = Graph::from_edges(n0 + added_switches, &edges)?;
    if !g.is_connected() {
        return Err(ModelError::InfeasibleParams(
            "expansion produced a disconnected graph (retry with another seed)".into(),
        ));
    }
    let name = format!("{}-exp{}", topo.name(), added_switches);
    Topology::new(g, servers, name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jellyfish;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn expansion_preserves_degrees() {
        let mut rng = StdRng::seed_from_u64(21);
        let t = jellyfish(40, 6, 8, &mut rng).unwrap();
        let e = expand_by_rewiring(&t, 10, 8, &mut rng).unwrap();
        assert_eq!(e.n_switches(), 50);
        assert_eq!(e.n_servers(), 50 * 8);
        for u in 0..50u32 {
            assert_eq!(e.graph().degree(u), 6, "switch {u}");
        }
        assert!(e.graph().is_connected());
    }

    #[test]
    fn expansion_keeps_simple_graph() {
        let mut rng = StdRng::seed_from_u64(22);
        let t = jellyfish(30, 5, 4, &mut rng).unwrap();
        let e = expand_by_rewiring(&t, 6, 4, &mut rng).unwrap();
        let mut seen = std::collections::HashSet::new();
        for &(u, v) in e.graph().edges() {
            assert_ne!(u, v);
            let key = if u < v { (u, v) } else { (v, u) };
            assert!(seen.insert(key));
        }
    }

    #[test]
    fn odd_degree_leaves_one_port_free() {
        let mut rng = StdRng::seed_from_u64(23);
        let t = jellyfish(30, 5, 4, &mut rng).unwrap();
        let e = expand_by_rewiring(&t, 2, 4, &mut rng).unwrap();
        // New switches get 2 * floor(5/2) = 4 links.
        assert_eq!(e.graph().degree(30), 4);
        assert_eq!(e.graph().degree(31), 4);
    }

    #[test]
    fn zero_added_is_identity() {
        let mut rng = StdRng::seed_from_u64(24);
        let t = jellyfish(20, 4, 4, &mut rng).unwrap();
        let e = expand_by_rewiring(&t, 0, 4, &mut rng).unwrap();
        assert_eq!(e.graph().edges(), t.graph().edges());
    }
}
