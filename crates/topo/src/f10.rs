//! F10: the fault-tolerant AB fat-tree (Liu et al., NSDI'13).
//!
//! Same switch inventory as the 3-tier k-ary fat-tree, but pods alternate
//! between two core-striping patterns:
//!
//! * **A-pods** (even index): aggregation switch `a` connects to core row
//!   `a` — cores `(a, c)` for all `c` (the classic fat-tree striping).
//! * **B-pods** (odd index): aggregation switch `a` connects to core
//!   *column* `a` — cores `(g, a)` for all `g` (the transposed striping).
//!
//! The alternation gives every core two kinds of pods one hop away, which
//! is what shortens F10's failure re-routing detours. Capacity-wise the
//! fabric is a rearrangeably non-blocking Clos, and the paper conjectures
//! (§4.1) that F10 retains full throughput — `tub` confirms the bound is
//! 1 on every instance here.

use dcn_graph::Graph;
use dcn_model::{ModelError, Topology};

/// Builds a 3-tier F10 AB fat-tree from radix-`k` switches
/// (`k` even, >= 4): `k` pods of `k/2` edge + `k/2` aggregation switches,
/// `(k/2)^2` cores, `k^3/4` servers.
pub fn f10(k: usize) -> Result<Topology, ModelError> {
    if k < 4 || !k.is_multiple_of(2) {
        return Err(ModelError::InfeasibleParams(format!(
            "f10 needs even k >= 4 (got {k})"
        )));
    }
    let half = k / 2;
    let n_edge = k * half;
    let n_agg = k * half;
    let n_core = half * half;
    let n = n_edge + n_agg + n_core;
    let edge_id = |pod: usize, i: usize| (pod * half + i) as u32;
    let agg_id = |pod: usize, a: usize| (n_edge + pod * half + a) as u32;
    let core_id = |row: usize, col: usize| (n_edge + n_agg + row * half + col) as u32;
    let mut edges = Vec::with_capacity(n_edge * half * 2);
    for pod in 0..k {
        for i in 0..half {
            for a in 0..half {
                edges.push((edge_id(pod, i), agg_id(pod, a)));
            }
        }
        let type_a = pod % 2 == 0;
        for a in 0..half {
            for c in 0..half {
                let core = if type_a {
                    core_id(a, c) // classic striping
                } else {
                    core_id(c, a) // transposed striping
                };
                edges.push((agg_id(pod, a), core));
            }
        }
    }
    let mut servers = vec![0u32; n];
    for s in servers.iter_mut().take(n_edge) {
        *s = half as u32;
    }
    let graph = Graph::from_edges(n, &edges)?;
    Topology::new(graph, servers, format!("f10-k{k}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fat_tree;
    use dcn_model::TopoClass;

    #[test]
    fn same_inventory_as_fat_tree() {
        let f = f10(4).unwrap();
        let ft = fat_tree(4).unwrap();
        assert_eq!(f.n_switches(), ft.n_switches());
        assert_eq!(f.n_servers(), ft.n_servers());
        assert_eq!(f.graph().m(), ft.graph().m());
        assert_eq!(f.class(), TopoClass::BiRegular { h: 2 });
    }

    #[test]
    fn all_ports_used_exactly() {
        let k = 6;
        let f = f10(k).unwrap();
        for u in 0..f.n_switches() as u32 {
            assert_eq!(f.used_ports(u), k as f64, "switch {u}");
        }
        assert!(f.graph().is_connected());
    }

    #[test]
    fn ab_pods_stripe_differently() {
        let k = 4;
        let f = f10(k).unwrap();
        let half = k / 2;
        let n_edge = k * half;
        let agg = |pod: usize, a: usize| (n_edge + pod * half + a) as u32;
        // Cores of agg 0 in pod 0 (A) vs pod 1 (B) must differ.
        let cores = |sw: u32| -> Vec<u32> {
            let mut v: Vec<u32> = f
                .graph()
                .neighbors(sw)
                .map(|(x, _)| x)
                .filter(|&x| x as usize >= 2 * n_edge)
                .collect();
            v.sort();
            v
        };
        assert_ne!(cores(agg(0, 0)), cores(agg(1, 0)));
        // But pods of the same type stripe identically.
        assert_eq!(cores(agg(0, 0)), cores(agg(2, 0)));
    }

    #[test]
    fn odd_k_rejected() {
        assert!(f10(5).is_err());
        assert!(f10(2).is_err());
    }
}
