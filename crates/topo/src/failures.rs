//! Random link-failure injection (Figure 10 of the paper).
//!
//! §6's resilience experiments degrade a fabric by failing a uniformly
//! random fraction of switch-to-switch links, then re-solve throughput on
//! the survivor. Sampling is driven entirely by the caller's RNG: the
//! resilience sweeps in `dcn-core` derive one seed per (fraction, trial)
//! pair via `dcn_exec::task_seed`, which keeps every trial independent of
//! pool scheduling — the failed-link set for trial `t` is identical at
//! `DCN_EXEC_THREADS=1` and `=64`. Samples that would partition the
//! fabric are retried a bounded number of times and then reported as an
//! error (a partitioned fabric has throughput zero, not merely reduced),
//! so callers never spin unbudgeted.

use dcn_model::{ModelError, Topology};
use rand::seq::SliceRandom;
use rand::Rng;

/// Fails a uniformly random fraction `f` of switch-to-switch links.
///
/// Returns the degraded topology. If removing the sampled links would
/// disconnect the fabric, the sample is retried a few times; persistent
/// disconnection is reported as an error so callers can distinguish
/// "degraded" from "partitioned" — the throughput of a partitioned
/// topology is zero, not merely reduced.
pub fn fail_random_links<R: Rng>(
    topo: &Topology,
    fraction: f64,
    rng: &mut R,
) -> Result<Topology, ModelError> {
    if !(0.0..1.0).contains(&fraction) {
        return Err(ModelError::InfeasibleParams(format!(
            "failure fraction must be in [0, 1) (got {fraction})"
        )));
    }
    let m = topo.graph().m();
    let n_fail = (m as f64 * fraction).round() as usize;
    if n_fail == 0 {
        return Ok(topo.clone().renamed(format!("{}-f0", topo.name())));
    }
    let mut ids: Vec<u32> = (0..m as u32).collect();
    for _attempt in 0..16 {
        ids.shuffle(rng);
        let removed = &ids[..n_fail];
        let g = topo.graph().without_edges(removed);
        if g.is_connected() {
            let name = format!("{}-f{:.2}", topo.name(), fraction);
            return topo.with_graph(g).map(|t| t.renamed(name));
        }
    }
    Err(ModelError::InfeasibleParams(format!(
        "failing {:.1}% of links disconnects the topology",
        fraction * 100.0
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jellyfish;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn fails_requested_fraction() {
        let mut rng = StdRng::seed_from_u64(31);
        let t = jellyfish(60, 8, 8, &mut rng).unwrap();
        let m0 = t.graph().m();
        let d = fail_random_links(&t, 0.1, &mut rng).unwrap();
        assert_eq!(d.graph().m(), m0 - (m0 as f64 * 0.1).round() as usize);
        assert!(d.graph().is_connected());
        assert_eq!(d.n_servers(), t.n_servers());
    }

    #[test]
    fn zero_fraction_is_identity() {
        let mut rng = StdRng::seed_from_u64(32);
        let t = jellyfish(20, 4, 4, &mut rng).unwrap();
        let d = fail_random_links(&t, 0.0, &mut rng).unwrap();
        assert_eq!(d.graph().m(), t.graph().m());
    }

    #[test]
    fn out_of_range_fraction_rejected() {
        let mut rng = StdRng::seed_from_u64(33);
        let t = jellyfish(20, 4, 4, &mut rng).unwrap();
        assert!(fail_random_links(&t, 1.0, &mut rng).is_err());
        assert!(fail_random_links(&t, -0.1, &mut rng).is_err());
    }

    #[test]
    fn heavy_failure_on_sparse_ring_reports_disconnection() {
        // A 3-regular graph on few nodes loses connectivity quickly at 60%.
        let mut rng = StdRng::seed_from_u64(34);
        let t = jellyfish(10, 3, 2, &mut rng).unwrap();
        // Not guaranteed to disconnect, but must either succeed connected
        // or report the partition — never return a disconnected topology.
        if let Ok(d) = fail_random_links(&t, 0.6, &mut rng) { assert!(d.graph().is_connected()) }
    }
}

/// Fails `count` whole switches chosen uniformly at random: all their
/// links are removed and their servers are lost (a rack or line-card
/// failure, the correlated-failure case the paper's introduction
/// motivates placement flexibility with).
///
/// Server-hosting switches can be excluded (fail only spine/core) with
/// `serverless_only`. Errors if the survivors are disconnected or no
/// servers remain.
pub fn fail_random_switches<R: Rng>(
    topo: &Topology,
    count: usize,
    serverless_only: bool,
    rng: &mut R,
) -> Result<Topology, ModelError> {
    let n = topo.n_switches();
    let mut candidates: Vec<u32> = (0..n as u32)
        .filter(|&u| !serverless_only || topo.servers_at(u) == 0)
        .collect();
    if count > candidates.len() {
        return Err(ModelError::InfeasibleParams(format!(
            "cannot fail {count} of {} candidate switches",
            candidates.len()
        )));
    }
    for _attempt in 0..16 {
        candidates.shuffle(rng);
        let dead: std::collections::HashSet<u32> =
            candidates[..count].iter().copied().collect();
        let removed: Vec<u32> = topo
            .graph()
            .edges()
            .iter()
            .enumerate()
            .filter(|(_, &(u, v))| dead.contains(&u) || dead.contains(&v))
            .map(|(e, _)| e as u32)
            .collect();
        let g = topo.graph().without_edges(&removed);
        let mut servers = topo.servers().to_vec();
        for &u in &dead {
            servers[u as usize] = 0;
        }
        if servers.iter().all(|&s| s == 0) {
            continue;
        }
        // Connectivity among the survivors (dead switches become isolated
        // vertices; ignore them in the check).
        let alive: Vec<u32> = (0..n as u32).filter(|u| !dead.contains(u)).collect();
        if alive.is_empty() {
            continue;
        }
        let dist = g.bfs_distances(alive[0]);
        if alive.iter().all(|&u| dist[u as usize] != u16::MAX) {
            let name = format!("{}-sw{count}", topo.name());
            return Topology::new(g, servers, name);
        }
    }
    Err(ModelError::InfeasibleParams(format!(
        "failing {count} switches disconnects the survivors"
    )))
}

/// Fails a contiguous block of switch ids `[start, start + len)` — a pod,
/// power domain, or FatClique block, which occupy contiguous id ranges in
/// every generator of this workspace.
pub fn fail_switch_range(
    topo: &Topology,
    start: usize,
    len: usize,
) -> Result<Topology, ModelError> {
    let n = topo.n_switches();
    // checked_add: `start + len` must not wrap for adversarial usize inputs.
    if start.checked_add(len).is_none_or(|end| end > n) || len == 0 {
        return Err(ModelError::InfeasibleParams(format!(
            "range {start}+{len} out of bounds for {n} switches"
        )));
    }
    let dead: std::collections::HashSet<u32> =
        (start as u32..(start + len) as u32).collect();
    let removed: Vec<u32> = topo
        .graph()
        .edges()
        .iter()
        .enumerate()
        .filter(|(_, &(u, v))| dead.contains(&u) || dead.contains(&v))
        .map(|(e, _)| e as u32)
        .collect();
    let g = topo.graph().without_edges(&removed);
    let mut servers = topo.servers().to_vec();
    for &u in &dead {
        servers[u as usize] = 0;
    }
    if servers.iter().all(|&s| s == 0) {
        return Err(ModelError::NoServers);
    }
    let alive: Vec<u32> = (0..n as u32).filter(|u| !dead.contains(u)).collect();
    let dist = g.bfs_distances(alive[0]);
    if !alive.iter().all(|&u| dist[u as usize] != u16::MAX) {
        return Err(ModelError::InfeasibleParams(
            "range failure disconnects the survivors".into(),
        ));
    }
    Topology::new(g, servers, format!("{}-blk{start}+{len}", topo.name()))
}

#[cfg(test)]
mod switch_failure_tests {
    use super::*;
    use crate::{fat_tree, jellyfish};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn switch_failures_remove_links_and_servers() {
        let mut rng = StdRng::seed_from_u64(41);
        let t = jellyfish(40, 8, 4, &mut rng).unwrap();
        let d = fail_random_switches(&t, 4, false, &mut rng).unwrap();
        assert_eq!(d.n_switches(), 40); // ids preserved, now isolated
        assert_eq!(d.n_servers(), (40 - 4) * 4);
        assert!(d.graph().m() < t.graph().m());
    }

    #[test]
    fn serverless_only_preserves_servers() {
        let t = fat_tree(4).unwrap();
        let mut rng = StdRng::seed_from_u64(43);
        let d = fail_random_switches(&t, 2, true, &mut rng).unwrap();
        assert_eq!(d.n_servers(), t.n_servers());
    }

    #[test]
    fn too_many_failures_rejected() {
        let mut rng = StdRng::seed_from_u64(44);
        let t = jellyfish(10, 4, 2, &mut rng).unwrap();
        assert!(fail_random_switches(&t, 11, false, &mut rng).is_err());
    }

    #[test]
    fn pod_failure_on_fat_tree() {
        // Fat-tree k=4: edge switches 0..8 (pods of 2); kill pod 0's edges.
        let t = fat_tree(4).unwrap();
        let d = fail_switch_range(&t, 0, 2).unwrap();
        assert_eq!(d.n_servers(), 16 - 4);
        // The rest of the fabric still works at full throughput for its
        // surviving servers (spines intact).
        assert!(d.graph().m() < t.graph().m());
    }

    #[test]
    fn bad_ranges_rejected() {
        let t = fat_tree(4).unwrap();
        assert!(fail_switch_range(&t, 18, 5).is_err());
        assert!(fail_switch_range(&t, 0, 0).is_err());
    }
}
