//! SlimFly: diameter-2 topologies from McKay–Miller–Širáň (MMS) graphs
//! (Besta & Hoefler, SC'14).
//!
//! For a prime `q ≡ 1 (mod 4)` with primitive element `ξ` of `GF(q)`:
//!
//! * Routers are `(s, x, y)` with side `s ∈ {0, 1}` and `x, y ∈ GF(q)` —
//!   `2q²` in total.
//! * Generator sets: `X = {ξ^0, ξ^2, …}` (the quadratic residues) and
//!   `X' = {ξ^1, ξ^3, …}` (the non-residues); both are symmetric because
//!   `-1` is a residue when `q ≡ 1 (mod 4)`.
//! * Intra-group links: `(0, x, y) ~ (0, x, y')` iff `y - y' ∈ X`;
//!   `(1, m, c) ~ (1, m, c')` iff `c - c' ∈ X'`.
//! * Cross links: `(0, x, y) ~ (1, m, c)` iff `y = m·x + c`.
//!
//! The result is `(3q-1)/2`-regular with diameter 2 and sits essentially
//! on the Moore bound — SlimFly's selling point. The paper (§7) notes tub
//! applies to SlimFly as a uni-regular design, while excluding it from
//! the evaluation because it cannot reach datacenter scale on commodity
//! radixes.

use dcn_graph::Graph;
use dcn_model::{ModelError, Topology};

/// Is `n` a prime? (Trial division; the `q` here are tiny.)
fn is_prime(n: u32) -> bool {
    if n < 2 {
        return false;
    }
    let mut d = 2u32;
    while d * d <= n {
        if n.is_multiple_of(d) {
            return false;
        }
        d += 1;
    }
    true
}

/// Smallest primitive root modulo prime `q`.
fn primitive_root(q: u32) -> u32 {
    let phi = q - 1;
    // Prime factors of phi.
    let mut factors = Vec::new();
    let mut m = phi;
    let mut d = 2u32;
    while d * d <= m {
        if m.is_multiple_of(d) {
            factors.push(d);
            while m.is_multiple_of(d) {
                m /= d;
            }
        }
        d += 1;
    }
    if m > 1 {
        factors.push(m);
    }
    'outer: for g in 2..q {
        for &f in &factors {
            if pow_mod(g as u64, phi / f, q) == 1 {
                continue 'outer;
            }
        }
        return g;
    }
    unreachable!("every prime has a primitive root");
}

fn pow_mod(mut b: u64, mut e: u32, q: u32) -> u32 {
    let m = q as u64;
    b %= m;
    let mut acc = 1u64;
    while e > 0 {
        if e & 1 == 1 {
            acc = acc * b % m;
        }
        b = b * b % m;
        e >>= 1;
    }
    acc as u32
}

/// Builds a SlimFly from prime `q ≡ 1 (mod 4)`, with `h` servers per
/// router. Routers: `2q²`; network degree: `(3q - 1) / 2`.
pub fn slimfly(q: u32, h: u32) -> Result<Topology, ModelError> {
    if !is_prime(q) || q % 4 != 1 {
        return Err(ModelError::InfeasibleParams(format!(
            "slimfly needs a prime q ≡ 1 (mod 4); got {q} \
             (try 5, 13, 17, 29, ...)"
        )));
    }
    let xi = primitive_root(q) as u64;
    let qq = q as u64;
    // Even and odd powers of ξ.
    let mut x_even = Vec::new();
    let mut x_odd = Vec::new();
    let mut p = 1u64;
    for i in 0..(q - 1) {
        if i % 2 == 0 {
            x_even.push(p as u32);
        } else {
            x_odd.push(p as u32);
        }
        p = p * xi % qq;
    }
    let in_even = {
        let mut v = vec![false; q as usize];
        for &e in &x_even {
            v[e as usize] = true;
        }
        v
    };
    let in_odd = {
        let mut v = vec![false; q as usize];
        for &e in &x_odd {
            v[e as usize] = true;
        }
        v
    };
    let n = 2 * (q * q) as usize;
    let id = |s: u32, x: u32, y: u32| -> u32 { s * q * q + x * q + y };
    let mut edges = Vec::new();
    // Intra-group links.
    for s in 0..2u32 {
        let gen = if s == 0 { &in_even } else { &in_odd };
        for x in 0..q {
            for y in 0..q {
                for y2 in (y + 1)..q {
                    let diff = ((y2 + q) - y) % q;
                    if gen[diff as usize] {
                        edges.push((id(s, x, y), id(s, x, y2)));
                    }
                }
            }
        }
    }
    // Cross links: (0, x, y) ~ (1, m, c) iff y = m x + c (mod q).
    for x in 0..q {
        for m in 0..q {
            for c in 0..q {
                let y = ((m as u64 * x as u64 + c as u64) % qq) as u32;
                edges.push((id(0, x, y), id(1, m, c)));
            }
        }
    }
    let graph = Graph::from_edges(n, &edges)?;
    let topo = Topology::new(graph, vec![h; n], format!("slimfly-q{q}-h{h}"))?;
    if !topo.graph().is_connected() {
        return Err(ModelError::InfeasibleParams(
            "slimfly instance disconnected (internal error)".into(),
        ));
    }
    Ok(topo)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn q5_structure() {
        let t = slimfly(5, 2).unwrap();
        assert_eq!(t.n_switches(), 50);
        assert_eq!(t.n_servers(), 100);
        // Degree (3q-1)/2 = 7 for every router.
        for u in 0..50u32 {
            assert_eq!(t.graph().degree(u), 7, "router {u}");
        }
        // The MMS(5) graph — the Hoffman–Singleton graph — meets the Moore
        // bound for degree 7: diameter 2 on 50 = 1 + 7 + 42 nodes.
        assert_eq!(t.graph().diameter(), 2);
    }

    #[test]
    fn q13_structure() {
        let t = slimfly(13, 4).unwrap();
        assert_eq!(t.n_switches(), 338);
        let deg = (3 * 13 - 1) / 2;
        for u in 0..338u32 {
            assert_eq!(t.graph().degree(u), deg as usize);
        }
        assert_eq!(t.graph().diameter(), 2);
    }

    #[test]
    fn invalid_q_rejected() {
        assert!(slimfly(4, 2).is_err()); // not prime
        assert!(slimfly(7, 2).is_err()); // 7 % 4 == 3
        assert!(slimfly(9, 2).is_err()); // prime power, not prime
        assert!(slimfly(2, 2).is_err());
    }

    #[test]
    fn primitive_roots_correct() {
        assert_eq!(primitive_root(5), 2);
        assert_eq!(primitive_root(13), 2);
        assert_eq!(primitive_root(17), 3);
        // Full order check for q = 13.
        let mut seen = std::collections::HashSet::new();
        let mut p = 1u64;
        for _ in 0..12 {
            seen.insert(p);
            p = p * 2 % 13;
        }
        assert_eq!(seen.len(), 12);
    }

    #[test]
    fn generator_sets_are_symmetric() {
        // -1 must be a quadratic residue for q ≡ 1 mod 4 (q = 13: -1 = 12
        // = 2^6 — an even power).
        let t = slimfly(13, 1).unwrap();
        // Symmetry is implied by the graph being well-formed (each
        // intra-link emitted once, from the smaller endpoint). Degree
        // splits as (q-1)/2 intra + q cross = 6 + 13 = 19 = (3q-1)/2;
        // the total edge count must match the handshake sum.
        let m = t.graph().m();
        assert_eq!(m, 338 * 19 / 2);
    }
}
