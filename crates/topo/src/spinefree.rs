//! Spine-free (pod-level) fabrics — §6 of the paper.
//!
//! In a spine-free datacenter [22], the top layer of a Clos is removed and
//! aggregation pods connect *directly* to each other; pods carry transit
//! traffic for other pods. At the pod level the fabric is effectively a
//! uni-regular topology whose "switches" are pods, whose `H` is the number
//! of servers per pod, and whose links are multi-link trunks — exactly the
//! regime the paper says tub can analyze (every quantity in Equation 1 is
//! capacity-weighted, so trunks are first-class here).
//!
//! Two inter-pod wirings are provided: a random regular trunk graph
//! (Jellyfish-at-pod-level) and a complete pod mesh. The random wiring
//! takes a caller-seeded RNG (the mesh is fully deterministic), so both
//! reproduce bit-identically from their parameters alone — pod-level
//! sweeps in the cost experiments cache and re-seed per configuration.

use dcn_graph::Graph;
use dcn_model::{ModelError, Topology};
use rand::Rng;

/// Parameters for a spine-free pod-level fabric.
#[derive(Debug, Clone, Copy)]
pub struct SpineFreeParams {
    /// Number of pods.
    pub pods: usize,
    /// Servers aggregated behind each pod.
    pub servers_per_pod: u32,
    /// Inter-pod trunk capacity (links per pod pair actually wired).
    pub trunk: f64,
    /// Pod-level degree: how many other pods each pod connects to.
    /// `pods - 1` gives the full mesh.
    pub degree: usize,
}

/// Builds a spine-free fabric as a pod-level topology. With
/// `degree == pods - 1` the wiring is the deterministic full mesh;
/// otherwise a random `degree`-regular pod graph is drawn from `rng`.
pub fn spinefree<R: Rng>(p: SpineFreeParams, rng: &mut R) -> Result<Topology, ModelError> {
    let SpineFreeParams {
        pods,
        servers_per_pod,
        trunk,
        degree,
    } = p;
    if pods < 2 || servers_per_pod == 0 || trunk <= 0.0 {
        return Err(ModelError::InfeasibleParams(format!(
            "spinefree needs pods >= 2, servers > 0, trunk > 0 (got {p:?})"
        )));
    }
    if degree >= pods {
        return Err(ModelError::InfeasibleParams(format!(
            "pod degree {degree} must be < pods {pods}"
        )));
    }
    let edges: Vec<(u32, u32, f64)> = if degree == pods - 1 {
        // Full mesh.
        let mut e = Vec::with_capacity(pods * (pods - 1) / 2);
        for i in 0..pods as u32 {
            for j in (i + 1)..pods as u32 {
                e.push((i, j, trunk));
            }
        }
        e
    } else {
        // Random regular pod graph via the Jellyfish generator, re-weighted.
        crate::check_regular_feasible(pods, degree)?;
        if degree < 3 {
            return Err(ModelError::InfeasibleParams(
                "random pod graphs need degree >= 3 (use the full mesh for tiny fabrics)"
                    .into(),
            ));
        }
        let base = crate::jellyfish(pods, degree, 1, rng)?;
        base.graph()
            .edges()
            .iter()
            .map(|&(u, v)| (u, v, trunk))
            .collect()
    };
    let graph = Graph::from_weighted_edges(pods, &edges)?;
    let name = format!(
        "spinefree-p{pods}-h{servers_per_pod}-t{trunk}-d{degree}"
    );
    Topology::new(graph, vec![servers_per_pod; pods], name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn full_mesh_structure() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = spinefree(
            SpineFreeParams {
                pods: 8,
                servers_per_pod: 64,
                trunk: 4.0,
                degree: 7,
            },
            &mut rng,
        )
        .unwrap();
        assert_eq!(t.n_switches(), 8);
        assert_eq!(t.n_servers(), 512);
        assert_eq!(t.graph().m(), 28);
        assert_eq!(t.graph().diameter(), 1);
        // Trunked capacity: total = 28 * 4.
        assert_eq!(t.e_links(), 112.0);
    }

    #[test]
    fn random_pod_graph_is_regular() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = spinefree(
            SpineFreeParams {
                pods: 16,
                servers_per_pod: 32,
                trunk: 2.0,
                degree: 5,
            },
            &mut rng,
        )
        .unwrap();
        for u in 0..16u32 {
            assert_eq!(t.graph().degree(u), 5);
        }
        assert!(t.graph().is_connected());
    }

    #[test]
    fn degenerate_params_rejected() {
        let mut rng = StdRng::seed_from_u64(3);
        let bad = |pods, servers_per_pod, trunk, degree| {
            spinefree(
                SpineFreeParams {
                    pods,
                    servers_per_pod,
                    trunk,
                    degree,
                },
                &mut StdRng::seed_from_u64(3),
            )
            .is_err()
        };
        assert!(bad(1, 8, 1.0, 0));
        assert!(bad(8, 0, 1.0, 3));
        assert!(bad(8, 8, 0.0, 3));
        assert!(bad(8, 8, 1.0, 8));
        assert!(bad(8, 8, 1.0, 2)); // degree < 3, not full mesh
        let _ = (&mut rng, bad);
    }
}
