//! Xpander: near-optimal expander topologies built by random lifts
//! (Valadarsky et al., CoNEXT'16).
//!
//! An Xpander with network degree `d` starts from the complete graph
//! `K_{d+1}` and replaces every vertex with a *meta-node* of `k` switches
//! (`k` = lift size). For every edge `(A, B)` of `K_{d+1}`, a uniformly
//! random perfect matching is placed between the `k` switches of meta-node
//! `A` and the `k` switches of meta-node `B`. Every switch therefore has
//! exactly one link into each of the other `d` meta-nodes, giving a
//! `d`-regular graph on `(d+1) * k` switches that is an expander with high
//! probability.
//!
//! The paper treats Xpander as the second uni-regular contender beside
//! Jellyfish (§4's cost frontier and §7's related-work discussion). The
//! lift matchings are drawn from the caller's RNG only, so a fixed seed
//! pins the exact wiring — the property the determinism suite and the
//! `dcn-cache` content keys both rely on.

use dcn_graph::Graph;
use dcn_model::{ModelError, Topology};
use rand::seq::SliceRandom;
use rand::Rng;

/// Generates an Xpander topology with `lift` switches per meta-node,
/// network degree `d_net` (so `d_net + 1` meta-nodes), and `h` servers per
/// switch. Total switches: `(d_net + 1) * lift`.
pub fn xpander<R: Rng>(
    lift: usize,
    d_net: usize,
    h: u32,
    rng: &mut R,
) -> Result<Topology, ModelError> {
    if lift == 0 || d_net < 2 {
        return Err(ModelError::InfeasibleParams(format!(
            "xpander needs lift >= 1 and d_net >= 2 (got lift={lift}, d_net={d_net})"
        )));
    }
    let meta = d_net + 1;
    let n = meta * lift;
    for _attempt in 0..8 {
        let mut edges: Vec<(u32, u32)> = Vec::with_capacity(n * d_net / 2);
        for a in 0..meta {
            for b in (a + 1)..meta {
                // Random perfect matching between meta-node a and meta-node b.
                let mut perm: Vec<usize> = (0..lift).collect();
                perm.shuffle(rng);
                for (i, &j) in perm.iter().enumerate() {
                    let u = (a * lift + i) as u32;
                    let v = (b * lift + j) as u32;
                    edges.push((u, v));
                }
            }
        }
        let g = Graph::from_edges(n, &edges)?;
        if g.is_connected() {
            let name = format!("xpander-l{lift}-d{d_net}-h{h}");
            return Topology::new(g, vec![h; n], name);
        }
    }
    Err(ModelError::InfeasibleParams(format!(
        "failed to build a connected xpander (lift={lift}, d_net={d_net})"
    )))
}

/// Number of switches an Xpander with the given lift and degree contains.
pub fn xpander_switches(lift: usize, d_net: usize) -> usize {
    (d_net + 1) * lift
}

/// Smallest lift size so that the Xpander holds at least `min_switches`
/// switches of degree `d_net`.
pub fn lift_for_switches(min_switches: usize, d_net: usize) -> usize {
    min_switches.div_ceil(d_net + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_model::TopoClass;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn regular_and_connected() {
        let mut rng = StdRng::seed_from_u64(11);
        let t = xpander(8, 7, 6, &mut rng).unwrap();
        assert_eq!(t.n_switches(), 64);
        for u in 0..64u32 {
            assert_eq!(t.graph().degree(u), 7);
        }
        assert!(t.graph().is_connected());
        assert_eq!(t.class(), TopoClass::UniRegular { h: 6 });
    }

    #[test]
    fn lift_one_is_complete_graph() {
        let mut rng = StdRng::seed_from_u64(12);
        let t = xpander(1, 4, 2, &mut rng).unwrap();
        assert_eq!(t.n_switches(), 5);
        assert_eq!(t.graph().m(), 10);
        assert_eq!(t.graph().diameter(), 1);
    }

    #[test]
    fn one_link_per_other_metanode() {
        let lift = 6;
        let d = 5;
        let mut rng = StdRng::seed_from_u64(13);
        let t = xpander(lift, d, 4, &mut rng).unwrap();
        for u in 0..t.n_switches() as u32 {
            let my_meta = u as usize / lift;
            let mut seen = std::collections::HashSet::new();
            for (v, _) in t.graph().neighbors(u) {
                let meta = v as usize / lift;
                assert_ne!(meta, my_meta, "intra-meta-node link at {u}");
                assert!(seen.insert(meta), "two links from {u} to meta {meta}");
            }
            assert_eq!(seen.len(), d);
        }
    }

    #[test]
    fn rejects_degenerate_params() {
        let mut rng = StdRng::seed_from_u64(14);
        assert!(xpander(0, 4, 2, &mut rng).is_err());
        assert!(xpander(4, 1, 2, &mut rng).is_err());
    }

    #[test]
    fn sizing_helpers() {
        assert_eq!(xpander_switches(8, 7), 64);
        assert_eq!(lift_for_switches(64, 7), 8);
        assert_eq!(lift_for_switches(65, 7), 9);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = xpander(5, 6, 4, &mut StdRng::seed_from_u64(9)).unwrap();
        let b = xpander(5, 6, 4, &mut StdRng::seed_from_u64(9)).unwrap();
        assert_eq!(a.graph().edges(), b.graph().edges());
    }
}
