//! Clos-family bi-regular topologies: the classic 3-tier k-ary fat-tree and
//! a generalized L-layer folded Clos with partial top-level deployment.
//!
//! The folded Clos is built recursively: a level-1 pod is a single leaf
//! switch with `r/2` servers and `r/2` uplinks; a level-`l` pod aggregates
//! `r/2` level-`(l-1)` pods through `(r/2)^(l-1)` spine switches using
//! port-striped wiring (sub-pod uplink `q` attaches to pod spine `q`).
//! The fabric joins `P <= r` top-level pods through a core layer in which
//! every core switch uses at most `r` ports. Setting `P = r` gives the
//! canonical fully-deployed fat-tree (`2 (r/2)^L` servers); smaller `P`
//! gives the "1/Pth Clos" instances used by the paper's cost experiments.
//! A `spine_uplink_fraction < 1` trims uplinks at the layer below the core,
//! producing an oversubscribed Clos (Table 5).

use dcn_graph::Graph;
use dcn_model::{ModelError, Topology};

/// Parameters for [`folded_clos`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClosParams {
    /// Switch radix (must be even, >= 4).
    pub radix: usize,
    /// Total layers including the core layer (>= 2).
    pub layers: usize,
    /// Top-level pods deployed (2..=radix). `radix` = fully deployed.
    pub top_pods: usize,
    /// Fraction of uplinks used at the layer below the core; 1.0 for a
    /// rearrangeably non-blocking Clos, 0.5 to halve spine capacity.
    pub spine_uplink_fraction: f64,
    /// Servers per leaf switch; 0 means the non-blocking default `radix/2`.
    /// Values above `radix/2` oversubscribe at the leaf stage (the common
    /// deployed form: e.g. `2 radix/3` gives a 1:2 oversubscribed Clos,
    /// Table 5 of the paper).
    pub leaf_servers: usize,
}

impl ClosParams {
    /// Fully-deployed non-blocking Clos.
    pub fn full(radix: usize, layers: usize) -> Self {
        ClosParams {
            radix,
            layers,
            top_pods: radix,
            spine_uplink_fraction: 1.0,
            leaf_servers: 0,
        }
    }

    /// Effective servers per leaf (applying the `radix/2` default).
    pub fn leaf_servers_eff(&self) -> usize {
        if self.leaf_servers == 0 {
            self.radix / 2
        } else {
            self.leaf_servers
        }
    }

    /// Leaf uplinks: `radix - leaf_servers`.
    pub fn leaf_uplinks(&self) -> usize {
        self.radix - self.leaf_servers_eff()
    }

    /// Servers hosted: `P * leaf_servers * (r/2)^(L-2)`
    /// (`P * (r/2)^(L-1)` for the non-blocking default).
    pub fn n_servers(&self) -> u64 {
        let half = (self.radix / 2) as u64;
        self.top_pods as u64
            * self.leaf_servers_eff() as u64
            * half.pow(self.layers as u32 - 2)
    }

    /// Switches in one level-`l` pod: `sw(1) = 1`,
    /// `sw(l) = (r/2) sw(l-1) + s_l` with `s_l = U1 (r/2)^(l-2)` pod
    /// spines (`U1` = leaf uplinks).
    pub fn pod_switches_of(&self, level: usize) -> u64 {
        let half = (self.radix / 2) as u64;
        let u1 = self.leaf_uplinks() as u64;
        let mut sw = 1u64;
        for l in 2..=level {
            sw = half * sw + u1 * half.pow(l as u32 - 2);
        }
        sw
    }

    /// [`Self::pod_switches_of`] with the non-blocking leaf default.
    pub fn pod_switches(radix: usize, level: usize) -> u64 {
        ClosParams::full(radix, level.max(2)).pod_switches_of(level)
    }

    /// Core switches, matching the builder's per-spine uplink rounding.
    pub fn n_cores(&self) -> u64 {
        let half = (self.radix / 2) as u64;
        let u_full = self.leaf_uplinks() as u64 * half.pow(self.layers as u32 - 2);
        let keep_denom = if self.layers == 2 {
            // 2-layer: the "spines below the core" are the leaves
            // themselves; trimming applies to leaf uplinks.
            self.leaf_uplinks() as u64
        } else {
            half
        };
        let keep = ((keep_denom as f64 * self.spine_uplink_fraction).round() as u64)
            .clamp(1, keep_denom);
        let u_used = u_full / keep_denom * keep;
        (u_used * self.top_pods as u64).div_ceil(self.radix as u64)
    }

    /// Total switches, including the core layer.
    pub fn n_switches(&self) -> u64 {
        let pods = self.top_pods as u64 * self.pod_switches_of(self.layers - 1);
        pods + self.n_cores()
    }
}

/// Builds an L-layer folded Clos. See [`ClosParams`].
pub fn folded_clos(p: ClosParams) -> Result<Topology, ModelError> {
    let ClosParams {
        radix,
        layers,
        top_pods,
        spine_uplink_fraction,
        leaf_servers: _,
    } = p;
    let leaf_srv = p.leaf_servers_eff();
    if radix < 4 || radix % 2 != 0 {
        return Err(ModelError::InfeasibleParams(format!(
            "clos radix must be even and >= 4 (got {radix})"
        )));
    }
    if layers < 2 {
        return Err(ModelError::InfeasibleParams(format!(
            "clos needs >= 2 layers (got {layers})"
        )));
    }
    if top_pods < 2 || top_pods > radix {
        return Err(ModelError::InfeasibleParams(format!(
            "top_pods must be in 2..=radix (got {top_pods}, radix {radix})"
        )));
    }
    if !(0.0..=1.0).contains(&spine_uplink_fraction) || spine_uplink_fraction <= 0.0 {
        return Err(ModelError::InfeasibleParams(format!(
            "spine_uplink_fraction must be in (0, 1] (got {spine_uplink_fraction})"
        )));
    }
    if leaf_srv == 0 || leaf_srv >= radix {
        return Err(ModelError::InfeasibleParams(format!(
            "leaf_servers must be in 1..radix (got {leaf_srv}, radix {radix})"
        )));
    }
    let half = radix / 2;
    let leaf_up = radix - leaf_srv;

    struct Pod {
        /// Uplink ports in striped order: the switch owning each port.
        uplinks: Vec<u32>,
    }
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut servers: Vec<u32> = Vec::new();
    let mut next_id = 0u32;
    let mut alloc = |servers: &mut Vec<u32>, s: u32| -> u32 {
        let id = next_id;
        next_id += 1;
        servers.push(s);
        id
    };

    // Recursive pod construction, iterative over levels: build all top_pods
    // level-(layers-1) pods.
    fn build_pod(
        level: usize,
        half: usize,
        leaf_srv: usize,
        leaf_up: usize,
        alloc: &mut dyn FnMut(&mut Vec<u32>, u32) -> u32,
        servers: &mut Vec<u32>,
        edges: &mut Vec<(u32, u32)>,
    ) -> Pod {
        if level == 1 {
            let id = alloc(servers, leaf_srv as u32);
            return Pod {
                uplinks: vec![id; leaf_up],
            };
        }
        let subs: Vec<Pod> = (0..half)
            .map(|_| build_pod(level - 1, half, leaf_srv, leaf_up, alloc, servers, edges))
            .collect();
        let u_prev = subs[0].uplinks.len();
        // Spines of this pod: one per sub-pod uplink index.
        let spines: Vec<u32> = (0..u_prev).map(|_| alloc(servers, 0)).collect();
        for sub in &subs {
            for (q, &sw) in sub.uplinks.iter().enumerate() {
                edges.push((sw, spines[q]));
            }
        }
        // Striped uplinks for the next level: spine q exposes `half`
        // up-ports, in order.
        let mut uplinks = Vec::with_capacity(u_prev * half);
        for &sp in &spines {
            for _ in 0..half {
                uplinks.push(sp);
            }
        }
        Pod { uplinks }
    }

    let pods: Vec<Pod> = (0..top_pods)
        .map(|_| {
            build_pod(
                layers - 1,
                half,
                leaf_srv,
                leaf_up,
                &mut alloc,
                &mut servers,
                &mut edges,
            )
        })
        .collect();

    // Core layer. Trim uplinks per the oversubscription fraction, keeping
    // the striped order (each spine below the core loses the same number of
    // up-ports).
    let u_full = pods[0].uplinks.len();
    // Up-ports per switch at the layer below the core: leaf uplinks for a
    // 2-layer network, r/2 for deeper ones.
    let below_core_up = if layers == 2 { leaf_up } else { half };
    let keep_per_spine = ((below_core_up as f64 * spine_uplink_fraction).round() as usize)
        .clamp(1, below_core_up);
    let u_used = u_full / below_core_up * keep_per_spine;
    let cores_needed = (u_used * top_pods).div_ceil(radix);
    let cores: Vec<u32> = (0..cores_needed).map(|_| alloc(&mut servers, 0)).collect();
    // The round-robin core counter is global across pods: restarting it per
    // pod would pile `ceil` shares onto the low-index cores whenever
    // `u_used % cores_needed != 0` and overflow their radix.
    let mut q_global = 0usize;
    for pod in &pods {
        let mut q_used = 0usize;
        for (q, &sw) in pod.uplinks.iter().enumerate() {
            if q % below_core_up >= keep_per_spine {
                continue; // trimmed port
            }
            let core = cores[q_global % cores.len()];
            edges.push((sw, core));
            q_used += 1;
            q_global += 1;
        }
        debug_assert_eq!(q_used, u_used);
    }

    let n = next_id as usize;
    let graph = Graph::from_edges(n, &edges)?;
    let name = format!(
        "clos-r{radix}-l{layers}-p{top_pods}{}",
        if spine_uplink_fraction < 1.0 {
            format!("-f{spine_uplink_fraction}")
        } else {
            String::new()
        }
    );
    let topo = Topology::new(graph, servers, name)?;
    if !topo.graph().is_connected() {
        return Err(ModelError::InfeasibleParams(
            "clos instance is disconnected".into(),
        ));
    }
    Ok(topo)
}

/// The classic 3-tier k-ary fat-tree (Al-Fares et al., SIGCOMM'08):
/// `k` pods of `k/2` edge and `k/2` aggregation switches, `(k/2)^2` cores,
/// `k^3/4` servers. Equivalent to `folded_clos(ClosParams::full(k, 3))`
/// up to wiring details; provided with the canonical explicit wiring
/// (aggregation switch `a` connects to core group `a`).
pub fn fat_tree(k: usize) -> Result<Topology, ModelError> {
    if k < 4 || !k.is_multiple_of(2) {
        return Err(ModelError::InfeasibleParams(format!(
            "fat-tree needs even k >= 4 (got {k})"
        )));
    }
    let half = k / 2;
    let n_edge = k * half;
    let n_agg = k * half;
    let n_core = half * half;
    let n = n_edge + n_agg + n_core;
    let edge_id = |pod: usize, i: usize| (pod * half + i) as u32;
    let agg_id = |pod: usize, a: usize| (n_edge + pod * half + a) as u32;
    let core_id = |c: usize| (n_edge + n_agg + c) as u32;
    let mut edges = Vec::with_capacity(n_edge * half + n_agg * half);
    for pod in 0..k {
        for i in 0..half {
            for a in 0..half {
                edges.push((edge_id(pod, i), agg_id(pod, a)));
            }
        }
        for a in 0..half {
            for c in 0..half {
                edges.push((agg_id(pod, a), core_id(a * half + c)));
            }
        }
    }
    let mut servers = vec![0u32; n];
    for s in servers.iter_mut().take(n_edge) {
        *s = half as u32;
    }
    let graph = Graph::from_edges(n, &edges)?;
    Topology::new(graph, servers, format!("fattree-k{k}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_model::TopoClass;

    #[test]
    fn fat_tree_k4_structure() {
        let t = fat_tree(4).unwrap();
        assert_eq!(t.n_switches(), 20);
        assert_eq!(t.n_servers(), 16);
        assert_eq!(t.class(), TopoClass::BiRegular { h: 2 });
        assert!(t.graph().is_connected());
        // Every switch uses exactly k=4 ports (radix-consistent).
        for u in 0..20u32 {
            assert_eq!(t.used_ports(u), 4.0, "switch {u}");
        }
        // Leaf-to-leaf worst case distance: 4 hops (edge-agg-core-agg-edge).
        assert_eq!(t.graph().diameter(), 4);
    }

    #[test]
    fn folded_clos_matches_fat_tree_counts() {
        // 3-layer radix-8 full Clos == fat-tree(8) in servers and switches.
        let p = ClosParams::full(8, 3);
        let t = folded_clos(p).unwrap();
        let ft = fat_tree(8).unwrap();
        assert_eq!(t.n_servers(), ft.n_servers());
        assert_eq!(t.n_switches(), ft.n_switches());
        assert_eq!(t.n_servers(), p.n_servers());
        assert_eq!(t.n_switches() as u64, p.n_switches());
    }

    #[test]
    fn paper_table_a1_counts() {
        // Table A.1 of the paper (radix 32):
        // 8192 servers, 3 layers, 1280 switches.
        let p3 = ClosParams::full(32, 3);
        assert_eq!(p3.n_servers(), 8192);
        assert_eq!(p3.n_switches(), 1280);
        // 131072 servers, 4 layers, 28672 switches.
        let p4 = ClosParams::full(32, 4);
        assert_eq!(p4.n_servers(), 131072);
        assert_eq!(p4.n_switches(), 28672);
        // 32768 servers: 1/4-deployed 4-layer (8 pods), 7168 switches.
        let p4q = ClosParams {
            radix: 32,
            layers: 4,
            top_pods: 8,
            spine_uplink_fraction: 1.0,
            leaf_servers: 0,
        };
        assert_eq!(p4q.n_servers(), 32768);
        assert_eq!(p4q.n_switches(), 7168);
    }

    #[test]
    fn partial_clos_builds_and_is_biregular() {
        let p = ClosParams {
            radix: 8,
            layers: 3,
            top_pods: 4,
            spine_uplink_fraction: 1.0,
            leaf_servers: 0,
        };
        let t = folded_clos(p).unwrap();
        assert_eq!(t.n_servers(), p.n_servers());
        assert_eq!(t.n_switches() as u64, p.n_switches());
        assert!(matches!(t.class(), TopoClass::BiRegular { h: 4 }));
        // Core switches must not exceed the radix.
        for u in 0..t.n_switches() as u32 {
            assert!(t.used_ports(u) <= 8.0, "switch {u} over radix");
        }
    }

    #[test]
    fn two_layer_leaf_spine() {
        let p = ClosParams::full(4, 2);
        let t = folded_clos(p).unwrap();
        // 4 leaves, each 2 servers + 2 uplinks; cores = 2*4/4 = 2.
        assert_eq!(t.n_servers(), 8);
        assert_eq!(t.n_switches(), 6);
        assert_eq!(t.graph().diameter(), 2);
    }

    #[test]
    fn oversubscribed_clos_halves_core_capacity() {
        let full = folded_clos(ClosParams::full(8, 3)).unwrap();
        let over = folded_clos(ClosParams {
            radix: 8,
            layers: 3,
            top_pods: 8,
            spine_uplink_fraction: 0.5,
            leaf_servers: 0,
        })
        .unwrap();
        assert_eq!(over.n_servers(), full.n_servers());
        assert!(over.n_switches() < full.n_switches());
        // Core-facing capacity halves. Cores are the last `n_cores()` ids.
        let core_links_full = count_core_links(&full, ClosParams::full(8, 3).n_cores());
        let core_links_over = count_core_links(
            &over,
            ClosParams {
                radix: 8,
                layers: 3,
                top_pods: 8,
                spine_uplink_fraction: 0.5,
                leaf_servers: 0,
            }
            .n_cores(),
        );
        assert!((core_links_over as f64 - core_links_full as f64 / 2.0).abs() < 1e-9);
    }

    /// Links incident to the core layer (the trailing `n_cores` switch ids,
    /// by construction order).
    fn count_core_links(t: &Topology, n_cores: u64) -> usize {
        let core_start = t.n_switches() - n_cores as usize;
        t.graph()
            .edges()
            .iter()
            .filter(|&&(u, v)| u as usize >= core_start || v as usize >= core_start)
            .count()
    }

    #[test]
    fn rejects_bad_params() {
        assert!(fat_tree(3).is_err());
        assert!(fat_tree(5).is_err());
        assert!(folded_clos(ClosParams::full(7, 3)).is_err());
        assert!(folded_clos(ClosParams {
            radix: 8,
            layers: 1,
            top_pods: 8,
            spine_uplink_fraction: 1.0,
            leaf_servers: 0,
        })
        .is_err());
        assert!(folded_clos(ClosParams {
            radix: 8,
            layers: 3,
            top_pods: 9,
            spine_uplink_fraction: 1.0,
            leaf_servers: 0,
        })
        .is_err());
        assert!(folded_clos(ClosParams {
            radix: 8,
            layers: 3,
            top_pods: 8,
            spine_uplink_fraction: 0.0,
            leaf_servers: 0,
        })
        .is_err());
    }
}
