//! Jellyfish: random regular graph topologies (Singla et al., NSDI'12).
//!
//! Every switch has `r` switch-to-switch links wired uniformly at random
//! (a random `r`-regular simple graph) and `h` servers. The construction
//! follows the Jellyfish paper: repeatedly join random pairs of switches
//! with free ports, and when the process gets stuck, free up eligible port
//! pairs by breaking a random existing link.
//!
//! Jellyfish is the paper's flagship uni-regular design: §4 shows its
//! TUB sits within a few percent of 1 at equal cost, and §5 uses it for
//! the expansion and resilience studies. Wiring is a pure function of the
//! caller's RNG — one seed, one graph — so ensemble sweeps seed each
//! instance explicitly and stay bit-reproducible across thread counts.
//! The stuck-state rewiring loop is bounded, returning an error rather
//! than spinning when parameters are infeasible (e.g. `r >= n`).

use dcn_graph::Graph;
use dcn_model::{ModelError, Topology};
use rand::Rng;
use std::collections::HashSet;

/// Tracks the partial random-regular graph during construction.
struct PartialGraph {
    adj: Vec<HashSet<u32>>,
    edges: Vec<(u32, u32)>,
    free: Vec<u32>, // free ports per node
}

impl PartialGraph {
    fn new(n: usize, r: usize) -> Self {
        PartialGraph {
            adj: vec![HashSet::new(); n],
            edges: Vec::with_capacity(n * r / 2),
            free: vec![r as u32; n],
        }
    }

    fn adjacent(&self, u: u32, v: u32) -> bool {
        self.adj[u as usize].contains(&v)
    }

    fn add(&mut self, u: u32, v: u32) {
        debug_assert!(u != v && !self.adjacent(u, v));
        debug_assert!(self.free[u as usize] > 0 && self.free[v as usize] > 0);
        self.adj[u as usize].insert(v);
        self.adj[v as usize].insert(u);
        self.edges.push((u, v));
        self.free[u as usize] -= 1;
        self.free[v as usize] -= 1;
    }

    fn remove_edge_at(&mut self, idx: usize) -> (u32, u32) {
        let (x, y) = self.edges.swap_remove(idx);
        self.adj[x as usize].remove(&y);
        self.adj[y as usize].remove(&x);
        self.free[x as usize] += 1;
        self.free[y as usize] += 1;
        (x, y)
    }
}

/// Generates a Jellyfish topology: `n_switches` switches, each with
/// `r_net` random network links and `h` servers.
///
/// ```
/// use dcn_topo::jellyfish;
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let topo = jellyfish(64, 8, 4, &mut rng)?;
/// assert_eq!(topo.n_servers(), 256);
/// assert!(topo.graph().is_connected());
/// # Ok::<(), dcn_model::ModelError>(())
/// ```
///
/// Requirements: `n_switches * r_net` even, `r_net >= 3` (expanders need
/// degree >= 3 to be connected with overwhelming probability; we retry a few
/// times and verify), and `r_net < n_switches`.
pub fn jellyfish<R: Rng>(
    n_switches: usize,
    r_net: usize,
    h: u32,
    rng: &mut R,
) -> Result<Topology, ModelError> {
    crate::check_regular_feasible(n_switches, r_net)?;
    if r_net < 3 {
        return Err(ModelError::InfeasibleParams(format!(
            "jellyfish needs r_net >= 3 for connectivity (got {r_net})"
        )));
    }
    for _attempt in 0..8 {
        if let Some(edges) = try_random_regular(n_switches, r_net, rng) {
            let g = Graph::from_edges(n_switches, &edges)?;
            if g.is_connected() {
                let name = format!("jellyfish-s{n_switches}-r{r_net}-h{h}");
                return Topology::new(g, vec![h; n_switches], name);
            }
        }
    }
    Err(ModelError::InfeasibleParams(format!(
        "failed to build a connected {r_net}-regular graph on {n_switches} switches"
    )))
}

/// One attempt at a random `r`-regular simple graph; `None` if the fix-up
/// procedure fails to converge.
fn try_random_regular<R: Rng>(n: usize, r: usize, rng: &mut R) -> Option<Vec<(u32, u32)>> {
    let mut pg = PartialGraph::new(n, r);
    // Phase 1: random greedy pairing. Keep a worklist of nodes with free
    // ports; pick random pairs and link them when eligible.
    let mut stuck = 0usize;
    while pg.edges.len() < n * r / 2 {
        let open: Vec<u32> = (0..n as u32).filter(|&u| pg.free[u as usize] > 0).collect();
        if open.is_empty() {
            break;
        }
        let mut progressed = false;
        // Try a bounded number of random pairs before declaring stuck.
        for _ in 0..4 * open.len().max(8) {
            let u = open[rng.gen_range(0..open.len())];
            let v = open[rng.gen_range(0..open.len())];
            if u != v
                && pg.free[u as usize] > 0
                && pg.free[v as usize] > 0
                && !pg.adjacent(u, v)
            {
                pg.add(u, v);
                progressed = true;
                break;
            }
        }
        if progressed {
            stuck = 0;
            continue;
        }
        // Phase 2: stuck — the nodes with free ports form a clique (or a
        // single node remains). Break a random existing edge to make room.
        stuck += 1;
        if stuck > 2 * n * r {
            return None;
        }
        if !unstick(&mut pg, rng) {
            return None;
        }
    }
    if pg.edges.len() == n * r / 2 {
        Some(pg.edges)
    } else {
        None
    }
}

/// Stuck resolution from the Jellyfish paper: for a node `u` with >= 2 free
/// ports, remove a random edge `(x, y)` with `x, y` not adjacent to `u` and
/// add `(u, x)`, `(u, y)`. If every open node has one free port (pairs of
/// open nodes are mutually adjacent), splice two of them into a random edge.
fn unstick<R: Rng>(pg: &mut PartialGraph, rng: &mut R) -> bool {
    let n = pg.adj.len();
    let open: Vec<u32> = (0..n as u32).filter(|&u| pg.free[u as usize] > 0).collect();
    if open.is_empty() || pg.edges.is_empty() {
        return false;
    }
    if let Some(&u) = open.iter().find(|&&u| pg.free[u as usize] >= 2) {
        for _ in 0..256 {
            let idx = rng.gen_range(0..pg.edges.len());
            let (x, y) = pg.edges[idx];
            if x != u && y != u && !pg.adjacent(u, x) && !pg.adjacent(u, y) {
                pg.remove_edge_at(idx);
                pg.add(u, x);
                pg.add(u, y);
                return true;
            }
        }
        return false;
    }
    // All open nodes have exactly one free port; they must be pairwise
    // adjacent (otherwise phase 1 would have linked them). Splice two open
    // nodes u, v into an existing edge (x, y): remove (x, y), add (u, x)
    // and (v, y).
    if open.len() >= 2 {
        for _ in 0..256 {
            let u = open[rng.gen_range(0..open.len())];
            let v = open[rng.gen_range(0..open.len())];
            if u == v {
                continue;
            }
            let idx = rng.gen_range(0..pg.edges.len());
            let (x, y) = pg.edges[idx];
            if x == u || x == v || y == u || y == v {
                continue;
            }
            if !pg.adjacent(u, x) && !pg.adjacent(v, y) {
                pg.remove_edge_at(idx);
                pg.add(u, x);
                pg.add(v, y);
                return true;
            }
        }
        return false;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_model::TopoClass;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generates_regular_connected_graph() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = jellyfish(64, 8, 8, &mut rng).unwrap();
        assert_eq!(t.n_switches(), 64);
        assert_eq!(t.n_servers(), 64 * 8);
        assert!(t.graph().is_connected());
        for u in 0..64u32 {
            assert_eq!(t.graph().degree(u), 8, "switch {u} degree");
        }
        assert_eq!(t.class(), TopoClass::UniRegular { h: 8 });
    }

    #[test]
    fn no_parallel_edges_or_self_loops() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = jellyfish(40, 5, 4, &mut rng).unwrap();
        let mut seen = std::collections::HashSet::new();
        for &(u, v) in t.graph().edges() {
            assert_ne!(u, v);
            let key = if u < v { (u, v) } else { (v, u) };
            assert!(seen.insert(key), "duplicate edge {key:?}");
        }
    }

    #[test]
    fn odd_total_ports_rejected() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(jellyfish(5, 3, 4, &mut rng).is_err());
    }

    #[test]
    fn degree_too_large_rejected() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(jellyfish(4, 4, 4, &mut rng).is_err());
        assert!(jellyfish(4, 5, 4, &mut rng).is_err());
    }

    #[test]
    fn small_degree_rejected() {
        let mut rng = StdRng::seed_from_u64(5);
        assert!(jellyfish(10, 2, 4, &mut rng).is_err());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let t1 = jellyfish(32, 6, 8, &mut StdRng::seed_from_u64(42)).unwrap();
        let t2 = jellyfish(32, 6, 8, &mut StdRng::seed_from_u64(42)).unwrap();
        assert_eq!(t1.graph().edges(), t2.graph().edges());
    }

    #[test]
    fn different_seeds_differ() {
        let t1 = jellyfish(32, 6, 8, &mut StdRng::seed_from_u64(1)).unwrap();
        let t2 = jellyfish(32, 6, 8, &mut StdRng::seed_from_u64(2)).unwrap();
        assert_ne!(t1.graph().edges(), t2.graph().edges());
    }

    #[test]
    fn many_sizes_succeed() {
        let mut rng = StdRng::seed_from_u64(6);
        for &(n, r) in &[(10usize, 3usize), (16, 4), (50, 7), (100, 12), (128, 24)] {
            let t = jellyfish(n, r, 4, &mut rng)
                .unwrap_or_else(|e| panic!("n={n} r={r}: {e}"));
            for u in 0..n as u32 {
                assert_eq!(t.graph().degree(u), r);
            }
            assert!(t.graph().is_connected());
        }
    }
}
