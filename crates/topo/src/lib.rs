#![forbid(unsafe_code)]
//! Topology generators for the two practical datacenter design families the
//! paper studies, plus the lifecycle operations its evaluation needs.
//!
//! **Uni-regular** (every switch hosts servers):
//! * [`jellyfish`] — random regular graphs (Singla et al., NSDI'12).
//! * [`xpander`] — deterministic-degree expanders built as random lifts of a
//!   complete graph (Valadarsky et al., CoNEXT'16).
//! * [`fatclique`] — three-level clique-of-cliques (Zhang et al., NSDI'19);
//!   server counts may differ by one across switches.
//!
//! **Bi-regular** (Clos family; only leaves host servers):
//! * [`fat_tree`] — the classic 3-tier k-ary fat-tree (Al-Fares et al.).
//! * [`folded_clos`] — L-layer folded Clos with partial top-level deployment
//!   and optional spine trimming (oversubscription), covering the Jupiter /
//!   "1/8th Clos" instances in the paper's cost experiments.
//!
//! **Lifecycle**:
//! * [`expansion`] — Jellyfish/Xpander incremental growth by random rewiring
//!   (used by Figures A.4 and the §5.1 expansion discussion).
//! * [`failures`] — random link failure injection (Figure 10).
//!
//! All generators take explicit RNGs (seeded by callers) and return
//! validated, connected [`dcn_model::Topology`] values.

#![warn(missing_docs)]

pub mod clos;
pub mod dragonfly;
pub mod expansion;
pub mod f10;
pub mod failures;
pub mod fatclique;
pub mod jellyfish;
pub mod slimfly;
pub mod spinefree;
pub mod xpander;

pub use clos::{fat_tree, folded_clos, ClosParams};
pub use dragonfly::dragonfly;
pub use f10::f10;
pub use expansion::expand_by_rewiring;
pub use failures::{fail_random_links, fail_random_switches, fail_switch_range};
pub use fatclique::{fatclique, FatCliqueParams};
pub use jellyfish::jellyfish;
pub use slimfly::slimfly;
pub use spinefree::{spinefree, SpineFreeParams};
pub use xpander::xpander;

use dcn_model::ModelError;

/// Checks `n * r` is even (handshake lemma) and `r < n` for an `r`-regular
/// graph on `n` nodes.
pub(crate) fn check_regular_feasible(n: usize, r: usize) -> Result<(), ModelError> {
    if n == 0 || r == 0 {
        return Err(ModelError::InfeasibleParams(format!(
            "regular graph needs n > 0 and r > 0 (got n={n}, r={r})"
        )));
    }
    if r >= n {
        return Err(ModelError::InfeasibleParams(format!(
            "degree r={r} must be < n={n}"
        )));
    }
    if !(n * r).is_multiple_of(2) {
        return Err(ModelError::InfeasibleParams(format!(
            "n*r must be even (got n={n}, r={r})"
        )));
    }
    Ok(())
}
