//! FatClique: a three-level clique-of-cliques topology (Zhang et al.,
//! NSDI'19).
//!
//! Structure, bottom-up:
//!
//! * **Sub-clique**: `s` switches wired as a complete graph.
//! * **Block**: `c` sub-cliques; every switch has exactly one link to each
//!   *other* sub-clique in its block (a perfect matching per sub-clique
//!   pair).
//! * **Fabric**: `b` blocks in a (near-)uniform full mesh; every switch
//!   contributes `~g` inter-block links, assigned round-robin within its
//!   block.
//!
//! Remaining ports host servers: `H_u = radix - degree(u)`. Because the
//! inter-block port budget does not always divide evenly, `H_u` may differ
//! by one across switches — the deviation from strict uni-regularity the
//! paper handles with Equation 18.

use dcn_graph::Graph;
use dcn_model::{ModelError, Topology};
use std::collections::HashSet;

/// Parameters of a FatClique instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FatCliqueParams {
    /// Switches per sub-clique.
    pub s: usize,
    /// Sub-cliques per block.
    pub c: usize,
    /// Blocks.
    pub b: usize,
    /// Inter-block links per switch (approximate; round-robin assigned).
    pub g: usize,
    /// Switch radix (network links + servers).
    pub radix: usize,
}

impl FatCliqueParams {
    /// Total switches.
    pub fn switches(&self) -> usize {
        self.s * self.c * self.b
    }

    /// Network degree of a switch before inter-block remainder slack.
    pub fn base_degree(&self) -> usize {
        (self.s - 1) + (self.c - 1) + if self.b > 1 { self.g } else { 0 }
    }

    /// Searches for parameters approximating `target_servers` total servers
    /// with `h` servers per switch and the given `radix`. Returns the
    /// feasible parameter set whose server count is closest to the target.
    pub fn search(target_servers: u64, h: u32, radix: usize) -> Option<FatCliqueParams> {
        let mut best: Option<(u64, FatCliqueParams)> = None;
        let max_dim = radix.min(64);
        for s in 2..=max_dim {
            for c in 2..=max_dim {
                let intra = (s - 1) + (c - 1);
                if intra + 1 + h as usize > radix {
                    continue;
                }
                let g = radix - intra - h as usize;
                // b = 1 means no inter-block links are possible; require
                // b >= 2 when g > 0, and allow b chosen to hit the target.
                if g == 0 {
                    continue;
                }
                let per_block = s * c;
                let target_switches = (target_servers / h as u64).max(1) as usize;
                for b in 2..=((target_switches / per_block).max(2) + 1) {
                    let p = FatCliqueParams { s, c, b, g, radix };
                    if p.switches() > 4 * target_switches {
                        break;
                    }
                    // Blocks must form a full mesh: each block needs at
                    // least one link to every other block, otherwise the
                    // instance degenerates into a sparse block ring with
                    // pathological inter-block throughput.
                    if per_block * g < b - 1 {
                        break;
                    }
                    // Every switch must be able to reach g links spread
                    // over b-1 other blocks without exceeding ports.
                    let n = p.switches() as u64 * h as u64;
                    let diff = n.abs_diff(target_servers);
                    if best.is_none_or(|(d, _)| diff < d) {
                        best = Some((diff, p));
                    }
                }
            }
        }
        best.map(|(_, p)| p)
    }
}

/// Builds a FatClique topology from explicit parameters. Deterministic:
/// matchings between sub-cliques use rotations, and inter-block links are
/// placed round-robin.
pub fn fatclique(p: FatCliqueParams) -> Result<Topology, ModelError> {
    let FatCliqueParams { s, c, b, g, radix } = p;
    if s < 2 || c < 1 || b < 1 {
        return Err(ModelError::InfeasibleParams(format!(
            "fatclique needs s >= 2, c >= 1, b >= 1 (got s={s}, c={c}, b={b})"
        )));
    }
    if b > 1 && g == 0 {
        return Err(ModelError::InfeasibleParams(
            "multi-block fatclique needs g >= 1 inter-block links per switch".into(),
        ));
    }
    let n = s * c * b;
    let sw = |block: usize, sub: usize, i: usize| -> u32 { (block * c * s + sub * s + i) as u32 };
    let mut edges: Vec<(u32, u32)> = Vec::new();
    let mut linkset: HashSet<(u32, u32)> = HashSet::new();
    let add = |edges: &mut Vec<(u32, u32)>,
                   linkset: &mut HashSet<(u32, u32)>,
                   u: u32,
                   v: u32|
     -> bool {
        let key = if u < v { (u, v) } else { (v, u) };
        if u == v || !linkset.insert(key) {
            return false;
        }
        edges.push((u, v));
        true
    };

    // Level 1: complete graph inside each sub-clique.
    for block in 0..b {
        for sub in 0..c {
            for i in 0..s {
                for j in (i + 1)..s {
                    add(&mut edges, &mut linkset, sw(block, sub, i), sw(block, sub, j));
                }
            }
        }
    }
    // Level 2: one link per switch to each other sub-clique in its block,
    // using rotated perfect matchings so the wiring is not a single bundle.
    for block in 0..b {
        for sub_a in 0..c {
            for sub_b in (sub_a + 1)..c {
                let rot = (sub_a + sub_b) % s;
                for i in 0..s {
                    let j = (i + rot) % s;
                    add(
                        &mut edges,
                        &mut linkset,
                        sw(block, sub_a, i),
                        sw(block, sub_b, j),
                    );
                }
            }
        }
    }
    // Level 3: near-uniform full mesh between blocks. Each block has
    // s*c*g inter-block ports; base links per block pair plus circulant
    // extras for the remainder.
    if b > 1 {
        let ports_per_block = s * c * g;
        let base = ports_per_block / (b - 1);
        let rem = ports_per_block % (b - 1);
        // links[x][y]: number of links between blocks x and y.
        let mut links = vec![vec![0usize; b]; b];
        #[allow(clippy::needless_range_loop)]
        for x in 0..b {
            for y in (x + 1)..b {
                links[x][y] = base;
            }
        }
        // Distribute the remainder with circulant offsets: each offset o
        // adds one link to pairs {x, x+o}, giving every block ~2 extra
        // ports per offset (exactly rem extras total when rem is even).
        let mut extras_left = rem * b / 2; // total extra links to place
        let mut offset = 1usize;
        while extras_left > 0 && offset <= b / 2 {
            for x in 0..b {
                let y = (x + offset) % b;
                let (lo, hi) = if x < y { (x, y) } else { (y, x) };
                if x < y || offset * 2 == b {
                    if extras_left == 0 {
                        break;
                    }
                    links[lo][hi] += 1;
                    extras_left -= 1;
                }
            }
            offset += 1;
        }
        // Endpoint selection: always attach to the least-loaded switch of
        // each block (ties broken by index). This keeps per-switch
        // inter-block degree within 1 across the whole fabric, so server
        // counts H_u = radix - degree differ by at most 1 (the FatClique
        // contract the paper's Equation 18 relies on).
        let per_block = s * c;
        let mut inter_deg = vec![0usize; n];
        #[allow(clippy::needless_range_loop)]
        for x in 0..b {
            for y in (x + 1)..b {
                if links[x][y] > per_block * per_block {
                    return Err(ModelError::InfeasibleParams(format!(
                        "{} inter-block links exceed the {} possible pairs between blocks of {per_block} switches",
                        links[x][y],
                        per_block * per_block
                    )));
                }
                for _ in 0..links[x][y] {
                    // Least-loaded switch in block x.
                    let u = (0..per_block)
                        .map(|i| (x * per_block + i) as u32)
                        .min_by_key(|&u| (inter_deg[u as usize], u))
                        .expect("non-empty block");
                    // Least-loaded switch in block y not already linked to u.
                    let mut cands: Vec<u32> =
                        (0..per_block).map(|i| (y * per_block + i) as u32).collect();
                    cands.sort_by_key(|&v| (inter_deg[v as usize], v));
                    let mut placed = false;
                    for v in cands {
                        if add(&mut edges, &mut linkset, u, v) {
                            inter_deg[u as usize] += 1;
                            inter_deg[v as usize] += 1;
                            placed = true;
                            break;
                        }
                    }
                    if !placed {
                        return Err(ModelError::InfeasibleParams(format!(
                            "cannot place {0} inter-block links between blocks of {per_block} switches",
                            links[x][y]
                        )));
                    }
                }
            }
        }
    }

    let graph = Graph::from_edges(n, &edges)?;
    // Remaining ports host servers.
    let mut servers = vec![0u32; n];
    for u in 0..n as u32 {
        let deg = graph.degree(u);
        if deg >= radix {
            return Err(ModelError::InfeasibleParams(format!(
                "switch {u} has degree {deg} >= radix {radix}; no room for servers"
            )));
        }
        servers[u as usize] = (radix - deg) as u32;
    }
    let name = format!("fatclique-s{s}-c{c}-b{b}-g{g}-r{radix}");
    let topo = Topology::new(graph, servers, name)?;
    if !topo.graph().is_connected() {
        return Err(ModelError::InfeasibleParams(
            "fatclique instance is disconnected".into(),
        ));
    }
    Ok(topo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_model::TopoClass;

    #[test]
    fn small_instance_structure() {
        let p = FatCliqueParams {
            s: 4,
            c: 3,
            b: 3,
            g: 2,
            radix: 16,
        };
        let t = fatclique(p).unwrap();
        assert_eq!(t.n_switches(), 36);
        assert!(t.graph().is_connected());
        // Degree: (s-1) + (c-1) + ~g = 3 + 2 + ~2 = ~7; H = 16 - degree ≈ 9.
        let h_min = t.servers().iter().min().unwrap();
        let h_max = t.servers().iter().max().unwrap();
        assert!(h_max - h_min <= 1, "H spread {h_min}..{h_max}");
        assert!(matches!(
            t.class(),
            TopoClass::UniRegular { .. } | TopoClass::NearUniRegular { .. }
        ));
    }

    #[test]
    fn single_block_is_clique_of_cliques() {
        let p = FatCliqueParams {
            s: 3,
            c: 4,
            b: 1,
            g: 0,
            radix: 10,
        };
        let t = fatclique(p).unwrap();
        assert_eq!(t.n_switches(), 12);
        // degree = (3-1) + (4-1) = 5, H = 5 everywhere.
        assert_eq!(t.class(), TopoClass::UniRegular { h: 5 });
        assert_eq!(t.graph().diameter(), 2);
    }

    #[test]
    fn sub_clique_is_complete() {
        let p = FatCliqueParams {
            s: 5,
            c: 2,
            b: 2,
            g: 1,
            radix: 12,
        };
        let t = fatclique(p).unwrap();
        // Switches 0..5 form the first sub-clique.
        for i in 0..5u32 {
            for j in (i + 1)..5 {
                assert!(
                    t.graph().neighbors(i).any(|(v, _)| v == j),
                    "missing intra-sub-clique link {i}-{j}"
                );
            }
        }
    }

    #[test]
    fn one_link_per_other_subclique_in_block() {
        let p = FatCliqueParams {
            s: 4,
            c: 3,
            b: 1,
            g: 0,
            radix: 12,
        };
        let t = fatclique(p).unwrap();
        for u in 0..12u32 {
            let my_sub = u / 4;
            let mut per_sub = std::collections::HashMap::new();
            for (v, _) in t.graph().neighbors(u) {
                let sub = v / 4;
                if sub != my_sub {
                    *per_sub.entry(sub).or_insert(0) += 1;
                }
            }
            assert_eq!(per_sub.len(), 2);
            assert!(per_sub.values().all(|&c| c == 1));
        }
    }

    #[test]
    fn search_finds_reasonable_params() {
        let p = FatCliqueParams::search(2000, 8, 24).unwrap();
        let t = fatclique(p).unwrap();
        let n = t.n_servers();
        assert!(
            (n as i64 - 2000).abs() < 600,
            "server count {n} too far from 2000 (params {p:?})"
        );
    }

    #[test]
    fn infeasible_params_rejected() {
        assert!(fatclique(FatCliqueParams {
            s: 1,
            c: 2,
            b: 2,
            g: 1,
            radix: 8
        })
        .is_err());
        assert!(fatclique(FatCliqueParams {
            s: 4,
            c: 2,
            b: 3,
            g: 0,
            radix: 8
        })
        .is_err());
        // Degree exceeds radix.
        assert!(fatclique(FatCliqueParams {
            s: 8,
            c: 4,
            b: 2,
            g: 2,
            radix: 10
        })
        .is_err());
    }
}
