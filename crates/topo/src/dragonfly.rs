//! Dragonfly (Kim et al., ISCA'08) with the canonical "palmtree" global
//! link arrangement.
//!
//! Parameters: each router hosts `p` servers, joins a group of `a` routers
//! (complete graph locally), and contributes `h` global links. With the
//! maximal `g = a*h + 1` groups, every pair of groups shares exactly one
//! global link. The balanced recommendation is `a = 2p = 2h`.
//!
//! Dragonfly is **uni-regular** (every router hosts servers), so the
//! paper's Theorem 2.2 bound applies directly (§7) — even though the
//! design does not scale to datacenter sizes with commodity radixes,
//! which is why the paper's evaluation excludes it.

use dcn_graph::Graph;
use dcn_model::{ModelError, Topology};

/// Builds a fully-deployed Dragonfly: `g = a*h + 1` groups of `a` routers,
/// `p` servers per router. Router radix: `p + (a-1) + h`.
pub fn dragonfly(p: u32, a: usize, h: usize) -> Result<Topology, ModelError> {
    if a < 2 || h < 1 || p == 0 {
        return Err(ModelError::InfeasibleParams(format!(
            "dragonfly needs a >= 2, h >= 1, p >= 1 (got a={a}, h={h}, p={p})"
        )));
    }
    let g = a * h + 1;
    let n = g * a;
    let router = |grp: usize, r: usize| (grp * a + r) as u32;
    let mut edges = Vec::new();
    // Local complete graphs.
    for grp in 0..g {
        for i in 0..a {
            for j in (i + 1)..a {
                edges.push((router(grp, i), router(grp, j)));
            }
        }
    }
    // Palmtree global arrangement: group G's global port j (0 <= j < a*h)
    // reaches group (G + j + 1) mod g; the peer port is g - 2 - j. Router
    // r owns ports [r*h, (r+1)*h).
    for grp in 0..g {
        for j in 0..a * h {
            let peer_grp = (grp + j + 1) % g;
            let peer_port = g - 2 - j;
            // Add each undirected link once.
            if grp < peer_grp {
                let r = j / h;
                let pr = peer_port / h;
                edges.push((router(grp, r), router(peer_grp, pr)));
            }
        }
    }
    let graph = Graph::from_edges(n, &edges)?;
    let topo = Topology::new(graph, vec![p; n], format!("dragonfly-p{p}-a{a}-h{h}"))?;
    if !topo.graph().is_connected() {
        return Err(ModelError::InfeasibleParams(
            "dragonfly instance disconnected (internal error)".into(),
        ));
    }
    Ok(topo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_model::TopoClass;

    #[test]
    fn balanced_instance_structure() {
        // a = 4, h = 2, p = 2: g = 9 groups, 36 routers.
        let t = dragonfly(2, 4, 2).unwrap();
        assert_eq!(t.n_switches(), 36);
        assert_eq!(t.n_servers(), 72);
        assert_eq!(t.class(), TopoClass::UniRegular { h: 2 });
        // Router degree: (a-1) + h = 5.
        for u in 0..36u32 {
            assert_eq!(t.graph().degree(u), 5, "router {u}");
        }
        assert!(t.graph().is_connected());
    }

    #[test]
    fn every_group_pair_has_one_global_link() {
        let a = 3;
        let h = 2;
        let t = dragonfly(1, a, h).unwrap();
        let g = a * h + 1;
        let mut between = vec![vec![0u32; g]; g];
        for &(u, v) in t.graph().edges() {
            let gu = u as usize / a;
            let gv = v as usize / a;
            if gu != gv {
                between[gu.min(gv)][gu.max(gv)] += 1;
            }
        }
        #[allow(clippy::needless_range_loop)]
        for x in 0..g {
            for y in (x + 1)..g {
                assert_eq!(between[x][y], 1, "groups {x},{y}");
            }
        }
    }

    #[test]
    fn diameter_is_small() {
        // Dragonfly diameter is 3 (local, global, local).
        let t = dragonfly(2, 4, 2).unwrap();
        assert!(t.graph().diameter() <= 3);
    }

    #[test]
    fn degenerate_params_rejected() {
        assert!(dragonfly(0, 4, 2).is_err());
        assert!(dragonfly(2, 1, 2).is_err());
        assert!(dragonfly(2, 4, 0).is_err());
    }

    #[test]
    fn tub_applies_to_dragonfly() {
        // §7: tub applies to Dragonfly as a uni-regular topology. For the
        // balanced config the bound lands strictly below the trivial
        // capacity ratio (paths are 2-3 hops).
        let t = dragonfly(2, 4, 2).unwrap();
        // Cannot depend on dcn-core here; just verify the ingredients:
        // uniform H, known E, diameter <= 3.
        assert_eq!(t.e_links(), (36.0 * 5.0) / 2.0);
        assert_eq!(t.h_max(), 2);
    }
}
