//! Property tests for the failure-injection helpers: whatever the inputs,
//! they either return a usable degraded topology or a typed `ModelError` —
//! never a panic, never a silently broken topology.

use dcn_model::ModelError;
use dcn_topo::{fail_random_links, fail_random_switches, fail_switch_range, jellyfish};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn small_jellyfish(seed: u64) -> dcn_model::Topology {
    let mut rng = StdRng::seed_from_u64(seed);
    jellyfish(20, 6, 3, &mut rng).expect("jellyfish(20, 6, 3) always builds")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any fraction in [0, 1] and any RNG seed: the call returns (Ok or a
    /// typed error) without panicking, Ok results stay connected, keep
    /// every server, and lose exactly the requested number of links.
    #[test]
    fn link_failures_never_panic_in_unit_range(f in 0.0f64..1.0, seed in any::<u64>()) {
        let topo = small_jellyfish(17);
        let mut rng = StdRng::seed_from_u64(seed);
        match fail_random_links(&topo, f, &mut rng) {
            Ok(d) => {
                prop_assert!(d.graph().is_connected());
                prop_assert_eq!(d.n_servers(), topo.n_servers());
                let expect_removed = (topo.graph().m() as f64 * f).round() as usize;
                prop_assert_eq!(d.graph().m(), topo.graph().m() - expect_removed);
            }
            Err(ModelError::InfeasibleParams(_)) => {}
            Err(e) => prop_assert!(false, "unexpected error kind: {e}"),
        }
    }

    /// Fractions outside [0, 1) are rejected with a typed error, including
    /// non-finite values — no panic, no NaN-driven cast shenanigans.
    #[test]
    fn out_of_range_fractions_rejected(pick in 0usize..6, seed in any::<u64>()) {
        let hostile = [1.0, 1.5, -0.01, f64::NAN, f64::INFINITY, f64::NEG_INFINITY];
        let topo = small_jellyfish(18);
        let mut rng = StdRng::seed_from_u64(seed);
        prop_assert!(matches!(
            fail_random_links(&topo, hostile[pick], &mut rng),
            Err(ModelError::InfeasibleParams(_))
        ));
    }

    /// Switch failures for any count: Ok results keep switch ids stable
    /// and drop exactly the dead switches' servers; infeasible counts are
    /// typed errors.
    #[test]
    fn switch_failures_never_panic(count in 0usize..30, seed in any::<u64>()) {
        let topo = small_jellyfish(19);
        let mut rng = StdRng::seed_from_u64(seed);
        match fail_random_switches(&topo, count, false, &mut rng) {
            Ok(d) => {
                prop_assert_eq!(d.n_switches(), topo.n_switches());
                prop_assert_eq!(d.n_servers(), topo.n_servers() - count as u64 * 3);
            }
            Err(ModelError::InfeasibleParams(_) | ModelError::NoServers) => {}
            Err(e) => prop_assert!(false, "unexpected error kind: {e}"),
        }
    }

    /// Range failures for arbitrary (start, len), including values whose
    /// sum would overflow usize: always Ok-or-typed-error.
    #[test]
    fn range_failures_never_panic(start in any::<usize>(), len in any::<usize>()) {
        let topo = small_jellyfish(20);
        match fail_switch_range(&topo, start, len) {
            Ok(d) => {
                prop_assert!(start + len <= topo.n_switches());
                prop_assert!(len > 0);
                prop_assert!(d.n_servers() < topo.n_servers());
            }
            Err(ModelError::InfeasibleParams(_) | ModelError::NoServers) => {}
            Err(e) => prop_assert!(false, "unexpected error kind: {e}"),
        }
    }

    /// In-bounds range failures on the same topology: stable outcome shape
    /// (ids preserved, dead block's servers gone) whenever they succeed.
    #[test]
    fn in_bounds_range_failures_account_servers(start in 0usize..20, len in 1usize..8) {
        let topo = small_jellyfish(21);
        prop_assume!(start + len <= topo.n_switches());
        if let Ok(d) = fail_switch_range(&topo, start, len) {
            prop_assert_eq!(d.n_switches(), topo.n_switches());
            prop_assert_eq!(d.n_servers(), topo.n_servers() - len as u64 * 3);
        }
    }
}
