//! Flow-completion-time (FCT) simulation.
//!
//! A fluid event-driven loop over finite-size flows: rates follow the
//! exact max-min fair allocation, recomputed whenever a flow finishes.
//! This is the standard flow-level approximation of a congestion-controlled
//! fabric, and the metric downstream users actually feel — the paper's
//! throughput story expressed as completion-time slowdowns.
//!
//! Units: link capacity 1.0 = one server line rate; a flow of `size` S at
//! rate 1.0 completes in S time units. *Slowdown* is FCT divided by the
//! ideal (uncontended) FCT `S / min(1, demand ceiling)`.

use crate::allocate::max_min_rates;
use crate::flows::RoutedFlow;
use dcn_model::Topology;

/// A finite-size flow to transfer.
#[derive(Debug, Clone)]
pub struct SizedFlow {
    /// The flow and its path.
    pub routed: RoutedFlow,
    /// Bytes, in line-rate-seconds (size 1.0 = one unit of time at rate 1).
    pub size: f64,
}

/// Per-flow outcome.
#[derive(Debug, Clone, Copy)]
pub struct FlowOutcome {
    /// Completion time.
    pub fct: f64,
    /// FCT divided by the uncontended FCT.
    pub slowdown: f64,
}

/// Result of an FCT run.
#[derive(Debug, Clone)]
pub struct FctReport {
    /// Per-flow completion outcomes, in input order.
    pub outcomes: Vec<FlowOutcome>,
    /// Time the last flow finished.
    pub makespan: f64,
}

impl FctReport {
    /// Mean slowdown over all flows.
    pub fn mean_slowdown(&self) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        self.outcomes.iter().map(|o| o.slowdown).sum::<f64>() / self.outcomes.len() as f64
    }

    /// p-th percentile slowdown (`p` in 0..=100).
    pub fn percentile_slowdown(&self, p: f64) -> f64 {
        if self.outcomes.is_empty() {
            return 0.0;
        }
        let mut s: Vec<f64> = self.outcomes.iter().map(|o| o.slowdown).collect();
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let idx = ((p / 100.0) * (s.len() - 1) as f64).round() as usize;
        s[idx.min(s.len() - 1)]
    }
}

/// Runs all flows to completion (all start at time 0).
///
/// Each round computes the max-min allocation for the remaining flows,
/// advances time to the earliest completion, and removes finished flows.
/// At most `n` rounds of an `O(n * links)` allocation each.
pub fn run_to_completion(topo: &Topology, flows: &[SizedFlow]) -> FctReport {
    let n = flows.len();
    let mut remaining: Vec<f64> = flows.iter().map(|f| f.size.max(0.0)).collect();
    let mut active: Vec<usize> = (0..n).filter(|&i| remaining[i] > 0.0).collect();
    let mut fct = vec![0.0f64; n];
    let mut now = 0.0f64;
    // Zero-size flows complete instantly.
    while !active.is_empty() {
        let routed: Vec<RoutedFlow> = active.iter().map(|&i| flows[i].routed.clone()).collect();
        let alloc = max_min_rates(topo, &routed);
        // Earliest completion among active flows.
        let mut dt = f64::INFINITY;
        for (k, &i) in active.iter().enumerate() {
            let r = alloc.rates[k];
            if r > 1e-15 {
                dt = dt.min(remaining[i] / r);
            }
        }
        if !dt.is_finite() {
            // Starved flows (shouldn't happen on connected fabrics with
            // positive demands): mark them complete at +inf equivalent.
            for &i in &active {
                fct[i] = f64::INFINITY;
            }
            break;
        }
        now += dt;
        let mut still = Vec::with_capacity(active.len());
        for (k, &i) in active.iter().enumerate() {
            remaining[i] -= alloc.rates[k] * dt;
            if remaining[i] <= 1e-9 {
                fct[i] = now;
            } else {
                still.push(i);
            }
        }
        active = still;
    }
    let outcomes = flows
        .iter()
        .zip(fct.iter())
        .map(|(f, &t)| {
            let ideal = f.size / f.routed.flow.demand.clamp(1e-12, 1.0);
            FlowOutcome {
                fct: t,
                slowdown: if ideal > 0.0 { t / ideal } else { 1.0 },
            }
        })
        .collect();
    FctReport {
        outcomes,
        makespan: now,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flows::Flow;
    use crate::PathPolicy;
    use dcn_graph::Graph;
    use dcn_model::Topology;

    fn line3() -> Topology {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        Topology::new(g, vec![4; 3], "line").unwrap()
    }

    fn sized(t: &Topology, specs: &[(u32, u32, f64)]) -> Vec<SizedFlow> {
        let flows: Vec<Flow> = specs
            .iter()
            .map(|&(src, dst, _)| Flow { src, dst, demand: 1.0 })
            .collect();
        let routed = PathPolicy::EcmpHash.route_all(t, &flows, 1).unwrap();
        routed
            .into_iter()
            .zip(specs.iter())
            .map(|(routed, &(_, _, size))| SizedFlow { routed, size })
            .collect()
    }

    #[test]
    fn single_flow_runs_at_line_rate() {
        let t = line3();
        let fs = sized(&t, &[(0, 2, 3.0)]);
        let r = run_to_completion(&t, &fs);
        assert!((r.makespan - 3.0).abs() < 1e-9);
        assert!((r.outcomes[0].slowdown - 1.0).abs() < 1e-9);
    }

    #[test]
    fn two_equal_flows_double_fct() {
        let t = line3();
        let fs = sized(&t, &[(0, 1, 1.0), (0, 1, 1.0)]);
        let r = run_to_completion(&t, &fs);
        // Both at rate 0.5 → finish at t = 2.
        assert!((r.makespan - 2.0).abs() < 1e-9);
        assert!((r.mean_slowdown() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn short_flow_finishes_then_long_speeds_up() {
        let t = line3();
        let fs = sized(&t, &[(0, 1, 1.0), (0, 1, 3.0)]);
        let r = run_to_completion(&t, &fs);
        // Phase 1: both at 0.5 until the short one finishes at t = 2.
        // Phase 2: the long one has 2.0 left at rate 1 → finishes at t = 4.
        assert!((r.outcomes[0].fct - 2.0).abs() < 1e-9);
        assert!((r.outcomes[1].fct - 4.0).abs() < 1e-9);
        assert!((r.percentile_slowdown(100.0) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn parking_lot_fcts() {
        let t = line3();
        // A long flow across both links plus one short on each link.
        let fs = sized(&t, &[(0, 2, 2.0), (0, 1, 1.0), (1, 2, 1.0)]);
        let r = run_to_completion(&t, &fs);
        // Phase 1 (all at 0.5): shorts done at t = 2. Phase 2: long flow
        // alone at rate 1, 1.0 remaining → t = 3.
        assert!((r.outcomes[1].fct - 2.0).abs() < 1e-9);
        assert!((r.outcomes[2].fct - 2.0).abs() < 1e-9);
        assert!((r.outcomes[0].fct - 3.0).abs() < 1e-9);
        assert!((r.makespan - 3.0).abs() < 1e-9);
    }

    #[test]
    fn zero_size_flow_completes_immediately() {
        let t = line3();
        let fs = sized(&t, &[(0, 1, 0.0), (0, 1, 1.0)]);
        let r = run_to_completion(&t, &fs);
        assert_eq!(r.outcomes[0].fct, 0.0);
        assert!((r.outcomes[1].fct - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_run() {
        let t = line3();
        let r = run_to_completion(&t, &[]);
        assert_eq!(r.makespan, 0.0);
        assert_eq!(r.mean_slowdown(), 0.0);
        assert_eq!(r.percentile_slowdown(99.0), 0.0);
    }
}

/// A flow with an arrival time (open-loop workloads).
#[derive(Debug, Clone)]
pub struct ArrivingFlow {
    /// Arrival time.
    pub at: f64,
    /// The flow, its path, and its size.
    pub flow: SizedFlow,
}

/// Runs an open-loop workload: flows arrive at their specified times and
/// share the fabric max-min fairly with whatever else is in flight.
///
/// The fluid event loop alternates between the next arrival and the next
/// completion; rates are re-solved at every event. FCTs are reported
/// relative to each flow's *arrival* (so slowdown remains comparable to
/// the batch runner).
pub fn run_open_loop(topo: &Topology, arrivals: &[ArrivingFlow]) -> FctReport {
    let n = arrivals.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| arrivals[a].at.partial_cmp(&arrivals[b].at).unwrap());
    let mut remaining: Vec<f64> = arrivals.iter().map(|a| a.flow.size.max(0.0)).collect();
    let mut fct_abs = vec![f64::NAN; n];
    let mut active: Vec<usize> = Vec::new();
    let mut next_arrival = 0usize;
    let mut now = arrivals.iter().map(|a| a.at).fold(f64::INFINITY, f64::min);
    if !now.is_finite() {
        now = 0.0;
    }
    loop {
        // Admit everything that has arrived by `now`.
        while next_arrival < n && arrivals[order[next_arrival]].at <= now + 1e-12 {
            let i = order[next_arrival];
            if remaining[i] <= 1e-12 {
                fct_abs[i] = arrivals[i].at; // zero-size completes instantly
            } else {
                active.push(i);
            }
            next_arrival += 1;
        }
        if active.is_empty() {
            match order.get(next_arrival) {
                Some(&i) => {
                    now = arrivals[i].at;
                    continue;
                }
                None => break,
            }
        }
        // Rates for the in-flight set.
        let routed: Vec<RoutedFlow> =
            active.iter().map(|&i| arrivals[i].flow.routed.clone()).collect();
        let alloc = max_min_rates(topo, &routed);
        // Time to next completion...
        let mut dt = f64::INFINITY;
        for (k, &i) in active.iter().enumerate() {
            if alloc.rates[k] > 1e-15 {
                dt = dt.min(remaining[i] / alloc.rates[k]);
            }
        }
        // ...or next arrival, whichever first.
        if let Some(&i) = order.get(next_arrival) {
            dt = dt.min(arrivals[i].at - now);
        }
        if !dt.is_finite() {
            for &i in &active {
                fct_abs[i] = f64::INFINITY;
            }
            break;
        }
        now += dt;
        let mut still = Vec::with_capacity(active.len());
        for (k, &i) in active.iter().enumerate() {
            remaining[i] -= alloc.rates[k] * dt;
            if remaining[i] <= 1e-9 {
                fct_abs[i] = now;
            } else {
                still.push(i);
            }
        }
        active = still;
    }
    let outcomes = arrivals
        .iter()
        .zip(fct_abs.iter())
        .map(|(a, &t_done)| {
            let fct = t_done - a.at;
            let ideal = a.flow.size / a.flow.routed.flow.demand.clamp(1e-12, 1.0);
            FlowOutcome {
                fct,
                slowdown: if ideal > 0.0 { fct / ideal } else { 1.0 },
            }
        })
        .collect();
    FctReport {
        outcomes,
        makespan: now,
    }
}

#[cfg(test)]
mod open_loop_tests {
    use super::*;
    use crate::flows::Flow;
    use crate::PathPolicy;
    use dcn_graph::Graph;
    use dcn_model::Topology;

    fn line3() -> Topology {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        Topology::new(g, vec![4; 3], "line").unwrap()
    }

    fn arriving(t: &Topology, specs: &[(u32, u32, f64, f64)]) -> Vec<ArrivingFlow> {
        let flows: Vec<Flow> = specs
            .iter()
            .map(|&(src, dst, _, _)| Flow { src, dst, demand: 1.0 })
            .collect();
        let routed = PathPolicy::EcmpHash.route_all(t, &flows, 1).unwrap();
        routed
            .into_iter()
            .zip(specs.iter())
            .map(|(routed, &(_, _, size, at))| ArrivingFlow {
                at,
                flow: SizedFlow { routed, size },
            })
            .collect()
    }

    #[test]
    fn disjoint_in_time_flows_run_alone() {
        let t = line3();
        // Second flow arrives after the first finishes: both at line rate.
        let fs = arriving(&t, &[(0, 1, 1.0, 0.0), (0, 1, 1.0, 5.0)]);
        let r = run_open_loop(&t, &fs);
        assert!((r.outcomes[0].fct - 1.0).abs() < 1e-9);
        assert!((r.outcomes[1].fct - 1.0).abs() < 1e-9);
        assert!((r.makespan - 6.0).abs() < 1e-9);
    }

    #[test]
    fn overlapping_flows_share() {
        let t = line3();
        // Both arrive at 0 on the same link: batch behaviour.
        let fs = arriving(&t, &[(0, 1, 1.0, 0.0), (0, 1, 1.0, 0.0)]);
        let r = run_open_loop(&t, &fs);
        assert!((r.outcomes[0].fct - 2.0).abs() < 1e-9);
        assert!((r.outcomes[1].fct - 2.0).abs() < 1e-9);
    }

    #[test]
    fn late_arrival_slows_early_flow() {
        let t = line3();
        // Flow A (size 2) starts alone; flow B (size 1) arrives at t=1.
        // A runs at 1 until t=1 (1 left), then both at 0.5: A finishes at
        // t=3, B has 0.5... wait B finishes: B needs 1 at 0.5 → t=3 too.
        let fs = arriving(&t, &[(0, 1, 2.0, 0.0), (0, 1, 1.0, 1.0)]);
        let r = run_open_loop(&t, &fs);
        assert!((r.outcomes[0].fct - 3.0).abs() < 1e-9, "A fct {}", r.outcomes[0].fct);
        assert!((r.outcomes[1].fct - 2.0).abs() < 1e-9, "B fct {}", r.outcomes[1].fct);
    }

    #[test]
    fn idle_gaps_skipped() {
        let t = line3();
        let fs = arriving(&t, &[(0, 1, 1.0, 10.0)]);
        let r = run_open_loop(&t, &fs);
        assert!((r.outcomes[0].fct - 1.0).abs() < 1e-9);
        assert!((r.makespan - 11.0).abs() < 1e-9);
    }

    #[test]
    fn empty_open_loop() {
        let t = line3();
        let r = run_open_loop(&t, &[]);
        assert!(r.outcomes.is_empty());
    }
}
