#![forbid(unsafe_code)]
//! Flow-level datacenter fabric simulator.
//!
//! The LP backends in `dcn-mcf` answer "what could an ideal fractional
//! routing achieve?". Deployed fabrics instead hash each *flow* onto one
//! path and let congestion control converge to (approximately) max-min
//! fair rates. This crate closes that gap:
//!
//! 1. A traffic matrix is expanded into **server-level flows**
//!    ([`flows_from_tm`]): a demand of `a` units becomes `ceil(a)` unit
//!    flows (each server contributes one flow under a saturated hose
//!    permutation).
//! 2. A [`PathPolicy`] assigns each flow a concrete path — ECMP-style
//!    random shortest path, KSP striping across the k shortest, or
//!    Valiant load balancing through a random intermediate.
//! 3. [`max_min_rates`] computes the exact max-min fair allocation by
//!    progressive filling over directed link capacities.
//!
//! The resulting [`Allocation`] reports per-flow rates, link utilization,
//! the worst-served demand (the flow-level analogue of `θ(T)`), and
//! Jain's fairness index.

#![warn(missing_docs)]

pub mod allocate;
pub mod fct;
pub mod flows;
pub mod policy;

pub use allocate::{max_min_rates, Allocation};
pub use flows::{flows_from_tm, Flow};
pub use fct::{run_open_loop, run_to_completion, ArrivingFlow, FctReport, SizedFlow};
pub use policy::PathPolicy;

use dcn_model::ModelError;

/// Simulator errors.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// Underlying model error.
    Model(ModelError),
    /// A flow's endpoints are disconnected.
    NoPath {
        /// Source switch.
        src: u32,
        /// Destination switch.
        dst: u32,
    },
    /// No flows to allocate.
    NoFlows,
    /// Path enumeration exhausted its budget.
    Budget(dcn_guard::BudgetError),
}

impl From<ModelError> for SimError {
    fn from(e: ModelError) -> Self {
        SimError::Model(e)
    }
}

impl From<dcn_guard::BudgetError> for SimError {
    fn from(e: dcn_guard::BudgetError) -> Self {
        SimError::Budget(e)
    }
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Model(e) => write!(f, "model: {e}"),
            SimError::NoPath { src, dst } => write!(f, "no path {src} -> {dst}"),
            SimError::NoFlows => write!(f, "no flows"),
            SimError::Budget(e) => write!(f, "path enumeration aborted: {e}"),
        }
    }
}

impl std::error::Error for SimError {}

/// One-call convenience: expand `tm` into flows, route them under
/// `policy`, and return the max-min allocation.
///
/// ```
/// use dcn_graph::Graph;
/// use dcn_model::{Topology, TrafficMatrix};
/// use dcn_sim::{simulate, PathPolicy};
///
/// let g = Graph::from_edges(2, &[(0, 1)])?;
/// let topo = Topology::new(g, vec![2; 2], "pair")?;
/// let tm = TrafficMatrix::permutation(&topo, &[(0, 1)])?;
/// // Two unit flows share one unit link: each gets rate 1/2.
/// let alloc = simulate(&topo, &tm, PathPolicy::EcmpHash, 1)?;
/// assert!(alloc.rates.iter().all(|&r| (r - 0.5).abs() < 1e-9));
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn simulate(
    topo: &dcn_model::Topology,
    tm: &dcn_model::TrafficMatrix,
    policy: PathPolicy,
    seed: u64,
) -> Result<Allocation, SimError> {
    let flows = flows_from_tm(tm);
    if flows.is_empty() {
        return Err(SimError::NoFlows);
    }
    let routed = policy.route_all(topo, &flows, seed)?;
    Ok(max_min_rates(topo, &routed))
}
