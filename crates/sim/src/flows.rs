//! Flow generation from switch-level traffic matrices.

use dcn_model::TrafficMatrix;

/// A unit-demand server-level flow between two switches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Flow {
    /// Source switch.
    pub src: u32,
    /// Destination switch.
    pub dst: u32,
    /// Demand of this flow (a fraction of a server's line rate when the
    /// matrix entry is not integral).
    pub demand: f64,
}

/// Expands a switch-level traffic matrix into flows: a demand of `a`
/// becomes `floor(a)` unit flows plus (if fractional) one flow with the
/// remainder. A saturated hose permutation on an H-servers-per-switch
/// topology therefore yields exactly H flows per matched pair — one per
/// server, the granularity ECMP hashing actually sees.
pub fn flows_from_tm(tm: &TrafficMatrix) -> Vec<Flow> {
    let mut flows = Vec::new();
    for d in tm.demands() {
        let whole = d.amount.floor() as u64;
        for _ in 0..whole {
            flows.push(Flow {
                src: d.src,
                dst: d.dst,
                demand: 1.0,
            });
        }
        let frac = d.amount - whole as f64;
        if frac > 1e-12 {
            flows.push(Flow {
                src: d.src,
                dst: d.dst,
                demand: frac,
            });
        }
    }
    flows
}

/// A flow plus its concrete route, as directed-link indices
/// (`2 * edge_id + direction`) over the coalesced graph.
#[derive(Debug, Clone)]
pub struct RoutedFlow {
    /// The flow being routed.
    pub flow: Flow,
    /// Its path as directed-link indices.
    pub links: Vec<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_graph::Graph;
    use dcn_model::Topology;

    fn pair_topo(h: u32) -> Topology {
        let g = Graph::from_edges(2, &[(0, 1)]).unwrap();
        Topology::new(g, vec![h; 2], "pair").unwrap()
    }

    #[test]
    fn integral_demand_splits_into_unit_flows() {
        let t = pair_topo(3);
        let tm = TrafficMatrix::permutation(&t, &[(0, 1)]).unwrap();
        let flows = flows_from_tm(&tm);
        assert_eq!(flows.len(), 3);
        assert!(flows
            .iter()
            .all(|f| (f.demand - 1.0).abs() < 1e-12 && f.src == 0 && f.dst == 1));
    }

    #[test]
    fn fractional_remainder_kept() {
        let t = pair_topo(3);
        let tm = TrafficMatrix::permutation(&t, &[(0, 1)]).unwrap().scaled(0.5);
        let flows = flows_from_tm(&tm);
        // 1.5 units -> one unit flow + one 0.5 flow.
        assert_eq!(flows.len(), 2);
        assert_eq!(flows[0].demand, 1.0);
        assert!((flows[1].demand - 0.5).abs() < 1e-12);
    }

    #[test]
    fn total_demand_preserved() {
        let t = pair_topo(4);
        let tm = TrafficMatrix::permutation(&t, &[(0, 1), (1, 0)])
            .unwrap()
            .scaled(0.7);
        let flows = flows_from_tm(&tm);
        let total: f64 = flows.iter().map(|f| f.demand).sum();
        assert!((total - tm.total()).abs() < 1e-9);
    }
}
