//! Path-selection policies: how a deployed fabric maps flows to paths.

use crate::flows::{Flow, RoutedFlow};
use crate::SimError;
use dcn_graph::{ksp, Graph, NodeId};
use dcn_model::Topology;
use rand::rngs::StdRng;
use dcn_guard::Budget;
use rand::{Rng, SeedableRng};
use std::collections::hash_map::Entry;
use std::collections::HashMap;

/// How each flow picks its path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PathPolicy {
    /// ECMP-style: each flow is hashed onto one of the shortest paths,
    /// uniformly at random (flow-level ECMP, no spraying).
    EcmpHash,
    /// KSP striping: flows of the same switch pair are assigned round-robin
    /// across the `k` shortest paths (idealized MPTCP-over-KSP).
    KspStripe {
        /// Paths striped across.
        k: usize,
    },
    /// Valiant load balancing: each flow picks a random intermediate
    /// switch with servers and concatenates two random shortest-path legs.
    Vlb,
}

impl PathPolicy {
    /// Routes every flow, producing directed-link index lists.
    pub fn route_all(
        &self,
        topo: &Topology,
        flows: &[Flow],
        seed: u64,
    ) -> Result<Vec<RoutedFlow>, SimError> {
        let graph = topo.graph().coalesced();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut cache = PathCache::new(&graph);
        let k_set = topo.switches_with_servers();
        let mut rr: HashMap<(u32, u32), usize> = HashMap::new();
        let mut out = Vec::with_capacity(flows.len());
        for &flow in flows {
            let nodes = match *self {
                PathPolicy::EcmpHash => {
                    cache.random_shortest(flow.src, flow.dst, &mut rng)?
                }
                PathPolicy::KspStripe { k } => {
                    let paths = cache.k_shortest(flow.src, flow.dst, k.max(1))?;
                    let idx = rr.entry((flow.src, flow.dst)).or_insert(0);
                    let p = paths[*idx % paths.len()].clone();
                    *idx += 1;
                    p
                }
                PathPolicy::Vlb => {
                    let mid = loop {
                        let cand = k_set[rng.gen_range(0..k_set.len())];
                        if cand != flow.src && cand != flow.dst {
                            break cand;
                        }
                        // Degenerate two-switch fabrics: fall back direct.
                        if k_set.len() <= 2 {
                            break flow.src;
                        }
                    };
                    if mid == flow.src {
                        cache.random_shortest(flow.src, flow.dst, &mut rng)?
                    } else {
                        let mut a = cache.random_shortest(flow.src, mid, &mut rng)?;
                        let b = cache.random_shortest(mid, flow.dst, &mut rng)?;
                        a.pop(); // drop duplicate mid
                        a.extend(b);
                        a
                    }
                }
            };
            out.push(RoutedFlow {
                flow,
                links: nodes_to_links(&graph, &nodes),
            });
        }
        Ok(out)
    }
}

/// Converts a node path to directed-link indices (`2*edge + dir`).
fn nodes_to_links(graph: &Graph, nodes: &[NodeId]) -> Vec<usize> {
    let mut lookup: HashMap<(NodeId, NodeId), u32> = HashMap::new();
    for (e, &(u, v)) in graph.edges().iter().enumerate() {
        lookup.insert((u, v), e as u32);
        lookup.insert((v, u), e as u32);
    }
    nodes
        .windows(2)
        .map(|w| {
            let e = lookup[&(w[0], w[1])];
            let (a, _) = graph.edge(e);
            2 * e as usize + usize::from(a == w[0])
        })
        .collect()
}

/// Per-pair shortest/KSP path cache. VLB and looped workloads hammer the
/// same pairs, so enumeration is done once per pair.
struct PathCache<'g> {
    graph: &'g Graph,
    shortest: HashMap<(u32, u32), Vec<ksp::Path>>,
    ksp: HashMap<(u32, u32, usize), Vec<ksp::Path>>,
}

impl<'g> PathCache<'g> {
    fn new(graph: &'g Graph) -> Self {
        PathCache {
            graph,
            shortest: HashMap::new(),
            ksp: HashMap::new(),
        }
    }

    fn random_shortest<R: Rng>(
        &mut self,
        src: u32,
        dst: u32,
        rng: &mut R,
    ) -> Result<ksp::Path, SimError> {
        let paths = match self.shortest.entry((src, dst)) {
            Entry::Occupied(e) => e.into_mut(),
            Entry::Vacant(v) => v.insert(ksp::paths_within_slack(
                self.graph,
                src,
                dst,
                0,
                64,
                &Budget::unlimited(),
            )?),
        };
        if paths.is_empty() {
            return Err(SimError::NoPath { src, dst });
        }
        Ok(paths[rng.gen_range(0..paths.len())].clone())
    }

    fn k_shortest(&mut self, src: u32, dst: u32, k: usize) -> Result<&[ksp::Path], SimError> {
        let paths = match self.ksp.entry((src, dst, k)) {
            Entry::Occupied(e) => e.into_mut(),
            Entry::Vacant(v) => v.insert(ksp::k_shortest_by_slack(
                self.graph,
                src,
                dst,
                k,
                u16::MAX,
                &Budget::unlimited(),
            )?),
        };
        if paths.is_empty() {
            return Err(SimError::NoPath { src, dst });
        }
        Ok(paths)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_graph::Graph;
    use dcn_model::{Topology, TrafficMatrix};

    fn square() -> Topology {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        Topology::new(g, vec![2; 4], "square").unwrap()
    }

    fn flows(t: &Topology, pairs: &[(u32, u32)]) -> Vec<Flow> {
        let tm = TrafficMatrix::permutation(t, pairs).unwrap();
        crate::flows_from_tm(&tm)
    }

    #[test]
    fn ecmp_hash_routes_on_shortest_paths() {
        let t = square();
        let fs = flows(&t, &[(0, 2)]);
        let routed = PathPolicy::EcmpHash.route_all(&t, &fs, 1).unwrap();
        assert_eq!(routed.len(), 2);
        for r in &routed {
            assert_eq!(r.links.len(), 2, "shortest path on a square is 2 hops");
        }
    }

    #[test]
    fn ksp_stripe_spreads_flows() {
        let t = square();
        let fs = flows(&t, &[(0, 2)]);
        let routed = PathPolicy::KspStripe { k: 2 }.route_all(&t, &fs, 1).unwrap();
        // Two flows striped over the two sides of the square: first links
        // must differ.
        assert_ne!(routed[0].links[0], routed[1].links[0]);
    }

    #[test]
    fn vlb_paths_are_valid_walks() {
        let t = square();
        let fs = flows(&t, &[(0, 2), (2, 0)]);
        let routed = PathPolicy::Vlb.route_all(&t, &fs, 3).unwrap();
        for r in &routed {
            assert!(!r.links.is_empty());
        }
    }

    #[test]
    fn disconnected_pair_errors() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let t = Topology::new(g, vec![1; 4], "split").unwrap();
        let fs = vec![Flow { src: 0, dst: 2, demand: 1.0 }];
        assert!(matches!(
            PathPolicy::EcmpHash.route_all(&t, &fs, 1),
            Err(SimError::NoPath { src: 0, dst: 2 })
        ));
    }

    #[test]
    fn deterministic_under_seed() {
        let t = square();
        let fs = flows(&t, &[(0, 2), (1, 3)]);
        let a = PathPolicy::EcmpHash.route_all(&t, &fs, 42).unwrap();
        let b = PathPolicy::EcmpHash.route_all(&t, &fs, 42).unwrap();
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.links, y.links);
        }
    }
}
