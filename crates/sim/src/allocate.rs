//! Exact max-min fair rate allocation by progressive filling.
//!
//! All flows' rates rise together; when a directed link saturates, the
//! flows crossing it freeze at their current rate and the rest continue.
//! This is the classical fluid model that TCP-like congestion control
//! approximates, and it terminates in at most `#links` rounds.
//!
//! Flows have demands: a flow never exceeds its demand (it freezes there
//! instead), so partially-scaled traffic matrices behave correctly.

use crate::flows::RoutedFlow;
use dcn_model::Topology;

/// Result of a max-min allocation.
#[derive(Debug, Clone)]
pub struct Allocation {
    /// Rate of each flow, aligned with the input order.
    pub rates: Vec<f64>,
    /// Utilization (load / capacity) per directed link index.
    pub link_utilization: Vec<f64>,
}

impl Allocation {
    /// The worst-served flow's rate/demand ratio: the flow-level analogue
    /// of the paper's `θ(T)` under this (fixed) routing.
    pub fn worst_service(&self, flows: &[RoutedFlow]) -> f64 {
        self.rates
            .iter()
            .zip(flows.iter())
            .map(|(&r, f)| r / f.flow.demand)
            .fold(f64::INFINITY, f64::min)
    }

    /// Mean flow rate.
    pub fn mean_rate(&self) -> f64 {
        if self.rates.is_empty() {
            return 0.0;
        }
        self.rates.iter().sum::<f64>() / self.rates.len() as f64
    }

    /// Jain's fairness index: `(Σ r)^2 / (n Σ r^2)`; 1.0 = perfectly fair.
    pub fn jain_index(&self) -> f64 {
        let n = self.rates.len() as f64;
        let s: f64 = self.rates.iter().sum();
        let s2: f64 = self.rates.iter().map(|r| r * r).sum();
        if s2 <= 0.0 {
            return 1.0;
        }
        s * s / (n * s2)
    }

    /// Peak link utilization.
    pub fn max_utilization(&self) -> f64 {
        self.link_utilization.iter().cloned().fold(0.0, f64::max)
    }
}

/// Computes the exact max-min fair allocation for `flows` over the
/// coalesced directed link capacities of `topo`.
pub fn max_min_rates(topo: &Topology, flows: &[RoutedFlow]) -> Allocation {
    let graph = topo.graph().coalesced();
    let n_dir = 2 * graph.m();
    let cap: Vec<f64> = (0..n_dir).map(|i| graph.capacity((i / 2) as u32)).collect();
    let mut load = vec![0.0f64; n_dir];
    let mut rates = vec![0.0f64; flows.len()];
    let mut frozen = vec![false; flows.len()];
    // Unfrozen flow count per link.
    let mut active_on = vec![0u32; n_dir];
    for f in flows {
        for &l in &f.links {
            active_on[l] += 1;
        }
    }
    let mut remaining = flows.iter().filter(|f| !f.links.is_empty()).count();
    // Zero-hop flows (same-switch, shouldn't occur) freeze at demand.
    for (i, f) in flows.iter().enumerate() {
        if f.links.is_empty() {
            rates[i] = f.flow.demand;
            frozen[i] = true;
        }
    }

    const EPS: f64 = 1e-12;
    while remaining > 0 {
        // The common increment is limited by link headroom shared among the
        // active flows on the link, and by each flow's remaining demand.
        let mut delta = f64::INFINITY;
        for l in 0..n_dir {
            if active_on[l] > 0 {
                delta = delta.min((cap[l] - load[l]) / active_on[l] as f64);
            }
        }
        for (i, f) in flows.iter().enumerate() {
            if !frozen[i] {
                delta = delta.min(f.flow.demand - rates[i]);
            }
        }
        if !delta.is_finite() || delta < 0.0 {
            break;
        }
        // Apply the increment.
        for (i, f) in flows.iter().enumerate() {
            if !frozen[i] {
                rates[i] += delta;
                for &l in &f.links {
                    load[l] += delta;
                }
            }
        }
        // Freeze flows on saturated links or at demand.
        let mut newly = Vec::new();
        for (i, f) in flows.iter().enumerate() {
            if frozen[i] {
                continue;
            }
            let bottlenecked = f
                .links
                .iter()
                .any(|&l| cap[l] - load[l] <= EPS.max(1e-9 * cap[l]));
            let satisfied = f.flow.demand - rates[i] <= EPS;
            if bottlenecked || satisfied {
                newly.push(i);
            }
        }
        if newly.is_empty() {
            // Numerical stall guard: freeze the most constrained flow.
            if let Some(i) = (0..flows.len()).find(|&i| !frozen[i]) {
                newly.push(i);
            } else {
                break;
            }
        }
        for i in newly {
            frozen[i] = true;
            remaining -= 1;
            for &l in &flows[i].links {
                active_on[l] -= 1;
            }
        }
    }
    let link_utilization = load
        .iter()
        .zip(cap.iter())
        .map(|(&l, &c)| if c > 0.0 { l / c } else { 0.0 })
        .collect();
    Allocation {
        rates,
        link_utilization,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flows::Flow;
    use dcn_graph::Graph;
    use dcn_model::Topology;

    /// Path graph 0-1-2 with H=4 (so demands don't clip the tests).
    fn line3() -> Topology {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        Topology::new(g, vec![4; 3], "line").unwrap()
    }

    fn routed(t: &Topology, specs: &[(u32, u32, f64)]) -> Vec<RoutedFlow> {
        let flows: Vec<Flow> = specs
            .iter()
            .map(|&(src, dst, demand)| Flow { src, dst, demand })
            .collect();
        crate::PathPolicy::EcmpHash.route_all(t, &flows, 1).unwrap()
    }

    #[test]
    fn two_flows_share_a_link() {
        let t = line3();
        let flows = routed(&t, &[(0, 1, 1.0), (0, 1, 1.0)]);
        let a = max_min_rates(&t, &flows);
        assert!((a.rates[0] - 0.5).abs() < 1e-9);
        assert!((a.rates[1] - 0.5).abs() < 1e-9);
        assert!((a.jain_index() - 1.0).abs() < 1e-9);
        assert!((a.max_utilization() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn parking_lot_is_fair() {
        // A(0->2), B(0->1), C(1->2): classic parking lot, all get 1/2.
        let t = line3();
        let flows = routed(&t, &[(0, 2, 1.0), (0, 1, 1.0), (1, 2, 1.0)]);
        let a = max_min_rates(&t, &flows);
        for r in &a.rates {
            assert!((r - 0.5).abs() < 1e-9, "rates {:?}", a.rates);
        }
    }

    #[test]
    fn demand_caps_respected() {
        // A small-demand flow frees capacity for the other.
        let t = line3();
        let flows = routed(&t, &[(0, 1, 0.25), (0, 1, 5.0)]);
        let a = max_min_rates(&t, &flows);
        assert!((a.rates[0] - 0.25).abs() < 1e-9);
        assert!((a.rates[1] - 0.75).abs() < 1e-9);
        let ws = a.worst_service(&flows);
        assert!((ws - 0.15).abs() < 1e-9); // 0.75 / 5.0
    }

    #[test]
    fn no_link_exceeds_capacity() {
        let t = line3();
        let flows = routed(
            &t,
            &[(0, 2, 1.0), (0, 2, 1.0), (2, 0, 1.0), (0, 1, 1.0), (1, 2, 1.0)],
        );
        let a = max_min_rates(&t, &flows);
        assert!(a.max_utilization() <= 1.0 + 1e-9);
        assert!(a.rates.iter().all(|&r| r >= 0.0));
    }

    #[test]
    fn max_min_property_holds() {
        // Every flow must have a bottleneck link that is saturated and on
        // which it has the maximal rate (the defining max-min property).
        let t = line3();
        let flows = routed(&t, &[(0, 2, 2.0), (0, 1, 2.0), (1, 2, 2.0), (1, 2, 2.0)]);
        let a = max_min_rates(&t, &flows);
        let graph = t.graph().coalesced();
        let n_dir = 2 * graph.m();
        let mut load = vec![0.0; n_dir];
        for (f, &r) in flows.iter().zip(a.rates.iter()) {
            for &l in &f.links {
                load[l] += r;
            }
        }
        for (i, f) in flows.iter().enumerate() {
            if a.rates[i] >= f.flow.demand - 1e-9 {
                continue; // demand-limited, no bottleneck needed
            }
            let has_bottleneck = f.links.iter().any(|&l| {
                let cap = graph.capacity((l / 2) as u32);
                let saturated = load[l] >= cap - 1e-6;
                let is_max = flows
                    .iter()
                    .enumerate()
                    .filter(|(_, g)| g.links.contains(&l))
                    .all(|(j, _)| a.rates[j] <= a.rates[i] + 1e-9);
                saturated && is_max
            });
            assert!(has_bottleneck, "flow {i} lacks a max-min bottleneck");
        }
    }

    #[test]
    fn empty_flow_list() {
        let t = line3();
        let a = max_min_rates(&t, &[]);
        assert!(a.rates.is_empty());
        assert_eq!(a.mean_rate(), 0.0);
        assert_eq!(a.jain_index(), 1.0);
    }
}
