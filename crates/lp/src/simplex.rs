//! Two-phase dense primal simplex.
//!
//! The tableau has one row per constraint plus an objective row, and one
//! column per variable (decision + slack/surplus + artificial) plus the
//! RHS. Pricing is Dantzig (most negative reduced cost); after a large
//! number of iterations the solver switches to Bland's rule, which
//! guarantees termination on degenerate problems.

use crate::{Cmp, LinearProgram, LpSolution, LpStatus};

const EPS: f64 = 1e-9;

struct Tableau {
    rows: usize, // constraint rows
    cols: usize, // total columns including RHS
    a: Vec<f64>, // (rows + 1) x cols, last row = objective
    basis: Vec<usize>,
}

impl Tableau {
    #[inline]
    fn at(&self, r: usize, c: usize) -> f64 {
        self.a[r * self.cols + c]
    }

    #[inline]
    fn set(&mut self, r: usize, c: usize, v: f64) {
        self.a[r * self.cols + c] = v;
    }

    #[inline]
    fn rhs_col(&self) -> usize {
        self.cols - 1
    }

    fn pivot(&mut self, pr: usize, pc: usize) {
        let cols = self.cols;
        let piv = self.at(pr, pc);
        debug_assert!(piv.abs() > EPS);
        let inv = 1.0 / piv;
        for c in 0..cols {
            self.a[pr * cols + c] *= inv;
        }
        for r in 0..=self.rows {
            if r == pr {
                continue;
            }
            let factor = self.at(r, pc);
            if factor.abs() <= EPS {
                continue;
            }
            for c in 0..cols {
                let v = self.a[pr * cols + c];
                self.a[r * cols + c] -= factor * v;
            }
        }
        self.basis[pr] = pc;
    }

    /// Runs simplex iterations on the current objective row until optimal
    /// or unbounded. `n_price` columns are eligible for entering.
    /// Returns the iteration count alongside the status so callers can
    /// attribute work to phase 1 vs phase 2.
    fn optimize(&mut self, n_price: usize) -> (LpStatus, u64) {
        let mut iters = 0usize;
        let bland_after = 50 * (self.rows + n_price).max(64);
        // Hoisted registry handles: the per-pivot cost stays at a couple
        // of relaxed atomic adds, no locks.
        let pivots_ctr = dcn_obs::counter!("lp.simplex.pivots");
        let degen_ctr = dcn_obs::counter!("lp.simplex.degenerate_pivots");
        let bland_ctr = dcn_obs::counter!("lp.simplex.bland_activations");
        let mut bland_counted = false;
        loop {
            iters += 1;
            if iters > bland_after && !bland_counted {
                bland_ctr.inc();
                bland_counted = true;
            }
            // Entering column.
            let obj_row = self.rows;
            let mut enter: Option<usize> = None;
            if iters <= bland_after {
                // Dantzig: most negative reduced cost.
                let mut best = -EPS;
                for c in 0..n_price {
                    let rc = self.at(obj_row, c);
                    if rc < best {
                        best = rc;
                        enter = Some(c);
                    }
                }
            } else {
                // Bland: smallest index with negative reduced cost.
                for c in 0..n_price {
                    if self.at(obj_row, c) < -EPS {
                        enter = Some(c);
                        break;
                    }
                }
            }
            let pc = match enter {
                Some(c) => c,
                None => return (LpStatus::Optimal, iters as u64 - 1),
            };
            // Ratio test.
            let rhs = self.rhs_col();
            let mut pr: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for r in 0..self.rows {
                let a = self.at(r, pc);
                if a > EPS {
                    let ratio = self.at(r, rhs) / a;
                    // Tie-break on smaller basis index (Bland-compatible).
                    if ratio < best_ratio - EPS
                        || (ratio < best_ratio + EPS
                            && pr.is_none_or(|p| self.basis[r] < self.basis[p]))
                    {
                        best_ratio = ratio;
                        pr = Some(r);
                    }
                }
            }
            match pr {
                Some(r) => {
                    pivots_ctr.inc();
                    if best_ratio <= EPS {
                        degen_ctr.inc();
                    }
                    self.pivot(r, pc)
                }
                None => return (LpStatus::Unbounded, iters as u64 - 1),
            }
        }
    }
}

/// Solves `lp` (maximize `c · x`, `x >= 0`).
pub(crate) fn solve(lp: &LinearProgram) -> LpSolution {
    let _span = dcn_obs::span!("lp.simplex.solve");
    let n = lp.n_vars();
    let m = lp.rows().len();

    // Count auxiliary columns. Rows with negative RHS are sign-flipped
    // first so that all RHS are non-negative.
    #[derive(Clone, Copy)]
    struct RowInfo {
        flip: bool,
        cmp: Cmp,
    }
    let mut infos = Vec::with_capacity(m);
    let mut n_slack = 0usize;
    let mut n_art = 0usize;
    for row in lp.rows() {
        let flip = row.rhs < 0.0;
        let cmp = match (row.cmp, flip) {
            (Cmp::Le, false) | (Cmp::Ge, true) => Cmp::Le,
            (Cmp::Ge, false) | (Cmp::Le, true) => Cmp::Ge,
            (Cmp::Eq, _) => Cmp::Eq,
        };
        match cmp {
            Cmp::Le => n_slack += 1,
            Cmp::Ge => {
                n_slack += 1;
                n_art += 1;
            }
            Cmp::Eq => n_art += 1,
        }
        infos.push(RowInfo { flip, cmp });
    }

    let total = n + n_slack + n_art;
    let cols = total + 1;
    let mut t = Tableau {
        rows: m,
        cols,
        a: vec![0.0; (m + 1) * cols],
        basis: vec![usize::MAX; m],
    };

    let mut slack_at = n;
    let mut art_at = n + n_slack;
    let art_start = n + n_slack;
    for (r, (row, info)) in lp.rows().iter().zip(infos.iter()).enumerate() {
        let sign = if info.flip { -1.0 } else { 1.0 };
        for &(j, c) in &row.coeffs {
            let cur = t.at(r, j);
            t.set(r, j, cur + sign * c);
        }
        t.set(r, cols - 1, sign * row.rhs);
        match info.cmp {
            Cmp::Le => {
                t.set(r, slack_at, 1.0);
                t.basis[r] = slack_at;
                slack_at += 1;
            }
            Cmp::Ge => {
                t.set(r, slack_at, -1.0);
                slack_at += 1;
                t.set(r, art_at, 1.0);
                t.basis[r] = art_at;
                art_at += 1;
            }
            Cmp::Eq => {
                t.set(r, art_at, 1.0);
                t.basis[r] = art_at;
                art_at += 1;
            }
        }
    }

    // Phase 1: minimize sum of artificials == maximize -sum.
    if n_art > 0 {
        // Objective row: +1 for each artificial (reduced costs of the
        // maximization of -sum(artificials)), then make basic columns
        // canonical by subtracting their rows.
        for c in art_start..total {
            t.set(m, c, 1.0);
        }
        for r in 0..m {
            if t.basis[r] >= art_start {
                for c in 0..cols {
                    let v = t.at(r, c);
                    let cur = t.at(m, c);
                    t.set(m, c, cur - v);
                }
            }
        }
        let (status, p1_iters) = t.optimize(total);
        dcn_obs::counter!("lp.simplex.phase1_iters").add(p1_iters);
        debug_assert_ne!(status, LpStatus::Unbounded, "phase 1 cannot be unbounded");
        let phase1 = -t.at(m, cols - 1);
        if phase1 > 1e-7 {
            return LpSolution {
                status: LpStatus::Infeasible,
                objective: 0.0,
                x: vec![0.0; n],
            };
        }
        // Drive remaining artificials out of the basis where possible.
        for r in 0..m {
            if t.basis[r] >= art_start {
                let pc = (0..art_start).find(|&c| t.at(r, c).abs() > EPS);
                if let Some(pc) = pc {
                    t.pivot(r, pc);
                }
                // If no pivot column exists the row is redundant (all-zero
                // over real variables); the artificial stays basic at 0.
            }
        }
    }

    // Phase 2: real objective. Reset objective row.
    for c in 0..cols {
        t.set(m, c, 0.0);
    }
    for (j, &cj) in lp.objective().iter().enumerate() {
        t.set(m, j, -cj);
    }
    // Zero out artificial columns so they can never re-enter.
    // (Pricing below excludes them, but keep reduced costs consistent.)
    for r in 0..m {
        let b = t.basis[r];
        if b < total {
            let factor = t.at(m, b);
            if factor.abs() > EPS {
                for c in 0..cols {
                    let v = t.at(r, c);
                    let cur = t.at(m, c);
                    t.set(m, c, cur - factor * v);
                }
            }
        }
    }
    let (status, p2_iters) = t.optimize(art_start); // price only real + slack columns
    dcn_obs::counter!("lp.simplex.phase2_iters").add(p2_iters);
    if status == LpStatus::Unbounded {
        return LpSolution {
            status,
            objective: f64::INFINITY,
            x: vec![0.0; n],
        };
    }

    let mut x = vec![0.0; n];
    for r in 0..m {
        let b = t.basis[r];
        if b < n {
            x[b] = t.at(r, cols - 1);
        }
    }
    let objective: f64 = lp
        .objective()
        .iter()
        .zip(x.iter())
        .map(|(c, v)| c * v)
        .sum();
    LpSolution {
        status: LpStatus::Optimal,
        objective,
        x,
    }
}

/// Solves a raw dense tableau problem: maximize `c · x` s.t. `A x <= b`,
/// `x >= 0`, with all `b >= 0`. A convenience for tests and simple callers
/// that avoids the [`LinearProgram`] builder.
pub fn solve_tableau(c: &[f64], a: &[Vec<f64>], b: &[f64]) -> LpSolution {
    let mut lp = LinearProgram::new(c.len());
    let obj: Vec<(usize, f64)> = c.iter().copied().enumerate().collect();
    lp.set_objective(&obj);
    for (row, &rhs) in a.iter().zip(b.iter()) {
        let coeffs: Vec<(usize, f64)> = row.iter().copied().enumerate().collect();
        lp.add_constraint(&coeffs, Cmp::Le, rhs);
    }
    lp.solve()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_tableau_convenience() {
        let sol = solve_tableau(
            &[1.0, 1.0],
            &[vec![1.0, 0.0], vec![0.0, 1.0]],
            &[3.0, 4.0],
        );
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.objective - 7.0).abs() < 1e-9);
    }

    #[test]
    fn redundant_equality_rows() {
        // x + y = 2 stated twice plus x = 1: solution x=1, y=1.
        let mut lp = LinearProgram::new(2);
        lp.set_objective(&[(1, 1.0)]);
        lp.add_constraint(&[(0, 1.0), (1, 1.0)], Cmp::Eq, 2.0);
        lp.add_constraint(&[(0, 1.0), (1, 1.0)], Cmp::Eq, 2.0);
        lp.add_constraint(&[(0, 1.0)], Cmp::Eq, 1.0);
        let sol = lp.solve();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.x[0] - 1.0).abs() < 1e-8);
        assert!((sol.x[1] - 1.0).abs() < 1e-8);
    }
}
