//! Two-phase dense primal simplex.
//!
//! The tableau has one row per constraint plus an objective row, and one
//! column per variable (decision + slack/surplus + artificial) plus the
//! RHS. Pricing is Dantzig (most negative reduced cost); after a large
//! number of iterations the solver switches to Bland's rule, which
//! guarantees termination on degenerate problems.
//!
//! Both phases meter a [`dcn_guard::Budget`]: one tick per pivot
//! iteration, so a deadline or iteration cap turns a pathological solve
//! into a typed [`LpError::Budget`] instead of a multi-minute stall.

use crate::{Cmp, LinearProgram, LpError, LpSolution, LpStatus};
use dcn_guard::tol::approx_zero;
use dcn_guard::{validate, Budget, BudgetMeter};

const EPS: f64 = 1e-9;
/// Minimum magnitude for a ratio-test pivot element. Accumulated
/// cancellation noise in the tableau sits just above `EPS`; pivoting on it
/// (dividing the row by ~1e-8) amplifies that noise into O(1) primal error
/// on degenerate problems. Entries below this are treated as zero.
const PIVOT_TOL: f64 = 1e-7;

/// Per-row normalization applied at tableau setup: rows with negative RHS
/// are sign-flipped so all RHS are non-negative.
#[derive(Clone, Copy)]
struct RowInfo {
    flip: bool,
    cmp: Cmp,
}

struct Tableau {
    rows: usize, // constraint rows
    cols: usize, // total columns including RHS
    a: Vec<f64>, // (rows + 1) x cols, last row = objective
    basis: Vec<usize>,
}

impl Tableau {
    #[inline]
    fn at(&self, r: usize, c: usize) -> f64 {
        self.a[r * self.cols + c]
    }

    #[inline]
    fn set(&mut self, r: usize, c: usize, v: f64) {
        self.a[r * self.cols + c] = v;
    }

    #[inline]
    fn rhs_col(&self) -> usize {
        self.cols - 1
    }

    fn pivot(&mut self, pr: usize, pc: usize) {
        let cols = self.cols;
        let piv = self.at(pr, pc);
        debug_assert!(piv.abs() > EPS);
        let inv = 1.0 / piv;
        for c in 0..cols {
            self.a[pr * cols + c] *= inv;
        }
        for r in 0..=self.rows {
            if r == pr {
                continue;
            }
            let factor = self.at(r, pc);
            if factor.abs() <= EPS {
                continue;
            }
            for c in 0..cols {
                let v = self.a[pr * cols + c];
                self.a[r * cols + c] -= factor * v;
            }
        }
        self.basis[pr] = pc;
    }

    /// Runs simplex iterations on the current objective row until optimal
    /// or unbounded. `n_price` columns are eligible for entering.
    /// Returns the iteration count alongside the status so callers can
    /// attribute work to phase 1 vs phase 2. One budget tick per pivot.
    ///
    /// `refresh` carries the pristine standard-form rows plus the phase
    /// objective; when present the tableau is refactorized from them every
    /// ~`rows` pivots, so pivot decisions are always made within one
    /// refresh period of a numerically clean tableau. Without this, long
    /// degenerate runs (thousands of pivots on path LPs) accumulate enough
    /// drift to admit linearly dependent columns into the basis.
    fn optimize(
        &mut self,
        n_price: usize,
        meter: &mut BudgetMeter<'_>,
        refresh: Option<(&[f64], &[f64])>,
    ) -> Result<(LpStatus, u64), LpError> {
        let mut iters = 0usize;
        let bland_after = 50 * (self.rows + n_price).max(64);
        let refresh_every = self.rows.max(64);
        // Hoisted registry handles: the per-pivot cost stays at a couple
        // of relaxed atomic adds, no locks.
        let pivots_ctr = dcn_obs::counter!(dcn_obs::names::LP_SIMPLEX_PIVOTS);
        let degen_ctr = dcn_obs::counter!(dcn_obs::names::LP_SIMPLEX_DEGENERATE_PIVOTS);
        let bland_ctr = dcn_obs::counter!(dcn_obs::names::LP_SIMPLEX_BLAND_ACTIVATIONS);
        let refactor_ctr = dcn_obs::counter!(dcn_obs::names::LP_SIMPLEX_REFACTORIZATIONS);
        let mut bland_counted = false;
        loop {
            meter.tick()?;
            iters += 1;
            if iters > bland_after && !bland_counted {
                bland_ctr.inc();
                bland_counted = true;
            }
            if let Some((pristine, objective)) = refresh {
                if iters.is_multiple_of(refresh_every) {
                    self.refactor(pristine, objective).map_err(|col| {
                        LpError::Certificate(dcn_guard::CertError::SingularBasis { col })
                    })?;
                    refactor_ctr.inc();
                }
            }
            // Entering column.
            let obj_row = self.rows;
            let mut enter: Option<usize> = None;
            if iters <= bland_after {
                // Dantzig: most negative reduced cost.
                let mut best = -EPS;
                for c in 0..n_price {
                    let rc = self.at(obj_row, c);
                    if rc < best {
                        best = rc;
                        enter = Some(c);
                    }
                }
            } else {
                // Bland: smallest index with negative reduced cost.
                for c in 0..n_price {
                    if self.at(obj_row, c) < -EPS {
                        enter = Some(c);
                        break;
                    }
                }
            }
            let pc = match enter {
                Some(c) => c,
                None => return Ok((LpStatus::Optimal, iters as u64 - 1)),
            };
            // Two-pass ratio test. Pass 1: minimum ratio over eligible
            // pivots (magnitude above PIVOT_TOL, so tableau noise never
            // becomes a divisor).
            let rhs = self.rhs_col();
            let mut best_ratio = f64::INFINITY;
            for r in 0..self.rows {
                let a = self.at(r, pc);
                if a > PIVOT_TOL {
                    best_ratio = best_ratio.min(self.at(r, rhs) / a);
                }
            }
            // Pass 2 over near-ties: smallest basis index (the
            // anti-cycling tie-break; a stability tie-break on pivot
            // magnitude stalls on these highly degenerate path LPs).
            let mut pr: Option<usize> = None;
            if best_ratio.is_finite() {
                for r in 0..self.rows {
                    let a = self.at(r, pc);
                    if a > PIVOT_TOL
                        && self.at(r, rhs) / a <= best_ratio + EPS
                        && pr.is_none_or(|p| self.basis[r] < self.basis[p])
                    {
                        pr = Some(r);
                    }
                }
            }
            match pr {
                Some(r) => {
                    pivots_ctr.inc();
                    if best_ratio <= EPS {
                        degen_ctr.inc();
                    }
                    self.pivot(r, pc)
                }
                None => return Ok((LpStatus::Unbounded, iters as u64 - 1)),
            }
        }
    }

    /// Rebuilds the tableau from the pristine standard-form rows for the
    /// current basis (Gauss–Jordan with partial pivoting), discarding the
    /// floating-point drift accumulated over the pivot history, and
    /// installs `objective` as a freshly canonicalized objective row.
    /// Rank-revealing: returns the basis column that cannot be reduced to
    /// a unit vector if the recorded basis is numerically singular.
    fn refactor(&mut self, pristine: &[f64], objective: &[f64]) -> Result<(), usize> {
        let cols = self.cols;
        let m = self.rows;
        self.a[..m * cols].copy_from_slice(pristine);
        for c in 0..cols {
            self.a[m * cols + c] = 0.0;
        }
        for (j, &cj) in objective.iter().enumerate() {
            self.a[m * cols + j] = -cj;
        }
        let basis_cols = std::mem::take(&mut self.basis);
        let mut owned = vec![false; m];
        let mut new_basis = vec![usize::MAX; m];
        for &bc in &basis_cols {
            // Partial pivoting: the free row with the largest magnitude.
            let mut pr = usize::MAX;
            let mut best = 1e-10;
            for (r, &taken) in owned.iter().enumerate() {
                if !taken {
                    let v = self.at(r, bc).abs();
                    if v > best {
                        best = v;
                        pr = r;
                    }
                }
            }
            if pr == usize::MAX {
                self.basis = basis_cols;
                return Err(bc);
            }
            owned[pr] = true;
            new_basis[pr] = bc;
            let inv = 1.0 / self.at(pr, bc);
            for c in 0..cols {
                self.a[pr * cols + c] *= inv;
            }
            for r in 0..=m {
                if r == pr {
                    continue;
                }
                let factor = self.at(r, bc);
                // Eliminating sub-EPS factors would only write noise already
                // below the validation tolerance into the row.
                if !approx_zero(factor, EPS) {
                    for c in 0..cols {
                        let v = self.a[pr * cols + c];
                        self.a[r * cols + c] -= factor * v;
                    }
                }
            }
        }
        self.basis = new_basis;
        Ok(())
    }
}

/// Solves `lp` (maximize `c · x`, `x >= 0`) under `budget`. When
/// `validate_certs` is set, the returned optimum is checked against its
/// certificates (finiteness, primal feasibility, duality gap) before being
/// handed back.
pub(crate) fn solve(
    lp: &LinearProgram,
    budget: &Budget,
    validate_certs: bool,
) -> Result<LpSolution, LpError> {
    let _span = dcn_obs::span!(dcn_obs::names::LP_SIMPLEX_SOLVE);
    let mut meter = budget.meter();
    let n = lp.n_vars();
    let m = lp.rows().len();

    // Count auxiliary columns. Rows with negative RHS are sign-flipped
    // first so that all RHS are non-negative.
    let mut infos = Vec::with_capacity(m);
    let mut n_slack = 0usize;
    let mut n_art = 0usize;
    for row in lp.rows() {
        let flip = row.rhs < 0.0;
        let cmp = match (row.cmp, flip) {
            (Cmp::Le, false) | (Cmp::Ge, true) => Cmp::Le,
            (Cmp::Ge, false) | (Cmp::Le, true) => Cmp::Ge,
            (Cmp::Eq, _) => Cmp::Eq,
        };
        match cmp {
            Cmp::Le => n_slack += 1,
            Cmp::Ge => {
                n_slack += 1;
                n_art += 1;
            }
            Cmp::Eq => n_art += 1,
        }
        infos.push(RowInfo { flip, cmp });
    }

    let total = n + n_slack + n_art;
    let cols = total + 1;
    let mut t = Tableau {
        rows: m,
        cols,
        a: vec![0.0; (m + 1) * cols],
        basis: vec![usize::MAX; m],
    };

    let mut slack_at = n;
    let mut art_at = n + n_slack;
    let art_start = n + n_slack;
    // Identity column introduced for each row (slack for Le, artificial
    // for Ge/Eq): its phase-2 reduced cost is the row's dual value, used
    // for the duality-gap certificate below.
    let mut id_col = vec![0usize; m];
    for (r, (row, info)) in lp.rows().iter().zip(infos.iter()).enumerate() {
        let sign = if info.flip { -1.0 } else { 1.0 };
        for &(j, c) in &row.coeffs {
            let cur = t.at(r, j);
            t.set(r, j, cur + sign * c);
        }
        t.set(r, cols - 1, sign * row.rhs);
        match info.cmp {
            Cmp::Le => {
                t.set(r, slack_at, 1.0);
                t.basis[r] = slack_at;
                id_col[r] = slack_at;
                slack_at += 1;
            }
            Cmp::Ge => {
                t.set(r, slack_at, -1.0);
                slack_at += 1;
                t.set(r, art_at, 1.0);
                t.basis[r] = art_at;
                id_col[r] = art_at;
                art_at += 1;
            }
            Cmp::Eq => {
                t.set(r, art_at, 1.0);
                t.basis[r] = art_at;
                id_col[r] = art_at;
                art_at += 1;
            }
        }
    }

    // Pristine copy of the standard-form constraint rows: refactorization
    // rebuilds the tableau from these to shed accumulated rounding drift.
    let pristine = t.a[..m * cols].to_vec();

    // Phase 1: minimize sum of artificials == maximize -sum.
    if n_art > 0 {
        // Objective row: +1 for each artificial (reduced costs of the
        // maximization of -sum(artificials)), then make basic columns
        // canonical by subtracting their rows.
        for c in art_start..total {
            t.set(m, c, 1.0);
        }
        for r in 0..m {
            if t.basis[r] >= art_start {
                for c in 0..cols {
                    let v = t.at(r, c);
                    let cur = t.at(m, c);
                    t.set(m, c, cur - v);
                }
            }
        }
        let mut p1_obj = vec![0.0; total];
        p1_obj[art_start..total].fill(-1.0);
        let (status, p1_iters) = t.optimize(total, &mut meter, Some((&pristine, &p1_obj)))?;
        dcn_obs::counter!(dcn_obs::names::LP_SIMPLEX_PHASE1_ITERS).add(p1_iters);
        debug_assert_ne!(status, LpStatus::Unbounded, "phase 1 cannot be unbounded");
        let phase1 = -t.at(m, cols - 1);
        if phase1 > 1e-7 {
            return Ok(LpSolution {
                status: LpStatus::Infeasible,
                objective: 0.0,
                x: vec![0.0; n],
            });
        }
        // Drive remaining artificials out of the basis where possible.
        for r in 0..m {
            if t.basis[r] >= art_start {
                let pc = (0..art_start).find(|&c| t.at(r, c).abs() > PIVOT_TOL);
                if let Some(pc) = pc {
                    t.pivot(r, pc);
                }
                // If no pivot column exists the row is redundant (all-zero
                // over real variables); the artificial stays basic at 0.
            }
        }
    }

    // Phase 2: rebuild the tableau from pristine data with the real
    // objective. Refactorization both canonicalizes the objective row over
    // the phase-1 basis and discards phase-1 rounding drift. (Artificial
    // columns never re-enter: pricing below excludes them.)
    let singular =
        |col: usize| LpError::Certificate(dcn_guard::CertError::SingularBasis { col });
    t.refactor(&pristine, lp.objective()).map_err(singular)?;
    let mut resumes = 0u32;
    let status = loop {
        // Price real + slack columns only; periodic refreshes rebuild the
        // tableau from pristine data mid-run.
        let (status, p2_iters) =
            t.optimize(art_start, &mut meter, Some((&pristine, lp.objective())))?;
        dcn_obs::counter!(dcn_obs::names::LP_SIMPLEX_PHASE2_ITERS).add(p2_iters);
        if status != LpStatus::Optimal {
            break status;
        }
        // Refresh the tableau for the final basis. If the drift-free
        // reduced costs still price out non-negative the basis is truly
        // optimal; otherwise drift mis-terminated the run — keep pivoting
        // from the refreshed (numerically clean) tableau.
        t.refactor(&pristine, lp.objective()).map_err(singular)?;
        dcn_obs::counter!(dcn_obs::names::LP_SIMPLEX_REFACTORIZATIONS).inc();
        if (0..art_start).all(|c| t.at(m, c) >= -EPS) {
            break status;
        }
        resumes += 1;
        if resumes > 20 {
            // Never observed; a backstop so a pathological oscillation
            // cannot hang an unbudgeted solve. The certificate checks
            // below judge whatever this basis yields.
            break status;
        }
        dcn_obs::counter!(dcn_obs::names::LP_SIMPLEX_REFACTOR_RESUMES).inc();
    };
    if status == LpStatus::Unbounded {
        return Ok(LpSolution {
            status,
            objective: f64::INFINITY,
            x: vec![0.0; n],
        });
    }

    let mut x = vec![0.0; n];
    for r in 0..m {
        let b = t.basis[r];
        if b < n {
            x[b] = t.at(r, cols - 1);
        }
    }
    let objective: f64 = lp
        .objective()
        .iter()
        .zip(x.iter())
        .map(|(c, v)| c * v)
        .sum();
    let sol = LpSolution {
        status: LpStatus::Optimal,
        objective,
        x,
    };
    if validate_certs {
        verify_certificate(lp, &sol, &t, &infos, &id_col).map_err(LpError::Certificate)?;
    }
    Ok(sol)
}

/// Post-solve certificate checks for an `Optimal` solution: finiteness,
/// primal feasibility of every constraint, and the strong-duality gap
/// recovered from the final tableau's reduced costs.
fn verify_certificate(
    lp: &LinearProgram,
    sol: &LpSolution,
    t: &Tableau,
    infos: &[RowInfo],
    id_col: &[usize],
) -> Result<(), dcn_guard::CertError> {
    const TOL: f64 = 1e-6;
    validate::ensure_finite("lp solution", &sol.x)?;
    validate::ensure_finite_scalar("lp objective", sol.objective)?;
    let m = lp.rows().len();
    // Primal feasibility.
    for (r, row) in lp.rows().iter().enumerate() {
        let lhs: f64 = row.coeffs.iter().map(|&(j, c)| c * sol.x[j]).sum();
        let slack_tol = TOL * (1.0 + row.rhs.abs());
        let residual = match row.cmp {
            Cmp::Le => lhs - row.rhs,
            Cmp::Ge => row.rhs - lhs,
            Cmp::Eq => (lhs - row.rhs).abs(),
        };
        if residual > slack_tol {
            dcn_obs::counter!(dcn_obs::names::GUARD_VALIDATE_FAILURES).inc();
            return Err(dcn_guard::CertError::ConstraintViolated { row: r, residual });
        }
    }
    // Strong duality: the reduced cost of each row's identity column is
    // its dual value; the dual objective over the (sign-flipped) RHS must
    // equal the primal objective at optimality.
    let obj_row = t.rows;
    let dual: f64 = (0..m)
        .map(|r| {
            let y = t.at(obj_row, id_col[r]);
            let sign = if infos[r].flip { -1.0 } else { 1.0 };
            y * sign * lp.rows()[r].rhs
        })
        .sum();
    validate::check_duality_gap(sol.objective, dual, TOL)
}

/// Solves a raw dense tableau problem: maximize `c · x` s.t. `A x <= b`,
/// `x >= 0`, with all `b >= 0`. A convenience for tests and simple callers
/// that avoids the [`LinearProgram`] builder.
pub fn solve_tableau(
    c: &[f64],
    a: &[Vec<f64>],
    b: &[f64],
    budget: &Budget,
) -> Result<LpSolution, LpError> {
    let mut lp = LinearProgram::new(c.len());
    let obj: Vec<(usize, f64)> = c.iter().copied().enumerate().collect();
    lp.set_objective(&obj);
    for (row, &rhs) in a.iter().zip(b.iter()) {
        let coeffs: Vec<(usize, f64)> = row.iter().copied().enumerate().collect();
        lp.add_constraint(&coeffs, Cmp::Le, rhs);
    }
    lp.solve(budget)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_tableau_convenience() {
        let sol = solve_tableau(
            &[1.0, 1.0],
            &[vec![1.0, 0.0], vec![0.0, 1.0]],
            &[3.0, 4.0],
            &Budget::unlimited(),
        )
        .unwrap();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.objective - 7.0).abs() < 1e-9);
    }

    #[test]
    fn redundant_equality_rows() {
        // x + y = 2 stated twice plus x = 1: solution x=1, y=1.
        let mut lp = LinearProgram::new(2);
        lp.set_objective(&[(1, 1.0)]);
        lp.add_constraint(&[(0, 1.0), (1, 1.0)], Cmp::Eq, 2.0);
        lp.add_constraint(&[(0, 1.0), (1, 1.0)], Cmp::Eq, 2.0);
        lp.add_constraint(&[(0, 1.0)], Cmp::Eq, 1.0);
        let sol = lp.solve(&Budget::unlimited()).unwrap();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.x[0] - 1.0).abs() < 1e-8);
        assert!((sol.x[1] - 1.0).abs() < 1e-8);
    }
}
