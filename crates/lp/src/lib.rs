#![forbid(unsafe_code)]
//! A small, dependency-free linear-programming solver.
//!
//! The paper solves path-based multi-commodity flow LPs with Gurobi; no
//! comparable solver is available as an offline crate, so this workspace
//! carries its own. The implementation is a classic dense **two-phase
//! primal simplex** on the full tableau with Dantzig pricing and a Bland's
//! rule fallback for anti-cycling. It is meant for the *exact* solves on
//! small instances (hundreds of variables/constraints) that ground-truth
//! the scalable FPTAS in `dcn-mcf`; it is not a sparse industrial solver.
//!
//! Model: maximize `c · x` subject to linear constraints and `x >= 0`.
//!
//! ```
//! use dcn_guard::prelude::*;
//! use dcn_lp::{Cmp, LinearProgram, LpStatus};
//! // maximize 3x + 2y  s.t.  x + y <= 4, x <= 2
//! let mut lp = LinearProgram::new(2);
//! lp.set_objective(&[(0, 3.0), (1, 2.0)]);
//! lp.add_constraint(&[(0, 1.0), (1, 1.0)], Cmp::Le, 4.0);
//! lp.add_constraint(&[(0, 1.0)], Cmp::Le, 2.0);
//! let sol = lp.solve(&unlimited()).unwrap();
//! assert_eq!(sol.status, LpStatus::Optimal);
//! assert!((sol.objective - 10.0).abs() < 1e-9); // x=2, y=2
//! ```

#![warn(missing_docs)]

mod simplex;

pub use simplex::solve_tableau;

use dcn_guard::{Budget, BudgetError, CertError};

/// A failure of the guarded solve path ([`LinearProgram::solve`]).
///
/// `Infeasible`/`Unbounded` are *outcomes*, reported through
/// [`LpSolution::status`]; this enum covers only the cases where no usable
/// solution object exists at all.
#[derive(Debug, Clone, PartialEq)]
pub enum LpError {
    /// The execution budget (deadline, iteration cap, or cancellation)
    /// was exhausted mid-solve.
    Budget(BudgetError),
    /// The program contains a non-finite coefficient or RHS; solving it
    /// would only propagate NaN/inf into the tableau.
    BadInput(CertError),
    /// The solver claimed optimality but the solution failed a post-solve
    /// certificate check (feasibility residual or duality gap).
    Certificate(CertError),
}

impl std::fmt::Display for LpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LpError::Budget(e) => write!(f, "lp solve aborted: {e}"),
            LpError::BadInput(e) => write!(f, "lp input rejected: {e}"),
            LpError::Certificate(e) => write!(f, "lp certificate failed: {e}"),
        }
    }
}

impl std::error::Error for LpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LpError::Budget(e) => Some(e),
            LpError::BadInput(e) | LpError::Certificate(e) => Some(e),
        }
    }
}

impl From<BudgetError> for LpError {
    fn from(e: BudgetError) -> Self {
        LpError::Budget(e)
    }
}

/// Constraint comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmp {
    /// Less-than-or-equal constraint.
    Le,
    /// Greater-than-or-equal constraint.
    Ge,
    /// Equality constraint.
    Eq,
}

/// Solver outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpStatus {
    /// An optimal solution was found.
    Optimal,
    /// No feasible point exists.
    Infeasible,
    /// The objective is unbounded above.
    Unbounded,
}

/// A linear program: maximize `c · x`, `x >= 0`, subject to constraints.
#[derive(Debug, Clone)]
pub struct LinearProgram {
    n_vars: usize,
    objective: Vec<f64>,
    rows: Vec<ConstraintRow>,
}

#[derive(Debug, Clone)]
struct ConstraintRow {
    coeffs: Vec<(usize, f64)>,
    cmp: Cmp,
    rhs: f64,
}

/// Solution of a [`LinearProgram`].
#[derive(Debug, Clone)]
pub struct LpSolution {
    /// Solver outcome.
    pub status: LpStatus,
    /// Objective value (meaningful only when `status == Optimal`).
    pub objective: f64,
    /// Primal variable values (meaningful only when `status == Optimal`).
    pub x: Vec<f64>,
}

impl LinearProgram {
    /// Creates a program over `n_vars` non-negative variables with a zero
    /// objective.
    pub fn new(n_vars: usize) -> Self {
        LinearProgram {
            n_vars,
            objective: vec![0.0; n_vars],
            rows: Vec::new(),
        }
    }

    /// Number of decision variables.
    pub fn n_vars(&self) -> usize {
        self.n_vars
    }

    /// Number of constraints.
    pub fn n_constraints(&self) -> usize {
        self.rows.len()
    }

    /// Sets objective coefficients (sparse; unspecified entries stay 0).
    /// Panics if a variable index is out of range.
    pub fn set_objective(&mut self, coeffs: &[(usize, f64)]) {
        for &(j, c) in coeffs {
            assert!(j < self.n_vars, "objective variable {j} out of range");
            self.objective[j] = c;
        }
    }

    /// Adds a sparse constraint row. Panics if a variable index is out of
    /// range. Duplicate indices are summed.
    pub fn add_constraint(&mut self, coeffs: &[(usize, f64)], cmp: Cmp, rhs: f64) {
        let mut acc: Vec<(usize, f64)> = Vec::with_capacity(coeffs.len());
        for &(j, c) in coeffs {
            assert!(j < self.n_vars, "constraint variable {j} out of range");
            if let Some(e) = acc.iter_mut().find(|(i, _)| *i == j) {
                e.1 += c;
            } else {
                acc.push((j, c));
            }
        }
        self.rows.push(ConstraintRow {
            coeffs: acc,
            cmp,
            rhs,
        });
    }

    /// Solves the program with two-phase primal simplex under an execution
    /// [`Budget`].
    ///
    /// The input is screened for NaN/inf coefficients up front (rejected
    /// as [`LpError::BadInput`]); the simplex loop ticks the budget once
    /// per pivot, so a deadline, iteration cap, or cancellation surfaces
    /// as [`LpError::Budget`] instead of a stall. When certificate
    /// validation is enabled (`DCN_VALIDATE`, or by default in debug
    /// builds) the returned optimum is re-checked against the constraints
    /// and the duality gap.
    ///
    /// ```
    /// use dcn_guard::Budget;
    /// use dcn_lp::{Cmp, LinearProgram, LpError};
    /// let mut lp = LinearProgram::new(1);
    /// lp.set_objective(&[(0, 1.0)]);
    /// lp.add_constraint(&[(0, 1.0)], Cmp::Le, 2.0);
    /// let sol = lp.solve(&Budget::unlimited()).unwrap();
    /// assert!((sol.objective - 2.0).abs() < 1e-9);
    /// ```
    pub fn solve(&self, budget: &Budget) -> Result<LpSolution, LpError> {
        for (j, &c) in self.objective.iter().enumerate() {
            if !c.is_finite() {
                return Err(LpError::BadInput(CertError::NotFinite {
                    context: "objective coefficient",
                    value: self.objective[j],
                }));
            }
        }
        for row in &self.rows {
            if !row.rhs.is_finite() {
                return Err(LpError::BadInput(CertError::NotFinite {
                    context: "constraint rhs",
                    value: row.rhs,
                }));
            }
            for &(_, c) in &row.coeffs {
                if !c.is_finite() {
                    return Err(LpError::BadInput(CertError::NotFinite {
                        context: "constraint coefficient",
                        value: c,
                    }));
                }
            }
        }
        simplex::solve(self, budget, dcn_guard::validation_enabled())
    }

    pub(crate) fn rows(&self) -> &[ConstraintRow] {
        &self.rows
    }

    pub(crate) fn objective(&self) -> &[f64] {
        &self.objective
    }
}



#[cfg(test)]
mod tests {
    use super::*;

    #[allow(clippy::type_complexity)]
    fn solve3(
        n: usize,
        obj: &[(usize, f64)],
        cons: &[(&[(usize, f64)], Cmp, f64)],
    ) -> LpSolution {
        let mut lp = LinearProgram::new(n);
        lp.set_objective(obj);
        for (c, cmp, b) in cons {
            lp.add_constraint(c, *cmp, *b);
        }
        lp.solve(&Budget::unlimited()).unwrap()
    }

    #[test]
    fn basic_maximization() {
        // max 3x + 5y; x <= 4; 2y <= 12; 3x + 2y <= 18 → z = 36 at (2, 6).
        let sol = solve3(
            2,
            &[(0, 3.0), (1, 5.0)],
            &[
                (&[(0, 1.0)], Cmp::Le, 4.0),
                (&[(1, 2.0)], Cmp::Le, 12.0),
                (&[(0, 3.0), (1, 2.0)], Cmp::Le, 18.0),
            ],
        );
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.objective - 36.0).abs() < 1e-9);
        assert!((sol.x[0] - 2.0).abs() < 1e-9);
        assert!((sol.x[1] - 6.0).abs() < 1e-9);
    }

    #[test]
    fn ge_and_eq_constraints() {
        // max x + y; x + y <= 10; x >= 3; y = 2 → z = 5+... x=8,y=2 → 10.
        let sol = solve3(
            2,
            &[(0, 1.0), (1, 1.0)],
            &[
                (&[(0, 1.0), (1, 1.0)], Cmp::Le, 10.0),
                (&[(0, 1.0)], Cmp::Ge, 3.0),
                (&[(1, 1.0)], Cmp::Eq, 2.0),
            ],
        );
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.objective - 10.0).abs() < 1e-9);
        assert!((sol.x[1] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn infeasible_detected() {
        let sol = solve3(
            1,
            &[(0, 1.0)],
            &[
                (&[(0, 1.0)], Cmp::Le, 1.0),
                (&[(0, 1.0)], Cmp::Ge, 2.0),
            ],
        );
        assert_eq!(sol.status, LpStatus::Infeasible);
    }

    #[test]
    fn unbounded_detected() {
        let sol = solve3(2, &[(0, 1.0)], &[(&[(1, 1.0)], Cmp::Le, 5.0)]);
        assert_eq!(sol.status, LpStatus::Unbounded);
    }

    #[test]
    fn negative_rhs_handled() {
        // x - y <= -2  with max x, x + y <= 10 → y >= x + 2; best x = 4.
        let sol = solve3(
            2,
            &[(0, 1.0)],
            &[
                (&[(0, 1.0), (1, -1.0)], Cmp::Le, -2.0),
                (&[(0, 1.0), (1, 1.0)], Cmp::Le, 10.0),
            ],
        );
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.objective - 4.0).abs() < 1e-9);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Many redundant constraints through the same vertex.
        let sol = solve3(
            2,
            &[(0, 1.0), (1, 1.0)],
            &[
                (&[(0, 1.0)], Cmp::Le, 1.0),
                (&[(1, 1.0)], Cmp::Le, 1.0),
                (&[(0, 1.0), (1, 1.0)], Cmp::Le, 2.0),
                (&[(0, 2.0), (1, 2.0)], Cmp::Le, 4.0),
                (&[(0, 1.0), (1, 2.0)], Cmp::Le, 3.0),
                (&[(0, 2.0), (1, 1.0)], Cmp::Le, 3.0),
            ],
        );
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.objective - 2.0).abs() < 1e-9);
    }

    #[test]
    fn zero_objective_feasibility_check() {
        let sol = solve3(1, &[], &[(&[(0, 1.0)], Cmp::Eq, 3.0)]);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.x[0] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn duplicate_indices_summed() {
        // x + x <= 4 means 2x <= 4.
        let sol = solve3(1, &[(0, 1.0)], &[(&[(0, 1.0), (0, 1.0)], Cmp::Le, 4.0)]);
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.objective - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_var_panics() {
        let mut lp = LinearProgram::new(1);
        lp.set_objective(&[(3, 1.0)]);
    }

    #[test]
    fn budget_cap_aborts_solve() {
        // An LP that needs several pivots, but a cap of 1 tick.
        let mut lp = LinearProgram::new(2);
        lp.set_objective(&[(0, 3.0), (1, 5.0)]);
        lp.add_constraint(&[(0, 1.0)], Cmp::Le, 4.0);
        lp.add_constraint(&[(1, 2.0)], Cmp::Le, 12.0);
        lp.add_constraint(&[(0, 3.0), (1, 2.0)], Cmp::Le, 18.0);
        let budget = Budget::unlimited().with_iter_cap(1);
        assert!(matches!(
            lp.solve(&budget),
            Err(LpError::Budget(BudgetError::IterationsExceeded { cap: 1 }))
        ));
        // With room to finish, the same program solves.
        let sol = lp.solve(&Budget::unlimited()).unwrap();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.objective - 36.0).abs() < 1e-9);
    }

    #[test]
    fn expired_deadline_aborts_solve() {
        let mut lp = LinearProgram::new(1);
        lp.set_objective(&[(0, 1.0)]);
        lp.add_constraint(&[(0, 1.0)], Cmp::Le, 1.0);
        let budget = Budget::unlimited().with_wall(std::time::Duration::ZERO);
        assert!(matches!(
            lp.solve(&budget),
            Err(LpError::Budget(BudgetError::DeadlineExceeded { .. }))
        ));
    }

    #[test]
    fn non_finite_input_rejected() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let mut lp = LinearProgram::new(1);
            lp.set_objective(&[(0, bad)]);
            assert!(matches!(
                lp.solve(&Budget::unlimited()),
                Err(LpError::BadInput(_))
            ));

            let mut lp = LinearProgram::new(1);
            lp.add_constraint(&[(0, 1.0)], Cmp::Le, bad);
            assert!(matches!(
                lp.solve(&Budget::unlimited()),
                Err(LpError::BadInput(_))
            ));

            let mut lp = LinearProgram::new(1);
            lp.add_constraint(&[(0, bad)], Cmp::Le, 1.0);
            assert!(matches!(
                lp.solve(&Budget::unlimited()),
                Err(LpError::BadInput(_))
            ));
        }
    }

    #[test]
    fn repeated_solves_agree() {
        let mut lp = LinearProgram::new(2);
        lp.set_objective(&[(0, 1.0), (1, 1.0)]);
        lp.add_constraint(&[(0, 1.0), (1, 1.0)], Cmp::Le, 10.0);
        lp.add_constraint(&[(0, 1.0)], Cmp::Ge, 3.0);
        lp.add_constraint(&[(1, 1.0)], Cmp::Eq, 2.0);
        let plain = lp.solve(&Budget::unlimited()).unwrap();
        let guarded = lp.solve(&Budget::unlimited()).unwrap();
        assert_eq!(plain.status, guarded.status);
        assert!((plain.objective - guarded.objective).abs() < 1e-9);
    }

    #[test]
    fn concurrent_flow_shape() {
        // Miniature of the MCF LP: maximize theta with two paths sharing an
        // edge. Variables: f1, f2, theta. Demands 1 each:
        //   f1 - theta >= 0; f2 - theta >= 0; f1 + f2 <= 1.
        // Optimal theta = 0.5.
        let sol = solve3(
            3,
            &[(2, 1.0)],
            &[
                (&[(0, 1.0), (2, -1.0)], Cmp::Ge, 0.0),
                (&[(1, 1.0), (2, -1.0)], Cmp::Ge, 0.0),
                (&[(0, 1.0), (1, 1.0)], Cmp::Le, 1.0),
            ],
        );
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.objective - 0.5).abs() < 1e-9);
    }
}
