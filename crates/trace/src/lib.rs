#![forbid(unsafe_code)]
//! `dcn-trace`: per-event trace export on top of `dcn-obs`.
//!
//! `dcn-obs` aggregates spans into per-path totals — enough to see *where*
//! wall-clock goes, but not *when*: a frontier sweep that serializes
//! behind one slow cell and one that saturates every worker produce the
//! same totals. This crate records every individual span enter/exit (plus
//! instant events such as cache hits) into lock-free per-thread buffers
//! and flushes them to a Chrome `trace_event`-format JSON file viewable in
//! `chrome://tracing` or [Perfetto](https://ui.perfetto.dev).
//!
//! # Activation
//!
//! Tracing is off unless [`init_from_env`] finds `DCN_TRACE_FILE` set or
//! `DCN_OBS=trace`. The bench harness calls it on startup and flushes at
//! manifest-write time to `DCN_TRACE_FILE` (or
//! `results/<name>.trace.json` when only `DCN_OBS=trace` is set).
//! Tracing never changes stdout, CSVs, or solver results — attribution is
//! observability-only and excluded from the determinism contract.
//!
//! # Event model
//!
//! * Span enter → `ph: "B"`, span exit → `ph: "E"`, paired per thread
//!   (spans nest per-thread, so B/E pairing is structural).
//! * [`dcn_obs::trace_instant`] → `ph: "i"` (thread-scoped instant), used
//!   by `dcn-cache` for hit/miss/disk-hit events.
//! * Timestamps are monotonic nanoseconds from one process-wide origin
//!   (exported as fractional microseconds, the format's native unit);
//!   thread ids are small integers assigned in first-event order.
//!
//! # Memory behaviour
//!
//! Each thread appends to its own buffer (no locks on the hot path); a
//! buffer is drained into the global store under a mutex when it exceeds
//! [`DRAIN_THRESHOLD`] events or when its thread exits. `dcn-exec` joins
//! its workers before `par_map` returns, so by flush time every
//! worker-thread event has been drained; only threads still live and
//! un-drained at flush (none in this workspace's single-threaded
//! harnesses) could be missed. Total volume is capped by
//! `DCN_TRACE_MAX_EVENTS` (default 2,000,000 ≈ 150 MB of JSON); events
//! past the cap bump the `trace.events.dropped` counter instead of
//! allocating.

#![warn(missing_docs)]

use dcn_obs::json::Json;
use dcn_obs::{TracePhase, TraceSink};
use std::cell::RefCell;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Local buffers hand off to the global store at this size, bounding both
/// per-thread memory and the tail of events a live thread privately holds.
pub const DRAIN_THRESHOLD: usize = 8192;

/// Default event cap when `DCN_TRACE_MAX_EVENTS` is unset or unparsable.
pub const DEFAULT_MAX_EVENTS: u64 = 2_000_000;

#[derive(Debug, Clone)]
struct Event {
    phase: TracePhase,
    path: String,
    tid: u64,
    ts_ns: u64,
}

/// The process-wide tracer: a [`TraceSink`] implementation that buffers
/// Chrome `trace_event` entries. Install via [`install`] or
/// [`init_from_env`]; serialize via [`flush_to_file`].
pub struct ChromeTracer {
    origin: Instant,
    drained: Mutex<Vec<Event>>,
    max_events: u64,
    total: AtomicU64,
}

static TRACER: OnceLock<ChromeTracer> = OnceLock::new();
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

struct LocalBuf {
    tid: u64,
    events: Vec<Event>,
}

impl Drop for LocalBuf {
    fn drop(&mut self) {
        // Thread exit: hand the remaining events to the global store so
        // joined worker threads never lose their tail.
        if let Some(t) = TRACER.get() {
            t.absorb(&mut self.events);
        }
    }
}

thread_local! {
    static LOCAL: RefCell<LocalBuf> = RefCell::new(LocalBuf {
        tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
        events: Vec::new(),
    });
}

impl ChromeTracer {
    fn new() -> ChromeTracer {
        let max_events = dcn_obs::env::TRACE_MAX_EVENTS
            .parsed::<u64>()
            .filter(|&n| n > 0)
            .unwrap_or(DEFAULT_MAX_EVENTS);
        ChromeTracer {
            origin: Instant::now(),
            drained: Mutex::new(Vec::new()),
            max_events,
            total: AtomicU64::new(0),
        }
    }

    fn absorb(&self, events: &mut Vec<Event>) {
        if events.is_empty() {
            return;
        }
        self.drained
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .append(events);
    }

    /// Events recorded so far (including not-yet-drained ones on other
    /// threads); test and diagnostics support.
    pub fn events_recorded(&self) -> u64 {
        self.total.load(Ordering::Relaxed).min(self.max_events)
    }
}

impl TraceSink for ChromeTracer {
    fn record(&self, phase: TracePhase, path: &str) {
        // Cap check first: past the cap we never allocate again.
        if self.total.fetch_add(1, Ordering::Relaxed) >= self.max_events {
            dcn_obs::counter!(dcn_obs::names::TRACE_EVENTS_DROPPED).inc();
            return;
        }
        dcn_obs::counter!(dcn_obs::names::TRACE_EVENTS_RECORDED).inc();
        let ts_ns = self.origin.elapsed().as_nanos() as u64;
        let path = path.to_string();
        LOCAL.with(|l| {
            let mut buf = l.borrow_mut();
            let tid = buf.tid;
            buf.events.push(Event {
                phase,
                path,
                tid,
                ts_ns,
            });
            if buf.events.len() >= DRAIN_THRESHOLD {
                let mut full = std::mem::take(&mut buf.events);
                self.absorb(&mut full);
            }
        });
    }
}

/// Installs the tracer unconditionally (test and harness support).
/// Returns `true` when this call performed the installation, `false` when
/// a tracer (or any other sink) was already in place. Installation is
/// process-wide and permanent; there is no way to uninstall a sink, by
/// design — spans must not flicker between traced and untraced.
pub fn install() -> bool {
    let tracer = TRACER.get_or_init(ChromeTracer::new);
    dcn_obs::install_trace_sink(tracer)
}

/// Installs the tracer when the environment asks for per-event export:
/// `DCN_TRACE_FILE` set (explicit output path) or `DCN_OBS=trace`.
/// Idempotent; returns `true` when tracing is active after the call.
pub fn init_from_env() -> bool {
    let wanted =
        dcn_obs::env::TRACE_FILE.get_os().is_some() || dcn_obs::mode() == dcn_obs::Mode::Trace;
    if wanted {
        install();
    }
    active()
}

/// True when this crate's tracer is installed as the obs trace sink.
pub fn active() -> bool {
    TRACER.get().is_some() && dcn_obs::trace_active()
}

/// The explicit trace output path from `DCN_TRACE_FILE`, if set.
pub fn trace_file_from_env() -> Option<PathBuf> {
    dcn_obs::env::TRACE_FILE.get_os().map(PathBuf::from)
}

/// Serializes every event recorded so far to `path` as Chrome
/// `trace_event` JSON (object form: `{"traceEvents": […]}`). The buffers
/// are *not* cleared — a later flush rewrites the file with a superset,
/// so the final flush of a process always wins with the complete trace.
/// Returns the number of events written. An error is returned if no
/// tracer is installed.
pub fn flush_to_file(path: &std::path::Path) -> std::io::Result<usize> {
    let Some(tracer) = TRACER.get() else {
        return Err(std::io::Error::other("dcn-trace: no tracer installed"));
    };
    // Drain this thread's buffer so the flushing thread's events (the
    // main thread, in the bench harness) are always included.
    LOCAL.with(|l| {
        let mut buf = l.borrow_mut();
        let mut events = std::mem::take(&mut buf.events);
        tracer.absorb(&mut events);
    });
    // Serialize under the guard, write with it released: holding the
    // drain mutex across file I/O would stall every thread that fills its
    // local buffer during the write (and is exactly what the lint's
    // blocking-under-lock rule rejects).
    let (n, body) = {
        let guard = tracer.drained.lock().unwrap_or_else(|e| e.into_inner());
        let mut order: Vec<usize> = (0..guard.len()).collect();
        // Stable by timestamp: same-thread events keep their buffer order,
        // so B/E pairs at equal ns timestamps never invert.
        order.sort_by_key(|&i| guard[i].ts_ns);
        let events: Vec<Json> = order.iter().map(|&i| event_json(&guard[i])).collect();
        let n = events.len();
        let doc = Json::obj([
            ("traceEvents", Json::Arr(events)),
            ("displayTimeUnit", Json::from("ms")),
        ]);
        (n, doc.to_string_compact())
    };
    std::fs::write(path, body)?;
    Ok(n)
}

/// One event in Chrome `trace_event` JSON form. Durations come from B/E
/// pairing per `tid`; the full hierarchical span path rides in
/// `args.path` on begin events (exit events repeat only the name).
fn event_json(e: &Event) -> Json {
    let name = e.path.rsplit('/').next().unwrap_or(e.path.as_str());
    let mut fields: Vec<(String, Json)> = vec![
        ("name".into(), Json::from(name)),
        (
            "cat".into(),
            Json::from(match e.phase {
                TracePhase::Instant => "instant",
                _ => "span",
            }),
        ),
        (
            "ph".into(),
            Json::from(match e.phase {
                TracePhase::Begin => "B",
                TracePhase::End => "E",
                TracePhase::Instant => "i",
            }),
        ),
        ("pid".into(), Json::from(1u64)),
        ("tid".into(), Json::from(e.tid)),
        ("ts".into(), Json::Num(e.ts_ns as f64 / 1000.0)),
    ];
    match e.phase {
        TracePhase::Begin => {
            fields.push((
                "args".into(),
                Json::obj([("path", Json::from(e.path.as_str()))]),
            ));
        }
        TracePhase::Instant => {
            fields.push(("s".into(), Json::from("t")));
        }
        TracePhase::End => {}
    }
    Json::Obj(fields)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_json_shapes() {
        let b = event_json(&Event {
            phase: TracePhase::Begin,
            path: "core.tub/core.tub.apsp".into(),
            tid: 3,
            ts_ns: 1_500,
        });
        assert_eq!(b.get("name").and_then(Json::as_str), Some("core.tub.apsp"));
        assert_eq!(b.get("ph").and_then(Json::as_str), Some("B"));
        assert_eq!(b.get("ts").and_then(Json::as_f64), Some(1.5));
        assert_eq!(
            b.get("args").and_then(|a| a.get("path")).and_then(Json::as_str),
            Some("core.tub/core.tub.apsp")
        );
        let i = event_json(&Event {
            phase: TracePhase::Instant,
            path: "cache.hit".into(),
            tid: 1,
            ts_ns: 0,
        });
        assert_eq!(i.get("ph").and_then(Json::as_str), Some("i"));
        assert_eq!(i.get("s").and_then(Json::as_str), Some("t"));
        let e = event_json(&Event {
            phase: TracePhase::End,
            path: "core.tub".into(),
            tid: 1,
            ts_ns: 2_000,
        });
        assert_eq!(e.get("ph").and_then(Json::as_str), Some("E"));
        assert!(e.get("args").is_none());
    }
}
