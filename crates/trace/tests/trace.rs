//! Integration tests: a flushed trace file is well-formed Chrome
//! `trace_event` JSON that round-trips through `dcn_obs::json`, with B/E
//! pairing per thread and thread-scoped instants.

use dcn_obs::json::Json;
use std::collections::HashMap;

#[test]
fn flushed_trace_round_trips_and_pairs() {
    dcn_trace::install();
    assert!(dcn_trace::active());

    {
        let _outer = dcn_obs::span!("test.outer");
        {
            let _inner = dcn_obs::span!("test.inner");
            dcn_obs::trace_instant("test.instant");
        }
        let _again = dcn_obs::span!("test.inner");
    }
    // A short-lived thread: its buffer drains to the global store on exit,
    // so its events must survive the join and appear under their own tid.
    std::thread::spawn(|| {
        let _s = dcn_obs::span!("test.worker");
    })
    .join()
    .expect("worker thread");

    let dir = std::env::temp_dir().join(format!("dcn_trace_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join("out.trace.json");
    let n = dcn_trace::flush_to_file(&path).expect("flush");
    // 3 span pairs + 1 instant on the main thread, 1 pair on the worker.
    assert!(n >= 9, "expected at least 9 events, got {n}");

    let text = std::fs::read_to_string(&path).expect("read trace");
    let doc = Json::parse(&text).expect("trace output must parse via dcn_obs::json");
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_array)
        .expect("traceEvents array");
    assert_eq!(events.len(), n);

    let mut stacks: HashMap<u64, Vec<String>> = HashMap::new();
    let mut tids = std::collections::HashSet::new();
    let mut saw_instant = false;
    let mut last_ts = f64::NEG_INFINITY;
    for ev in events {
        let ph = ev.get("ph").and_then(Json::as_str).expect("ph");
        let tid = ev.get("tid").and_then(Json::as_u64).expect("tid");
        let ts = ev.get("ts").and_then(Json::as_f64).expect("ts");
        assert!(ts >= last_ts, "events must be sorted by timestamp");
        last_ts = ts;
        tids.insert(tid);
        let name = ev.get("name").and_then(Json::as_str).expect("name").to_string();
        match ph {
            "B" => {
                // Begin events carry the full hierarchical path in args.
                let p = ev
                    .get("args")
                    .and_then(|a| a.get("path"))
                    .and_then(Json::as_str)
                    .expect("args.path on B");
                assert!(p.ends_with(&name), "path {p:?} must end with name {name:?}");
                stacks.entry(tid).or_default().push(name);
            }
            "E" => {
                let open = stacks
                    .get_mut(&tid)
                    .and_then(Vec::pop)
                    .expect("E without matching B on this tid");
                assert_eq!(open, name, "E must close the innermost open span");
            }
            "i" => {
                saw_instant = true;
                assert_eq!(ev.get("s").and_then(Json::as_str), Some("t"));
            }
            other => panic!("unexpected phase {other:?}"),
        }
    }
    for (tid, stack) in &stacks {
        assert!(stack.is_empty(), "tid {tid} has unclosed spans {stack:?}");
    }
    assert!(saw_instant, "instant event missing");
    assert!(tids.len() >= 2, "worker thread events missing");

    // A second flush is a superset rewrite, never a truncation.
    let _extra = dcn_obs::span!("test.later");
    drop(_extra);
    let n2 = dcn_trace::flush_to_file(&path).expect("re-flush");
    assert!(n2 >= n + 2, "second flush must include earlier events");

    std::fs::remove_dir_all(&dir).ok();
}
