//! Per-commodity restricted path sets over the coalesced switch graph.

use crate::McfError;
use dcn_cache::{CacheEntry, KeyBuilder, SolveCtx};
use dcn_graph::ksp;
use dcn_graph::{EdgeId, Graph, NodeId};
use dcn_guard::Budget;
use dcn_model::{Topology, TrafficMatrix};
use dcn_obs::json::Json;
use std::collections::HashMap;
use std::sync::Arc;

/// A path represented as directed edge hops on the coalesced graph.
#[derive(Debug, Clone)]
pub struct PathRepr {
    /// Node sequence (`nodes[0]` = src).
    pub nodes: Vec<NodeId>,
    /// Undirected edge id of each hop, with the direction flag: `true`
    /// when the hop traverses the edge from its stored `u` to `v` endpoint.
    pub hops: Vec<(EdgeId, bool)>,
}

impl PathRepr {
    /// Hop count.
    pub fn len(&self) -> usize {
        self.hops.len()
    }

    /// True for the trivial (empty) path.
    pub fn is_empty(&self) -> bool {
        self.hops.is_empty()
    }
}

/// One commodity: demand between a switch pair plus its admissible paths.
#[derive(Debug, Clone)]
pub struct Commodity {
    /// Source switch.
    pub src: NodeId,
    /// Destination switch.
    pub dst: NodeId,
    /// Demand volume.
    pub demand: f64,
    /// Admissible paths, non-decreasing in length; `paths[0]` is shortest.
    pub paths: Vec<PathRepr>,
    /// Shortest-path length for this pair.
    pub sp_len: usize,
}

/// A complete MCF instance: the coalesced graph (capacities per direction)
/// and one commodity per traffic-matrix entry.
#[derive(Debug)]
pub struct PathSet {
    graph: Graph,
    commodities: Vec<Commodity>,
}

/// An `Arc`-shared [`PathSet`] as stored in the cache: cloning is a
/// refcount bump, so cache hits never copy the (potentially large)
/// enumerated paths.
#[derive(Debug, Clone)]
pub struct SharedPathSet(pub Arc<PathSet>);

/// Cache key for an enumerated path set: exact topology + traffic matrix
/// content plus `k`. Keys are exact — a `k=16` path set is *not* served
/// from a `k=32` entry, because the slack-DFS enumerator guarantees no
/// prefix property across `k` values.
fn pathset_key(topo: &Topology, tm: &TrafficMatrix, k: usize) -> dcn_cache::CacheKey {
    KeyBuilder::new("pathset")
        .topology(topo)
        .traffic(tm)
        .u64(k as u64)
        .finish()
}

impl CacheEntry for SharedPathSet {
    const KIND: &'static str = "pathset";
    /// Memory-tier only: a serialized path set is far larger than the
    /// enumeration it would save.
    const PERSIST: bool = false;

    fn approx_bytes(&self) -> usize {
        let paths: usize = self
            .0
            .commodities
            .iter()
            .map(|c| {
                c.paths
                    .iter()
                    .map(|p| {
                        std::mem::size_of::<PathRepr>()
                            + p.nodes.len() * std::mem::size_of::<NodeId>()
                            + p.hops.len() * std::mem::size_of::<(EdgeId, bool)>()
                    })
                    .sum::<usize>()
                    + std::mem::size_of::<Commodity>()
            })
            .sum();
        paths + self.0.graph.m() * 2 * std::mem::size_of::<u64>()
    }

    fn to_json(&self) -> Json {
        Json::Null // never called: PERSIST is false
    }

    fn from_json(_json: &Json) -> Result<Self, String> {
        Err("path sets are memory-tier only".into())
    }
}

impl PathSet {
    /// Builds path sets with up to `k` shortest paths per commodity.
    ///
    /// Path enumeration for each commodity meters the [`Budget`], so
    /// adversarial graphs with combinatorially many near-shortest paths
    /// cannot stall the build phase.
    pub fn k_shortest(
        topo: &Topology,
        tm: &TrafficMatrix,
        k: usize,
        budget: &Budget,
    ) -> Result<Self, McfError> {
        Self::build(topo, tm, |g, src, dst, budget| {
            ksp::k_shortest_by_slack(g, src, dst, k, u16::MAX, budget).map_err(McfError::Budget)
        }, budget)
    }

    /// [`PathSet::k_shortest`] behind the cache: the enumerated path set
    /// is memoized per exact `(topology, traffic matrix, k)` key and
    /// shared via `Arc`, so a K-sweep's repeated solves (and warm reruns
    /// of a whole figure) rebuild each path set once. Memory-tier only —
    /// serialized path sets would dwarf their recompute cost.
    pub fn k_shortest_shared(
        topo: &Topology,
        tm: &TrafficMatrix,
        k: usize,
        ctx: &SolveCtx<'_>,
    ) -> Result<SharedPathSet, McfError> {
        ctx.cache.get_or_compute(
            || pathset_key(topo, tm, k),
            || PathSet::k_shortest(topo, tm, k, ctx.budget).map(|ps| SharedPathSet(Arc::new(ps))),
        )
    }

    /// Builds path sets containing every path within `slack` hops of the
    /// shortest, capped at `cap` paths per commodity (used by the
    /// Theorem 8.4 lower-bound computation, where `slack = M`).
    pub fn within_slack(
        topo: &Topology,
        tm: &TrafficMatrix,
        slack: u16,
        cap: usize,
        budget: &Budget,
    ) -> Result<Self, McfError> {
        Self::build(topo, tm, |g, src, dst, budget| {
            ksp::paths_within_slack(g, src, dst, slack, cap, budget).map_err(McfError::Budget)
        }, budget)
    }

    /// Fans the per-commodity enumeration out across the [`dcn_exec`]
    /// pool. Commodities are independent; results are merged in demand
    /// order and the lowest-index failure (e.g. the first `NoPath` in
    /// traffic-matrix order) wins, so output — including the error — is
    /// identical to a serial build at any `DCN_EXEC_THREADS`.
    fn build(
        topo: &Topology,
        tm: &TrafficMatrix,
        enumerate: impl Fn(&Graph, NodeId, NodeId, &Budget) -> Result<Vec<ksp::Path>, McfError> + Sync,
        budget: &Budget,
    ) -> Result<Self, McfError> {
        if tm.is_empty() {
            return Err(McfError::EmptyTraffic);
        }
        let graph = topo.graph().coalesced();
        // Edge lookup for hop resolution.
        let mut lookup: HashMap<(NodeId, NodeId), EdgeId> = HashMap::new();
        for (e, &(u, v)) in graph.edges().iter().enumerate() {
            lookup.insert((u, v), e as EdgeId);
            lookup.insert((v, u), e as EdgeId);
        }
        let pool = dcn_exec::Pool::from_env();
        let commodities = pool.par_map(budget, tm.demands(), |_, d| {
            let raw = enumerate(&graph, d.src, d.dst, budget)?;
            // min() is None exactly when no path was enumerated.
            let Some(sp_len) = raw.iter().map(|p| p.len() - 1).min() else {
                return Err(McfError::NoPath {
                    src: d.src,
                    dst: d.dst,
                });
            };
            let paths: Vec<PathRepr> = raw
                .into_iter()
                .map(|nodes| {
                    let hops = nodes
                        .windows(2)
                        .map(|w| {
                            let e = lookup[&(w[0], w[1])];
                            let (u, _) = graph.edge(e);
                            (e, u == w[0])
                        })
                        .collect();
                    PathRepr { nodes, hops }
                })
                .collect();
            Ok(Commodity {
                src: d.src,
                dst: d.dst,
                demand: d.amount,
                paths,
                sp_len,
            })
        })?;
        Ok(PathSet { graph, commodities })
    }

    /// The coalesced graph the paths live on.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The commodities.
    pub fn commodities(&self) -> &[Commodity] {
        &self.commodities
    }

    /// Total number of paths across all commodities.
    pub fn total_paths(&self) -> usize {
        self.commodities.iter().map(|c| c.paths.len()).sum()
    }

    /// Number of directed capacity slots (2 per undirected edge).
    pub fn n_directed_edges(&self) -> usize {
        2 * self.graph.m()
    }

    /// Directed-edge index of a hop: `2 * edge + direction`.
    #[inline]
    pub fn dir_index(hop: (EdgeId, bool)) -> usize {
        2 * hop.0 as usize + hop.1 as usize
    }

    /// Computes, given per-path flows (indexed commodity-major in the same
    /// order as `commodities`), the fraction of flow volume on shortest
    /// paths. Returns 1.0 when no flow is routed.
    pub fn shortest_path_fraction(&self, flows: &[Vec<f64>]) -> f64 {
        let mut on_sp = 0.0;
        let mut total = 0.0;
        for (c, fc) in self.commodities.iter().zip(flows.iter()) {
            for (p, &f) in c.paths.iter().zip(fc.iter()) {
                total += f;
                if p.len() == c.sp_len {
                    on_sp += f;
                }
            }
        }
        if total <= 0.0 {
            1.0
        } else {
            on_sp / total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_graph::Graph;
    use dcn_model::{Topology, TrafficMatrix};

    fn square_topo() -> Topology {
        // 4-cycle with 2 servers per switch.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        Topology::new(g, vec![2; 4], "square").unwrap()
    }

    #[test]
    fn builds_paths_with_hops() {
        let t = square_topo();
        let tm = TrafficMatrix::permutation(&t, &[(0, 2), (2, 0)]).unwrap();
        let ps = PathSet::k_shortest(&t, &tm, 4, &Budget::unlimited()).unwrap();
        assert_eq!(ps.commodities().len(), 2);
        let c = &ps.commodities()[0];
        assert_eq!(c.sp_len, 2);
        assert_eq!(c.paths.len(), 2); // both sides of the square
        for p in &c.paths {
            assert_eq!(p.nodes.len(), p.hops.len() + 1);
        }
    }

    #[test]
    fn no_path_errors() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let t = Topology::new(g, vec![2; 4], "split").unwrap();
        let tm = TrafficMatrix::permutation(&t, &[(0, 2)]).unwrap();
        assert_eq!(
            PathSet::k_shortest(&t, &tm, 4, &Budget::unlimited()).unwrap_err(),
            McfError::NoPath { src: 0, dst: 2 }
        );
    }

    #[test]
    fn parallel_links_coalesced_into_capacity() {
        let g = Graph::from_edges(2, &[(0, 1), (0, 1), (0, 1)]).unwrap();
        let t = Topology::new(g, vec![2; 2], "trunk").unwrap();
        let tm = TrafficMatrix::permutation(&t, &[(0, 1)]).unwrap();
        let ps = PathSet::k_shortest(&t, &tm, 8, &Budget::unlimited()).unwrap();
        assert_eq!(ps.graph().m(), 1);
        assert_eq!(ps.graph().capacity(0), 3.0);
        assert_eq!(ps.commodities()[0].paths.len(), 1);
    }

    #[test]
    fn slack_pathset_bounded() {
        let t = square_topo();
        let tm = TrafficMatrix::permutation(&t, &[(0, 2)]).unwrap();
        let ps = PathSet::within_slack(&t, &tm, 0, 100, &Budget::unlimited()).unwrap();
        assert_eq!(ps.commodities()[0].paths.len(), 2);
        assert_eq!(ps.total_paths(), 2);
    }

    #[test]
    fn sp_fraction_counts_volume() {
        let t = square_topo();
        let tm = TrafficMatrix::permutation(&t, &[(0, 2)]).unwrap();
        let ps = PathSet::k_shortest(&t, &tm, 8, &Budget::unlimited()).unwrap();
        // Both paths are shortest on the square.
        let flows = vec![vec![1.0, 3.0]];
        assert_eq!(ps.shortest_path_fraction(&flows), 1.0);
        // No flow at all.
        let flows = vec![vec![0.0, 0.0]];
        assert_eq!(ps.shortest_path_fraction(&flows), 1.0);
    }
}
