//! Exact path-LP backend (Appendix H of the paper).
//!
//! Variables: one flow per admissible path, plus the scale factor `θ`.
//! Maximize `θ` subject to
//!
//! * per commodity `(u, v)`: `Σ_p f_p >= θ t_uv`
//! * per directed edge `e`: `Σ_{p ∋ e} f_p <= cap(e)`
//! * `f_p, θ >= 0`

use crate::pathset::PathSet;
use crate::{McfError, Provenance, ThroughputResult};
use dcn_guard::{validate, Budget};
use dcn_lp::{Cmp, LinearProgram, LpError, LpStatus};

/// Solves the path LP exactly. Also reports the shortest-path flow
/// fraction from the optimal basic solution.
///
/// The simplex ticks the [`Budget`] once per pivot, so a deadline or
/// iteration cap aborts the solve as [`McfError::Budget`] — the hook
/// [`crate::throughput_with_fallback`] uses to degrade to the FPTAS. When
/// certificate validation is enabled the routed flow is additionally
/// checked against edge capacities and per-commodity service at `θ`.
pub fn solve(ps: &PathSet, budget: &Budget) -> Result<ThroughputResult, McfError> {
    let _span = dcn_obs::span!(dcn_obs::names::MCF_EXACT_SOLVE);
    let n_paths = ps.total_paths();
    dcn_obs::histogram!(dcn_obs::names::MCF_EXACT_COLUMNS).record_u64(n_paths as u64 + 1);
    let theta_var = n_paths; // last variable
    let mut lp = LinearProgram::new(n_paths + 1);
    lp.set_objective(&[(theta_var, 1.0)]);

    // Demand constraints, and per-directed-edge accumulation.
    let mut edge_rows: Vec<Vec<(usize, f64)>> = vec![Vec::new(); ps.n_directed_edges()];
    let mut var = 0usize;
    for c in ps.commodities() {
        let mut row: Vec<(usize, f64)> = Vec::with_capacity(c.paths.len() + 1);
        for p in &c.paths {
            row.push((var, 1.0));
            for &hop in &p.hops {
                edge_rows[PathSet::dir_index(hop)].push((var, 1.0));
            }
            var += 1;
        }
        row.push((theta_var, -c.demand));
        lp.add_constraint(&row, Cmp::Ge, 0.0);
    }
    for (i, row) in edge_rows.iter().enumerate() {
        if !row.is_empty() {
            let cap = ps.graph().capacity((i / 2) as u32);
            lp.add_constraint(row, Cmp::Le, cap);
        }
    }

    dcn_obs::histogram!(dcn_obs::names::MCF_EXACT_ROWS).record_u64(lp.n_constraints() as u64);
    let sol = lp.solve(budget).map_err(|e| match e {
        LpError::Budget(b) => McfError::Budget(b),
        LpError::BadInput(c) | LpError::Certificate(c) => McfError::Certificate(c),
    })?;
    match sol.status {
        LpStatus::Optimal => {}
        LpStatus::Infeasible => return Err(McfError::SolverFailure("infeasible path LP")),
        LpStatus::Unbounded => return Err(McfError::SolverFailure("unbounded path LP")),
    }
    let theta = sol.objective;
    // Recover per-commodity flows for the shortest-path fraction.
    let mut flows: Vec<Vec<f64>> = Vec::with_capacity(ps.commodities().len());
    let mut var = 0usize;
    for c in ps.commodities() {
        let mut fc = Vec::with_capacity(c.paths.len());
        for _ in &c.paths {
            fc.push(sol.x[var]);
            var += 1;
        }
        flows.push(fc);
    }
    if dcn_guard::validation_enabled() {
        verify_flow_certificate(ps, theta, &flows)?;
    }
    Ok(ThroughputResult {
        theta_lb: theta,
        theta_ub: theta,
        shortest_path_fraction: ps.shortest_path_fraction(&flows),
        provenance: Provenance::Exact,
    })
}

/// MCF-level certificate: the recovered per-path flows must respect every
/// directed edge capacity and serve each commodity at `θ · demand`.
fn verify_flow_certificate(
    ps: &PathSet,
    theta: f64,
    flows: &[Vec<f64>],
) -> Result<(), McfError> {
    let n_dir = ps.n_directed_edges();
    let mut load = vec![0.0f64; n_dir];
    let mut served = Vec::with_capacity(ps.commodities().len());
    let mut demands = Vec::with_capacity(ps.commodities().len());
    for (c, fc) in ps.commodities().iter().zip(flows.iter()) {
        let mut total = 0.0;
        for (p, &f) in c.paths.iter().zip(fc.iter()) {
            total += f;
            for &hop in &p.hops {
                load[PathSet::dir_index(hop)] += f;
            }
        }
        served.push(total);
        demands.push(c.demand);
    }
    let cap: Vec<f64> = (0..n_dir)
        .map(|i| ps.graph().capacity((i / 2) as u32))
        .collect();
    validate::ensure_finite_scalar("mcf theta", theta)?;
    validate::check_capacity(&load, &cap, validate::DEFAULT_TOL)?;
    validate::check_demands_served(&served, &demands, theta, validate::DEFAULT_TOL)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_graph::Graph;
    use dcn_model::{Topology, TrafficMatrix};

    fn topo(n: usize, edges: &[(u32, u32)], h: u32) -> Topology {
        let g = Graph::from_edges(n, edges).unwrap();
        Topology::new(g, vec![h; n], "t").unwrap()
    }

    #[test]
    fn single_link_throughput() {
        // Two switches, one unit link, demand H=2 each way:
        // theta = 1/2 (each direction has capacity 1 for demand 2).
        let t = topo(2, &[(0, 1)], 2);
        let tm = TrafficMatrix::permutation(&t, &[(0, 1), (1, 0)]).unwrap();
        let ps = PathSet::k_shortest(&t, &tm, 4, &Budget::unlimited()).unwrap();
        let r = solve(&ps, &Budget::unlimited()).unwrap();
        assert!((r.theta_lb - 0.5).abs() < 1e-9);
        assert_eq!(r.theta_lb, r.theta_ub);
    }

    #[test]
    fn square_uses_both_sides() {
        // 4-cycle, demand 0->2 of 1 unit: two 2-hop paths, capacity 1 each:
        // theta = 2.
        let t = topo(4, &[(0, 1), (1, 2), (2, 3), (3, 0)], 1);
        let tm = TrafficMatrix::permutation(&t, &[(0, 2)]).unwrap();
        let ps = PathSet::k_shortest(&t, &tm, 4, &Budget::unlimited()).unwrap();
        let r = solve(&ps, &Budget::unlimited()).unwrap();
        assert!((r.theta_lb - 2.0).abs() < 1e-9);
        assert_eq!(r.shortest_path_fraction, 1.0);
    }

    #[test]
    fn trunked_link_capacity_counts() {
        let g = Graph::from_edges(2, &[(0, 1), (0, 1), (0, 1)]).unwrap();
        let t = Topology::new(g, vec![2; 2], "trunk").unwrap();
        let tm = TrafficMatrix::permutation(&t, &[(0, 1)]).unwrap();
        let ps = PathSet::k_shortest(&t, &tm, 4, &Budget::unlimited()).unwrap();
        let r = solve(&ps, &Budget::unlimited()).unwrap();
        // Capacity 3 for demand 2 → theta 1.5.
        assert!((r.theta_lb - 1.5).abs() < 1e-9);
    }

    #[test]
    fn paper_figure7_example() {
        // The 5-switch uni-regular example of Figure 7: C5 with chords?
        // Figure 7 uses the 5-cycle-with-all-short-chords? The topology in
        // Figure 6 (middle): 5 switches, 3-port, H=1, ring of 5 with ...
        // Reproduce exactly: 5 switches in a ring 0-1-2-3-4 plus chords
        // making each switch degree 2 network (3-port switch with 1
        // server): a plain 5-cycle.
        // Worst-case permutation (Figure 7): 0->3, 3->1, 1->4, 4->2, 2->0
        // (each pair at distance 2). Optimal θ = 5/6 with the shown split.
        let t = topo(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)], 1);
        let tm = TrafficMatrix::permutation(&t, &[(0, 3), (3, 1), (1, 4), (4, 2), (2, 0)])
            .unwrap();
        let ps = PathSet::k_shortest(&t, &tm, 8, &Budget::unlimited()).unwrap();
        let r = solve(&ps, &Budget::unlimited()).unwrap();
        assert!(
            (r.theta_lb - 5.0 / 6.0).abs() < 1e-9,
            "theta = {} != 5/6",
            r.theta_lb
        );
        // The optimal routing uses non-shortest paths (1/3 of each flow).
        assert!(r.shortest_path_fraction < 1.0);
    }
}
