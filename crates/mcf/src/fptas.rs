//! Garg–Könemann / Fleischer FPTAS for maximum concurrent flow on
//! restricted path sets.
//!
//! The exact LP does not scale past a few thousand paths on this
//! workspace's simplex; this backend replaces Gurobi for large instances.
//! It maintains multiplicative edge lengths `l_e`, repeatedly routes each
//! commodity's demand along its currently-cheapest admissible path, and
//! inflates lengths on used edges. Two certificates come out:
//!
//! * **Primal**: the accumulated flow, scaled down by its worst link
//!   over-subscription, is feasible — giving `theta_lb`.
//! * **Dual**: for any length function, `D(l) / Σ_j d_j dist_j(l)` upper
//!   bounds the optimum; the minimum over all iterations gives `theta_ub`.
//!
//! The loop stops when `theta_ub - theta_lb <= eps * theta_ub` (or the
//! classic `D(l) >= 1` budget is exhausted), so the returned bracket is
//! usually much tighter than the worst-case guarantee.

use crate::pathset::PathSet;
use crate::{McfError, Provenance, ThroughputResult};
use dcn_guard::{validate, Budget};

/// Solves max concurrent flow on `ps` with accuracy `eps`.
///
/// Meters one tick per augmentation, so the multiplicative-weights loop
/// honors deadlines and iteration caps. Unlike the exact backend, a
/// mid-run exhaustion is *not* fatal when at least one phase completed:
/// the accumulated flow already certifies a valid (looser) bracket, which
/// is returned with the achieved gap recorded. Exhaustion before any flow
/// is routed propagates as [`McfError::Budget`].
pub fn solve(ps: &PathSet, eps: f64, budget: &Budget) -> Result<ThroughputResult, McfError> {
    if !(0.0 < eps && eps < 0.5) {
        return Err(McfError::BadEps(eps));
    }
    let mut meter = budget.meter();
    let _span = dcn_obs::span!(dcn_obs::names::MCF_FPTAS_SOLVE);
    // Hoisted so the inner augmentation loop touches only relaxed atomics.
    let phases_ctr = dcn_obs::counter!(dcn_obs::names::MCF_FPTAS_PHASES);
    let aug_ctr = dcn_obs::counter!(dcn_obs::names::MCF_FPTAS_AUGMENTATIONS);
    let n_dir = ps.n_directed_edges();
    let m = n_dir as f64;
    let delta = (m / (1.0 - eps)).powf(-1.0 / eps);
    // Directed edge capacities.
    let cap: Vec<f64> = (0..n_dir)
        .map(|i| ps.graph().capacity((i / 2) as u32))
        .collect();
    let mut length: Vec<f64> = cap.iter().map(|c| delta / c).collect();
    let mut flow_on_edge = vec![0.0f64; n_dir];
    // Per-commodity, per-path accumulated flow.
    let mut flows: Vec<Vec<f64>> = ps
        .commodities()
        .iter()
        .map(|c| vec![0.0; c.paths.len()])
        .collect();
    let mut routed: Vec<f64> = vec![0.0; ps.commodities().len()];

    let path_len = |j: usize, p: usize, length: &[f64]| -> f64 {
        ps.commodities()[j].paths[p]
            .hops
            .iter()
            .map(|&h| length[PathSet::dir_index(h)])
            .sum()
    };
    let cheapest = |j: usize, length: &[f64]| -> (usize, f64) {
        let c = &ps.commodities()[j];
        let mut best = (0usize, f64::INFINITY);
        for p in 0..c.paths.len() {
            let l = path_len(j, p, length);
            if l < best.1 {
                best = (p, l);
            }
        }
        best
    };

    let d_of = |length: &[f64]| -> f64 {
        length.iter().zip(cap.iter()).map(|(l, c)| l * c).sum()
    };

    let mut theta_ub = f64::INFINITY;
    let mut phases = 0usize;
    // Cap the phase count as a safety valve; the eps-gap stop below fires
    // far earlier in practice.
    let max_phases = (((1.0 + eps) / delta).ln() / (1.0 + eps).ln()).ceil() as usize + 8;

    loop {
        // Dual certificate for the current lengths.
        let mut dual_den = 0.0;
        for (j, c) in ps.commodities().iter().enumerate() {
            let (_, l) = cheapest(j, &length);
            dual_den += c.demand * l;
        }
        if dual_den > 0.0 {
            theta_ub = theta_ub.min(d_of(&length) / dual_den);
        }
        // Primal certificate: scale accumulated flow to feasibility.
        let theta_lb = current_lb(ps, &flow_on_edge, &cap, &routed);
        if theta_lb > 0.0 && theta_ub - theta_lb <= eps * theta_ub {
            return finish(ps, flows, routed, theta_lb, theta_ub, eps);
        }
        if d_of(&length) >= 1.0 || phases >= max_phases {
            let theta_lb = current_lb(ps, &flow_on_edge, &cap, &routed);
            return finish(ps, flows, routed, theta_lb, theta_ub, eps);
        }
        phases += 1;
        phases_ctr.inc();
        // One Fleischer phase: push each commodity's full demand.
        for (j, c) in ps.commodities().iter().enumerate() {
            let mut remaining = c.demand;
            while remaining > 0.0 {
                if let Err(e) = meter.tick() {
                    // Budget ran out mid-phase. The flow accumulated so
                    // far still certifies a bracket — return it if there
                    // is one; otherwise surface the exhaustion.
                    let theta_lb = current_lb(ps, &flow_on_edge, &cap, &routed);
                    if theta_lb > 0.0 {
                        dcn_obs::counter!(dcn_obs::names::MCF_FPTAS_TRUNCATED_RUNS).inc();
                        return finish(ps, flows, routed, theta_lb, theta_ub, eps);
                    }
                    return Err(McfError::Budget(e));
                }
                aug_ctr.inc();
                let (p, _) = cheapest(j, &length);
                let hops = &c.paths[p].hops;
                let min_cap = hops
                    .iter()
                    .map(|&h| cap[PathSet::dir_index(h)])
                    .fold(f64::INFINITY, f64::min);
                let send = remaining.min(min_cap);
                flows[j][p] += send;
                routed[j] += send;
                remaining -= send;
                for &h in hops {
                    let i = PathSet::dir_index(h);
                    flow_on_edge[i] += send;
                    length[i] *= 1.0 + eps * send / cap[i];
                }
            }
        }
    }
}

/// Feasible throughput of the accumulated flow: scale everything down by
/// the worst link over-subscription, then take the worst-served commodity.
fn current_lb(ps: &PathSet, flow_on_edge: &[f64], cap: &[f64], routed: &[f64]) -> f64 {
    let congestion = flow_on_edge
        .iter()
        .zip(cap.iter())
        .map(|(f, c)| f / c)
        .fold(0.0f64, f64::max);
    if congestion <= 0.0 {
        return 0.0;
    }
    ps.commodities()
        .iter()
        .zip(routed.iter())
        .map(|(c, &r)| r / c.demand)
        .fold(f64::INFINITY, f64::min)
        / congestion
}

fn finish(
    ps: &PathSet,
    flows: Vec<Vec<f64>>,
    routed: Vec<f64>,
    theta_lb: f64,
    theta_ub: f64,
    eps: f64,
) -> Result<ThroughputResult, McfError> {
    let _ = routed;
    if theta_ub > 0.0 && theta_ub.is_finite() {
        dcn_obs::gauge!(dcn_obs::names::MCF_FPTAS_ACHIEVED_EPS).set((theta_ub - theta_lb) / theta_ub);
    }
    let sp_frac = ps.shortest_path_fraction(&flows);
    let theta_ub = theta_ub.max(theta_lb);
    if dcn_guard::validation_enabled() {
        validate::check_bracket(theta_lb, theta_ub, validate::DEFAULT_TOL)?;
    }
    Ok(ThroughputResult {
        theta_lb,
        theta_ub,
        shortest_path_fraction: sp_frac,
        provenance: Provenance::Fptas { eps },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact;
    use dcn_graph::Graph;
    use dcn_model::{Topology, TrafficMatrix};

    fn topo(n: usize, edges: &[(u32, u32)], h: u32) -> Topology {
        let g = Graph::from_edges(n, edges).unwrap();
        Topology::new(g, vec![h; n], "t").unwrap()
    }

    #[test]
    fn brackets_exact_on_cycle() {
        let t = topo(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)], 1);
        let tm =
            TrafficMatrix::permutation(&t, &[(0, 3), (3, 1), (1, 4), (4, 2), (2, 0)]).unwrap();
        let ps = PathSet::k_shortest(&t, &tm, 8, &Budget::unlimited()).unwrap();
        let ex = exact::solve(&ps, &Budget::unlimited()).unwrap().theta_lb;
        let ap = solve(&ps, 0.05, &Budget::unlimited()).unwrap();
        assert!(
            ap.theta_lb <= ex + 1e-9 && ex <= ap.theta_ub + 1e-9,
            "bracket [{}, {}] misses exact {}",
            ap.theta_lb,
            ap.theta_ub,
            ex
        );
        assert!(ap.theta_ub - ap.theta_lb <= 0.06 * ap.theta_ub);
    }

    #[test]
    fn single_edge_converges() {
        let t = topo(2, &[(0, 1)], 2);
        let tm = TrafficMatrix::permutation(&t, &[(0, 1), (1, 0)]).unwrap();
        let ps = PathSet::k_shortest(&t, &tm, 2, &Budget::unlimited()).unwrap();
        let r = solve(&ps, 0.02, &Budget::unlimited()).unwrap();
        assert!((r.theta_lb - 0.5).abs() < 0.02);
        assert!(r.theta_ub >= 0.5 - 1e-9);
    }

    #[test]
    fn tighter_eps_gives_tighter_bracket() {
        let t = topo(4, &[(0, 1), (1, 2), (2, 3), (3, 0)], 1);
        let tm = TrafficMatrix::permutation(&t, &[(0, 2), (2, 0), (1, 3), (3, 1)]).unwrap();
        let ps = PathSet::k_shortest(&t, &tm, 4, &Budget::unlimited()).unwrap();
        let loose = solve(&ps, 0.3, &Budget::unlimited()).unwrap();
        let tight = solve(&ps, 0.02, &Budget::unlimited()).unwrap();
        let gl = loose.theta_ub - loose.theta_lb;
        let gt = tight.theta_ub - tight.theta_lb;
        assert!(gt <= gl + 1e-12, "gap {gt} vs {gl}");
        assert!(gt <= 0.03 * tight.theta_ub);
    }

    #[test]
    fn bad_eps_rejected() {
        let t = topo(2, &[(0, 1)], 1);
        let tm = TrafficMatrix::permutation(&t, &[(0, 1)]).unwrap();
        let ps = PathSet::k_shortest(&t, &tm, 1, &Budget::unlimited()).unwrap();
        assert!(matches!(solve(&ps, 0.0, &Budget::unlimited()), Err(McfError::BadEps(_))));
        assert!(matches!(solve(&ps, 0.7, &Budget::unlimited()), Err(McfError::BadEps(_))));
    }
}
