#![forbid(unsafe_code)]
//! Path-based multi-commodity flow (MCF) throughput — the `KSP-MCF`
//! procedure of the paper (§3.1 and Appendix H).
//!
//! Given a topology and a traffic matrix `T`, the throughput `θ(T)` is the
//! largest scale factor such that `θ(T) · T` can be routed without
//! exceeding any link capacity, with each commodity restricted to its K
//! shortest paths. Two backends solve the same LP:
//!
//! * [`Engine::Exact`] — the path LP of Appendix H solved with the
//!   `dcn-lp` simplex. Exact, but only practical for small instances.
//! * [`Engine::Fptas`] — the Garg–Könemann / Fleischer multiplicative-
//!   weights algorithm for maximum concurrent flow, restricted to the same
//!   path sets. Returns a **certified bracket** `[theta_lb, theta_ub]`:
//!   `theta_lb` comes from an explicitly feasible flow, `theta_ub` from
//!   the LP dual, so `theta_lb <= θ(T) <= theta_ub` always holds.
//!
//! Both backends also report the fraction of routed flow that travels on
//! shortest paths (Figure 4(a) of the paper).

#![warn(missing_docs)]

pub mod exact;
pub mod fptas;
pub mod pathset;
pub mod routing;

pub use pathset::{Commodity, PathSet, SharedPathSet};
pub use routing::{ecmp_throughput, vlb_throughput};

use dcn_cache::{CacheEntry, CacheKey, KeyBuilder, SolveCtx};
use dcn_guard::{Budget, BudgetError, CertError};
use dcn_model::{ModelError, Topology, TrafficMatrix};
use dcn_obs::json::Json;

/// Throughput computation backend.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Engine {
    /// Exact simplex on the path LP.
    Exact,
    /// Garg–Könemann FPTAS with accuracy parameter `eps` in (0, 0.5).
    Fptas {
        /// Accuracy: the bracket converges to within `eps` relative gap.
        eps: f64,
    },
}

/// How a [`ThroughputResult`] was produced. Degraded paths (an FPTAS
/// answer standing in for a budget-exhausted exact solve) are recorded
/// here so downstream tables can distinguish exact numbers from certified
/// brackets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Provenance {
    /// Exact simplex solve of the path LP; `theta_lb == theta_ub`.
    Exact,
    /// FPTAS bracket requested directly.
    Fptas {
        /// The accuracy parameter the bracket was computed with.
        eps: f64,
    },
    /// FPTAS bracket produced because the exact solve exhausted its
    /// budget and the fallback chain stepped in.
    FptasFallback {
        /// The accuracy parameter used by the fallback solve.
        eps: f64,
    },
}

impl Provenance {
    /// True when this result came from a degraded (fallback) path.
    pub fn is_degraded(&self) -> bool {
        matches!(self, Provenance::FptasFallback { .. })
    }
}

/// Result of a throughput computation.
#[derive(Debug, Clone)]
pub struct ThroughputResult {
    /// Certified lower bound on `θ(T)` (a feasible flow achieves it).
    pub theta_lb: f64,
    /// Certified upper bound on `θ(T)`.
    pub theta_ub: f64,
    /// Fraction of total routed flow volume carried on shortest paths.
    pub shortest_path_fraction: f64,
    /// Which solver produced this result (and whether it was a fallback).
    pub provenance: Provenance,
}

impl ThroughputResult {
    /// Midpoint estimate of `θ(T)`.
    pub fn theta(&self) -> f64 {
        0.5 * (self.theta_lb + self.theta_ub)
    }
}

impl CacheEntry for ThroughputResult {
    const KIND: &'static str = "mcf_theta";

    fn approx_bytes(&self) -> usize {
        std::mem::size_of::<ThroughputResult>()
    }

    fn to_json(&self) -> Json {
        let (prov, eps) = match self.provenance {
            Provenance::Exact => ("exact", 0.0),
            Provenance::Fptas { eps } => ("fptas", eps),
            Provenance::FptasFallback { eps } => ("fptas_fallback", eps),
        };
        Json::obj([
            ("theta_lb", Json::Num(self.theta_lb)),
            ("theta_ub", Json::Num(self.theta_ub)),
            ("shortest_path_fraction", Json::Num(self.shortest_path_fraction)),
            ("provenance", Json::Str(prov.to_string())),
            ("eps", Json::Num(eps)),
        ])
    }

    fn from_json(json: &Json) -> Result<Self, String> {
        let num = |k: &str| {
            json.get(k)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("missing {k}"))
        };
        let eps = num("eps")?;
        let provenance = match json
            .get("provenance")
            .and_then(Json::as_str)
            .ok_or("missing provenance")?
        {
            "exact" => Provenance::Exact,
            "fptas" => Provenance::Fptas { eps },
            "fptas_fallback" => Provenance::FptasFallback { eps },
            other => return Err(format!("unknown provenance {other:?}")),
        };
        Ok(ThroughputResult {
            theta_lb: num("theta_lb")?,
            theta_ub: num("theta_ub")?,
            shortest_path_fraction: num("shortest_path_fraction")?,
            provenance,
        })
    }

    fn validate(&self) -> Result<(), String> {
        // Re-run the bracket certificate the solvers established: a
        // deserialized record must still satisfy lb <= ub with finite,
        // sane values.
        dcn_guard::validate::check_bracket(self.theta_lb, self.theta_ub, dcn_guard::validate::DEFAULT_TOL)
            .map_err(|e| format!("bracket: {e}"))?;
        let spf = self.shortest_path_fraction;
        if !spf.is_finite() || !(-dcn_guard::validate::DEFAULT_TOL..=1.0 + dcn_guard::validate::DEFAULT_TOL).contains(&spf)
        {
            return Err(format!("shortest-path fraction {spf} outside [0, 1]"));
        }
        if let Provenance::Fptas { eps } | Provenance::FptasFallback { eps } = self.provenance {
            if !(eps > 0.0 && eps < 0.5) {
                return Err(format!("fptas eps {eps} outside (0, 0.5)"));
            }
        }
        Ok(())
    }
}

/// Errors from MCF throughput computation.
#[derive(Debug, Clone, PartialEq)]
pub enum McfError {
    /// Underlying model error.
    Model(ModelError),
    /// A commodity has no path between its endpoints.
    NoPath {
        /// Source switch.
        src: u32,
        /// Destination switch.
        dst: u32,
    },
    /// The traffic matrix is empty.
    EmptyTraffic,
    /// Invalid epsilon for the FPTAS.
    BadEps(f64),
    /// The LP solver reported an unexpected status.
    SolverFailure(&'static str),
    /// The execution budget ran out mid-solve (and no fallback applied).
    Budget(BudgetError),
    /// A post-solve certificate check failed.
    Certificate(CertError),
}

impl From<ModelError> for McfError {
    fn from(e: ModelError) -> Self {
        McfError::Model(e)
    }
}

impl From<BudgetError> for McfError {
    fn from(e: BudgetError) -> Self {
        McfError::Budget(e)
    }
}

impl From<CertError> for McfError {
    fn from(e: CertError) -> Self {
        McfError::Certificate(e)
    }
}

impl std::fmt::Display for McfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            McfError::Model(e) => write!(f, "model error: {e}"),
            McfError::NoPath { src, dst } => write!(f, "no path from {src} to {dst}"),
            McfError::EmptyTraffic => write!(f, "traffic matrix is empty"),
            McfError::BadEps(e) => write!(f, "fptas eps must be in (0, 0.5), got {e}"),
            McfError::SolverFailure(s) => write!(f, "lp solver failure: {s}"),
            McfError::Budget(e) => write!(f, "throughput solve aborted: {e}"),
            McfError::Certificate(e) => write!(f, "throughput certificate failed: {e}"),
        }
    }
}

impl std::error::Error for McfError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            McfError::Model(e) => Some(e),
            McfError::Budget(e) => Some(e),
            McfError::Certificate(e) => Some(e),
            _ => None,
        }
    }
}

/// Computes `θ(T)` with each commodity restricted to its `k` shortest
/// paths (the paper's KSP-MCF). Convenience wrapper that builds the path
/// set and dispatches on the engine.
///
/// The [`Budget`] spans the whole computation — path enumeration and the
/// solve share one deadline — and exhaustion surfaces as
/// [`McfError::Budget`].
///
/// Caching is two-level (both through the one [`CacheHandle`]): the
/// enumerated path set is memoized per `(topology, traffic, k)` —
/// separately from the solve, so sweeping engines or re-running a figure
/// warm-starts the expensive enumeration — and the solved bracket per
/// `(topology, traffic, k, engine)`. Pass
/// `dcn_cache::prelude::nocache()` to always recompute.
///
/// ```
/// use dcn_cache::prelude::*;
/// use dcn_graph::Graph;
/// use dcn_guard::prelude::*;
/// use dcn_mcf::{ksp_mcf_throughput, Engine};
/// use dcn_model::{Topology, TrafficMatrix};
///
/// // The paper's Figure 7: C5 with the distance-2 permutation has θ = 5/6.
/// let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)])?;
/// let topo = Topology::new(g, vec![1; 5], "c5")?;
/// let tm = TrafficMatrix::permutation(&topo, &[(0, 3), (3, 1), (1, 4), (4, 2), (2, 0)])?;
/// let res = ksp_mcf_throughput(&topo, &tm, 8, Engine::Exact, &unlimited_ctx())?;
/// assert!((res.theta_lb - 5.0 / 6.0).abs() < 1e-9);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn ksp_mcf_throughput(
    topo: &Topology,
    tm: &TrafficMatrix,
    k: usize,
    engine: Engine,
    ctx: &SolveCtx<'_>,
) -> Result<ThroughputResult, McfError> {
    let ps = PathSet::k_shortest_shared(topo, tm, k, ctx)?;
    ctx.cache.get_or_compute(
        || theta_key(topo, tm, k, engine),
        || throughput_on_paths(&ps.0, engine, ctx.budget),
    )
}

/// Cache key for a solved KSP-MCF bracket: the path-set inputs plus the
/// engine and its accuracy parameter. Budget excluded by design.
fn theta_key(topo: &Topology, tm: &TrafficMatrix, k: usize, engine: Engine) -> CacheKey {
    let (tag, eps) = match engine {
        Engine::Exact => (0u64, 0.0),
        Engine::Fptas { eps } => (1, eps),
    };
    KeyBuilder::new("mcf_theta")
        .topology(topo)
        .traffic(tm)
        .u64(k as u64)
        .u64(tag)
        .f64(eps)
        .finish()
}

/// Computes `θ(T)` over an explicit path set, under an execution
/// [`Budget`].
pub fn throughput_on_paths(
    ps: &PathSet,
    engine: Engine,
    budget: &Budget,
) -> Result<ThroughputResult, McfError> {
    match engine {
        Engine::Exact => exact::solve(ps, budget),
        Engine::Fptas { eps } => fptas::solve(ps, eps, budget),
    }
}

/// Exact solve with an FPTAS fallback chain: attempts the exact path LP
/// under `budget`; if the budget is exhausted mid-simplex, retries with
/// the Garg–Könemann FPTAS at accuracy `fallback_eps` on whatever budget
/// remains (the deadline is shared, so the chain as a whole still honors
/// it). The fallback's provenance is stamped as
/// [`Provenance::FptasFallback`] and counted in
/// `mcf.fallback.exact_to_fptas`, so run manifests record every degraded
/// result. Non-budget errors from the exact solve propagate unchanged —
/// the FPTAS cannot fix a malformed instance.
pub fn throughput_with_fallback(
    ps: &PathSet,
    fallback_eps: f64,
    budget: &Budget,
) -> Result<ThroughputResult, McfError> {
    match exact::solve(ps, budget) {
        Ok(r) => Ok(r),
        Err(McfError::Budget(_)) => {
            dcn_obs::counter!(dcn_obs::names::MCF_FALLBACK_EXACT_TO_FPTAS).inc();
            dcn_obs::obs_log!(
                "mcf: exact solve exhausted its budget; falling back to fptas eps={fallback_eps}"
            );
            let mut r = fptas::solve(ps, fallback_eps, budget)?;
            r.provenance = Provenance::FptasFallback { eps: fallback_eps };
            Ok(r)
        }
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod fallback_tests {
    use super::*;
    use dcn_graph::Graph;

    fn c5_instance() -> PathSet {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]).unwrap();
        let topo = Topology::new(g, vec![1; 5], "c5").unwrap();
        let tm =
            TrafficMatrix::permutation(&topo, &[(0, 3), (3, 1), (1, 4), (4, 2), (2, 0)])
                .unwrap();
        PathSet::k_shortest(&topo, &tm, 8, &Budget::unlimited()).unwrap()
    }

    #[test]
    fn roomy_budget_stays_exact() {
        let ps = c5_instance();
        let r = throughput_with_fallback(&ps, 0.05, &Budget::unlimited()).unwrap();
        assert_eq!(r.provenance, Provenance::Exact);
        assert!(!r.provenance.is_degraded());
        assert!((r.theta_lb - 5.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn exhausted_exact_degrades_to_fptas() {
        let ps = c5_instance();
        // Too few ticks for the simplex (each tick = one pivot), but
        // enough for the FPTAS to route at least one full phase (each
        // tick = one augmentation; C5 needs 5 per phase).
        let budget = Budget::unlimited().with_iter_cap(6);
        let r = throughput_with_fallback(&ps, 0.05, &budget).unwrap();
        assert_eq!(r.provenance, Provenance::FptasFallback { eps: 0.05 });
        assert!(r.provenance.is_degraded());
        // The degraded bracket still contains the true θ = 5/6.
        assert!(r.theta_lb <= 5.0 / 6.0 + 1e-9);
        assert!(r.theta_ub >= 5.0 / 6.0 - 1e-9);
    }

    #[test]
    fn hopeless_budget_propagates_typed_error() {
        let ps = c5_instance();
        // One tick total: exact exhausts, then the fallback FPTAS cannot
        // route even one commodity — the chain reports Budget, not a hang.
        let budget = Budget::unlimited().with_iter_cap(1);
        assert!(matches!(
            throughput_with_fallback(&ps, 0.05, &budget),
            Err(McfError::Budget(_))
        ));
    }

    #[test]
    fn non_budget_errors_skip_the_fallback() {
        let ps = c5_instance();
        // A bad eps only matters once the fallback runs; verify the
        // fallback path surfaces it rather than looping.
        let budget = Budget::unlimited().with_iter_cap(6);
        assert!(matches!(
            throughput_with_fallback(&ps, 0.9, &budget),
            Err(McfError::BadEps(_))
        ));
    }
}
