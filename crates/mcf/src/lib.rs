//! Path-based multi-commodity flow (MCF) throughput — the `KSP-MCF`
//! procedure of the paper (§3.1 and Appendix H).
//!
//! Given a topology and a traffic matrix `T`, the throughput `θ(T)` is the
//! largest scale factor such that `θ(T) · T` can be routed without
//! exceeding any link capacity, with each commodity restricted to its K
//! shortest paths. Two backends solve the same LP:
//!
//! * [`Engine::Exact`] — the path LP of Appendix H solved with the
//!   `dcn-lp` simplex. Exact, but only practical for small instances.
//! * [`Engine::Fptas`] — the Garg–Könemann / Fleischer multiplicative-
//!   weights algorithm for maximum concurrent flow, restricted to the same
//!   path sets. Returns a **certified bracket** `[theta_lb, theta_ub]`:
//!   `theta_lb` comes from an explicitly feasible flow, `theta_ub` from
//!   the LP dual, so `theta_lb <= θ(T) <= theta_ub` always holds.
//!
//! Both backends also report the fraction of routed flow that travels on
//! shortest paths (Figure 4(a) of the paper).

#![warn(missing_docs)]

pub mod exact;
pub mod fptas;
pub mod pathset;
pub mod routing;

pub use pathset::{Commodity, PathSet};
pub use routing::{ecmp_throughput, vlb_throughput};

use dcn_model::{ModelError, Topology, TrafficMatrix};

/// Throughput computation backend.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Engine {
    /// Exact simplex on the path LP.
    Exact,
    /// Garg–Könemann FPTAS with accuracy parameter `eps` in (0, 0.5).
    Fptas {
        /// Accuracy: the bracket converges to within `eps` relative gap.
        eps: f64,
    },
}

/// Result of a throughput computation.
#[derive(Debug, Clone)]
pub struct ThroughputResult {
    /// Certified lower bound on `θ(T)` (a feasible flow achieves it).
    pub theta_lb: f64,
    /// Certified upper bound on `θ(T)`.
    pub theta_ub: f64,
    /// Fraction of total routed flow volume carried on shortest paths.
    pub shortest_path_fraction: f64,
}

impl ThroughputResult {
    /// Midpoint estimate of `θ(T)`.
    pub fn theta(&self) -> f64 {
        0.5 * (self.theta_lb + self.theta_ub)
    }
}

/// Errors from MCF throughput computation.
#[derive(Debug, Clone, PartialEq)]
pub enum McfError {
    /// Underlying model error.
    Model(ModelError),
    /// A commodity has no path between its endpoints.
    NoPath {
        /// Source switch.
        src: u32,
        /// Destination switch.
        dst: u32,
    },
    /// The traffic matrix is empty.
    EmptyTraffic,
    /// Invalid epsilon for the FPTAS.
    BadEps(f64),
    /// The LP solver reported an unexpected status.
    SolverFailure(&'static str),
}

impl From<ModelError> for McfError {
    fn from(e: ModelError) -> Self {
        McfError::Model(e)
    }
}

impl std::fmt::Display for McfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            McfError::Model(e) => write!(f, "model error: {e}"),
            McfError::NoPath { src, dst } => write!(f, "no path from {src} to {dst}"),
            McfError::EmptyTraffic => write!(f, "traffic matrix is empty"),
            McfError::BadEps(e) => write!(f, "fptas eps must be in (0, 0.5), got {e}"),
            McfError::SolverFailure(s) => write!(f, "lp solver failure: {s}"),
        }
    }
}

impl std::error::Error for McfError {}

/// Computes `θ(T)` with each commodity restricted to its `k` shortest
/// paths (the paper's KSP-MCF). Convenience wrapper that builds the path
/// set and dispatches on the engine.
///
/// ```
/// use dcn_graph::Graph;
/// use dcn_mcf::{ksp_mcf_throughput, Engine};
/// use dcn_model::{Topology, TrafficMatrix};
///
/// // The paper's Figure 7: C5 with the distance-2 permutation has θ = 5/6.
/// let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)])?;
/// let topo = Topology::new(g, vec![1; 5], "c5")?;
/// let tm = TrafficMatrix::permutation(&topo, &[(0, 3), (3, 1), (1, 4), (4, 2), (2, 0)])?;
/// let res = ksp_mcf_throughput(&topo, &tm, 8, Engine::Exact)?;
/// assert!((res.theta_lb - 5.0 / 6.0).abs() < 1e-9);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn ksp_mcf_throughput(
    topo: &Topology,
    tm: &TrafficMatrix,
    k: usize,
    engine: Engine,
) -> Result<ThroughputResult, McfError> {
    let ps = PathSet::k_shortest(topo, tm, k)?;
    throughput_on_paths(&ps, engine)
}

/// Computes `θ(T)` over an explicit path set.
pub fn throughput_on_paths(
    ps: &PathSet,
    engine: Engine,
) -> Result<ThroughputResult, McfError> {
    match engine {
        Engine::Exact => exact::solve(ps),
        Engine::Fptas { eps } => fptas::solve(ps, eps),
    }
}
