//! Deployable routing models: ECMP and VLB.
//!
//! The LP/FPTAS backends compute what an *ideal* (fractional,
//! traffic-aware) routing could achieve. Deployed fabrics run simpler
//! schemes; §6 of the paper poses "how well does a proposed routing
//! design utilize capacity?" as a use case for tub. This module provides
//! the two classical reference points:
//!
//! * [`ecmp_throughput`] — per-hop equal-cost multi-path: at every switch,
//!   traffic toward a destination splits equally across all outgoing links
//!   that lie on *some* shortest path to it. Optimal for Clos; generally
//!   suboptimal on expanders.
//! * [`vlb_throughput`] — Valiant load balancing: every flow is routed in
//!   two ECMP stages through a uniformly random intermediate switch.
//!   Oblivious and worst-case robust, at the cost of doubling path length.
//!
//! Both return the throughput `θ(T)`: the largest scale of the traffic
//! matrix that keeps every directed link within capacity under the fixed
//! routing function.

use crate::McfError;
use dcn_graph::{Graph, NodeId};
use dcn_model::{Topology, TrafficMatrix};

/// Per-destination ECMP splitting state on a coalesced graph.
struct EcmpState {
    graph: Graph,
    n: usize,
}

impl EcmpState {
    fn new(topo: &Topology) -> Self {
        let graph = topo.graph().coalesced();
        let n = graph.n();
        EcmpState { graph, n }
    }

    /// Adds the link loads induced by routing `amount` from `src` to `dst`
    /// with per-hop ECMP splitting. `loads` is indexed by directed edge
    /// (`2*edge + dir`). Returns `false` if `dst` is unreachable.
    fn route(&self, src: NodeId, dst: NodeId, amount: f64, loads: &mut [f64]) -> bool {
        // Distances to the destination drive next-hop selection.
        let dist = self.graph.bfs_distances(dst);
        if dist[src as usize] == u16::MAX {
            return false;
        }
        // Process nodes in decreasing distance so mass propagates forward.
        let mut mass = vec![0.0f64; self.n];
        mass[src as usize] = amount;
        let mut order: Vec<NodeId> = (0..self.n as NodeId).collect();
        order.sort_by_key(|&u| std::cmp::Reverse(dist[u as usize]));
        for &u in &order {
            let m = mass[u as usize];
            if m <= 0.0 || u == dst || dist[u as usize] == u16::MAX {
                continue;
            }
            // Next hops: neighbors one step closer, weighted by capacity
            // (a trunk of capacity c is c parallel equal-cost links).
            let mut total_cap = 0.0;
            for (v, e) in self.graph.neighbors(u) {
                if dist[v as usize] + 1 == dist[u as usize] {
                    total_cap += self.graph.capacity(e);
                }
            }
            debug_assert!(total_cap > 0.0, "no downhill neighbor on a shortest path");
            for (v, e) in self.graph.neighbors(u) {
                if dist[v as usize] + 1 == dist[u as usize] {
                    let share = m * self.graph.capacity(e) / total_cap;
                    let (a, _) = self.graph.edge(e);
                    let dir_idx = 2 * e as usize + usize::from(a == u);
                    loads[dir_idx] += share;
                    mass[v as usize] += share;
                }
            }
        }
        true
    }

    /// Throughput given accumulated loads at TM scale 1.
    fn theta(&self, loads: &[f64]) -> f64 {
        let mut worst = f64::INFINITY;
        for (i, &l) in loads.iter().enumerate() {
            if l > 0.0 {
                let cap = self.graph.capacity((i / 2) as u32);
                worst = worst.min(cap / l);
            }
        }
        worst
    }
}

/// Throughput of `tm` under per-hop ECMP over shortest paths.
pub fn ecmp_throughput(topo: &Topology, tm: &TrafficMatrix) -> Result<f64, McfError> {
    if tm.is_empty() {
        return Err(McfError::EmptyTraffic);
    }
    let st = EcmpState::new(topo);
    let mut loads = vec![0.0f64; 2 * st.graph.m()];
    for d in tm.demands() {
        if !st.route(d.src, d.dst, d.amount, &mut loads) {
            return Err(McfError::NoPath {
                src: d.src,
                dst: d.dst,
            });
        }
    }
    Ok(st.theta(&loads))
}

/// Throughput of `tm` under Valiant load balancing: each demand is split
/// equally across all switches with servers as intermediates, with ECMP
/// routing on each stage. (The classical oblivious scheme; guarantees
/// `θ >= (R - H) / 2H` on uniform-H uni-regular topologies.)
pub fn vlb_throughput(topo: &Topology, tm: &TrafficMatrix) -> Result<f64, McfError> {
    if tm.is_empty() {
        return Err(McfError::EmptyTraffic);
    }
    let st = EcmpState::new(topo);
    let k = topo.switches_with_servers();
    let mut loads = vec![0.0f64; 2 * st.graph.m()];
    // Stage loads are additive; splitting over |K| intermediates means
    // each (src -> mid) and (mid -> dst) leg carries amount / |K|.
    // Exploit linearity: aggregate per (src, mid) and (mid, dst) first to
    // keep the number of BFS routings at O(|K| * distinct endpoints).
    let share_of = 1.0 / k.len() as f64;
    // Aggregate stage-1 (src -> mid) and stage-2 (mid -> dst) volumes.
    use std::collections::HashMap;
    let mut stage: HashMap<(NodeId, NodeId), f64> = HashMap::new();
    for d in tm.demands() {
        for &mid in &k {
            let amt = d.amount * share_of;
            if mid != d.src {
                *stage.entry((d.src, mid)).or_insert(0.0) += amt;
            }
            if mid != d.dst {
                *stage.entry((mid, d.dst)).or_insert(0.0) += amt;
            }
        }
    }
    let mut pairs: Vec<((NodeId, NodeId), f64)> = stage.into_iter().collect();
    pairs.sort_by_key(|&((a, b), _)| (b, a)); // deterministic order
    for ((src, dst), amount) in pairs {
        if !st.route(src, dst, amount, &mut loads) {
            return Err(McfError::NoPath { src, dst });
        }
    }
    Ok(st.theta(&loads))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcn_graph::Graph;
    use dcn_model::Topology;
    use dcn_topo::{fat_tree, jellyfish};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ring(n: usize, h: u32) -> Topology {
        let edges: Vec<(u32, u32)> = (0..n as u32).map(|i| (i, (i + 1) % n as u32)).collect();
        let g = Graph::from_edges(n, &edges).unwrap();
        Topology::new(g, vec![h; n], "ring").unwrap()
    }

    #[test]
    fn ecmp_on_square_splits_both_ways() {
        // 0 -> 2 on a 4-cycle: two equal shortest paths, each link carries
        // half → θ = 1 / 0.5 = 2 for unit demand.
        let t = ring(4, 1);
        let tm = TrafficMatrix::permutation(&t, &[(0, 2)]).unwrap();
        let th = ecmp_throughput(&t, &tm).unwrap();
        assert!((th - 2.0).abs() < 1e-9);
    }

    #[test]
    fn ecmp_is_optimal_on_clos() {
        // Any permutation on a fat-tree reaches θ >= 1 under ECMP (the
        // fluid limit of the paper's §3.1 claim).
        let t = fat_tree(4).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..5 {
            let tm = TrafficMatrix::random_permutation(&t, &mut rng).unwrap();
            let th = ecmp_throughput(&t, &tm).unwrap();
            assert!(th >= 1.0 - 1e-9, "ecmp θ = {th} on clos");
        }
    }

    #[test]
    fn ecmp_never_beats_mcf() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = jellyfish(20, 5, 4, &mut rng).unwrap();
        for _ in 0..3 {
            let tm = TrafficMatrix::random_permutation(&t, &mut rng).unwrap();
            let ecmp = ecmp_throughput(&t, &tm).unwrap();
            let mcf = crate::ksp_mcf_throughput(&t, &tm, 32, crate::Engine::Exact, &dcn_cache::prelude::unlimited_ctx())
                .unwrap()
                .theta_lb;
            assert!(ecmp <= mcf + 1e-9, "ecmp {ecmp} > mcf {mcf}");
        }
    }

    #[test]
    fn ecmp_worse_than_optimal_on_cycle() {
        // The Figure 7 permutation on C5: optimal is 5/6 but ECMP (pure
        // shortest-path) only reaches 1/2.
        let t = ring(5, 1);
        let tm =
            TrafficMatrix::permutation(&t, &[(0, 3), (3, 1), (1, 4), (4, 2), (2, 0)]).unwrap();
        let th = ecmp_throughput(&t, &tm).unwrap();
        assert!((th - 0.5).abs() < 1e-9, "ecmp θ = {th}");
    }

    #[test]
    fn vlb_is_permutation_oblivious() {
        // VLB load depends only on row/column sums, so any two saturated
        // permutations get identical throughput.
        let mut rng = StdRng::seed_from_u64(3);
        let t = jellyfish(16, 6, 4, &mut rng).unwrap();
        let tm1 = TrafficMatrix::random_permutation(&t, &mut rng).unwrap();
        let tm2 = TrafficMatrix::random_permutation(&t, &mut rng).unwrap();
        let v1 = vlb_throughput(&t, &tm1).unwrap();
        let v2 = vlb_throughput(&t, &tm2).unwrap();
        assert!((v1 - v2).abs() < 1e-6, "vlb θ {v1} vs {v2}");
    }

    #[test]
    fn vlb_bounded_by_ideal() {
        let mut rng = StdRng::seed_from_u64(4);
        let t = jellyfish(16, 6, 4, &mut rng).unwrap();
        let tm = TrafficMatrix::random_permutation(&t, &mut rng).unwrap();
        let vlb = vlb_throughput(&t, &tm).unwrap();
        let mcf = crate::ksp_mcf_throughput(&t, &tm, 32, crate::Engine::Exact, &dcn_cache::prelude::unlimited_ctx())
            .unwrap()
            .theta_lb;
        assert!(vlb <= mcf + 1e-9, "vlb {vlb} > mcf {mcf}");
        assert!(vlb > 0.0);
    }

    #[test]
    fn empty_tm_rejected() {
        let t = ring(4, 1);
        let empty = TrafficMatrix::new(&t, vec![]).unwrap();
        assert!(matches!(
            ecmp_throughput(&t, &empty),
            Err(McfError::EmptyTraffic)
        ));
        assert!(matches!(
            vlb_throughput(&t, &empty),
            Err(McfError::EmptyTraffic)
        ));
    }
}
