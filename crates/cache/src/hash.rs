//! Canonical content hashing of solver inputs into 128-bit cache keys.
//!
//! Keys are built from the *content* of a [`Topology`], a
//! [`TrafficMatrix`], and the solver parameters — never from pointers,
//! names, or construction order. Two topologies with the same switch
//! count, per-switch server counts, edge list, and capacities hash
//! identically regardless of how they were generated; the human-readable
//! [`Topology::name`] is deliberately excluded so that renaming a
//! topology cannot split the cache.
//!
//! **Non-goal: graph isomorphism.** Keys are computed over the *labelled*
//! edge list. Two isomorphic topologies whose nodes are numbered
//! differently hash to different keys and are cached separately. Canonical
//! labelling is graph-isomorphism-hard and the sweeps this cache serves
//! (frontier probes, resilience trials, K-sweeps) re-present byte-identical
//! inputs, so label-sensitive hashing captures the wins without it.
//!
//! The mixer is two independent [splitmix64] streams seeded with distinct
//! constants, giving a 128-bit key. This is a content hash for
//! memoization, not a cryptographic MAC: collisions are astronomically
//! unlikely for honest inputs but no adversarial resistance is claimed.
//!
//! [splitmix64]: https://prng.di.unimi.it/splitmix64.c

use dcn_model::{Topology, TrafficMatrix};

/// Record format version, absorbed into every key. Bumping it invalidates
/// both tiers at once: in-memory lookups (different keys) and on-disk
/// records (version field mismatch → quarantine-free miss).
pub const FORMAT_VERSION: u64 = 1;

/// A 128-bit content-derived cache key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    hi: u64,
    lo: u64,
}

impl CacheKey {
    /// Lower-case hex rendering (32 chars), used in on-disk file names and
    /// record headers.
    pub fn to_hex(self) -> String {
        format!("{:016x}{:016x}", self.hi, self.lo)
    }

    /// Shard index for an `n`-way sharded store.
    pub(crate) fn shard(self, n: usize) -> usize {
        (self.hi % n as u64) as usize
    }
}

/// The standard splitmix64 finalizer: a bijective 64-bit mixer.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Incremental builder for a [`CacheKey`].
///
/// Construct with a domain tag naming the cached computation (e.g.
/// `"tub"`, `"pathset"`), absorb every input that influences the result,
/// then [`finish`](KeyBuilder::finish). Word order matters — absorb inputs
/// in a fixed, documented order at each call site.
#[derive(Debug, Clone)]
pub struct KeyBuilder {
    hi: u64,
    lo: u64,
}

impl KeyBuilder {
    /// Starts a key for the given computation domain. The domain tag and
    /// [`FORMAT_VERSION`] are absorbed first, so equal inputs hashed under
    /// different domains (or format versions) never collide in practice.
    pub fn new(domain: &str) -> KeyBuilder {
        let b = KeyBuilder {
            hi: 0x517c_c1b7_2722_0a95,
            lo: 0x2545_f491_4f6c_dd1d,
        };
        b.u64(FORMAT_VERSION).str(domain)
    }

    fn absorb(mut self, w: u64) -> KeyBuilder {
        self.hi = splitmix64(self.hi ^ w);
        self.lo = splitmix64(self.lo ^ w.rotate_left(32) ^ 0x6c62_272e_07bb_0142);
        self
    }

    /// Absorbs one 64-bit word.
    pub fn u64(self, v: u64) -> KeyBuilder {
        self.absorb(v)
    }

    /// Absorbs an `f64` by bit pattern. `-0.0` and `0.0` hash differently;
    /// callers canonicalize if they treat them as equal.
    pub fn f64(self, v: f64) -> KeyBuilder {
        self.absorb(v.to_bits())
    }

    /// Absorbs a boolean flag.
    pub fn bool(self, v: bool) -> KeyBuilder {
        self.absorb(v as u64)
    }

    /// Absorbs a string: its length, then its bytes in little-endian
    /// 8-byte words (zero-padded tail). Length-prefixing keeps
    /// concatenation attacks (`"ab" + "c"` vs `"a" + "bc"`) distinct.
    pub fn str(self, s: &str) -> KeyBuilder {
        let mut b = self.absorb(s.len() as u64);
        for chunk in s.as_bytes().chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            b = b.absorb(u64::from_le_bytes(word));
        }
        b
    }

    /// Absorbs the full content of a topology: switch count, per-switch
    /// server counts, and the labelled edge list with per-edge capacities.
    /// The topology's display name is *excluded* (see the module docs);
    /// isomorphism is not attempted.
    pub fn topology(self, t: &Topology) -> KeyBuilder {
        let g = t.graph();
        let mut b = self.absorb(g.n() as u64);
        for &s in t.servers() {
            b = b.absorb(s as u64);
        }
        b = b.absorb(g.m() as u64);
        for (e, &(u, v)) in g.edges().iter().enumerate() {
            b = b
                .absorb(u as u64)
                .absorb(v as u64)
                .absorb(g.capacity(e as dcn_graph::EdgeId).to_bits());
        }
        b
    }

    /// Absorbs a traffic matrix: the demand count, then each
    /// `(src, dst, amount)` entry in stored order.
    pub fn traffic(self, tm: &TrafficMatrix) -> KeyBuilder {
        let mut b = self.absorb(tm.len() as u64);
        for d in tm.demands() {
            b = b
                .absorb(d.src as u64)
                .absorb(d.dst as u64)
                .absorb(d.amount.to_bits());
        }
        b
    }

    /// Finalizes the key with one more mixing round per stream.
    pub fn finish(self) -> CacheKey {
        CacheKey {
            hi: splitmix64(self.hi),
            lo: splitmix64(self.lo),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn deterministic_and_order_sensitive() {
        let a = KeyBuilder::new("t").u64(1).u64(2).finish();
        let b = KeyBuilder::new("t").u64(1).u64(2).finish();
        let c = KeyBuilder::new("t").u64(2).u64(1).finish();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn domain_tags_separate_equal_inputs() {
        let a = KeyBuilder::new("tub").u64(7).finish();
        let b = KeyBuilder::new("bbw").u64(7).finish();
        assert_ne!(a, b);
    }

    #[test]
    fn string_length_prefix_blocks_concat_collisions() {
        let a = KeyBuilder::new("t").str("ab").str("c").finish();
        let b = KeyBuilder::new("t").str("a").str("bc").finish();
        assert_ne!(a, b);
    }

    #[test]
    fn topology_hash_ignores_name_but_not_content() {
        let mut rng = StdRng::seed_from_u64(3);
        let t1 = dcn_topo::jellyfish(20, 6, 3, &mut rng).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let t2 = dcn_topo::jellyfish(20, 6, 3, &mut rng).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let t3 = dcn_topo::jellyfish(20, 6, 3, &mut rng).unwrap();
        let k = |t: &Topology| KeyBuilder::new("t").topology(t).finish();
        assert_eq!(k(&t1), k(&t2), "same seed, same content, same key");
        assert_ne!(k(&t1), k(&t3), "different wiring must split the key");
    }

    #[test]
    fn hex_is_32_chars() {
        let k = KeyBuilder::new("t").finish();
        assert_eq!(k.to_hex().len(), 32);
        assert!(k.to_hex().chars().all(|c| c.is_ascii_hexdigit()));
    }
}
