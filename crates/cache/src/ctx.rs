//! [`SolveCtx`]: the unified per-request solver context.
//!
//! Before this module existed, every solver entry point in the workspace
//! ended in the same twin-parameter tail — `cache: &CacheHandle,
//! budget: &Budget` — and every cross-cutting concern (PR-5's cache, PR-2's
//! budgets) meant another workspace-wide signature churn. `SolveCtx`
//! collapses the tail into one borrowed context so a long-running service
//! (`dcnd`) can thread a *per-request* cache/budget/provenance bundle
//! through the whole solver stack, and future request-scoped fields
//! (request ids, trace attribution) extend the struct instead of every
//! signature.
//!
//! The struct lives in `dcn-cache` rather than `dcn-guard` because the
//! dependency arrow points this way: `dcn-cache` already depends on
//! `dcn-guard` (for the env registry and validation hooks), so a context
//! that borrows both a [`CacheHandle`] and a [`Budget`] must sit at the
//! cache layer or above. `dcn-cache` is the lowest crate that can see
//! both types, and everything that used the twin tail already depends
//! on it.
//!
//! Call-site vocabulary (all re-exported via [`crate::prelude`]):
//!
//! * [`ctx(&cache, &budget)`](crate::prelude::ctx) — explicit parts, the
//!   daemon/CLI form.
//! * [`unlimited_ctx()`](crate::prelude::unlimited_ctx) — disabled cache,
//!   unlimited budget: the test/default form (replaces the old
//!   `&nocache(), &unlimited()` pair).
//! * [`nocache_ctx(&budget)`](crate::prelude::nocache_ctx) — disabled
//!   cache with a real budget: budget-sensitivity tests.

use crate::CacheHandle;
use dcn_guard::Budget;

/// The unified solver request context: the memoization handle and the
/// execution budget every solver entry point threads together.
///
/// `SolveCtx` is `Copy` (two references), cheap to pass by value into
/// `dcn-exec` closures, and passed as `&SolveCtx` through solver entry
/// points (the form `dcn-lint`'s `budget-coverage` rule accepts as
/// budget coverage).
///
/// ```
/// use dcn_cache::prelude::*;
/// use dcn_guard::prelude::*;
///
/// fn solve(ctx: &SolveCtx<'_>) -> Result<u64, BudgetError> {
///     let mut meter = ctx.budget.meter();
///     meter.tick()?;
///     assert!(!ctx.cache.is_enabled());
///     Ok(meter.used())
/// }
///
/// assert_eq!(solve(&unlimited_ctx()), Ok(1));
/// let tight = Budget::unlimited().with_iter_cap(0);
/// assert!(solve(&nocache_ctx(&tight)).is_err());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct SolveCtx<'a> {
    /// Cache consulted (and filled) by every memoized solver on the path
    /// of this request. A disabled handle forces recomputation.
    pub cache: &'a CacheHandle,
    /// Budget metering every iterative kernel on the path of this
    /// request; exhaustion surfaces as a typed `BudgetError`.
    pub budget: &'a Budget,
}

impl<'a> SolveCtx<'a> {
    /// Builds a context from explicit parts (prefer the
    /// [`ctx`](crate::prelude::ctx) prelude shorthand at call sites).
    pub fn new(cache: &'a CacheHandle, budget: &'a Budget) -> SolveCtx<'a> {
        SolveCtx { cache, budget }
    }

    /// A context over `cache` with an unlimited budget — the common
    /// one-shot CLI/bench form where the cache matters but no deadline
    /// is configured.
    pub fn unlimited(cache: &'a CacheHandle) -> SolveCtx<'a> {
        SolveCtx {
            cache,
            budget: Budget::unlimited_ref(),
        }
    }

    /// The same cache under a different budget, e.g. a per-stage
    /// sub-deadline derived from a request's global budget.
    pub fn with_budget(self, budget: &'a Budget) -> SolveCtx<'a> {
        SolveCtx { budget, ..self }
    }

    /// The same budget with the cache disabled, e.g. to force a
    /// recomputation while still honoring the request deadline.
    pub fn without_cache(self) -> SolveCtx<'a> {
        SolveCtx {
            cache: disabled_ref(),
            ..self
        }
    }
}

/// A `&'static` disabled cache handle backing the `*_ctx` constructors.
pub(crate) fn disabled_ref() -> &'static CacheHandle {
    static DISABLED: CacheHandle = CacheHandle { inner: None };
    &DISABLED
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prelude::*;

    #[test]
    fn unlimited_ctx_is_disabled_and_unlimited() {
        let c = unlimited_ctx();
        assert!(!c.cache.is_enabled());
        assert!(c.budget.is_unlimited());
    }

    #[test]
    fn ctx_borrows_parts() {
        let cache = CacheHandle::in_memory(1 << 16);
        let budget = Budget::unlimited().with_iter_cap(3);
        let c = ctx(&cache, &budget);
        assert!(c.cache.is_enabled());
        assert!(!c.budget.is_unlimited());
    }

    #[test]
    fn nocache_ctx_keeps_budget() {
        let budget = Budget::unlimited().with_iter_cap(1);
        let c = nocache_ctx(&budget);
        assert!(!c.cache.is_enabled());
        let mut m = c.budget.meter();
        assert!(m.tick().is_ok());
        assert!(m.tick().is_err());
    }

    #[test]
    fn with_budget_and_without_cache_rebind() {
        let cache = CacheHandle::in_memory(1 << 16);
        let tight = Budget::unlimited().with_iter_cap(0);
        let c = SolveCtx::unlimited(&cache);
        assert!(c.budget.is_unlimited());
        let c2 = c.with_budget(&tight);
        assert!(c2.cache.is_enabled());
        assert!(!c2.budget.is_unlimited());
        let c3 = c2.without_cache();
        assert!(!c3.cache.is_enabled());
        assert!(!c3.budget.is_unlimited());
    }
}
