//! The sharded in-memory tier: `RwLock` shards, logical-clock LRU,
//! byte-budget eviction.
//!
//! Recency is tracked with a global *logical* clock (an `AtomicU64`
//! bumped on every touch), not wall time — the workspace nondeterminism
//! rules keep `Instant::now` out of non-clock crates, and a logical clock
//! makes eviction order reproducible for a serial access sequence.

use crate::disk::DiskTier;
use crate::hash::CacheKey;
use std::any::Any;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

/// Shard count; keys pick a shard from their high word.
const N_SHARDS: usize = 16;

struct Stored {
    value: Box<dyn Any + Send + Sync>,
    bytes: usize,
    last_used: AtomicU64,
}

#[derive(Default)]
struct Shard {
    map: HashMap<CacheKey, Stored>,
    bytes: usize,
}

/// The process-wide cache state behind a [`crate::CacheHandle`].
pub(crate) struct Store {
    shards: Vec<RwLock<Shard>>,
    clock: AtomicU64,
    /// Per-shard byte budget (total budget / shard count).
    shard_budget: usize,
    pub(crate) disk: Option<DiskTier>,
}

impl Store {
    pub(crate) fn new(max_bytes: usize, disk: Option<DiskTier>) -> Store {
        let mut shards = Vec::with_capacity(N_SHARDS);
        shards.resize_with(N_SHARDS, || RwLock::new(Shard::default()));
        Store {
            shards,
            clock: AtomicU64::new(0),
            shard_budget: (max_bytes / N_SHARDS).max(1),
            disk,
        }
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Looks up `key`, cloning the stored value out under the read lock
    /// and refreshing its recency stamp. A stored value of the wrong
    /// concrete type (possible only on a 128-bit key collision across
    /// domains) is treated as a miss.
    pub(crate) fn get<T: Clone + 'static>(&self, key: CacheKey) -> Option<T> {
        let shard = self.shards[key.shard(N_SHARDS)]
            .read()
            .expect("cache shard poisoned");
        let stored = shard.map.get(&key)?;
        let value = stored.value.downcast_ref::<T>()?.clone();
        stored.last_used.store(self.tick(), Ordering::Relaxed);
        Some(value)
    }

    /// Inserts (or overwrites) `key`, then evicts least-recently-used
    /// entries until the shard is back under its byte budget. The entry
    /// just inserted is never evicted, so a single oversized value still
    /// caches (and is replaced by the next insert into its shard).
    pub(crate) fn insert<T: Send + Sync + 'static>(&self, key: CacheKey, value: T, bytes: usize) {
        let evictions = dcn_obs::counter!(dcn_obs::names::CACHE_EVICT);
        let stamp = self.tick();
        let mut shard = self.shards[key.shard(N_SHARDS)]
            .write()
            .expect("cache shard poisoned");
        if let Some(old) = shard.map.insert(
            key,
            Stored {
                value: Box::new(value),
                bytes,
                last_used: AtomicU64::new(stamp),
            },
        ) {
            shard.bytes -= old.bytes;
        }
        shard.bytes += bytes;
        while shard.bytes > self.shard_budget && shard.map.len() > 1 {
            let victim = shard
                .map
                .iter()
                .filter(|(k, _)| **k != key)
                .min_by_key(|(_, s)| s.last_used.load(Ordering::Relaxed))
                .map(|(k, _)| *k);
            let Some(victim) = victim else { break };
            if let Some(evicted) = shard.map.remove(&victim) {
                shard.bytes -= evicted.bytes;
                evictions.inc();
            }
        }
    }

    /// Total entries across all shards (test support).
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("cache shard poisoned").map.len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::KeyBuilder;

    fn key(i: u64) -> CacheKey {
        KeyBuilder::new("store-test").u64(i).finish()
    }

    #[test]
    fn get_after_insert_round_trips() {
        let store = Store::new(1 << 20, None);
        store.insert(key(1), 42.0f64, 8);
        assert_eq!(store.get::<f64>(key(1)), Some(42.0));
        assert_eq!(store.get::<f64>(key(2)), None);
    }

    #[test]
    fn wrong_type_is_a_miss_not_a_panic() {
        let store = Store::new(1 << 20, None);
        store.insert(key(1), 42.0f64, 8);
        assert_eq!(store.get::<u64>(key(1)), None);
    }

    #[test]
    fn byte_budget_evicts_least_recently_used() {
        // Per-shard budget of 100 bytes: room for two 40-byte entries,
        // not three, so the third insert must evict exactly one.
        let store = Store::new(N_SHARDS * 100, None);
        // Find three keys in the same shard so the budget actually binds.
        let mut same_shard = Vec::new();
        let mut i = 0u64;
        while same_shard.len() < 3 {
            let k = key(i);
            if k.shard(N_SHARDS) == 0 {
                same_shard.push(k);
            }
            i += 1;
        }
        store.insert(same_shard[0], 0u64, 40);
        store.insert(same_shard[1], 1u64, 40);
        // Touch entry 0 so entry 1 is now the LRU.
        assert_eq!(store.get::<u64>(same_shard[0]), Some(0));
        store.insert(same_shard[2], 2u64, 40);
        assert_eq!(store.get::<u64>(same_shard[1]), None, "LRU entry evicted");
        assert_eq!(store.get::<u64>(same_shard[0]), Some(0));
        assert_eq!(store.get::<u64>(same_shard[2]), Some(2));
    }

    #[test]
    fn oversized_entry_still_caches() {
        let store = Store::new(N_SHARDS, None); // 1 byte per shard
        store.insert(key(1), 7u64, 1 << 20);
        assert_eq!(store.get::<u64>(key(1)), Some(7));
        assert_eq!(store.len(), 1);
    }
}
