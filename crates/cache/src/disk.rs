//! The optional on-disk tier: versioned hand-rolled JSON records with
//! corrupt-entry quarantine.
//!
//! One file per entry, `<kind>-<hex key>.json`, containing
//!
//! ```json
//! { "version": 1, "kind": "tub", "key": "…32 hex…", "value": { … } }
//! ```
//!
//! Records are written atomically (temp file + rename). Any record that
//! fails to load — unreadable JSON, wrong version/kind/key, a
//! [`CacheEntry::from_json`] decode error, or (when `DCN_VALIDATE` is on)
//! a failed [`CacheEntry::validate`] certificate check — is *quarantined*:
//! renamed to `<name>.quarantined`, counted under `cache.quarantined`, and
//! treated as a miss. Corruption therefore costs a recompute, never a
//! panic and never a poisoned result.

use crate::hash::{CacheKey, FORMAT_VERSION};
use crate::CacheEntry;
use dcn_obs::json::Json;
use std::fs;
use std::path::{Path, PathBuf};

/// A directory of JSON cache records.
#[derive(Debug)]
pub(crate) struct DiskTier {
    dir: PathBuf,
}

impl DiskTier {
    /// Opens (creating if needed) the record directory. Returns `None`
    /// when the directory cannot be created — the cache then runs
    /// memory-only rather than failing the run.
    pub(crate) fn open(dir: PathBuf) -> Option<DiskTier> {
        fs::create_dir_all(&dir).ok()?;
        Some(DiskTier { dir })
    }

    fn path_for(&self, kind: &str, key: CacheKey) -> PathBuf {
        self.dir.join(format!("{kind}-{}.json", key.to_hex()))
    }

    /// Loads and revalidates a record; quarantines it and reports a miss
    /// on any failure. An absent file is a plain miss (no quarantine).
    pub(crate) fn load<T: CacheEntry>(&self, key: CacheKey) -> Option<T> {
        let path = self.path_for(T::KIND, key);
        let text = fs::read_to_string(&path).ok()?;
        match decode::<T>(&text, key) {
            Ok(value) => Some(value),
            Err(reason) => {
                quarantine(&path, T::KIND, &reason);
                None
            }
        }
    }

    /// Writes a record atomically. I/O errors are swallowed: the disk
    /// tier is an accelerator, never a correctness dependency.
    ///
    /// The temp name embeds the kind *and the writing pid*: the record
    /// directory is shared across processes (`dcn-fleet` workers all
    /// point at one `DCN_CACHE_DIR`), and a key-only temp name would
    /// let two processes storing the same key interleave writes into
    /// one temp file — a torn-write window the final `rename` would
    /// then publish. With per-process temp names, concurrent stores of
    /// the same key race only at the rename, which is atomic:
    /// last-writer-wins, and both writers' bytes are complete records.
    pub(crate) fn store<T: CacheEntry>(&self, key: CacheKey, value: &T) {
        let record = Json::obj([
            ("version", Json::Num(FORMAT_VERSION as f64)),
            ("kind", Json::Str(T::KIND.to_string())),
            ("key", Json::Str(key.to_hex())),
            ("value", value.to_json()),
        ]);
        let path = self.path_for(T::KIND, key);
        let tmp = self.dir.join(format!(
            "{}-{}.{}.tmp",
            T::KIND,
            key.to_hex(),
            std::process::id()
        ));
        let published =
            fs::write(&tmp, record.to_string_pretty()).is_ok() && fs::rename(&tmp, &path).is_ok();
        if !published {
            let _ = fs::remove_file(&tmp);
        }
    }
}

/// Lists the key suffixes of every `<kind>-<suffix>.json` record in
/// `dir`, sorted. This is the crash-recovery primitive: `dcn-fleet`
/// restarts re-derive the set of already-solved work ids from the
/// record directory instead of recomputing them. Temp files (`*.tmp`)
/// and quarantined records (`*.quarantined`) never match the pattern.
/// A missing or unreadable directory reads as empty.
pub fn scan_keys(dir: &Path, kind: &str) -> Vec<String> {
    let mut out = Vec::new();
    let Ok(entries) = fs::read_dir(dir) else {
        return out;
    };
    let prefix = format!("{kind}-");
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(suffix) = name
            .strip_prefix(&prefix)
            .and_then(|rest| rest.strip_suffix(".json"))
        {
            if !suffix.is_empty() {
                out.push(suffix.to_string());
            }
        }
    }
    out.sort();
    out
}

fn decode<T: CacheEntry>(text: &str, key: CacheKey) -> Result<T, String> {
    let json = Json::parse(text).map_err(|e| format!("unparseable record: {e}"))?;
    let version = json
        .get("version")
        .and_then(Json::as_u64)
        .ok_or("missing version")?;
    if version != FORMAT_VERSION {
        return Err(format!("version {version}, expected {FORMAT_VERSION}"));
    }
    let kind = json.get("kind").and_then(Json::as_str).ok_or("missing kind")?;
    if kind != T::KIND {
        return Err(format!("kind {kind:?}, expected {:?}", T::KIND));
    }
    let hex = json.get("key").and_then(Json::as_str).ok_or("missing key")?;
    if hex != key.to_hex() {
        return Err("key mismatch (renamed or relocated record)".to_string());
    }
    let value = json.get("value").ok_or("missing value")?;
    let decoded = T::from_json(value)?;
    if dcn_guard::validation_enabled() {
        decoded
            .validate()
            .map_err(|e| format!("certificate check failed: {e}"))?;
    }
    Ok(decoded)
}

fn quarantine(path: &Path, kind: &str, reason: &str) {
    dcn_obs::counter!(dcn_obs::names::CACHE_QUARANTINED).inc();
    dcn_obs::obs_log!("cache: quarantined {kind} record {}: {reason}", path.display());
    let mut target = path.as_os_str().to_os_string();
    target.push(".quarantined");
    if fs::rename(path, &target).is_err() {
        // Renaming failed (e.g. read-only dir): remove instead so the next
        // run does not re-trip on the same corrupt bytes; if even that
        // fails we still just miss.
        let _ = fs::remove_file(path);
    }
}
