//! dcn-cache: a content-addressed memoization layer for solver results.
//!
//! The paper's evaluation re-solves the same (topology, traffic matrix,
//! solver parameters) triples thousands of times — frontier probes rebuild
//! identical topologies while binary-searching server counts, resilience
//! trials revisit the same degraded fabrics, and K-sweeps re-enumerate
//! path sets. This crate caches those results behind a [`CacheHandle`]
//! carried alongside the `&Budget` at every hot call site.
//!
//! # Design
//!
//! - **Keys** ([`CacheKey`], [`KeyBuilder`]): 128-bit splitmix64-based
//!   content hashes of the *labelled* inputs. Graph isomorphism is an
//!   explicit **non-goal** — differently-numbered but isomorphic
//!   topologies cache separately (see [`hash`](KeyBuilder::topology)).
//! - **Memory tier**: a sharded `RwLock` store with logical-clock LRU
//!   eviction under a byte budget (`DCN_CACHE_BYTES`, default 256 MiB;
//!   `0` disables caching entirely).
//! - **Disk tier** (optional, `DCN_CACHE_DIR`): versioned hand-rolled
//!   JSON records reusing [`dcn_obs::json`]. Corrupt or stale records are
//!   *quarantined* (renamed `*.quarantined`, counted under
//!   `cache.quarantined`) and treated as misses — never a panic. When
//!   `DCN_VALIDATE` is on, deserialized entries re-run their
//!   [`CacheEntry::validate`] certificate checks before being served.
//! - **Metrics**: every lookup bumps `cache.hit` / `cache.miss` (plus
//!   `cache.disk.hit`, `cache.evict`); [`publish_hit_rate`] folds them
//!   into the `cache.hit_rate` gauge so run manifests record the rate.
//!
//! # Determinism contract
//!
//! Every cached computation in this workspace is deterministic in its
//! key inputs, so serving a hit is byte-identical to recomputing — warm
//! and cold runs of a sweep produce identical output at any
//! `DCN_EXEC_THREADS`. One caveat: the *budget* is deliberately **not**
//! part of the key. A result computed under a generous budget can be
//! served to a call running under a tight one (a strictly better
//! outcome than a fallback or truncation, but observable in provenance
//! fields). Budget-sensitivity tests should use [`CacheHandle::disabled`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ctx;
mod disk;
mod hash;
mod store;

pub use ctx::SolveCtx;
pub use disk::scan_keys;
pub use hash::{CacheKey, KeyBuilder, FORMAT_VERSION};

use dcn_obs::json::Json;
use std::path::PathBuf;
use std::sync::Arc;

/// Default in-memory byte budget when `DCN_CACHE_BYTES` is unset.
pub const DEFAULT_CACHE_BYTES: usize = 256 << 20;

/// A value that can live in the cache.
///
/// Implementations live in the crate that owns the type (e.g. `TubResult`
/// implements this in `dcn-core`), keeping `dcn-cache` free of solver
/// dependencies. `Clone` should be cheap — wrap bulky payloads in `Arc`.
pub trait CacheEntry: Clone + Send + Sync + 'static {
    /// Short kind tag, used in on-disk file names and record headers.
    /// Must be stable across versions and unique per cached type.
    const KIND: &'static str;

    /// Whether entries of this type are written to the disk tier.
    /// Memory-only types (e.g. `Arc`-shared path sets whose serialized
    /// form would dwarf the recompute cost) set this to `false`.
    const PERSIST: bool = true;

    /// Rough in-memory footprint in bytes, used for the LRU byte budget.
    /// An estimate is fine; it only needs to rank entries sensibly.
    fn approx_bytes(&self) -> usize;

    /// Serializes the value for the disk tier.
    fn to_json(&self) -> Json;

    /// Deserializes a disk record's `value` field. Errors quarantine the
    /// record and fall back to recomputing.
    fn from_json(json: &Json) -> Result<Self, String>;

    /// Re-runs the result's certificate checks after deserialization
    /// (invoked only when `DCN_VALIDATE` enables validation). The default
    /// accepts everything.
    fn validate(&self) -> Result<(), String> {
        Ok(())
    }
}

/// A cheaply-cloneable handle to the (possibly disabled) cache, passed
/// alongside `&Budget` through solver entry points and shared across
/// `dcn-exec` tasks.
///
/// ```
/// use dcn_cache::{CacheEntry, CacheHandle, KeyBuilder};
/// use dcn_obs::json::Json;
/// use std::cell::Cell;
///
/// #[derive(Clone)]
/// struct Answer(f64);
/// impl CacheEntry for Answer {
///     const KIND: &'static str = "doc-answer";
///     const PERSIST: bool = false;
///     fn approx_bytes(&self) -> usize { 8 }
///     fn to_json(&self) -> Json { Json::Num(self.0) }
///     fn from_json(j: &Json) -> Result<Self, String> {
///         j.as_f64().map(Answer).ok_or_else(|| "expected a number".into())
///     }
/// }
///
/// let cache = CacheHandle::in_memory(1 << 20);
/// let solves = Cell::new(0);
/// for _ in 0..3 {
///     let v: Result<Answer, ()> = cache.get_or_compute(
///         || KeyBuilder::new("doc-answer").u64(42).finish(),
///         || { solves.set(solves.get() + 1); Ok(Answer(42.0)) },
///     );
///     assert_eq!(v.unwrap().0, 42.0);
/// }
/// assert_eq!(solves.get(), 1, "two of the three lookups were hits");
/// ```
#[derive(Clone, Default)]
pub struct CacheHandle {
    inner: Option<Arc<store::Store>>,
}

impl std::fmt::Debug for CacheHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CacheHandle")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl CacheHandle {
    /// A no-op handle: every lookup computes, nothing is stored, no
    /// metrics are emitted. Zero overhead beyond an `Option` check.
    pub fn disabled() -> CacheHandle {
        CacheHandle { inner: None }
    }

    /// An enabled memory-only cache with the given byte budget.
    pub fn in_memory(max_bytes: usize) -> CacheHandle {
        CacheHandle {
            inner: Some(Arc::new(store::Store::new(max_bytes, None))),
        }
    }

    /// An enabled cache with a disk tier rooted at `dir` (created if
    /// missing; falls back to memory-only if creation fails).
    pub fn with_disk(max_bytes: usize, dir: impl Into<PathBuf>) -> CacheHandle {
        let disk = disk::DiskTier::open(dir.into());
        CacheHandle {
            inner: Some(Arc::new(store::Store::new(max_bytes, disk))),
        }
    }

    /// Builds a handle from the environment:
    ///
    /// - `DCN_CACHE_BYTES` — in-memory byte budget (plain integer bytes;
    ///   default [`DEFAULT_CACHE_BYTES`]); `0` returns a disabled handle.
    /// - `DCN_CACHE_DIR` — when set and non-empty, enables the on-disk
    ///   tier rooted at that directory.
    ///
    /// Unparseable values fall back to the default rather than erroring:
    /// the cache is an accelerator and must never fail a run.
    pub fn from_env() -> CacheHandle {
        let bytes = dcn_guard::env::CACHE_BYTES
            .parsed::<usize>()
            .unwrap_or(DEFAULT_CACHE_BYTES);
        if bytes == 0 {
            return CacheHandle::disabled();
        }
        match dcn_guard::env::CACHE_DIR.get() {
            Some(dir) if !dir.trim().is_empty() => CacheHandle::with_disk(bytes, dir),
            _ => CacheHandle::in_memory(bytes),
        }
    }

    /// Whether lookups can ever hit (i.e. the handle is not
    /// [`disabled`](CacheHandle::disabled)).
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The memoization primitive: returns the cached value for `key`, or
    /// runs `compute`, stores its success, and returns it.
    ///
    /// `key` is a closure so a disabled handle skips hashing entirely.
    /// Lookup order is memory tier, then disk tier (for persistent
    /// kinds), then `compute`. Errors from `compute` are returned
    /// untouched and never cached.
    pub fn get_or_compute<T: CacheEntry, E>(
        &self,
        key: impl FnOnce() -> CacheKey,
        compute: impl FnOnce() -> Result<T, E>,
    ) -> Result<T, E> {
        let Some(store) = &self.inner else {
            return compute();
        };
        let key = key();
        let hits = dcn_obs::counter!(dcn_obs::names::CACHE_HIT);
        if let Some(value) = store.get::<T>(key) {
            hits.inc();
            dcn_obs::trace_instant(dcn_obs::names::CACHE_HIT);
            return Ok(value);
        }
        if T::PERSIST {
            if let Some(disk) = &store.disk {
                if let Some(value) = disk.load::<T>(key) {
                    dcn_obs::counter!(dcn_obs::names::CACHE_DISK_HIT).inc();
                    hits.inc();
                    dcn_obs::trace_instant(dcn_obs::names::CACHE_DISK_HIT);
                    store.insert(key, value.clone(), value.approx_bytes());
                    return Ok(value);
                }
            }
        }
        dcn_obs::counter!(dcn_obs::names::CACHE_MISS).inc();
        dcn_obs::trace_instant(dcn_obs::names::CACHE_MISS);
        let value = compute()?;
        store.insert(key, value.clone(), value.approx_bytes());
        if T::PERSIST {
            if let Some(disk) = &store.disk {
                disk.store(key, &value);
            }
        }
        Ok(value)
    }

    /// A non-computing probe: the cached value for `key`, if any tier
    /// holds one. A memory- or disk-tier hit bumps the same counters as
    /// [`CacheHandle::get_or_compute`]; an absent value bumps nothing —
    /// a peek is not an attempt to solve, so it must not dilute the
    /// `cache.hit_rate` gauge. Used by `dcnd` admission control to serve
    /// warm queries after the global budget is exhausted.
    pub fn peek<T: CacheEntry>(&self, key: CacheKey) -> Option<T> {
        let store = self.inner.as_ref()?;
        let hits = dcn_obs::counter!(dcn_obs::names::CACHE_HIT);
        if let Some(value) = store.get::<T>(key) {
            hits.inc();
            dcn_obs::trace_instant(dcn_obs::names::CACHE_HIT);
            return Some(value);
        }
        if T::PERSIST {
            if let Some(disk) = &store.disk {
                if let Some(value) = disk.load::<T>(key) {
                    dcn_obs::counter!(dcn_obs::names::CACHE_DISK_HIT).inc();
                    hits.inc();
                    dcn_obs::trace_instant(dcn_obs::names::CACHE_DISK_HIT);
                    store.insert(key, value.clone(), value.approx_bytes());
                    return Some(value);
                }
            }
        }
        None
    }
}

/// Folds the hit/miss counters into the `cache.hit_rate` gauge
/// (`hits / (hits + misses)`, or `0` before any lookup). Called by the
/// bench harness just before capturing a run manifest so every manifest
/// records the rate.
pub fn publish_hit_rate() {
    let hits = dcn_obs::counter_value(dcn_obs::names::CACHE_HIT) as f64;
    let misses = dcn_obs::counter_value(dcn_obs::names::CACHE_MISS) as f64;
    let gauge = dcn_obs::gauge!(dcn_obs::names::CACHE_HIT_RATE);
    if hits + misses > 0.0 {
        gauge.set(hits / (hits + misses));
    } else {
        gauge.set(0.0);
    }
}

/// Convenience imports for call sites: `use dcn_cache::prelude::*;`.
pub mod prelude {
    pub use crate::{CacheEntry, CacheHandle, CacheKey, KeyBuilder, SolveCtx};
    use dcn_guard::Budget;

    /// A disabled [`CacheHandle`] — the cache analogue of
    /// `dcn_guard::prelude::unlimited()`, for tests and call sites that
    /// must observe uncached behavior.
    pub fn nocache() -> CacheHandle {
        CacheHandle::disabled()
    }

    /// Builds a [`SolveCtx`] from explicit parts:
    /// `solve(&ctx(&cache, &budget))`.
    pub fn ctx<'a>(cache: &'a CacheHandle, budget: &'a Budget) -> SolveCtx<'a> {
        SolveCtx::new(cache, budget)
    }

    /// The "don't care" context: disabled cache, unlimited budget.
    /// Replaces the old `&nocache(), &unlimited()` twin tail at test and
    /// example call sites: `solve(&unlimited_ctx())`.
    pub fn unlimited_ctx() -> SolveCtx<'static> {
        SolveCtx::new(crate::ctx::disabled_ref(), Budget::unlimited_ref())
    }

    /// A context with the cache disabled but a real budget, for
    /// budget-sensitivity tests: `solve(&nocache_ctx(&tight))`.
    pub fn nocache_ctx(budget: &Budget) -> SolveCtx<'_> {
        SolveCtx::new(crate::ctx::disabled_ref(), budget)
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::nocache;
    use super::*;

    #[derive(Clone, Debug, PartialEq)]
    struct Val(f64);

    impl CacheEntry for Val {
        const KIND: &'static str = "test-val";
        fn approx_bytes(&self) -> usize {
            8
        }
        fn to_json(&self) -> Json {
            Json::Num(self.0)
        }
        fn from_json(json: &Json) -> Result<Self, String> {
            json.as_f64().map(Val).ok_or_else(|| "not a number".into())
        }
        fn validate(&self) -> Result<(), String> {
            if self.0.is_finite() {
                Ok(())
            } else {
                Err("non-finite".into())
            }
        }
    }

    fn key(i: u64) -> CacheKey {
        KeyBuilder::new("lib-test").u64(i).finish()
    }

    #[test]
    fn disabled_handle_always_computes() {
        let cache = nocache();
        let mut calls = 0;
        for _ in 0..3 {
            let v: Result<Val, ()> = cache.get_or_compute(
                || key(1),
                || {
                    calls += 1;
                    Ok(Val(1.0))
                },
            );
            assert_eq!(v.unwrap(), Val(1.0));
        }
        assert_eq!(calls, 3);
        assert!(!cache.is_enabled());
    }

    #[test]
    fn enabled_handle_computes_once() {
        let cache = CacheHandle::in_memory(1 << 20);
        let mut calls = 0;
        for _ in 0..3 {
            let v: Result<Val, ()> = cache.get_or_compute(
                || key(2),
                || {
                    calls += 1;
                    Ok(Val(2.0))
                },
            );
            assert_eq!(v.unwrap(), Val(2.0));
        }
        assert_eq!(calls, 1);
    }

    #[test]
    fn errors_are_never_cached() {
        let cache = CacheHandle::in_memory(1 << 20);
        let mut calls = 0;
        for want_err in [true, false, false] {
            let v: Result<Val, &str> = cache.get_or_compute(
                || key(3),
                || {
                    calls += 1;
                    if want_err {
                        Err("transient")
                    } else {
                        Ok(Val(3.0))
                    }
                },
            );
            assert_eq!(v.is_err(), want_err);
        }
        // First call errs (not cached), second succeeds (cached), third hits.
        assert_eq!(calls, 2);
    }

    #[test]
    fn clones_share_the_store() {
        let cache = CacheHandle::in_memory(1 << 20);
        let clone = cache.clone();
        let _: Result<Val, ()> = cache.get_or_compute(|| key(4), || Ok(Val(4.0)));
        let v: Result<Val, ()> = clone.get_or_compute(|| key(4), || panic!("should hit"));
        assert_eq!(v.unwrap(), Val(4.0));
    }

    #[test]
    fn disk_round_trip_and_quarantine() {
        let dir = std::env::temp_dir().join(format!("dcn-cache-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);

        // Warm pass: miss, compute, persist.
        let cache = CacheHandle::with_disk(1 << 20, &dir);
        let _: Result<Val, ()> = cache.get_or_compute(|| key(5), || Ok(Val(5.0)));

        // Fresh handle, same dir: memory is cold, disk serves the hit.
        let cache2 = CacheHandle::with_disk(1 << 20, &dir);
        let v: Result<Val, ()> = cache2.get_or_compute(|| key(5), || panic!("disk should hit"));
        assert_eq!(v.unwrap(), Val(5.0));

        // Corrupt the record: the next cold lookup must quarantine it and
        // recompute, never panic.
        let record = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .find(|p| p.extension().is_some_and(|x| x == "json"))
            .expect("record written");
        std::fs::write(&record, "{ not json").unwrap();
        let before = dcn_obs::counter_value(dcn_obs::names::CACHE_QUARANTINED);
        let cache3 = CacheHandle::with_disk(1 << 20, &dir);
        let v: Result<Val, ()> = cache3.get_or_compute(|| key(5), || Ok(Val(5.5)));
        assert_eq!(v.unwrap(), Val(5.5), "quarantined record recomputes");
        assert_eq!(
            dcn_obs::counter_value(dcn_obs::names::CACHE_QUARANTINED),
            before + 1
        );
        // The corrupt bytes were moved aside and the recompute wrote a
        // fresh, loadable record in their place.
        let quarantined: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "quarantined"))
            .collect();
        assert_eq!(quarantined.len(), 1);
        let cache4 = CacheHandle::with_disk(1 << 20, &dir);
        let v: Result<Val, ()> = cache4.get_or_compute(|| key(5), || panic!("rewritten record"));
        assert_eq!(v.unwrap(), Val(5.5));

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn hit_rate_gauge_publishes() {
        publish_hit_rate();
        // Only asserts it does not panic and the gauge exists; exact value
        // depends on test interleaving within the process.
    }
}
