//! Cross-process disk-tier race test: several processes hammering the
//! same keys in one `DCN_CACHE_DIR`-style record directory must never
//! tear, quarantine, or corrupt a record.
//!
//! This is the property `dcn-fleet` leans on: worker processes all write
//! into one shared cache directory, and concurrent stores of the same
//! key must race only at the atomic rename (last-writer-wins over
//! *complete* records). Each child process repeatedly deletes records
//! (forcing re-stores) and reloads them, so the directory sees
//! write/write, write/read, and remove/write interleavings; a torn
//! write would surface as a parse failure → quarantine, which both the
//! children and the parent assert never happens.

use dcn_cache::{scan_keys, CacheEntry, CacheHandle, CacheKey, KeyBuilder};
use dcn_obs::json::Json;
use std::path::PathBuf;
use std::process::Command;

const WORKER_ENV: &str = "DCN_CACHE_TEST_HAMMER_DIR";
const ROUNDS: u64 = 50;
const KEYS: u64 = 6;
const WRITERS: usize = 3;

/// A record bulky enough (~2 KiB) that an interleaved write would be
/// very unlikely to still parse as a complete record.
#[derive(Clone, Debug, PartialEq)]
struct Cell {
    x: f64,
    filler: String,
}

fn cell(i: u64) -> Cell {
    Cell {
        x: i as f64 * 3.5,
        filler: format!("cell-{i}:").repeat(256),
    }
}

impl CacheEntry for Cell {
    const KIND: &'static str = "race-cell";
    fn approx_bytes(&self) -> usize {
        8 + self.filler.len()
    }
    fn to_json(&self) -> Json {
        Json::obj([
            ("x", Json::Num(self.x)),
            ("filler", Json::Str(self.filler.clone())),
        ])
    }
    fn from_json(json: &Json) -> Result<Self, String> {
        let x = json.get("x").and_then(Json::as_f64).ok_or("missing x")?;
        let filler = json
            .get("filler")
            .and_then(Json::as_str)
            .ok_or("missing filler")?
            .to_string();
        Ok(Cell { x, filler })
    }
}

fn key(i: u64) -> CacheKey {
    KeyBuilder::new("race-cell").u64(i).finish()
}

/// Child-process entrypoint (gated on [`WORKER_ENV`]); a no-op in the
/// normal suite.
#[test]
fn hammer_entry() {
    let Ok(dir) = std::env::var(WORKER_ENV) else {
        return;
    };
    let dir = PathBuf::from(dir);
    for round in 0..ROUNDS {
        // A fresh handle per round keeps the memory tier cold, so every
        // lookup goes through the shared disk directory.
        let cache = CacheHandle::with_disk(1 << 20, &dir);
        for i in 0..KEYS {
            if (round + i) % 2 == 0 {
                // Force a re-store: the next lookup misses and races its
                // write against the other processes.
                let _ = std::fs::remove_file(
                    dir.join(format!("{}-{}.json", Cell::KIND, key(i).to_hex())),
                );
            }
            let v: Result<Cell, ()> = cache.get_or_compute(|| key(i), || Ok(cell(i)));
            assert_eq!(v.unwrap(), cell(i), "round {round} key {i}");
        }
    }
    assert_eq!(
        dcn_obs::counter_value(dcn_obs::names::CACHE_QUARANTINED),
        0,
        "a pure write/write race must never produce a quarantinable record"
    );
}

#[test]
fn concurrent_processes_never_tear_records() {
    let dir = std::env::temp_dir().join(format!("dcn-cache-race-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create race dir");

    let children: Vec<_> = (0..WRITERS)
        .map(|_| {
            Command::new(std::env::current_exe().expect("current_exe"))
                .args(["hammer_entry", "--exact", "--nocapture"])
                .env(WORKER_ENV, &dir)
                .spawn()
                .expect("spawn hammer child")
        })
        .collect();
    for mut child in children {
        let status = child.wait().expect("wait hammer child");
        assert!(status.success(), "hammer child failed: {status}");
    }

    // Final state: every surviving record loads with the right bytes …
    let cache = CacheHandle::with_disk(1 << 20, &dir);
    for i in 0..KEYS {
        let v: Result<Cell, ()> = cache.get_or_compute(|| key(i), || Ok(cell(i)));
        assert_eq!(v.unwrap(), cell(i), "key {i} after the storm");
    }
    // … the recovery scan sees only well-formed record names …
    let want: Vec<String> = {
        let mut w: Vec<String> = (0..KEYS).map(|i| key(i).to_hex()).collect();
        w.sort();
        w
    };
    assert_eq!(scan_keys(&dir, Cell::KIND), want);
    // … and nothing was quarantined or left behind as a temp file.
    for entry in std::fs::read_dir(&dir).expect("read race dir") {
        let name = entry.expect("dir entry").file_name();
        let name = name.to_string_lossy().into_owned();
        assert!(
            name.ends_with(".json"),
            "unexpected residue in record dir: {name}"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
