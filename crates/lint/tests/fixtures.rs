//! Integration tests over the seeded fixture corpora.
//!
//! `fixtures/violations/` carries exactly one seeded violation per rule
//! (three for float-eq: the `== 0.0`, `!= 0.0`, and `== 1.0` patterns;
//! a clock read, an unseeded RNG, an ad-hoc thread spawn, and an ad-hoc
//! process spawn for nondeterminism; an undocumented `pub struct` for
//! doc-coverage; an obs-crate `.expect` for the extended panic-freedom
//! scope and a raw `trace_instant` name for metric-registry; for the v2
//! workspace-aware rules: an out-of-order nested SPANS→REGISTRY
//! acquisition for lock-order, an `fs::write` under the `drained` guard
//! for blocking-under-lock, a non-literal ordering plus a stray SeqCst
//! for atomic-ordering, and — for env-registry — a raw `env::var` read,
//! a raw `env::var_os` read of an unregistered `DCN_*` literal, a dead
//! registry entry, and a misnamed one); `fixtures/clean/` carries the
//! same shapes, each suppressed by a justified allow. The assertions pin
//! the exact (rule, file, line) triples and the CLI exit codes.

use std::path::PathBuf;
use std::process::Command;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

#[test]
fn violations_tree_yields_exact_diagnostics() {
    let report = dcn_lint::lint_root(&fixture("violations")).expect("lint violations tree");
    let got: Vec<(String, String, usize)> = report
        .diagnostics
        .iter()
        .map(|d| (d.rule.to_string(), d.file.clone(), d.line))
        .collect();
    let expected: Vec<(&str, &str, usize)> = vec![
        ("atomic-ordering", "crates/cache/src/atomics.rs", 13),
        ("atomic-ordering", "crates/cache/src/atomics.rs", 18),
        ("env-registry", "crates/cache/src/reads.rs", 6),
        ("env-registry", "crates/cache/src/reads.rs", 12),
        ("env-registry", "crates/cache/src/reads.rs", 13),
        ("doc-coverage", "crates/core/src/docless.rs", 3),
        ("metric-registry", "crates/core/src/metrics.rs", 6),
        ("metric-registry", "crates/core/src/metrics.rs", 7),
        ("metric-registry", "crates/core/src/metrics.rs", 12),
        ("nondeterminism", "crates/core/src/procs.rs", 5),
        ("nondeterminism", "crates/core/src/threads.rs", 5),
        ("budget-coverage", "crates/graph/src/looping.rs", 4),
        ("unused-allow", "crates/graph/src/looping.rs", 12),
        ("budget-coverage", "crates/graph/src/looping.rs", 17),
        ("float-eq", "crates/lp/src/floats.rs", 5),
        ("float-eq", "crates/lp/src/floats.rs", 10),
        ("float-eq", "crates/lp/src/floats.rs", 15),
        ("unsafe-forbid", "crates/lp/src/lib.rs", 1),
        ("panic-freedom", "crates/mcf/src/panic.rs", 5),
        ("allow-justification", "crates/mcf/src/panic.rs", 10),
        ("panic-freedom", "crates/mcf/src/panic.rs", 11),
        ("env-registry", "crates/obs/src/env.rs", 21),
        ("env-registry", "crates/obs/src/env.rs", 29),
        ("lock-order", "crates/obs/src/locks.rs", 15),
        ("metric-registry", "crates/obs/src/names.rs", 6),
        ("metric-registry", "crates/obs/src/names.rs", 8),
        ("panic-freedom", "crates/obs/src/poison.rs", 6),
        ("nondeterminism", "crates/topo/src/clock.rs", 5),
        ("nondeterminism", "crates/topo/src/clock.rs", 10),
        ("blocking-under-lock", "crates/trace/src/blocking.rs", 13),
    ];
    let expected: Vec<(String, String, usize)> = expected
        .into_iter()
        .map(|(r, f, l)| (r.to_string(), f.to_string(), l))
        .collect();
    assert_eq!(got, expected);
    assert_eq!(report.allows_honored, 0);
}

#[test]
fn clean_tree_is_quiet_and_honors_allows() {
    let report = dcn_lint::lint_root(&fixture("clean")).expect("lint clean tree");
    assert!(
        report.diagnostics.is_empty(),
        "clean tree produced {:?}",
        report.diagnostics
    );
    // One justified allow per core rule: unsafe-forbid, float-eq,
    // panic-freedom, budget-coverage, nondeterminism, metric-registry,
    // doc-coverage — plus one panic-freedom allow in obs library code,
    // one metric-registry allow at a `trace_instant` call site, one
    // nondeterminism allow on a process spawn outside dcn-fleet, and one
    // each for the v2 rules: lock-order, blocking-under-lock,
    // atomic-ordering, env-registry.
    // ...and one budget-coverage allow on a staged legacy twin-tail
    // signature awaiting its `&SolveCtx` migration.
    assert_eq!(report.allows_honored, 15);
}

fn run_cli(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_dcn-lint"))
        .args(args)
        .output()
        .expect("spawn dcn-lint")
}

#[test]
fn deny_exits_nonzero_on_violations() {
    let root = fixture("violations");
    let out = run_cli(&["--root", root.to_str().expect("utf8 path"), "--deny"]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("crates/lp/src/floats.rs:5: error[float-eq]"), "{stdout}");
    assert!(stdout.contains("crates/mcf/src/panic.rs:5: error[panic-freedom]"), "{stdout}");
}

#[test]
fn advisory_mode_exits_zero_on_violations() {
    let root = fixture("violations");
    let out = run_cli(&["--root", root.to_str().expect("utf8 path")]);
    assert_eq!(out.status.code(), Some(0));
}

#[test]
fn deny_exits_zero_on_clean_tree() {
    let root = fixture("clean");
    let out = run_cli(&["--root", root.to_str().expect("utf8 path"), "--deny"]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("0 diagnostics"), "{stdout}");
}

#[test]
fn list_rules_prints_all_rule_ids() {
    let out = run_cli(&["--list-rules"]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    for rule in dcn_lint::rules::RULES {
        assert!(stdout.contains(rule.id), "missing {}", rule.id);
    }
}

#[test]
fn workspace_itself_is_lint_clean() {
    // The repository root is two levels above crates/lint.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("workspace root")
        .to_path_buf();
    let report = dcn_lint::lint_root(&root).expect("lint workspace");
    assert!(
        report.diagnostics.is_empty(),
        "workspace regressed: {:?}",
        report
            .diagnostics
            .iter()
            .map(|d| format!("{}:{} [{}]", d.file, d.line, d.rule))
            .collect::<Vec<_>>()
    );
}
