//! Fixture: justified clock read.

pub fn stamp() -> std::time::Instant {
    // dcn-lint: allow(nondeterminism) — fixture: display-only timestamp
    std::time::Instant::now()
}
