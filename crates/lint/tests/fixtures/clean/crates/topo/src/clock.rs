//! Fixture: justified clock read.

// dcn-lint: allow(doc-coverage) — fixture: undocumented on purpose to exercise the allow path
pub fn stamp() -> std::time::Instant {
    // dcn-lint: allow(nondeterminism) — fixture: display-only timestamp
    std::time::Instant::now()
}
