//! Fixture: a raw event name at a `trace_instant` call site silenced by
//! a justified allow (metric-registry also scans instant call sites).

/// Fixture: documented instant emitter.
pub fn instant() {
    // dcn-lint: allow(metric-registry) — fixture: raw name is registered downstream
    dcn_obs::trace_instant("fix.raw.instant");
}
