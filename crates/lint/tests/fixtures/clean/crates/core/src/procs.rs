//! Fixture: justified process spawn.

/// Fixture: documented process fan-out under an allow.
pub fn fan_out() {
    // dcn-lint: allow(nondeterminism) — fixture: one-shot tool invocation, not sweep fan-out
    std::process::Command::new("solver");
}
