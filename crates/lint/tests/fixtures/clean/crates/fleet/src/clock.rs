//! Fixture: the fleet crate may read clocks (leases, backoff) and spawn
//! worker processes without any allow.

/// Fixture: documented lease stamp plus worker spawn.
pub fn lease_and_spawn() -> std::time::Instant {
    std::process::Command::new("worker");
    std::time::Instant::now()
}
