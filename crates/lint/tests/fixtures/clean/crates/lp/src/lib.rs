// dcn-lint: allow(unsafe-forbid) — fixture: crate root intentionally lacks the attribute
//! Fixture: every violation below carries a justified allow.

/// Fixture: documented sentinel comparison helper.
pub fn is_zero(x: f64) -> bool {
    // dcn-lint: allow(float-eq) — fixture: exact sentinel comparison is intended
    x == 0.0
}

/// Fixture: documented unwrap wrapper.
pub fn take(v: Option<u32>) -> u32 {
    // dcn-lint: allow(panic-freedom) — fixture: caller guarantees Some
    v.unwrap()
}

/// Fixture: the doc comment sits above the allow annotation, which the
/// doc-coverage walk-back must step over.
// dcn-lint: allow(budget-coverage) — fixture: loop exits on the first iteration
pub fn spin() -> u32 {
    loop {
        return 7;
    }
}

/// Fixture: documented twin tail under a justified allow.
// dcn-lint: allow(budget-coverage) — fixture: migration staging point, twin tail retired next pass
pub fn solve_pair(n: u32, cache: &CacheHandle, budget: &Budget) -> u32 {
    n + cache.len() as u32 + budget.len() as u32
}

/// Fixture: documented loop covered by the unified `&SolveCtx` context.
pub fn spin_ctx(n: u32, ctx: &SolveCtx<'_>) -> u32 {
    let mut i = 0;
    while i < n {
        i += 1;
    }
    i + ctx.tag
}
