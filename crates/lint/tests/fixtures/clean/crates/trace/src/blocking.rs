//! Fixture: file I/O under the drain-buffer lock, silenced by a
//! justified allow.

use std::sync::Mutex;

/// Fixture: owner of the drain buffer, rank 2 in the declared order.
pub struct Buffers {
    drained: Mutex<Vec<u8>>,
}

/// Fixture: documented flush audited as single-threaded at shutdown.
pub fn flush(b: &Buffers) -> std::io::Result<()> {
    let guard = b.drained.lock().unwrap_or_else(|e| e.into_inner());
    // dcn-lint: allow(blocking-under-lock) — fixture: shutdown path, no other holder
    std::fs::write("trace.json", &*guard)
}
