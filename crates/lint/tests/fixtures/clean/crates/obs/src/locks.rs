//! Fixture: an out-of-order nested acquisition silenced by a justified
//! allow.

use std::sync::Mutex;

/// Fixture: the span table, rank 1 in the declared order.
static SPANS: Mutex<u32> = Mutex::new(0);
/// Fixture: the metric registry, rank 0 in the declared order.
static REGISTRY: Mutex<u32> = Mutex::new(0);

/// Fixture: documented nested acquisition audited as deadlock-free.
pub fn snapshot() -> u32 {
    let spans = SPANS.lock().unwrap_or_else(|e| e.into_inner());
    // dcn-lint: allow(lock-order) — fixture: init-only path, no concurrent taker
    let registry = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    *spans + *registry
}
