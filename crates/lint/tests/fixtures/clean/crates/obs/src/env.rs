//! Fixture: a minimal, fully live env registry.

/// Fixture: one registered environment variable.
pub struct EnvVar {
    /// Fixture: the variable name (first literal — the parser keys on it).
    pub name: &'static str,
    /// Fixture: human-readable default.
    pub default: &'static str,
    /// Fixture: one-line description.
    pub doc: &'static str,
}

/// Fixture: a live, well-formed entry (read from reads.rs).
pub const CACHE_DIR: EnvVar = EnvVar {
    name: "DCN_CACHE_DIR",
    default: "unset",
    doc: "Fixture: on-disk cache root.",
};
