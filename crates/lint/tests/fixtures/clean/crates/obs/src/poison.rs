//! Fixture: a panic site in obs library code silenced by a justified
//! allow (panic-freedom covers obs/trace as well as solver crates).

/// Fixture: documented lock acquisition with an audited expect.
pub fn poisoned() {
    // dcn-lint: allow(panic-freedom) — fixture: audited expect, holder cannot panic
    LOCK.lock().expect("poisoned");
}
