//! Fixture registry with a reserved-but-unused constant.

/// Reserved for the next milestone.
// dcn-lint: allow(metric-registry) — fixture: registered ahead of first use
pub const RESERVED: &str = "fix.reserved";
