//! Fixture: a caller-chosen atomic ordering silenced by a justified
//! allow (and a counter bump spelled out properly).

use std::sync::atomic::{AtomicU64, Ordering};

/// Fixture: a clock whose call sites must name their orderings.
pub struct Clock {
    ticks: AtomicU64,
}

/// Fixture: documented load whose ordering the caller supplies.
pub fn peek(c: &Clock, order: Ordering) -> u64 {
    // dcn-lint: allow(atomic-ordering) — fixture: ordering audited at the one caller
    c.ticks.load(order)
}

/// Fixture: documented increment with the ordering spelled out.
pub fn bump(c: &Clock) -> u64 {
    c.ticks.fetch_add(1, Ordering::Relaxed)
}
