//! Fixture: a raw environment read kept deliberately, silenced by a
//! justified allow.

/// Fixture: documented raw read audited as registry-bootstrap only.
pub fn raw_read() -> Option<String> {
    // dcn-lint: allow(env-registry) — fixture: bootstrap read before registry init
    std::env::var("DCN_CACHE_DIR").ok()
}

/// Fixture: registry constant referenced so the liveness check holds.
pub fn touch() -> &'static str {
    crate::env::CACHE_DIR.name
}
