//! Fixture: an unbudgeted public loop and a stale allow.

/// Fixture: documented unbudgeted loop.
pub fn spin(n: u32) -> u32 {
    let mut i = 0;
    while i < n {
        i += 1;
    }
    i
}

// dcn-lint: allow(float-eq) — fixture: stale annotation with nothing to suppress
/// Fixture: documented idle fn under a stale allow.
pub fn idle() {}
