//! Fixture: an unbudgeted public loop and a stale allow.

/// Fixture: documented unbudgeted loop.
pub fn spin(n: u32) -> u32 {
    let mut i = 0;
    while i < n {
        i += 1;
    }
    i
}

// dcn-lint: allow(float-eq) — fixture: stale annotation with nothing to suppress
/// Fixture: documented idle fn under a stale allow.
pub fn idle() {}

/// Fixture: documented legacy twin-tail signature.
pub fn solve_pair(n: u32, cache: &CacheHandle, budget: &Budget) -> u32 {
    n + cache.len() as u32 + budget.len() as u32
}

/// Fixture: documented budgeted loop via the unified context.
pub fn spin_ctx(n: u32, ctx: &SolveCtx<'_>) -> u32 {
    let mut i = 0;
    while i < n {
        i += 1;
    }
    i + ctx.tag
}
