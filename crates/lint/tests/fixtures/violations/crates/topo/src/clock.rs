//! Fixture: nondeterminism sources.

pub fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}

pub fn draw() -> u64 {
    let mut rng = thread_rng();
    rng.next_u64()
}
