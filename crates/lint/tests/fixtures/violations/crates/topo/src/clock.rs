//! Fixture: nondeterminism sources.

/// Fixture: documented clock read.
pub fn stamp() -> std::time::Instant {
    std::time::Instant::now()
}

/// Fixture: documented unseeded draw.
pub fn draw() -> u64 {
    let mut rng = thread_rng();
    rng.next_u64()
}
