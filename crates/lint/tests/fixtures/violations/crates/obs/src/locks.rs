//! Fixture: nested guard acquisition against the declared lock order
//! (the span table is rank 1, the metric registry rank 0).

use std::sync::Mutex;

/// Fixture: the span table, rank 1 in the declared order.
static SPANS: Mutex<u32> = Mutex::new(0);
/// Fixture: the metric registry, rank 0 in the declared order.
static REGISTRY: Mutex<u32> = Mutex::new(0);

/// Fixture: documented snapshot that takes the registry while the span
/// guard is still live — the inverted order.
pub fn snapshot() -> u32 {
    let spans = SPANS.lock().unwrap_or_else(|e| e.into_inner());
    let registry = REGISTRY.lock().unwrap_or_else(|e| e.into_inner());
    *spans + *registry
}
