//! Fixture: obs library code is in panic-freedom scope (observability
//! must never abort the solver it observes).

/// Fixture: documented poisoned-lock expect.
pub fn poisoned() {
    LOCK.lock().expect("poisoned");
}
