//! Fixture metric registry.

/// In use at the call site below.
pub const USED_OK: &str = "fix.used.ok";
/// Never referenced anywhere.
pub const DEAD_ONE: &str = "fix.dead.one";
/// Breaks the naming convention.
pub const BAD_NAME: &str = "UpperCase";
