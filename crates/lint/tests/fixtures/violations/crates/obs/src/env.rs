//! Fixture: the env registry with a dead entry and a misnamed variable.

/// Fixture: one registered environment variable.
pub struct EnvVar {
    /// Fixture: the variable name (first literal — the parser keys on it).
    pub name: &'static str,
    /// Fixture: human-readable default.
    pub default: &'static str,
    /// Fixture: one-line description.
    pub doc: &'static str,
}

/// Fixture: a live, well-formed entry.
pub const CACHE_DIR: EnvVar = EnvVar {
    name: "DCN_CACHE_DIR",
    default: "unset",
    doc: "Fixture: on-disk cache root.",
};

/// Fixture: registered but never read anywhere.
pub const DEAD_KNOB: EnvVar = EnvVar {
    name: "DCN_DEAD_KNOB",
    default: "unset",
    doc: "Fixture: nothing reads this.",
};

/// Fixture: a name that breaks the DCN_ upper-snake convention (still
/// referenced from reads.rs, so only the naming violation fires here).
pub const BAD_NAME: EnvVar = EnvVar {
    name: "dcn_lower_case",
    default: "unset",
    doc: "Fixture: misnamed knob.",
};
