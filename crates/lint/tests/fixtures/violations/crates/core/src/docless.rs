//! Fixture: an undocumented public item (the seeded doc-coverage violation).

pub struct Bare;
