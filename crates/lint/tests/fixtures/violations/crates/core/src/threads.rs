//! Fixture: ad-hoc thread spawn outside dcn-exec.

pub fn fan_out() {
    std::thread::spawn(|| {});
}
