//! Fixture: ad-hoc thread spawn outside dcn-exec.

/// Fixture: documented ad-hoc spawn.
pub fn fan_out() {
    std::thread::spawn(|| {});
}
