//! Fixture metric call sites.

/// Fixture: documented metric bump.
pub fn bump() {
    dcn_obs::counter!(dcn_obs::names::USED_OK).inc();
    dcn_obs::counter!("fix.raw.literal").inc();
    dcn_obs::gauge!(dcn_obs::names::NOT_REGISTERED).set(1.0);
}

/// Fixture: documented instant emitter with a raw event name.
pub fn instant() {
    dcn_obs::trace_instant("fix.raw.instant");
}
