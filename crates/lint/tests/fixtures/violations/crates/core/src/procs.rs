//! Fixture: ad-hoc process spawn outside dcn-fleet.

/// Fixture: documented ad-hoc process fan-out.
pub fn fan_out() {
    std::process::Command::new("solver");
}
