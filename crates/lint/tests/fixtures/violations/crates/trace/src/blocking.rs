//! Fixture: file I/O while holding the trace drain-buffer lock.

use std::sync::Mutex;

/// Fixture: owner of the drain buffer, rank 2 in the declared order.
pub struct Buffers {
    drained: Mutex<Vec<u8>>,
}

/// Fixture: documented flush that writes the file under the guard.
pub fn flush(b: &Buffers) -> std::io::Result<()> {
    let guard = b.drained.lock().unwrap_or_else(|e| e.into_inner());
    std::fs::write("trace.json", &*guard)
}
