//! Fixture: the three exact float comparison patterns.

pub fn is_zero(x: f64) -> bool {
    x == 0.0
}

pub fn is_nonzero(x: f64) -> bool {
    x != 0.0
}

pub fn is_one(x: f64) -> bool {
    x == 1.0
}
