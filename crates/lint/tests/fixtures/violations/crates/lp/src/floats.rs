//! Fixture: the three exact float comparison patterns.

/// Fixture: documented exact zero test.
pub fn is_zero(x: f64) -> bool {
    x == 0.0
}

/// Fixture: documented exact nonzero test.
pub fn is_nonzero(x: f64) -> bool {
    x != 0.0
}

/// Fixture: documented exact one test.
pub fn is_one(x: f64) -> bool {
    x == 1.0
}
