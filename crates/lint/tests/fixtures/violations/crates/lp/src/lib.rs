//! Fixture: crate root without the unsafe forbid attribute.

/// Fixture: documented doubling helper.
pub fn double(x: f64) -> f64 {
    x * 2.0
}
