//! Fixture: an atomic load with its ordering hidden behind a local, and
//! a SeqCst outside the fan-out engines.

use std::sync::atomic::{AtomicU64, Ordering};

/// Fixture: a clock whose call sites must name their orderings.
pub struct Clock {
    ticks: AtomicU64,
}

/// Fixture: documented load with no literal `Ordering::` at the call.
pub fn peek(c: &Clock, order: Ordering) -> u64 {
    c.ticks.load(order)
}

/// Fixture: documented increment with a stronger order than a counter needs.
pub fn bump(c: &Clock) -> u64 {
    c.ticks.fetch_add(1, Ordering::SeqCst)
}
