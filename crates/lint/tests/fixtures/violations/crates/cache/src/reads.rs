//! Fixture: raw environment reads and an unregistered DCN_* literal.

/// Fixture: documented raw read bypassing the registry (the variable
/// itself is registered; the *read* is the violation).
pub fn raw_read() -> Option<String> {
    std::env::var("DCN_CACHE_DIR").ok()
}

/// Fixture: documented read of a variable the registry does not know
/// (literal on its own line so the two findings pin distinct lines).
pub fn mystery() -> bool {
    std::env::var_os(
        "DCN_MYSTERY_KNOB",
    )
    .is_some()
}

/// Fixture: registry constants referenced from code so the liveness
/// check holds for the live and misnamed entries.
pub fn touch() -> (&'static str, &'static str) {
    (crate::env::CACHE_DIR.name, crate::env::BAD_NAME.name)
}
