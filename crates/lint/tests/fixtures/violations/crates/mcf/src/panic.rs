//! Fixture: panic-freedom violations, bare and with an unjustified allow.

/// Fixture: documented unwrap site.
pub fn take(v: Option<u32>) -> u32 {
    v.unwrap()
}

/// Fixture: documented unwrap site with an unjustified allow.
pub fn take_annotated(v: Option<u32>) -> u32 {
    // dcn-lint: allow(panic-freedom)
    v.unwrap()
}
