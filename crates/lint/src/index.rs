//! Pass 1 of the two-pass analyzer: a lightweight workspace symbol index.
//!
//! The per-file scanner ([`crate::scan`]) is lossy and local; the
//! concurrency rules added in dcn-lint v2 need *cross-file* facts: which
//! identifiers are declared as `Mutex`/`RwLock` fields or statics (so a
//! `.lock()`/`.read()`/`.write()` call can be classified as a guard
//! acquisition rather than, say, `io::Read::read`), which identifiers
//! are declared with atomic types (so `.load(…)`/`.store(…)` can be told
//! apart from ordinary methods of the same name), where every `fn` body
//! begins and ends (shared by budget-coverage and the guard-region
//! analysis), and what the `dcn_guard::env` registry declares.
//!
//! [`index_file`] extracts one file's contribution; [`WorkspaceIndex::build`]
//! merges all of them. Indexing is per-file and side-effect-free, so the
//! driver fans it out over `dcn_exec::Pool::par_map` together with the
//! per-file rules.
//!
//! Known limitations (same spirit as DESIGN.md §9): declarations are
//! recognized from `ident: Mutex<…>` / `ident: Atomic…` type ascriptions
//! and `let ident = Atomic…::new(…)` initializers; an untyped
//! `let m = Mutex::new(…)` local is invisible, and a guard returned from
//! a helper function escapes the per-function region analysis.

use crate::scan::{word_occurrences, SourceFile};
use std::collections::BTreeSet;

/// One `fn` definition with byte offsets into the file's masked text.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// The function name.
    pub name: String,
    /// True for plain `pub fn` (not `pub(crate)`; restricted visibility
    /// is not public API).
    pub is_pub: bool,
    /// Offset of the `fn` keyword (signature start).
    pub sig_start: usize,
    /// Offset of the opening `{` of the body.
    pub body_start: usize,
    /// Offset one past the closing `}` of the body.
    pub body_end: usize,
}

/// One identifier declared with a `Mutex<…>` or `RwLock<…>` type.
#[derive(Debug, Clone)]
pub struct LockDecl {
    /// The declared field/static identifier.
    pub name: String,
    /// 1-based declaration line.
    pub line: usize,
}

/// One entry parsed from the `dcn_guard::env` registry source
/// (`pub const IDENT: EnvVar = EnvVar { name: "…", default: "…", doc: "…" };`).
#[derive(Debug, Clone)]
pub struct EnvEntry {
    /// The Rust constant identifier.
    pub ident: String,
    /// The variable name (first string literal of the initializer).
    pub name: String,
    /// The human-readable default (second literal).
    pub default: String,
    /// The one-line description (third literal).
    pub doc: String,
    /// 1-based line of the `const`.
    pub line: usize,
}

/// One file's contribution to the workspace index.
#[derive(Debug, Default)]
pub struct FileIndex {
    /// Every `fn` with a body, in source order.
    pub fns: Vec<FnDef>,
    /// Identifiers declared here with lock types.
    pub lock_decls: Vec<LockDecl>,
    /// Identifiers declared here with atomic types.
    pub atomic_idents: Vec<String>,
}

/// The merged pass-1 index the cross-file rules consume.
#[derive(Debug, Default)]
pub struct WorkspaceIndex {
    /// Parallel to the scanned file list.
    pub files: Vec<FileIndex>,
    /// Union of every file's atomic identifiers.
    pub atomic_idents: BTreeSet<String>,
    /// Union of every file's lock identifiers.
    pub lock_idents: BTreeSet<String>,
    /// The parsed `dcn_guard::env` registry (empty when the tree has no
    /// registry file — rules gate on this).
    pub env_entries: Vec<EnvEntry>,
}

/// Path of the env registry source inside a lint tree.
pub const ENV_REGISTRY_REL: &str = "crates/obs/src/env.rs";

impl WorkspaceIndex {
    /// Builds the index from per-file contributions (parallel to `files`).
    pub fn build(files: &[SourceFile], per_file: Vec<FileIndex>) -> WorkspaceIndex {
        let mut idx = WorkspaceIndex {
            files: per_file,
            ..WorkspaceIndex::default()
        };
        for fi in &idx.files {
            idx.atomic_idents.extend(fi.atomic_idents.iter().cloned());
            idx.lock_idents
                .extend(fi.lock_decls.iter().map(|d| d.name.clone()));
        }
        if let Some(env_file) = files.iter().find(|f| f.rel == ENV_REGISTRY_REL) {
            idx.env_entries = parse_env_registry(env_file);
        }
        idx
    }
}

/// Extracts one file's [`FileIndex`]. Pure function of the scanned file.
pub fn index_file(f: &SourceFile) -> FileIndex {
    FileIndex {
        fns: collect_fns(f),
        lock_decls: collect_lock_decls(f),
        atomic_idents: collect_atomic_idents(f),
    }
}

/// The identifier ending at masked offset `end` (exclusive), after
/// trimming trailing whitespace. Empty when the preceding token is not
/// an identifier.
pub(crate) fn ident_before(masked: &str, end: usize) -> &str {
    let b = masked.as_bytes();
    let mut hi = end;
    while hi > 0 && b[hi - 1].is_ascii_whitespace() {
        hi -= 1;
    }
    let mut lo = hi;
    while lo > 0 && (b[lo - 1].is_ascii_alphanumeric() || b[lo - 1] == b'_') {
        lo -= 1;
    }
    &masked[lo..hi]
}

fn collect_fns(f: &SourceFile) -> Vec<FnDef> {
    let mut out = Vec::new();
    for at in word_occurrences(&f.masked, "fn") {
        let after = &f.masked[at + 2..];
        let name: String = after
            .trim_start()
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        if name.is_empty() {
            continue;
        }
        let Some(rel_open) = f.masked[at..].find(['{', ';']) else {
            continue;
        };
        let open = at + rel_open;
        if f.masked.as_bytes()[open] != b'{' {
            continue; // bodyless (trait method / extern decl)
        }
        let Some(close) = crate::scan::match_brace(&f.masked, open) else {
            continue;
        };
        out.push(FnDef {
            name,
            is_pub: ident_before(&f.masked, at) == "pub",
            sig_start: at,
            body_start: open,
            body_end: close,
        });
    }
    out
}

fn collect_lock_decls(f: &SourceFile) -> Vec<LockDecl> {
    let mut out = Vec::new();
    for ty in ["Mutex<", "RwLock<"] {
        let mut from = 0;
        while let Some(p) = f.masked[from..].find(ty) {
            let at = from + p;
            from = at + ty.len();
            // A declaration looks like `ident: Mutex<…>` (fields, statics,
            // typed lets), possibly through wrapper generics such as
            // `shards: Vec<RwLock<Shard>>`. Walk back over any `Wrapper<`
            // layers, then over the `:`.
            let b = f.masked.as_bytes();
            let mut k = at;
            loop {
                while k > 0 && b[k - 1].is_ascii_whitespace() {
                    k -= 1;
                }
                if k == 0 || b[k - 1] != b'<' {
                    break;
                }
                let mut lo = k - 1;
                while lo > 0 && (b[lo - 1].is_ascii_alphanumeric() || b[lo - 1] == b'_') {
                    lo -= 1;
                }
                if lo == k - 1 {
                    break; // bare `<` (comparison), not a generic wrapper
                }
                k = lo;
            }
            if k == 0 || b[k - 1] != b':' {
                continue; // e.g. `Mutex::new(…)` initializer — not a decl
            }
            // Skip a second ':' so `std::sync::Mutex<…>` paths (`c::Mutex<`)
            // are not mistaken for declarations.
            if k >= 2 && b[k - 2] == b':' {
                continue;
            }
            let name = ident_before(&f.masked, k - 1);
            if !name.is_empty() {
                out.push(LockDecl {
                    name: name.to_string(),
                    line: f.line_of(at),
                });
            }
        }
    }
    out
}

fn collect_atomic_idents(f: &SourceFile) -> Vec<String> {
    let mut out = Vec::new();
    // `Atomic` is always a prefix (AtomicU64, AtomicBool, …), so search
    // raw substring occurrences whose previous char is not an identifier.
    let b = f.masked.as_bytes();
    let mut from = 0;
    while let Some(p) = f.masked[from..].find("Atomic") {
        let at = from + p;
        from = at + "Atomic".len();
        if at > 0 && (b[at - 1].is_ascii_alphanumeric() || b[at - 1] == b'_') {
            continue;
        }
        let mut k = at;
        while k > 0 && b[k - 1].is_ascii_whitespace() {
            k -= 1;
        }
        let name = match k {
            _ if k > 0 && b[k - 1] == b':' && !(k >= 2 && b[k - 2] == b':') => {
                // `ident: AtomicU64` field/static/typed-let ascription
                // (single colon only — `atomic::AtomicU64` paths are uses).
                ident_before(&f.masked, k - 1)
            }
            _ if k > 0 && b[k - 1] == b'=' => {
                // `let ident = AtomicU64::new(…)`
                let mut j = k - 1;
                while j > 0 && b[j - 1].is_ascii_whitespace() {
                    j -= 1;
                }
                ident_before(&f.masked, j)
            }
            _ => "",
        };
        if !name.is_empty() && name != "mut" {
            out.push(name.to_string());
        }
    }
    out
}

/// Renders the registry as the markdown table the README embeds between
/// the `dcn-env` markers (and `--env-table` prints).
pub fn env_table(entries: &[EnvEntry]) -> String {
    let mut s = String::from("| Variable | Default | Description |\n|---|---|---|\n");
    for e in entries {
        s.push_str(&format!("| `{}` | {} | {} |\n", e.name, e.default, e.doc));
    }
    s
}

/// Parses the env registry: every `const IDENT: … = … { "name", "default",
/// "doc" };` statement yields an [`EnvEntry`] from its first three string
/// literals (the `EnvVar` field order, `name` first, is load-bearing).
pub fn parse_env_registry(f: &SourceFile) -> Vec<EnvEntry> {
    let mut out = Vec::new();
    for at in word_occurrences(&f.masked, "const") {
        if f.in_test_region(at) {
            continue;
        }
        let ident: String = f.masked[at + 5..]
            .trim_start()
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        if ident.is_empty() || ident == "ALL" {
            continue;
        }
        // The initializer is a brace literal; its strings are the fields.
        let Some(rel_open) = f.masked[at..].find(['{', ';']) else {
            continue;
        };
        let open = at + rel_open;
        if f.masked.as_bytes()[open] != b'{' {
            continue; // e.g. `const N: usize = 4;`
        }
        let Some(close) = crate::scan::match_brace(&f.masked, open) else {
            continue;
        };
        let lits: Vec<&str> = f
            .strings
            .iter()
            .filter(|s| s.start > open && s.start < close)
            .map(|s| s.value.as_str())
            .collect();
        if lits.is_empty() {
            continue;
        }
        out.push(EnvEntry {
            ident,
            name: lits.first().copied().unwrap_or("").to_string(),
            default: lits.get(1).copied().unwrap_or("").to_string(),
            doc: lits.get(2).copied().unwrap_or("").to_string(),
            line: f.line_of(at),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(rel: &str, src: &str) -> SourceFile {
        SourceFile::new(rel.into(), src.into())
    }

    #[test]
    fn finds_fns_with_visibility() {
        let f = file(
            "crates/lp/src/x.rs",
            "pub fn a() { body(); }\nfn b() {}\npub(crate) fn c() {}\ntrait T { fn d(&self); }\n",
        );
        let fns = collect_fns(&f);
        let names: Vec<(&str, bool)> = fns.iter().map(|d| (d.name.as_str(), d.is_pub)).collect();
        assert_eq!(names, [("a", true), ("b", false), ("c", false)]);
        assert!(f.masked[fns[0].body_start..fns[0].body_end].contains("body()"));
    }

    #[test]
    fn finds_lock_and_atomic_decls() {
        let src = "struct S {\n    drained: Mutex<Vec<u8>>,\n    shards: Vec<RwLock<u8>>,\n\
                   \x20   total: AtomicU64,\n}\n\
                   static REGISTRY: Mutex<u8> = Mutex::new(0);\n\
                   fn f() { let stop = AtomicBool::new(false); let x = std::sync::Mutex::new(0); }\n";
        let f = file("crates/obs/src/x.rs", src);
        let idx = index_file(&f);
        let locks: Vec<&str> = idx.lock_decls.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(locks, ["drained", "REGISTRY", "shards"], "{idx:?}");
        assert_eq!(idx.atomic_idents, ["total", "stop"]);
    }

    #[test]
    fn parses_env_registry_entries() {
        let src = "pub struct EnvVar { pub name: &'static str }\n\
                   pub const OBS: EnvVar = EnvVar {\n\
                   \x20   name: \"DCN_OBS\",\n\
                   \x20   default: \"off\",\n\
                   \x20   doc: \"Observability mode.\",\n\
                   };\n\
                   pub const ALL: &[&EnvVar] = &[&OBS];\n";
        let f = file(ENV_REGISTRY_REL, src);
        let entries = parse_env_registry(&f);
        assert_eq!(entries.len(), 1, "{entries:?}");
        assert_eq!(entries[0].ident, "OBS");
        assert_eq!(entries[0].name, "DCN_OBS");
        assert_eq!(entries[0].default, "off");
        assert_eq!(entries[0].doc, "Observability mode.");
    }
}
