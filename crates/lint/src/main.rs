#![forbid(unsafe_code)]
//! CLI entry point:
//! `cargo run -p dcn-lint -- [--root PATH] [--deny] [--list-rules] [--env-table]`.

use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ! {
    eprintln!(
        "usage: dcn-lint [--root PATH] [--deny] [--list-rules] [--env-table]\n\
         \n\
         --root PATH    lint the workspace rooted at PATH (default: discover by\n\
         \x20              walking up from the current directory to a workspace Cargo.toml)\n\
         --deny         exit non-zero when any error-severity diagnostic survives\n\
         --list-rules   print the rule table and exit\n\
         --env-table    print the README environment-variable table generated from\n\
         \x20              the dcn_guard::env registry, then exit"
    );
    std::process::exit(2)
}

/// Walks up from `start` to the first directory whose Cargo.toml declares
/// a `[workspace]` section.
fn discover_root(start: &std::path::Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut deny = false;
    let mut env_table = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--root" => root = Some(PathBuf::from(args.next().unwrap_or_else(|| usage()))),
            "--deny" => deny = true,
            "--env-table" => env_table = true,
            "--list-rules" => {
                for r in dcn_lint::rules::RULES {
                    println!("{:<20} {}", r.id, r.summary);
                }
                return ExitCode::SUCCESS;
            }
            _ => usage(),
        }
    }
    let root = match root {
        Some(r) => r,
        None => {
            let cwd = std::env::current_dir().expect("cwd");
            match discover_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("dcn-lint: no workspace Cargo.toml found above {}", cwd.display());
                    return ExitCode::from(2);
                }
            }
        }
    };
    if env_table {
        match dcn_lint::env_table_for_root(&root) {
            Ok(table) => {
                print!("{table}");
                return ExitCode::SUCCESS;
            }
            Err(e) => {
                eprintln!(
                    "dcn-lint: {}: no env registry ({e})",
                    root.join(dcn_lint::index::ENV_REGISTRY_REL).display()
                );
                return ExitCode::from(2);
            }
        }
    }
    let report = match dcn_lint::lint_root(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("dcn-lint: {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    for d in &report.diagnostics {
        let sev = match d.severity {
            dcn_lint::rules::Severity::Error => "error",
            dcn_lint::rules::Severity::Warn => "warn",
        };
        println!("{}:{}: {sev}[{}] {}", d.file, d.line, d.rule, d.message);
    }
    let errors = report
        .diagnostics
        .iter()
        .filter(|d| d.severity == dcn_lint::rules::Severity::Error)
        .count();
    println!(
        "dcn-lint: {} files scanned, {} diagnostics ({errors} errors), {} allows honored",
        report.files_scanned,
        report.diagnostics.len(),
        report.allows_honored
    );
    if deny && report.has_errors() {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
