//! Lossy single-pass Rust scanner.
//!
//! `dcn-lint` deliberately does not parse Rust (the workspace builds
//! offline; `syn` is not available). Instead each source file is *masked*:
//! comments and the contents of string/char literals are replaced by
//! spaces, byte for byte, so that
//!
//! * token-level patterns (`.unwrap()`, `== 0.0`, `counter!(`) can be
//!   searched in the masked text without false positives from comments,
//!   doc examples, or string contents, and
//! * byte offsets and line numbers in the masked text are identical to the
//!   raw text, so diagnostics point at real locations.
//!
//! The scanner additionally records every string literal (the
//! metric-registry rule needs their values), marks `#[cfg(test)] mod`
//! regions line by line, and classifies files by path (crate, test code,
//! bin target). Known limitations are documented in DESIGN.md §9: masking
//! is token-lossy, not a parse, and `#[cfg(test)]` is only recognized in
//! its plain inline-`mod` form.

/// A string literal found in a source file.
#[derive(Debug, Clone)]
pub struct StrLit {
    /// Byte offset of the opening quote.
    pub start: usize,
    /// Raw (unescaped) contents between the quotes.
    pub value: String,
}

/// One scanned source file plus its derived views.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the lint root, `/`-separated.
    pub rel: String,
    /// Owning crate: `crates/<k>/…` gives `k`, the root `src/…` gives
    /// `dcn`. `None` for files outside both.
    pub krate: Option<String>,
    /// Under a `tests/`, `benches/`, or `examples/` directory.
    pub is_test_code: bool,
    /// Under a `src/bin/` directory (binary target).
    pub is_bin: bool,
    /// Raw file contents.
    pub raw: String,
    /// Masked contents (same byte length as `raw`).
    pub masked: String,
    /// All string literals, in source order.
    pub strings: Vec<StrLit>,
    /// Byte offset of each line start (line `i` is 1-based: `starts[i-1]`).
    pub line_starts: Vec<usize>,
    /// Per line (0-based index = line - 1): inside a `#[cfg(test)] mod`.
    pub test_lines: Vec<bool>,
}

impl SourceFile {
    /// Builds the derived views for one file.
    pub fn new(rel: String, raw: String) -> SourceFile {
        let segs: Vec<&str> = rel.split('/').collect();
        let krate = match segs.first() {
            Some(&"crates") if segs.len() > 1 => Some(segs[1].to_string()),
            Some(&"src") => Some("dcn".to_string()),
            _ => None,
        };
        let is_test_code = segs
            .iter()
            .any(|s| matches!(*s, "tests" | "benches" | "examples"));
        let is_bin = segs.contains(&"bin");
        let (masked, strings) = mask(&raw);
        let mut line_starts = vec![0usize];
        for (i, b) in raw.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        let n_lines = line_starts.len();
        let mut test_lines = vec![false; n_lines];
        for (lo, hi) in test_regions(&masked) {
            let first = offset_line(&line_starts, lo);
            let last = offset_line(&line_starts, hi.saturating_sub(1));
            for l in first..=last {
                if l >= 1 && l <= n_lines {
                    test_lines[l - 1] = true;
                }
            }
        }
        SourceFile {
            rel,
            krate,
            is_test_code,
            is_bin,
            raw,
            masked,
            strings,
            line_starts,
            test_lines,
        }
    }

    /// 1-based line number of a byte offset.
    pub fn line_of(&self, off: usize) -> usize {
        offset_line(&self.line_starts, off)
    }

    /// True when the given byte offset falls inside a `#[cfg(test)] mod`.
    pub fn in_test_region(&self, off: usize) -> bool {
        let l = self.line_of(off);
        l >= 1 && l <= self.test_lines.len() && self.test_lines[l - 1]
    }

    /// The raw text of a 1-based line (without the newline).
    pub fn raw_line(&self, line: usize) -> &str {
        if line == 0 || line > self.line_starts.len() {
            return "";
        }
        let start = self.line_starts[line - 1];
        let end = self
            .line_starts
            .get(line)
            .map_or(self.raw.len(), |&e| e.saturating_sub(1));
        self.raw.get(start..end).unwrap_or("")
    }
}

fn offset_line(line_starts: &[usize], off: usize) -> usize {
    match line_starts.binary_search(&off) {
        Ok(i) => i + 1,
        Err(i) => i,
    }
}

const fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Replaces comments and the contents of string/char literals with spaces
/// (newlines are preserved so line numbers survive), and collects string
/// literal values. Delimiters themselves (`"`) are kept so rules can still
/// see where a literal starts.
pub fn mask(src: &str) -> (String, Vec<StrLit>) {
    let b = src.as_bytes();
    let n = b.len();
    let mut out = b.to_vec();
    let mut strings = Vec::new();
    let mut i = 0usize;

    let blank = |out: &mut [u8], lo: usize, hi: usize| {
        for o in out.iter_mut().take(hi.min(n)).skip(lo) {
            if *o != b'\n' {
                *o = b' ';
            }
        }
    };

    while i < n {
        let c = b[i];
        let prev_ident = i > 0 && is_ident(b[i - 1]);
        if c == b'/' && i + 1 < n && b[i + 1] == b'/' {
            let start = i;
            while i < n && b[i] != b'\n' {
                i += 1;
            }
            blank(&mut out, start, i);
        } else if c == b'/' && i + 1 < n && b[i + 1] == b'*' {
            let start = i;
            let mut depth = 1;
            i += 2;
            while i < n && depth > 0 {
                if b[i] == b'/' && i + 1 < n && b[i + 1] == b'*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == b'*' && i + 1 < n && b[i + 1] == b'/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            blank(&mut out, start, i);
        } else if c == b'"' {
            i = scan_string(src, &mut out, i, &mut strings);
        } else if (c == b'r' || c == b'b') && !prev_ident {
            if let Some(next) = scan_prefixed_literal(src, &mut out, i, &mut strings) {
                i = next;
            } else {
                i += 1;
            }
        } else if c == b'\'' {
            i = scan_char_or_lifetime(src, &mut out, i);
        } else {
            i += 1;
        }
    }
    // Only ASCII spaces were written, so the result is valid UTF-8.
    let masked = String::from_utf8(out).unwrap_or_else(|_| " ".repeat(n));
    (masked, strings)
}

/// Scans a plain `"…"` string starting at the opening quote; returns the
/// offset past the closing quote. Contents are blanked and recorded.
fn scan_string(src: &str, out: &mut [u8], start: usize, strings: &mut Vec<StrLit>) -> usize {
    let b = src.as_bytes();
    let n = b.len();
    let mut i = start + 1;
    while i < n {
        if b[i] == b'\\' {
            i = (i + 2).min(n);
        } else if b[i] == b'"' {
            break;
        } else {
            i += 1;
        }
    }
    let value = src.get(start + 1..i.min(n)).unwrap_or("").to_string();
    for o in out.iter_mut().take(i.min(n)).skip(start + 1) {
        if *o != b'\n' {
            *o = b' ';
        }
    }
    strings.push(StrLit { start, value });
    (i + 1).min(n)
}

/// Handles `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, and `b'…'` literals
/// starting at the `r`/`b` prefix. Returns `None` when the prefix turns
/// out to be an ordinary identifier character.
fn scan_prefixed_literal(
    src: &str,
    out: &mut [u8],
    start: usize,
    strings: &mut Vec<StrLit>,
) -> Option<usize> {
    let b = src.as_bytes();
    let n = b.len();
    let mut i = start;
    if b[i] == b'b' {
        i += 1;
        if i < n && b[i] == b'\'' {
            return Some(scan_char_or_lifetime(src, out, i));
        }
    }
    if i < n && b[i] == b'r' {
        i += 1;
    }
    let mut hashes = 0usize;
    while i < n && b[i] == b'#' {
        hashes += 1;
        i += 1;
    }
    if i >= n || b[i] != b'"' {
        return None; // not a literal after all (e.g. ident `r`, `b`)
    }
    if hashes == 0 && src.as_bytes()[i.saturating_sub(1)] != b'r' && start + 1 == i {
        // plain b"…": delegate for escape handling
        return Some(scan_string(src, out, i, strings));
    }
    // Raw string: ends at `"` followed by `hashes` hashes, no escapes.
    let open = i;
    let mut j = i + 1;
    let closer: Vec<u8> = std::iter::once(b'"').chain(std::iter::repeat_n(b'#', hashes)).collect();
    while j < n {
        if b[j] == b'"' && b[j..].starts_with(&closer) {
            break;
        }
        j += 1;
    }
    let value = src.get(open + 1..j.min(n)).unwrap_or("").to_string();
    for o in out.iter_mut().take(j.min(n)).skip(open + 1) {
        if *o != b'\n' {
            *o = b' ';
        }
    }
    strings.push(StrLit { start: open, value });
    Some((j + closer.len()).min(n))
}

/// Distinguishes `'x'` / `'\n'` char literals from `'a` lifetimes at a
/// `'`. Char-literal contents are blanked; lifetimes are left untouched.
fn scan_char_or_lifetime(src: &str, out: &mut [u8], start: usize) -> usize {
    let b = src.as_bytes();
    let n = b.len();
    let i = start + 1;
    if i >= n {
        return n;
    }
    if b[i] == b'\\' {
        // Escaped char literal: blank to the closing quote.
        let mut j = i + 2; // skip the escaped character
        while j < n && b[j] != b'\'' {
            j += 1;
        }
        for o in out.iter_mut().take(j.min(n)).skip(i) {
            if *o != b'\n' {
                *o = b' ';
            }
        }
        return (j + 1).min(n);
    }
    // One UTF-8 char followed by a closing quote → char literal.
    if let Some(c) = src[i..].chars().next() {
        let end = i + c.len_utf8();
        if end < n && b[end] == b'\'' {
            for o in out.iter_mut().take(end).skip(i) {
                if *o != b'\n' {
                    *o = b' ';
                }
            }
            return end + 1;
        }
    }
    // Lifetime: keep as-is.
    i
}

/// Byte ranges of `#[cfg(test)] mod … { … }` bodies in masked text.
fn test_regions(masked: &str) -> Vec<(usize, usize)> {
    let b = masked.as_bytes();
    let n = b.len();
    let mut regions = Vec::new();
    let mut from = 0usize;
    while let Some(p) = masked[from..].find("#[cfg(test)]") {
        let attr_end = from + p + "#[cfg(test)]".len();
        from = attr_end;
        let mut j = attr_end;
        // Skip whitespace and any further attributes.
        loop {
            while j < n && b[j].is_ascii_whitespace() {
                j += 1;
            }
            if j < n && b[j] == b'#' {
                // Skip a balanced #[…] attribute.
                while j < n && b[j] != b'[' {
                    j += 1;
                }
                let mut depth = 0i32;
                while j < n {
                    if b[j] == b'[' {
                        depth += 1;
                    } else if b[j] == b']' {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    j += 1;
                }
            } else {
                break;
            }
        }
        for kw in ["pub ", "pub(crate) "] {
            if masked[j..].starts_with(kw) {
                j += kw.len();
            }
        }
        if !masked[j..].starts_with("mod") {
            continue;
        }
        // Body: next `{` (stop at `;` — `mod x;` out-of-line form is a
        // documented limitation).
        let Some(rel_open) = masked[j..].find(['{', ';']) else {
            continue;
        };
        let open = j + rel_open;
        if b[open] != b'{' {
            continue;
        }
        if let Some(close) = match_brace(masked, open) {
            regions.push((open, close));
            from = close;
        }
    }
    regions
}

/// Offset one past the `}` matching the `{` at `open` (masked text, so
/// braces inside literals/comments are already gone). `None` if unbalanced.
pub fn match_brace(masked: &str, open: usize) -> Option<usize> {
    let b = masked.as_bytes();
    debug_assert_eq!(b[open], b'{');
    let mut depth = 0i64;
    for (i, &c) in b.iter().enumerate().skip(open) {
        if c == b'{' {
            depth += 1;
        } else if c == b'}' {
            depth -= 1;
            if depth == 0 {
                return Some(i + 1);
            }
        }
    }
    None
}

/// All word-bounded occurrences of `word` in `text`: the match must not be
/// preceded or followed by an identifier character.
pub fn word_occurrences(text: &str, word: &str) -> Vec<usize> {
    let mut hits = Vec::new();
    let b = text.as_bytes();
    let mut from = 0usize;
    while let Some(p) = text[from..].find(word) {
        let at = from + p;
        let pre_ok = at == 0 || !is_ident(b[at - 1]);
        let end = at + word.len();
        let post_ok = end >= b.len() || !is_ident(b[end]);
        if pre_ok && post_ok {
            hits.push(at);
        }
        from = at + word.len();
    }
    hits
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masks_comments_and_strings() {
        let src = "let x = \"a.unwrap()\"; // .unwrap()\nlet y = 1;";
        let (masked, strings) = mask(src);
        assert_eq!(masked.len(), src.len());
        assert!(!masked.contains(".unwrap()"));
        assert!(masked.contains("let y = 1;"));
        assert_eq!(strings.len(), 1);
        assert_eq!(strings[0].value, "a.unwrap()");
    }

    #[test]
    fn masks_nested_block_comments_and_raw_strings() {
        let src = "/* outer /* inner */ still */ code(r#\"panic!(\"x\")\"#)";
        let (masked, strings) = mask(src);
        assert!(!masked.contains("outer"));
        assert!(!masked.contains("panic!"));
        assert!(masked.contains("code("));
        assert_eq!(strings.len(), 1);
        assert_eq!(strings[0].value, "panic!(\"x\")");
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let src = "fn f<'a>(x: &'a str) { let c = '\"'; let d = 'z'; }";
        let (masked, _) = mask(src);
        // The quote inside the char literal must not open a string.
        assert!(masked.contains("let d ="));
        assert!(masked.contains("&'a str"));
        assert!(!masked.contains("'z'"));
    }

    #[test]
    fn escaped_quotes_in_strings() {
        let src = r#"let s = "he said \"hi\""; after();"#;
        let (masked, strings) = mask(src);
        assert!(masked.contains("after();"));
        assert_eq!(strings.len(), 1);
        assert_eq!(strings[0].value, r#"he said \"hi\""#);
    }

    #[test]
    fn finds_test_regions() {
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() { x.unwrap(); }\n}\nfn c() {}\n";
        let f = SourceFile::new("crates/lp/src/lib.rs".into(), src.into());
        assert!(!f.test_lines[0]);
        assert!(f.test_lines[3]);
        assert!(!f.test_lines[5]);
        assert_eq!(f.krate.as_deref(), Some("lp"));
    }

    #[test]
    fn classifies_paths() {
        let t = SourceFile::new("crates/mcf/tests/x.rs".into(), String::new());
        assert!(t.is_test_code);
        let b = SourceFile::new("crates/bench/src/bin/fig3.rs".into(), String::new());
        assert!(b.is_bin && !b.is_test_code);
        let root = SourceFile::new("src/lib.rs".into(), String::new());
        assert_eq!(root.krate.as_deref(), Some("dcn"));
    }

    #[test]
    fn word_occurrences_respect_boundaries() {
        let hits = word_occurrences("while_x while awhile while", "while");
        assert_eq!(hits.len(), 2);
    }
}
