#![forbid(unsafe_code)]
//! dcn-lint: a self-contained static-analysis pass over the workspace's
//! own Rust sources.
//!
//! The linter enforces the invariants that keep the TUB pipeline honest:
//! solver code is panic-free, every unbounded loop answers to a
//! [`Budget`](../dcn_guard/struct.Budget.html), float comparisons go
//! through tolerance helpers, metric names live in one registry, and
//! nothing reads wall clocks or entropy where a manifest could not
//! reproduce it.
//!
//! It deliberately has **zero dependencies** and no real Rust parser: a
//! lossy scanner ([`scan`]) masks comments and string contents while
//! preserving byte offsets, which is enough for the token-level rules in
//! [`rules`]. The trade-offs of that choice are documented in DESIGN.md §9.

pub mod rules;
pub mod scan;

use rules::{run_all, Diagnostic, Severity};
use scan::SourceFile;
use std::path::{Path, PathBuf};

/// Result of linting a tree.
pub struct Report {
    /// Surviving diagnostics, sorted by (file, line, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// Justified allow annotations that suppressed at least one finding.
    pub allows_honored: usize,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// True when any error-severity diagnostic survived.
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }
}

/// Directory names never descended into: build output, vendored deps,
/// VCS metadata, and the lint fixture corpus (which contains deliberate
/// violations).
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", "fixtures"];

/// Collects every `.rs` file under `root`, relative paths sorted.
fn collect_sources(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if entry.file_type()?.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Lints the workspace rooted at `root` and returns the report.
pub fn lint_root(root: &Path) -> std::io::Result<Report> {
    let paths = collect_sources(root)?;
    let mut files = Vec::with_capacity(paths.len());
    for p in &paths {
        let raw = std::fs::read_to_string(p)?;
        let rel = p
            .strip_prefix(root)
            .unwrap_or(p)
            .to_string_lossy()
            .replace('\\', "/");
        files.push(SourceFile::new(rel, raw));
    }
    let outcome = run_all(&files);
    Ok(Report {
        diagnostics: outcome.diagnostics,
        allows_honored: outcome.allows_honored,
        files_scanned: files.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skip_list_covers_fixture_corpus() {
        assert!(SKIP_DIRS.contains(&"fixtures"));
        assert!(SKIP_DIRS.contains(&"vendor"));
    }
}
