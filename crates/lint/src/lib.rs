#![forbid(unsafe_code)]
//! dcn-lint: a self-contained static-analysis pass over the workspace's
//! own Rust sources.
//!
//! The linter enforces the invariants that keep the TUB pipeline honest:
//! solver code is panic-free, every unbounded loop answers to a
//! [`Budget`](../dcn_guard/struct.Budget.html), float comparisons go
//! through tolerance helpers, metric names live in one registry, locks
//! are acquired in one declared order and never held across blocking
//! calls, atomics spell out their memory orderings, and every `DCN_*`
//! environment knob is registered in `dcn_guard::env` and mirrored in
//! the README.
//!
//! It deliberately has **zero external dependencies** and no real Rust
//! parser: a lossy scanner ([`scan`]) masks comments and string contents
//! while preserving byte offsets, which is enough for the token-level
//! rules in [`rules`]. Since v2 the engine is two-pass: pass 1 builds a
//! workspace symbol [`index`] (each file parsed exactly once), pass 2
//! fans the per-file rules out over a `dcn_exec::Pool` — diagnostics are
//! merged in input order, so the report is byte-identical at any
//! `DCN_EXEC_THREADS` — and runs the cross-file registry rules serially.
//! The trade-offs of the lossy scan are documented in DESIGN.md §9/§14.

pub mod index;
pub mod rules;
pub mod scan;

use dcn_guard::{Budget, BudgetError};
use index::WorkspaceIndex;
use rules::{Diagnostic, Severity};
use scan::SourceFile;
use std::path::{Path, PathBuf};

/// Result of linting a tree.
pub struct Report {
    /// Surviving diagnostics, sorted by (file, line, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// Justified allow annotations that suppressed at least one finding.
    pub allows_honored: usize,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// True when any error-severity diagnostic survived.
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }
}

/// Directory names never descended into: build output, vendored deps,
/// VCS metadata, and the lint fixture corpus (which contains deliberate
/// violations).
const SKIP_DIRS: &[&str] = &["target", "vendor", ".git", "fixtures"];

/// Collects every `.rs` file under `root`, relative paths sorted.
fn collect_sources(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if entry.file_type()?.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) && !name.starts_with('.') {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// The pool fan-outs run under an unlimited budget (linting is bounded
/// by the file set), so a `BudgetError` surfacing is a program bug, not
/// an environmental condition — map it to an opaque io::Error rather
/// than panicking.
fn budget_io(e: BudgetError) -> std::io::Error {
    std::io::Error::other(format!("lint pool budget: {e}"))
}

/// Errors inside the parallel scan stage: file I/O or (nominally) budget.
enum ScanError {
    Io(std::io::Error),
    Budget(BudgetError),
}

impl From<BudgetError> for ScanError {
    fn from(e: BudgetError) -> Self {
        ScanError::Budget(e)
    }
}

/// Reads and scans every source under `root`, in parallel, results in
/// path order.
fn scan_sources(
    root: &Path,
    pool: &dcn_exec::Pool,
    budget: &Budget,
) -> std::io::Result<Vec<SourceFile>> {
    let paths = collect_sources(root)?;
    pool.par_map(budget, &paths, |_, p: &PathBuf| {
        let raw = std::fs::read_to_string(p).map_err(ScanError::Io)?;
        let rel = p
            .strip_prefix(root)
            .unwrap_or(p)
            .to_string_lossy()
            .replace('\\', "/");
        Ok(SourceFile::new(rel, raw))
    })
    .map_err(|e| match e {
        ScanError::Io(e) => e,
        ScanError::Budget(e) => budget_io(e),
    })
}

/// Lints the workspace rooted at `root` and returns the report.
///
/// Pipeline: parallel read+scan (each file parsed exactly once), parallel
/// pass-1 indexing, parallel per-file rules, then the serial cross-file
/// rules and allow resolution. Every fan-out merges in input order, so
/// the report is identical at any worker count.
pub fn lint_root(root: &Path) -> std::io::Result<Report> {
    let pool = dcn_exec::Pool::from_env();
    let budget = Budget::unlimited();
    let files = scan_sources(root, &pool, &budget)?;
    let per_file = pool
        .par_map(&budget, &files, |_, f| {
            Ok::<_, BudgetError>(index::index_file(f))
        })
        .map_err(budget_io)?;
    let index = WorkspaceIndex::build(&files, per_file);
    let raw = pool
        .par_map(&budget, &files, |fi, f| {
            Ok::<_, BudgetError>(rules::per_file_diags(f, fi, &index))
        })
        .map_err(budget_io)?;
    let mut raw: Vec<Diagnostic> = raw.into_iter().flatten().collect();
    let readme = std::fs::read_to_string(root.join("README.md")).ok();
    raw.extend(rules::cross_file_diags(&files, &index, readme.as_deref()));
    let outcome = rules::finish(&files, raw);
    Ok(Report {
        diagnostics: outcome.diagnostics,
        allows_honored: outcome.allows_honored,
        files_scanned: files.len(),
    })
}

/// Renders the expected README environment-variable table for the tree
/// at `root` (the `--env-table` CLI mode). Errors when the tree has no
/// env registry to generate from.
pub fn env_table_for_root(root: &Path) -> std::io::Result<String> {
    let path = root.join(index::ENV_REGISTRY_REL);
    let raw = std::fs::read_to_string(&path)?;
    let f = SourceFile::new(index::ENV_REGISTRY_REL.to_string(), raw);
    Ok(index::env_table(&index::parse_env_registry(&f)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skip_list_covers_fixture_corpus() {
        assert!(SKIP_DIRS.contains(&"fixtures"));
        assert!(SKIP_DIRS.contains(&"vendor"));
    }
}
